#include "db/value.hpp"

#include "common/string_utils.hpp"

namespace stampede::db {

std::string Value::to_string() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  if (is_real()) return common::format_fixed(as_real(), 6);
  return as_text();
}

std::partial_ordering Value::compare(const Value& other) const {
  const bool a_null = is_null();
  const bool b_null = other.is_null();
  if (a_null || b_null) {
    if (a_null && b_null) return std::partial_ordering::equivalent;
    return a_null ? std::partial_ordering::less
                  : std::partial_ordering::greater;
  }
  const bool a_num = is_int() || is_real();
  const bool b_num = other.is_int() || other.is_real();
  if (a_num && b_num) {
    if (is_int() && other.is_int()) {
      const auto a = as_int();
      const auto b = other.as_int();
      if (a < b) return std::partial_ordering::less;
      if (a > b) return std::partial_ordering::greater;
      return std::partial_ordering::equivalent;
    }
    const double a = as_number();
    const double b = other.as_number();
    return a <=> b;
  }
  if (a_num != b_num) {
    // Numbers sort before text (SQLite storage-class ordering).
    return a_num ? std::partial_ordering::less
                 : std::partial_ordering::greater;
  }
  const int c = as_text().compare(other.as_text());
  if (c < 0) return std::partial_ordering::less;
  if (c > 0) return std::partial_ordering::greater;
  return std::partial_ordering::equivalent;
}

}  // namespace stampede::db
