#pragma once
// Columnar segments over sealed row-store ranges (DESIGN.md §15).
//
// A Segment is an immutable column-oriented copy of the live rows in one
// slot range [lo, hi) of a Table: per-column typed arrays (int64 /
// float64), sorted-dictionary (+ optional RLE) encoding for text,
// per-column min/max zone maps, and sorted-position range indexes for
// timestamp-style predicates. Segments are an *acceleration structure*,
// never the source of truth: the row store keeps every row, a mutation
// that touches a covered slot simply invalidates the covering segment
// (the compactor re-seals the range later), and the vectorized executor
// unions segments with the uncovered row-store gaps/tail in ascending
// RowId order — which is what makes its results byte-identical to the
// pure row path.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/query.hpp"
#include "db/schema.hpp"

namespace stampede::db {

class Table;
struct PlanInfo;

/// One column of a segment; positions align with Segment::row_ids.
struct SegmentColumn {
  /// Picked from the *observed* cell types, not the declared column type
  /// — inserts are not type-checked, so a REAL column may hold int
  /// Values and group keys distinguish int 1 from real 1.0. kInt64 /
  /// kFloat64 / kDict require every non-null cell to be of that one
  /// type; anything else (or an all-NULL column) falls back to kMixed.
  enum class Encoding { kInt64, kFloat64, kDict, kMixed };

  Encoding encoding = Encoding::kMixed;

  std::vector<std::int64_t> ints;    ///< kInt64 payload (0 at NULLs).
  std::vector<double> reals;         ///< kFloat64 payload (0.0 at NULLs).
  std::vector<std::string> dict;     ///< kDict: distinct values, sorted.
  std::vector<std::uint32_t> codes;  ///< kDict plain codes (empty if RLE).
  std::vector<std::uint32_t> run_starts;  ///< kDict RLE: run first position.
  std::vector<std::uint32_t> run_codes;   ///< kDict RLE: run dict code.
  std::vector<Value> values;         ///< kMixed payload.
  std::vector<std::uint8_t> nulls;   ///< 1 = NULL (empty when none).

  bool has_nulls = false;
  bool has_values = false;  ///< Any non-null cell.
  /// True when a real cell is NaN. NaN is unordered under Value::compare
  /// so it can neither serve as a zone-map bound nor sit in a sorted
  /// range index; the flag disables both for the column.
  bool has_nan = false;
  Value min_value;  ///< Zone map over non-null, non-NaN cells.
  Value max_value;

  [[nodiscard]] bool is_null_at(std::size_t pos) const noexcept {
    return has_nulls && nulls[pos] != 0;
  }

  /// Dictionary code at `pos` (kDict only), RLE-aware.
  [[nodiscard]] std::uint32_t code_at(std::size_t pos) const;

  /// Exact cell reconstruction: the returned Value is identical (type
  /// tag included) to the row-store cell the segment was built from.
  [[nodiscard]] Value value_at(std::size_t pos) const;
};

/// Immutable columnar image of the live rows in slot range [lo, hi).
struct Segment {
  RowId lo = 0;  ///< First covered row-store slot.
  RowId hi = 0;  ///< One past the last covered slot.
  std::vector<RowId> row_ids;          ///< Live rows, ascending.
  std::vector<SegmentColumn> columns;  ///< Aligned with TableDef::columns.
  /// column index -> positions sorted by (value, position) under
  /// Value::compare, NULL and NaN positions excluded. Serves <, <=, >,
  /// >=, = predicates via binary search — the range probes the
  /// equality-only secondary indexes cannot answer.
  std::unordered_map<std::size_t, std::vector<std::uint32_t>> range_index;

  [[nodiscard]] std::size_t size() const noexcept { return row_ids.size(); }
};

/// Sealing policy knobs (Table::seal / StorageShard::compact).
struct SealOptions {
  /// A trailing uncovered range seals only once it holds at least this
  /// many slots beyond the hot tail; interior gaps (left behind by a
  /// segment invalidation) re-seal regardless of size.
  std::size_t min_seal_rows = 1024;
  /// Newest slots that always stay in row form — the write-hot tail.
  std::size_t hot_tail_rows = 256;
  /// Large ranges are chopped into segments of ~this many slots.
  std::size_t target_segment_rows = 4096;
  /// Extra columns (by name) to build range indexes for; declared kReal
  /// columns (timestamps) always get one.
  std::vector<std::string> range_index_columns;
};

struct SealStats {
  std::size_t segments_built = 0;
  std::size_t rows_sealed = 0;            ///< Live rows across new segments.
  std::size_t tombstones_reclaimed = 0;   ///< Dead-row payloads freed.
};

/// The set of segments covering one table, ordered by slot range.
/// Mutated only under the owning shard's exclusive lock; read under its
/// shared lock (same discipline as the row store itself).
class ColumnStore {
 public:
  [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }

  /// One past the highest covered slot (0 when empty): mutations at or
  /// beyond it — every insert — can never hit a segment.
  [[nodiscard]] RowId covered_hi() const noexcept { return covered_hi_; }

  [[nodiscard]] std::uint64_t invalidations() const noexcept {
    return invalidations_;
  }
  [[nodiscard]] std::size_t sealed_rows() const noexcept;

  /// Inserts a segment at its slot-sorted position. Ranges must not
  /// overlap existing segments (the sealer only covers gaps).
  void add(Segment segment);

  /// Drops the segment covering `id`, if any (update / delete / rollback
  /// of a covered row). The range returns to row-store scanning until
  /// the compactor re-seals it.
  void invalidate(RowId id);

  void clear();

 private:
  std::vector<Segment> segments_;  ///< Sorted by lo; pairwise disjoint.
  RowId covered_hi_ = 0;
  std::uint64_t invalidations_ = 0;
};

/// Builds the columnar image of slots [lo, hi): encodings chosen per
/// column from observed content, zone maps, and range indexes for
/// `range_index_cols` (indices into def.columns).
[[nodiscard]] Segment build_segment(const TableDef& def,
                                    const std::vector<Row>& rows,
                                    const std::vector<bool>& live, RowId lo,
                                    RowId hi,
                                    const std::vector<std::size_t>& range_index_cols);

/// Vectorized single-table scan over the table's segments plus its
/// uncovered row ranges: zone-map segment pruning, predicate evaluation
/// over column batches, range-index probes, GROUP BY aggregation through
/// db::Aggregator in ascending-RowId order, and late materialization of
/// only the surviving rows. Returns nullopt when the query shape is not
/// supported (joins, column-to-column predicates, names that don't
/// resolve against the base table) — the caller falls back to the row
/// path, which also keeps error behaviour identical. A non-nullopt
/// result is byte-identical to StorageShard's row-path execution.
[[nodiscard]] std::optional<ResultSet> execute_columnar(const Table& table,
                                                        const Select& select,
                                                        PlanInfo& plan);

}  // namespace stampede::db
