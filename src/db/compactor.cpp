#include "db/compactor.hpp"

#include <chrono>
#include <string>
#include <unordered_map>

#include "db/sharded_database.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::db {

Compactor::Compactor(ShardedDatabase& db, CompactorOptions options)
    : options_(options) {
  shards_.reserve(db.shard_count());
  for (std::size_t i = 0; i < db.shard_count(); ++i) {
    shards_.push_back(&db.shard(i));
  }
  start();
}

Compactor::Compactor(StorageShard& shard, CompactorOptions options)
    : shards_{&shard}, options_(options) {
  start();
}

Compactor::Compactor(std::vector<StorageShard*> shards,
                     CompactorOptions options)
    : shards_(std::move(shards)), options_(options) {
  start();
}

Compactor::~Compactor() { stop(); }

void Compactor::start() {
  thread_ = std::thread([this] { loop(); });
}

void Compactor::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Compactor::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();  // Never hold our mutex across shard locks.
    run_once();
    lock.lock();
  }
}

StorageShard::CompactStats Compactor::run_once() {
  StorageShard::CompactStats total;
  // live/dead/sealed per table, summed across this compactor's shards.
  struct Tally {
    std::size_t live = 0, dead = 0;
  };
  std::unordered_map<std::string, Tally> tallies;

  for (StorageShard* shard : shards_) {
    const auto stats = shard->compact(options_.seal);
    total.segments_built += stats.segments_built;
    total.rows_sealed += stats.rows_sealed;
    total.tombstones_reclaimed += stats.tombstones_reclaimed;
    for (const auto& counts : shard->table_counts()) {
      auto& tally = tallies[counts.table];
      tally.live += counts.live;
      tally.dead += counts.dead;
    }
    if (options_.checkpoint_wal &&
        (stats.rows_sealed > 0 || stats.tombstones_reclaimed > 0)) {
      shard->checkpoint_wal();
    }
  }

  auto& registry = telemetry::registry();
  for (const auto& [table, tally] : tallies) {
    registry
        .gauge(telemetry::labeled("stampede_db_live_rows", "table", table))
        .set(static_cast<std::int64_t>(tally.live));
    registry
        .gauge(
            telemetry::labeled("stampede_db_tombstones_total", "table", table))
        .set(static_cast<std::int64_t>(tally.dead));
  }
  passes_.fetch_add(1, std::memory_order_relaxed);
  return total;
}

}  // namespace stampede::db
