#pragma once
// Table and column definitions for the relational archive.

#include <optional>
#include <string>
#include <vector>

#include "db/value.hpp"

namespace stampede::db {

enum class ColumnType { kInteger, kReal, kText };

[[nodiscard]] constexpr std::string_view column_type_name(
    ColumnType type) noexcept {
  switch (type) {
    case ColumnType::kInteger:
      return "INTEGER";
    case ColumnType::kReal:
      return "REAL";
    case ColumnType::kText:
      return "TEXT";
  }
  return "?";
}

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kText;
  bool not_null = false;
  std::optional<Value> default_value;
};

/// Logical foreign key. The engine records but does not enforce these —
/// matching SQLite's historical default, which the real stampede schema
/// was deployed against — but tests use them to assert loader ordering.
struct ForeignKeyDef {
  std::string column;
  std::string ref_table;
  std::string ref_column;
};

struct IndexDef {
  std::string name;
  std::vector<std::string> columns;
  bool unique = false;
};

struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  /// Single-column integer primary key with auto-assignment when the
  /// inserted value is NULL/absent (SQLite rowid-alias behaviour). Empty
  /// means a hidden auto rowid only.
  std::string primary_key;
  std::vector<ForeignKeyDef> foreign_keys;
  std::vector<IndexDef> indexes;

  [[nodiscard]] const ColumnDef* find_column(
      std::string_view name) const noexcept {
    for (const auto& col : columns) {
      if (col.name == name) return &col;
    }
    return nullptr;
  }

  [[nodiscard]] std::optional<std::size_t> column_index(
      std::string_view name) const noexcept {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == name) return i;
    }
    return std::nullopt;
  }
};

/// A row is positionally aligned with TableDef::columns.
using Row = std::vector<Value>;
using RowId = std::int64_t;

}  // namespace stampede::db
