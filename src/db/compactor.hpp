#pragma once
// Background compactor: rolls cold row-store ranges into columnar
// segments (DESIGN.md §15).
//
// One thread sweeps its shards round-robin, taking each shard's
// exclusive lock only for that shard's seal pass — never two shard
// locks at once, matching the loader's one-lock-at-a-time discipline
// (DESIGN.md §10). Sealing does not bump table versions, fire change
// capture, or alter query results; it only changes the physical layout
// readers scan, so the compactor can race live ingest and readers
// freely.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "db/database.hpp"

namespace stampede::db {

class ShardedDatabase;

struct CompactorOptions {
  SealOptions seal;
  /// Sweep period. Every interval the compactor visits each shard once.
  std::uint64_t interval_ms = 200;
  /// After a pass that sealed rows or reclaimed tombstones, snapshot
  /// each WAL-backed shard so recovery replays from the compacted
  /// image instead of the full history (StorageShard::checkpoint_wal).
  bool checkpoint_wal = false;
};

/// Owns the sweep thread. Construction starts it; destruction (or
/// stop()) joins it. run_once() is also public so tests and
/// single-threaded callers can drive passes deterministically.
class Compactor {
 public:
  Compactor(ShardedDatabase& db, CompactorOptions options = {});
  Compactor(StorageShard& shard, CompactorOptions options = {});
  Compactor(std::vector<StorageShard*> shards, CompactorOptions options = {});
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// One sweep over every shard. Returns the pass totals; also
  /// refreshes the per-table live/dead/sealed gauges
  /// (`stampede_db_live_rows{table=...}`,
  /// `stampede_db_tombstones_total{table=...}`).
  StorageShard::CompactStats run_once();

  /// Signals the sweep thread and joins it. Idempotent.
  void stop();

  [[nodiscard]] std::uint64_t passes() const noexcept {
    return passes_.load(std::memory_order_relaxed);
  }

 private:
  void start();
  void loop();

  std::vector<StorageShard*> shards_;
  CompactorOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> passes_{0};
  std::thread thread_;
};

}  // namespace stampede::db
