#include "db/database.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "common/errors.hpp"
#include "common/string_utils.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::db {

using common::DbError;

// ---------------------------------------------------------------------------
// Schema

void StorageShard::create_table(TableDef def) {
  const std::scoped_lock lock{mutex_};
  const std::string name = def.name;
  if (tables_.find(name) != tables_.end()) {
    throw DbError("create_table: table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(std::move(def));
  if (pk_step_ != 1) table->set_auto_increment(1 + pk_offset_, pk_step_);
  tables_.emplace(name, std::move(table));
}

void StorageShard::set_pk_allocation(std::int64_t offset, std::int64_t step) {
  const std::scoped_lock lock{mutex_};
  if (step < 1 || offset < 0 || offset >= step) {
    throw DbError("set_pk_allocation: need 0 <= offset < step");
  }
  pk_offset_ = offset;
  pk_step_ = step;
  for (auto& [name, table] : tables_) {
    table->set_auto_increment(1 + offset, step);
  }
}

void StorageShard::set_commit_latency_sink(telemetry::Histogram* sink) {
  const std::scoped_lock lock{mutex_};
  commit_latency_ = sink;
}

bool StorageShard::has_table(const std::string& name) const {
  const std::scoped_lock lock{mutex_};
  return tables_.find(name) != tables_.end();
}

std::vector<std::string> StorageShard::table_names() const {
  const std::scoped_lock lock{mutex_};
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

const TableDef& StorageShard::table_def(const std::string& name) const {
  return table_ref(name).def();
}

Table& StorageShard::table_ref(const std::string& name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) throw DbError("unknown table '" + name + "'");
  return *it->second;
}

const Table& StorageShard::table_ref(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) throw DbError("unknown table '" + name + "'");
  return *it->second;
}

// ---------------------------------------------------------------------------
// WAL serialization

namespace {

std::string wal_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '|') {
      out += "\\p";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string wal_unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      const char e = text[++i];
      if (e == 'p') {
        out.push_back('|');
      } else if (e == 'n') {
        out.push_back('\n');
      } else {
        out.push_back(e);
      }
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

std::string serialize_value(const Value& value) {
  if (value.is_null()) return "N";
  if (value.is_int()) return "I" + std::to_string(value.as_int());
  if (value.is_real()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "R%.17g", value.as_real());
    return buf;
  }
  return "S" + wal_escape(value.as_text());
}

Value deserialize_value(std::string_view text) {
  if (text.empty() || text == "N") return Value::null();
  const char tag = text.front();
  const std::string_view payload = text.substr(1);
  if (tag == 'I') {
    return Value{static_cast<std::int64_t>(
        std::strtoll(std::string{payload}.c_str(), nullptr, 10))};
  }
  if (tag == 'R') {
    return Value{std::strtod(std::string{payload}.c_str(), nullptr)};
  }
  if (tag == 'S') return Value{wal_unescape(payload)};
  throw DbError("WAL: bad value tag '" + std::string{text} + "'");
}

// Splits a WAL line on unescaped '|'.
std::vector<std::string> wal_fields(std::string_view line) {
  std::vector<std::string> out;
  std::string current;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      current.push_back(line[i]);
      current.push_back(line[i + 1]);
      ++i;
    } else if (line[i] == '|') {
      out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(line[i]);
    }
  }
  out.push_back(std::move(current));
  return out;
}

}  // namespace

void StorageShard::wal_write(const std::string& line) {
  if (wal_path_.empty() || replaying_) return;
  if (txn_active_) {
    wal_buffer_.push_back(line);
    return;
  }
  std::ofstream out{wal_path_, std::ios::app};
  if (out) out << line << '\n';
}

// ---------------------------------------------------------------------------
// DML

std::int64_t StorageShard::insert(const std::string& table,
                              const NamedValues& values) {
  const std::scoped_lock lock{mutex_};
  Table& t = table_ref(table);
  const TableDef& def = t.def();
  Row row(def.columns.size(), Value::null());
  for (const auto& [name, value] : values) {
    const auto col = def.column_index(name);
    if (!col) {
      throw DbError("insert into " + table + ": unknown column '" + name +
                    "'");
    }
    row[*col] = value;
  }
  const auto result = t.insert(std::move(row));
  if (txn_active_) {
    undo_log_.push_back({UndoOp::Kind::kInsert, table, result.row_id, {}});
  }
  if (!wal_path_.empty() && !replaying_) {
    const Row* stored = t.fetch(result.row_id);
    std::string line = "I|" + wal_escape(table);
    for (const auto& value : *stored) {
      line += '|';
      line += serialize_value(value);
    }
    wal_write(line);
  }
  return result.pk;
}

std::size_t StorageShard::update(const std::string& table, const ExprPtr& predicate,
                             const NamedValues& sets) {
  const std::scoped_lock lock{mutex_};
  Table& t = table_ref(table);
  const TableDef& def = t.def();

  std::vector<RowId> targets;
  t.scan([&](RowId id, const Row& row) {
    if (!predicate || evaluate(*predicate, [&](const std::string& col) {
          const auto ci = def.column_index(col);
          if (!ci) throw DbError("update " + table + ": unknown column " + col);
          return row[*ci];
        })) {
      targets.push_back(id);
    }
  });

  const auto pk_col = def.column_index(def.primary_key);
  for (const RowId id : targets) {
    const Row before = *t.fetch(id);
    t.update(id, sets);
    if (txn_active_) {
      undo_log_.push_back({UndoOp::Kind::kUpdate, table, id, before});
    }
    if (!wal_path_.empty() && !replaying_) {
      // Address the row by PK when available so replay is robust to slot
      // drift from rolled-back inserts.
      std::string line = "U|" + wal_escape(table) + '|';
      line += pk_col ? serialize_value(before[*pk_col])
                     : serialize_value(Value{id});
      for (const auto& [name, value] : sets) {
        line += '|';
        line += wal_escape(name);
        line += '|';
        line += serialize_value(value);
      }
      wal_write(line);
    }
  }
  return targets.size();
}

bool StorageShard::update_pk(const std::string& table, std::int64_t pk,
                         const NamedValues& sets) {
  const std::scoped_lock lock{mutex_};
  Table& t = table_ref(table);
  const auto slot = t.find_pk(Value{pk});
  if (!slot) return false;
  const Row before = *t.fetch(*slot);
  t.update(*slot, sets);
  if (txn_active_) {
    undo_log_.push_back({UndoOp::Kind::kUpdate, table, *slot, before});
  }
  if (!wal_path_.empty() && !replaying_) {
    std::string line = "U|" + wal_escape(table) + '|';
    line += serialize_value(Value{pk});
    for (const auto& [name, value] : sets) {
      line += '|';
      line += wal_escape(name);
      line += '|';
      line += serialize_value(value);
    }
    wal_write(line);
  }
  return true;
}

std::size_t StorageShard::delete_rows(const std::string& table,
                                  const ExprPtr& predicate) {
  const std::scoped_lock lock{mutex_};
  Table& t = table_ref(table);
  const TableDef& def = t.def();
  std::vector<RowId> targets;
  t.scan([&](RowId id, const Row& row) {
    if (!predicate || evaluate(*predicate, [&](const std::string& col) {
          const auto ci = def.column_index(col);
          if (!ci) throw DbError("delete " + table + ": unknown column " + col);
          return row[*ci];
        })) {
      targets.push_back(id);
    }
  });
  const auto pk_col = def.column_index(def.primary_key);
  for (const RowId id : targets) {
    const Row before = *t.fetch(id);
    t.erase(id);
    if (txn_active_) {
      undo_log_.push_back({UndoOp::Kind::kDelete, table, id, before});
    }
    if (!wal_path_.empty() && !replaying_) {
      std::string line = "D|" + wal_escape(table) + '|';
      line += pk_col ? serialize_value(before[*pk_col])
                     : serialize_value(Value{id});
      wal_write(line);
    }
  }
  return targets.size();
}

std::size_t StorageShard::row_count(const std::string& table) const {
  const std::scoped_lock lock{mutex_};
  return table_ref(table).row_count();
}

// ---------------------------------------------------------------------------
// Transactions

void StorageShard::begin() {
  const std::scoped_lock lock{mutex_};
  if (txn_active_) throw DbError("begin: transaction already active");
  txn_active_ = true;
  undo_log_.clear();
  wal_buffer_.clear();
  if (commit_latency_) txn_begin_time_ = std::chrono::steady_clock::now();
}

void StorageShard::commit() {
  const std::scoped_lock lock{mutex_};
  if (!txn_active_) throw DbError("commit: no active transaction");
  txn_active_ = false;
  undo_log_.clear();
  if (!wal_path_.empty() && !wal_buffer_.empty()) {
    std::ofstream out{wal_path_, std::ios::app};
    if (out) {
      for (const auto& line : wal_buffer_) out << line << '\n';
    }
  }
  wal_buffer_.clear();
  if (commit_latency_) {
    commit_latency_->observe(std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 txn_begin_time_)
                                 .count());
  }
}

void StorageShard::rollback() {
  const std::scoped_lock lock{mutex_};
  if (!txn_active_) throw DbError("rollback: no active transaction");
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    Table& t = table_ref(it->table);
    switch (it->kind) {
      case UndoOp::Kind::kInsert:
        t.erase(it->row_id);
        break;
      case UndoOp::Kind::kUpdate:
        t.raw_replace(it->row_id, std::move(it->before));
        break;
      case UndoOp::Kind::kDelete:
        t.raw_revive(it->row_id, std::move(it->before));
        break;
    }
  }
  undo_log_.clear();
  wal_buffer_.clear();
  txn_active_ = false;
}

bool StorageShard::in_transaction() const {
  const std::scoped_lock lock{mutex_};
  return txn_active_;
}

std::size_t StorageShard::recover() {
  const std::scoped_lock lock{mutex_};
  if (wal_path_.empty()) return 0;
  std::ifstream in{wal_path_};
  if (!in) return 0;
  replaying_ = true;
  std::size_t applied = 0;
  std::string line;

  const auto apply_line = [&](const std::string& text) {
    const auto fields = wal_fields(text);
    if (fields.size() < 2) return;
    const std::string& op = fields[0];
    const std::string table = wal_unescape(fields[1]);
    Table& t = table_ref(table);
    const TableDef& def = t.def();
    if (op == "I") {
      Row row;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        row.push_back(deserialize_value(fields[i]));
      }
      t.insert(std::move(row));
      ++applied;
    } else if (op == "U" && fields.size() >= 3) {
      const Value key = deserialize_value(fields[2]);
      NamedValues sets;
      for (std::size_t i = 3; i + 1 < fields.size(); i += 2) {
        sets.emplace_back(wal_unescape(fields[i]),
                          deserialize_value(fields[i + 1]));
      }
      std::optional<RowId> target = def.primary_key.empty()
                                        ? std::optional<RowId>{key.as_int()}
                                        : t.find_pk(key);
      if (target) {
        t.update(*target, sets);
        ++applied;
      }
    } else if (op == "D" && fields.size() >= 3) {
      const Value key = deserialize_value(fields[2]);
      std::optional<RowId> target = def.primary_key.empty()
                                        ? std::optional<RowId>{key.as_int()}
                                        : t.find_pk(key);
      if (target) {
        t.erase(*target);
        ++applied;
      }
    }
  };

  try {
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        apply_line(line);
      } catch (const std::exception& e) {
        // A record that fails to apply is either the torn final line a
        // crash mid-append left behind (tolerated: discard it) or
        // corruption in the middle of the log (fatal). Distinguish by
        // whether any further non-empty record follows.
        bool more = false;
        std::string rest;
        while (std::getline(in, rest)) {
          if (!rest.empty()) {
            more = true;
            break;
          }
        }
        if (more) throw;
        ++wal_truncated_;
        telemetry::registry()
            .counter("stampede_db_wal_truncated_records_total")
            .inc();
        std::fprintf(
            stderr,
            "stampede-db: WAL %s: discarded truncated trailing record (%s)\n",
            wal_path_.c_str(), e.what());
        break;
      }
    }
  } catch (...) {
    replaying_ = false;
    throw;
  }
  replaying_ = false;
  return applied;
}

std::uint64_t StorageShard::wal_truncated_records() const {
  const std::scoped_lock lock{mutex_};
  return wal_truncated_;
}

// ---------------------------------------------------------------------------
// Query executor

namespace {

/// One source in the FROM/JOIN chain with its flat column offset.
struct Source {
  std::string alias;
  const Table* table = nullptr;
  std::size_t offset = 0;  ///< First flat column index of this source.
};

/// Maps (possibly qualified) column names to flat indexes over the
/// concatenated wide row.
class ColumnMap {
 public:
  explicit ColumnMap(const std::vector<Source>& sources) {
    for (const auto& source : sources) {
      const auto& cols = source.table->def().columns;
      for (std::size_t i = 0; i < cols.size(); ++i) {
        const std::size_t flat = source.offset + i;
        qualified_.emplace(source.alias + "." + cols[i].name, flat);
        const auto [it, inserted] = unqualified_.emplace(cols[i].name, flat);
        if (!inserted) it->second = kAmbiguous;
      }
    }
  }

  [[nodiscard]] std::size_t resolve(const std::string& name) const {
    const auto q = qualified_.find(name);
    if (q != qualified_.end()) return q->second;
    const auto u = unqualified_.find(name);
    if (u == unqualified_.end()) {
      throw DbError("query: unknown column '" + name + "'");
    }
    if (u->second == kAmbiguous) {
      throw DbError("query: ambiguous column '" + name +
                    "' — qualify with a table alias");
    }
    return u->second;
  }

 private:
  static constexpr std::size_t kAmbiguous = static_cast<std::size_t>(-1);
  std::unordered_map<std::string, std::size_t> qualified_;
  std::unordered_map<std::string, std::size_t> unqualified_;
};

/// Collects top-level equality conjuncts usable as index probes on the
/// base table.
void collect_eq_conjuncts(const Expr& expr,
                          std::vector<const Expr*>& out) {
  if (expr.kind == Expr::Kind::kAnd) {
    for (const auto& child : expr.children) {
      collect_eq_conjuncts(*child, out);
    }
    return;
  }
  if (expr.kind == Expr::Kind::kCompareLiteral && expr.op == CompareOp::kEq) {
    out.push_back(&expr);
  }
}

struct Aggregator {
  AggFn fn = AggFn::kCount;
  std::int64_t count = 0;
  double sum = 0.0;
  bool any_numeric = false;
  Value min_value;
  Value max_value;
  bool has_minmax = false;

  void feed(const Value& value) {
    if (fn == AggFn::kCount) {
      if (!value.is_null()) ++count;
      return;
    }
    if (value.is_null()) return;
    ++count;
    if (value.is_int() || value.is_real()) {
      sum += value.as_number();
      any_numeric = true;
    }
    if (!has_minmax) {
      min_value = value;
      max_value = value;
      has_minmax = true;
    } else {
      if (value < min_value) min_value = value;
      if (max_value < value) max_value = value;
    }
  }

  void feed_row() { ++count; }  ///< COUNT(*)

  [[nodiscard]] Value result() const {
    switch (fn) {
      case AggFn::kCount:
        return Value{count};
      case AggFn::kSum:
        return any_numeric ? Value{sum} : Value::null();
      case AggFn::kAvg:
        return (any_numeric && count > 0)
                   ? Value{sum / static_cast<double>(count)}
                   : Value::null();
      case AggFn::kMin:
        return has_minmax ? min_value : Value::null();
      case AggFn::kMax:
        return has_minmax ? max_value : Value::null();
    }
    return Value::null();
  }
};

}  // namespace

ResultSet StorageShard::execute(const Select& select) const {
  const std::scoped_lock lock{mutex_};

  // Assemble the source chain and the flat column map.
  std::vector<Source> sources;
  {
    const Table& base = table_ref(select.table());
    sources.push_back({select.alias(), &base, 0});
    std::size_t offset = base.def().columns.size();
    for (const auto& join : select.joins()) {
      const Table& t = table_ref(join.table);
      sources.push_back({join.alias, &t, offset});
      offset += t.def().columns.size();
    }
  }
  const ColumnMap columns{sources};

  // 1. Base rows — use an index probe when a top-level equality conjunct
  //    targets an indexed base-table column.
  std::vector<Row> wide;
  {
    const Table& base = *sources[0].table;
    const TableDef& def = base.def();
    std::vector<RowId> candidates;
    bool used_index = false;
    if (select.predicate()) {
      std::vector<const Expr*> eqs;
      collect_eq_conjuncts(*select.predicate(), eqs);
      for (const Expr* e : eqs) {
        // Accept "col" or "<base alias>.col".
        std::string name = e->column;
        const std::string prefix = sources[0].alias + ".";
        if (common::starts_with(name, prefix)) {
          name = name.substr(prefix.size());
        } else if (name.find('.') != std::string::npos) {
          continue;  // Qualified with some join alias.
        }
        if (base.has_index(name)) {
          candidates = base.index_lookup(name, e->literal);
          used_index = true;
          break;
        }
      }
    }
    auto add_row = [&](const Row& row) {
      Row w;
      w.reserve(row.size());
      w.insert(w.end(), row.begin(), row.end());
      wide.push_back(std::move(w));
    };
    if (used_index) {
      for (const RowId id : candidates) {
        if (const Row* row = base.fetch(id)) add_row(*row);
      }
    } else {
      base.scan([&](RowId, const Row& row) { add_row(row); });
    }
    (void)def;
  }

  // 2. Hash joins, left to right.
  for (std::size_t j = 0; j < select.joins().size(); ++j) {
    const JoinSpec& join = select.joins()[j];
    const Source& source = sources[j + 1];
    const Table& right = *source.table;
    const auto right_col = right.def().column_index(join.right_col);
    if (!right_col) {
      throw DbError("join: unknown column '" + join.right_col + "' on " +
                    join.table);
    }
    // Build side.
    std::unordered_map<Value, std::vector<const Row*>> build;
    right.scan([&](RowId, const Row& row) {
      if (!row[*right_col].is_null()) {
        build[row[*right_col]].push_back(&row);
      }
    });
    // Probe side. The left column resolves against the columns joined so
    // far (all sources with offset < source.offset).
    std::vector<Source> left_sources(sources.begin(),
                                     sources.begin() +
                                         static_cast<std::ptrdiff_t>(j + 1));
    const ColumnMap left_columns{left_sources};
    const std::size_t left_index = left_columns.resolve(join.left_col);
    const std::size_t right_width = right.def().columns.size();

    std::vector<Row> joined;
    joined.reserve(wide.size());
    for (auto& left_row : wide) {
      const Value& key = left_row[left_index];
      const auto it = key.is_null() ? build.end() : build.find(key);
      if (it == build.end()) {
        if (join.left_outer) {
          Row w = left_row;
          w.resize(w.size() + right_width, Value::null());
          joined.push_back(std::move(w));
        }
        continue;
      }
      for (const Row* match : it->second) {
        Row w = left_row;
        w.insert(w.end(), match->begin(), match->end());
        joined.push_back(std::move(w));
      }
    }
    wide = std::move(joined);
  }

  // 3. Residual filter.
  if (select.predicate()) {
    std::vector<Row> filtered;
    filtered.reserve(wide.size());
    for (auto& row : wide) {
      const bool keep =
          evaluate(*select.predicate(), [&](const std::string& name) {
            return row[columns.resolve(name)];
          });
      if (keep) filtered.push_back(std::move(row));
    }
    wide = std::move(filtered);
  }

  ResultSet result;

  // 4. Aggregate or project.
  if (!select.groups().empty() || !select.aggs().empty()) {
    std::vector<std::size_t> group_cols;
    group_cols.reserve(select.groups().size());
    for (const auto& g : select.groups()) {
      group_cols.push_back(columns.resolve(g));
    }
    struct GroupState {
      Row key;
      std::vector<Aggregator> aggs;
    };
    // Key rows by their serialized group values to keep insertion order.
    std::unordered_map<std::string, std::size_t> index_of;
    std::vector<GroupState> groups;

    for (const auto& row : wide) {
      std::string key_text;
      Row key;
      key.reserve(group_cols.size());
      for (const std::size_t c : group_cols) {
        key.push_back(row[c]);
        key_text += serialize_value(row[c]);
        key_text += '\x1f';
      }
      auto [it, inserted] = index_of.emplace(key_text, groups.size());
      if (inserted) {
        GroupState state;
        state.key = std::move(key);
        state.aggs.reserve(select.aggs().size());
        for (const auto& spec : select.aggs()) {
          Aggregator agg;
          agg.fn = spec.fn;
          state.aggs.push_back(agg);
        }
        groups.push_back(std::move(state));
      }
      GroupState& state = groups[it->second];
      for (std::size_t a = 0; a < select.aggs().size(); ++a) {
        const AggSpec& spec = select.aggs()[a];
        if (spec.column.empty()) {
          state.aggs[a].feed_row();
        } else {
          state.aggs[a].feed(row[columns.resolve(spec.column)]);
        }
      }
    }
    // With aggregates but no groups and no input rows, SQL still emits
    // one row (e.g. COUNT(*) == 0).
    if (groups.empty() && select.groups().empty() && !select.aggs().empty()) {
      GroupState state;
      for (const auto& spec : select.aggs()) {
        Aggregator agg;
        agg.fn = spec.fn;
        state.aggs.push_back(agg);
      }
      groups.push_back(std::move(state));
    }

    for (const auto& g : select.groups()) result.columns.push_back(g);
    for (const auto& spec : select.aggs()) result.columns.push_back(spec.alias);
    for (auto& state : groups) {
      Row out = std::move(state.key);
      for (const auto& agg : state.aggs) out.push_back(agg.result());
      result.rows.push_back(std::move(out));
    }
  } else {
    // Projection.
    std::vector<std::size_t> proj;
    if (select.selected().empty()) {
      for (const auto& source : sources) {
        const auto& cols = source.table->def().columns;
        for (std::size_t i = 0; i < cols.size(); ++i) {
          proj.push_back(source.offset + i);
          result.columns.push_back(sources.size() == 1
                                       ? cols[i].name
                                       : source.alias + "." + cols[i].name);
        }
      }
    } else {
      for (const auto& name : select.selected()) {
        proj.push_back(columns.resolve(name));
        result.columns.push_back(name);
      }
    }
    result.rows.reserve(wide.size());
    for (const auto& row : wide) {
      Row out;
      out.reserve(proj.size());
      for (const std::size_t c : proj) out.push_back(row[c]);
      result.rows.push_back(std::move(out));
    }
  }

  // 5. DISTINCT.
  if (select.is_distinct()) {
    std::unordered_set<std::string> seen;
    std::vector<Row> unique;
    unique.reserve(result.rows.size());
    for (auto& row : result.rows) {
      std::string key;
      for (const auto& value : row) {
        key += serialize_value(value);
        key += '\x1f';
      }
      if (seen.insert(key).second) unique.push_back(std::move(row));
    }
    result.rows = std::move(unique);
  }

  // 6. ORDER BY (stable, applied as one composite comparison).
  if (!select.orders().empty()) {
    std::vector<std::pair<std::size_t, bool>> keys;
    for (const auto& order : select.orders()) {
      const auto idx = result.column_index(order.column);
      if (!idx) {
        throw DbError("order by: column '" + order.column +
                      "' not in result set");
      }
      keys.emplace_back(*idx, order.descending);
    }
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (const auto& [idx, desc] : keys) {
                         const auto ord = a[idx].compare(b[idx]);
                         if (ord == std::partial_ordering::less) return !desc;
                         if (ord == std::partial_ordering::greater) return desc;
                       }
                       return false;
                     });
  }

  // 7. LIMIT.
  if (select.row_limit() && result.rows.size() > *select.row_limit()) {
    result.rows.resize(*select.row_limit());
  }
  return result;
}

std::optional<Value> StorageShard::scalar(const Select& select) const {
  const ResultSet rs = execute(select);
  if (rs.rows.empty() || rs.rows.front().empty()) return std::nullopt;
  return rs.rows.front().front();
}

}  // namespace stampede::db
