#include "db/database.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "common/errors.hpp"
#include "common/string_utils.hpp"
#include "db/aggregate.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::db {

using common::DbError;

// ---------------------------------------------------------------------------
// Schema

void StorageShard::create_table(TableDef def) {
  const WriteGuard guard{*this};
  const std::string name = def.name;
  if (tables_.find(name) != tables_.end()) {
    throw DbError("create_table: table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(std::move(def));
  if (pk_step_ != 1) table->set_auto_increment(1 + pk_offset_, pk_step_);
  tables_.emplace(name, std::move(table));
}

void StorageShard::set_pk_allocation(std::int64_t offset, std::int64_t step) {
  const WriteGuard guard{*this};
  if (step < 1 || offset < 0 || offset >= step) {
    throw DbError("set_pk_allocation: need 0 <= offset < step");
  }
  pk_offset_ = offset;
  pk_step_ = step;
  for (auto& [name, table] : tables_) {
    table->set_auto_increment(1 + offset, step);
  }
}

void StorageShard::set_commit_latency_sink(telemetry::Histogram* sink) {
  const WriteGuard guard{*this};
  commit_latency_ = sink;
}

bool StorageShard::has_table(const std::string& name) const {
  const ReadGuard guard{*this};
  return tables_.find(name) != tables_.end();
}

std::vector<std::string> StorageShard::table_names() const {
  const ReadGuard guard{*this};
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

const TableDef& StorageShard::table_def(const std::string& name) const {
  const ReadGuard guard{*this};
  return table_ref(name).def();
}

std::uint64_t StorageShard::table_version(const std::string& name) const {
  const ReadGuard guard{*this};
  return table_ref(name).version();
}

std::vector<std::uint64_t> StorageShard::table_versions(
    const std::vector<std::string>& names) const {
  const ReadGuard guard{*this};
  std::vector<std::uint64_t> versions;
  versions.reserve(names.size());
  for (const auto& name : names) versions.push_back(table_ref(name).version());
  return versions;
}

Table& StorageShard::table_ref(const std::string& name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) throw DbError("unknown table '" + name + "'");
  return *it->second;
}

const Table& StorageShard::table_ref(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) throw DbError("unknown table '" + name + "'");
  return *it->second;
}

// ---------------------------------------------------------------------------
// WAL serialization

namespace {

std::string wal_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '|') {
      out += "\\p";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string wal_unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      const char e = text[++i];
      if (e == 'p') {
        out.push_back('|');
      } else if (e == 'n') {
        out.push_back('\n');
      } else {
        out.push_back(e);
      }
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

std::string serialize_value(const Value& value) {
  if (value.is_null()) return "N";
  if (value.is_int()) return "I" + std::to_string(value.as_int());
  if (value.is_real()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "R%.17g", value.as_real());
    return buf;
  }
  return "S" + wal_escape(value.as_text());
}

Value deserialize_value(std::string_view text) {
  if (text.empty() || text == "N") return Value::null();
  const char tag = text.front();
  const std::string_view payload = text.substr(1);
  if (tag == 'I') {
    return Value{static_cast<std::int64_t>(
        std::strtoll(std::string{payload}.c_str(), nullptr, 10))};
  }
  if (tag == 'R') {
    return Value{std::strtod(std::string{payload}.c_str(), nullptr)};
  }
  if (tag == 'S') return Value{wal_unescape(payload)};
  throw DbError("WAL: bad value tag '" + std::string{text} + "'");
}

// Splits a WAL line on unescaped '|'.
std::vector<std::string> wal_fields(std::string_view line) {
  std::vector<std::string> out;
  std::string current;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      current.push_back(line[i]);
      current.push_back(line[i + 1]);
      ++i;
    } else if (line[i] == '|') {
      out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(line[i]);
    }
  }
  out.push_back(std::move(current));
  return out;
}

}  // namespace

void StorageShard::wal_write(const std::string& line) {
  if (wal_path_.empty() || replaying_) return;
  if (txn_active_) {
    wal_buffer_.push_back(line);
    return;
  }
  std::ofstream out{wal_path_, std::ios::app};
  if (out) out << line << '\n';
  if (wal_sink_) {
    std::string shipped = line;
    shipped += '\n';
    wal_sink_(shipped);
  }
}

void StorageShard::set_wal_sink(WalSink sink) {
  const WriteGuard guard{*this};
  wal_sink_ = std::move(sink);
}

// ---------------------------------------------------------------------------
// Change capture (change.hpp)

void StorageShard::set_change_sink(ChangeSink sink,
                                   std::vector<std::string> tables,
                                   std::size_t shard_ordinal) {
  std::uint64_t fence = 0;
  {
    const WriteGuard guard{*this};
    change_sink_ = std::move(sink);
    capture_tables_ = {tables.begin(), tables.end()};
    shard_ordinal_ = shard_ordinal;
    change_buffer_.clear();
    fence = delivery_ticket_;
  }
  // Deliveries already staged hold a copy of the previous sink; wait
  // for them so a caller detaching (sink = nullptr) may safely destroy
  // whatever that sink pointed at once this returns.
  std::unique_lock lock{delivery_mutex_};
  delivery_cv_.wait(lock, [&] { return delivery_next_ >= fence; });
}

void StorageShard::for_each_row(
    const std::string& table,
    const std::function<void(RowId, const Row&)>& fn) const {
  const ReadGuard guard{*this};
  table_ref(table).scan(fn);
}

bool StorageShard::capturing(const std::string& table) const {
  return change_sink_ && !replaying_ &&
         (capture_tables_.empty() || capture_tables_.count(table) != 0);
}

void StorageShard::capture(RowChange::Kind kind, const std::string& table,
                           RowId row_id, Row before, Row after) {
  change_buffer_.push_back(
      {kind, table, row_id, std::move(before), std::move(after)});
}

StorageShard::StagedDelivery StorageShard::stage_delivery() {
  StagedDelivery staged;
  if (!change_sink_ || change_buffer_.empty()) {
    change_buffer_.clear();
    return staged;
  }
  staged.armed = true;
  staged.ticket = delivery_ticket_++;
  staged.batch.shard = shard_ordinal_;
  staged.batch.commit_time = std::chrono::steady_clock::now();
  staged.batch.changes = std::move(change_buffer_);
  change_buffer_.clear();
  staged.sink = change_sink_;
  return staged;
}

void StorageShard::deliver(StagedDelivery&& staged) {
  if (!staged.armed) return;
  std::unique_lock lock{delivery_mutex_};
  delivery_cv_.wait(lock, [&] { return delivery_next_ == staged.ticket; });
  try {
    staged.sink(staged.batch);
  } catch (...) {
    // A throwing sink must not wedge the ticket sequence (every later
    // delivery would park forever). Swallow; sinks own their errors.
  }
  ++delivery_next_;
  lock.unlock();
  delivery_cv_.notify_all();
}

template <typename Fn>
auto StorageShard::write_entry(Fn&& fn) -> decltype(fn()) {
  StagedDelivery staged;
  decltype(fn()) out;
  {
    const WriteGuard guard{*this};
    try {
      out = fn();
    } catch (...) {
      // Autocommit path: the statement failed part-way, nothing commits
      // beyond what the statement already applied — captured changes for
      // the applied part would mislead sinks, drop them. (Inside a
      // transaction rollback() clears the buffer instead.)
      if (!txn_active_) change_buffer_.clear();
      throw;
    }
    if (!txn_active_) staged = stage_delivery();
  }
  deliver(std::move(staged));
  return out;
}

// ---------------------------------------------------------------------------
// DML

std::int64_t StorageShard::insert(const std::string& table,
                                  const NamedValues& values) {
  return write_entry([&] { return insert_unlocked(table, values); });
}

std::int64_t StorageShard::insert_unlocked(const std::string& table,
                                           const NamedValues& values) {
  Table& t = table_ref(table);
  const TableDef& def = t.def();
  Row row(def.columns.size(), Value::null());
  for (const auto& [name, value] : values) {
    const auto col = def.column_index(name);
    if (!col) {
      throw DbError("insert into " + table + ": unknown column '" + name +
                    "'");
    }
    row[*col] = value;
  }
  const auto result = t.insert(std::move(row));
  if (txn_active_) {
    undo_log_.push_back({UndoOp::Kind::kInsert, table, result.row_id, {}});
  }
  if (capturing(table)) {
    capture(RowChange::Kind::kInsert, table, result.row_id, {},
            *t.fetch(result.row_id));
  }
  if (!wal_path_.empty() && !replaying_) {
    const Row* stored = t.fetch(result.row_id);
    std::string line = "I|" + wal_escape(table);
    for (const auto& value : *stored) {
      line += '|';
      line += serialize_value(value);
    }
    wal_write(line);
  }
  return result.pk;
}

std::size_t StorageShard::update(const std::string& table,
                                 const ExprPtr& predicate,
                                 const NamedValues& sets) {
  return write_entry([&] { return update_unlocked(table, predicate, sets); });
}

std::size_t StorageShard::update_unlocked(const std::string& table,
                                          const ExprPtr& predicate,
                                          const NamedValues& sets) {
  Table& t = table_ref(table);
  const TableDef& def = t.def();

  std::vector<RowId> targets;
  t.scan([&](RowId id, const Row& row) {
    if (!predicate || evaluate(*predicate, [&](const std::string& col) {
          const auto ci = def.column_index(col);
          if (!ci) throw DbError("update " + table + ": unknown column " + col);
          return row[*ci];
        })) {
      targets.push_back(id);
    }
  });

  const auto pk_col = def.column_index(def.primary_key);
  for (const RowId id : targets) {
    const Row before = *t.fetch(id);
    t.update(id, sets);
    if (txn_active_) {
      undo_log_.push_back({UndoOp::Kind::kUpdate, table, id, before});
    }
    if (capturing(table)) {
      capture(RowChange::Kind::kUpdate, table, id, before, *t.fetch(id));
    }
    if (!wal_path_.empty() && !replaying_) {
      // Address the row by PK when available so replay is robust to slot
      // drift from rolled-back inserts.
      std::string line = "U|" + wal_escape(table) + '|';
      line += pk_col ? serialize_value(before[*pk_col])
                     : serialize_value(Value{id});
      for (const auto& [name, value] : sets) {
        line += '|';
        line += wal_escape(name);
        line += '|';
        line += serialize_value(value);
      }
      wal_write(line);
    }
  }
  return targets.size();
}

bool StorageShard::update_pk(const std::string& table, std::int64_t pk,
                             const NamedValues& sets) {
  return write_entry([&] { return update_pk_unlocked(table, pk, sets); });
}

bool StorageShard::update_pk_unlocked(const std::string& table,
                                      std::int64_t pk,
                                      const NamedValues& sets) {
  Table& t = table_ref(table);
  const auto slot = t.find_pk(Value{pk});
  if (!slot) return false;
  const Row before = *t.fetch(*slot);
  t.update(*slot, sets);
  if (txn_active_) {
    undo_log_.push_back({UndoOp::Kind::kUpdate, table, *slot, before});
  }
  if (capturing(table)) {
    capture(RowChange::Kind::kUpdate, table, *slot, before, *t.fetch(*slot));
  }
  if (!wal_path_.empty() && !replaying_) {
    std::string line = "U|" + wal_escape(table) + '|';
    line += serialize_value(Value{pk});
    for (const auto& [name, value] : sets) {
      line += '|';
      line += wal_escape(name);
      line += '|';
      line += serialize_value(value);
    }
    wal_write(line);
  }
  return true;
}

std::size_t StorageShard::delete_rows(const std::string& table,
                                      const ExprPtr& predicate) {
  return write_entry([&] { return delete_rows_unlocked(table, predicate); });
}

std::size_t StorageShard::delete_rows_unlocked(const std::string& table,
                                               const ExprPtr& predicate) {
  Table& t = table_ref(table);
  const TableDef& def = t.def();
  std::vector<RowId> targets;
  t.scan([&](RowId id, const Row& row) {
    if (!predicate || evaluate(*predicate, [&](const std::string& col) {
          const auto ci = def.column_index(col);
          if (!ci) throw DbError("delete " + table + ": unknown column " + col);
          return row[*ci];
        })) {
      targets.push_back(id);
    }
  });
  const auto pk_col = def.column_index(def.primary_key);
  for (const RowId id : targets) {
    const Row before = *t.fetch(id);
    t.erase(id);
    if (txn_active_) {
      undo_log_.push_back({UndoOp::Kind::kDelete, table, id, before});
    }
    if (capturing(table)) {
      capture(RowChange::Kind::kDelete, table, id, before, {});
    }
    if (!wal_path_.empty() && !replaying_) {
      std::string line = "D|" + wal_escape(table) + '|';
      line += pk_col ? serialize_value(before[*pk_col])
                     : serialize_value(Value{id});
      wal_write(line);
    }
  }
  return targets.size();
}

std::size_t StorageShard::row_count(const std::string& table) const {
  const ReadGuard guard{*this};
  return table_ref(table).row_count();
}

// ---------------------------------------------------------------------------
// Transactions

void StorageShard::begin() {
  if (txn_owner_.load(std::memory_order_relaxed) ==
      std::this_thread::get_id()) {
    throw DbError("begin: transaction already active");
  }
  std::unique_lock lock{mutex_};
  if (txn_active_) throw DbError("begin: transaction already active");
  txn_active_ = true;
  undo_log_.clear();
  wal_buffer_.clear();
  change_buffer_.clear();
  if (commit_latency_) txn_begin_time_ = std::chrono::steady_clock::now();
  txn_owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  txn_lock_ = std::move(lock);
}

void StorageShard::commit() {
  if (txn_owner_.load(std::memory_order_relaxed) !=
      std::this_thread::get_id()) {
    throw DbError("commit: no active transaction");
  }
  // Adopt the transaction's exclusive lock; released at block end,
  // making the whole batch visible to readers at once. The change
  // delivery runs after that release (sinks may read the shard) but
  // takes its ticket before it, so sinks still see batches in commit
  // order.
  StagedDelivery staged;
  {
    const std::unique_lock lock{std::move(txn_lock_)};
    txn_owner_.store(std::thread::id{}, std::memory_order_relaxed);
    txn_active_ = false;
    undo_log_.clear();
    if (!wal_path_.empty() && !wal_buffer_.empty()) {
      // One concatenation serves both the local append and the
      // replication sink, so the shipped bytes are exactly the bytes on
      // disk (byte-offset bookkeeping on both ends stays trivial).
      std::string batch;
      for (const auto& line : wal_buffer_) {
        batch += line;
        batch += '\n';
      }
      std::ofstream out{wal_path_, std::ios::app};
      if (out) out << batch;
      if (wal_sink_) wal_sink_(batch);
    }
    wal_buffer_.clear();
    if (commit_latency_) {
      commit_latency_->observe(std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   txn_begin_time_)
                                   .count());
    }
    staged = stage_delivery();
  }
  deliver(std::move(staged));
}

void StorageShard::rollback() {
  if (txn_owner_.load(std::memory_order_relaxed) !=
      std::this_thread::get_id()) {
    throw DbError("rollback: no active transaction");
  }
  const std::unique_lock lock{std::move(txn_lock_)};
  txn_owner_.store(std::thread::id{}, std::memory_order_relaxed);
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    Table& t = table_ref(it->table);
    switch (it->kind) {
      case UndoOp::Kind::kInsert:
        t.erase(it->row_id);
        break;
      case UndoOp::Kind::kUpdate:
        t.raw_replace(it->row_id, std::move(it->before));
        break;
      case UndoOp::Kind::kDelete:
        t.raw_revive(it->row_id, std::move(it->before));
        break;
    }
  }
  undo_log_.clear();
  wal_buffer_.clear();
  change_buffer_.clear();  // Rolled-back changes are never delivered.
  txn_active_ = false;
}

bool StorageShard::in_transaction() const {
  if (txn_owner_.load(std::memory_order_relaxed) ==
      std::this_thread::get_id()) {
    return true;
  }
  const ReadGuard guard{*this};
  return txn_active_;
}

std::size_t StorageShard::recover() {
  const WriteGuard guard{*this};
  if (wal_path_.empty()) return 0;
  std::ifstream in{wal_path_};
  if (!in) return 0;
  replaying_ = true;
  std::size_t applied = 0;
  std::string line;

  const auto apply_line = [&](const std::string& text) {
    const auto fields = wal_fields(text);
    if (fields.size() < 2) return;
    const std::string& op = fields[0];
    const std::string table = wal_unescape(fields[1]);
    Table& t = table_ref(table);
    const TableDef& def = t.def();
    if (op == "I") {
      Row row;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        row.push_back(deserialize_value(fields[i]));
      }
      t.insert(std::move(row));
      ++applied;
    } else if (op == "U" && fields.size() >= 3) {
      const Value key = deserialize_value(fields[2]);
      NamedValues sets;
      for (std::size_t i = 3; i + 1 < fields.size(); i += 2) {
        sets.emplace_back(wal_unescape(fields[i]),
                          deserialize_value(fields[i + 1]));
      }
      std::optional<RowId> target = def.primary_key.empty()
                                        ? std::optional<RowId>{key.as_int()}
                                        : t.find_pk(key);
      if (target) {
        t.update(*target, sets);
        ++applied;
      }
    } else if (op == "D" && fields.size() >= 3) {
      const Value key = deserialize_value(fields[2]);
      std::optional<RowId> target = def.primary_key.empty()
                                        ? std::optional<RowId>{key.as_int()}
                                        : t.find_pk(key);
      if (target) {
        t.erase(*target);
        ++applied;
      }
    }
  };

  try {
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        apply_line(line);
      } catch (const std::exception& e) {
        // A record that fails to apply is either the torn final line a
        // crash mid-append left behind (tolerated: discard it) or
        // corruption in the middle of the log (fatal). Distinguish by
        // whether any further non-empty record follows.
        bool more = false;
        std::string rest;
        while (std::getline(in, rest)) {
          if (!rest.empty()) {
            more = true;
            break;
          }
        }
        if (more) throw;
        ++wal_truncated_;
        telemetry::registry()
            .counter("stampede_db_wal_truncated_records_total")
            .inc();
        std::fprintf(
            stderr,
            "stampede-db: WAL %s: discarded truncated trailing record (%s)\n",
            wal_path_.c_str(), e.what());
        break;
      }
    }
  } catch (...) {
    replaying_ = false;
    throw;
  }
  replaying_ = false;
  return applied;
}

std::uint64_t StorageShard::wal_truncated_records() const {
  const ReadGuard guard{*this};
  return wal_truncated_;
}

// ---------------------------------------------------------------------------
// Columnar compaction (DESIGN.md §15)

StorageShard::CompactStats StorageShard::compact(const SealOptions& opts) {
  const WriteGuard guard{*this};
  CompactStats stats;
  for (auto& [name, table] : tables_) {
    const SealStats sealed = table->seal(opts);
    stats.segments_built += sealed.segments_built;
    stats.rows_sealed += sealed.rows_sealed;
    stats.tombstones_reclaimed += sealed.tombstones_reclaimed;
  }
  if (stats.segments_built > 0) {
    telemetry::registry()
        .counter("stampede_segment_seals_total")
        .inc(stats.segments_built);
    telemetry::registry()
        .counter("stampede_segment_sealed_rows_total")
        .inc(stats.rows_sealed);
  }
  if (stats.tombstones_reclaimed > 0) {
    telemetry::registry()
        .counter("stampede_segment_tombstones_reclaimed_total")
        .inc(stats.tombstones_reclaimed);
  }
  return stats;
}

std::vector<StorageShard::TableCounts> StorageShard::table_counts() const {
  const ReadGuard guard{*this};
  std::vector<TableCounts> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    out.push_back({name, table->row_count(), table->dead_count(),
                   table->column_store().sealed_rows()});
  }
  return out;
}

bool StorageShard::checkpoint_wal() {
  const WriteGuard guard{*this};
  if (wal_path_.empty() || txn_active_ || wal_sink_) return false;
  // Snapshot of the live rows as plain insert records, tables in map
  // order, rows in ascending RowId order — exactly what replay needs.
  std::string snapshot;
  for (const auto& [name, table] : tables_) {
    const std::string escaped = wal_escape(name);
    table->scan([&](RowId, const Row& row) {
      snapshot += "I|";
      snapshot += escaped;
      for (const auto& value : row) {
        snapshot += '|';
        snapshot += serialize_value(value);
      }
      snapshot += '\n';
    });
  }
  const std::string tmp = wal_path_ + ".ckpt";
  {
    std::ofstream out{tmp, std::ios::trunc};
    if (!out) return false;
    out << snapshot;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), wal_path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  telemetry::registry().counter("stampede_db_wal_checkpoints_total").inc();
  return true;
}

// ---------------------------------------------------------------------------
// Query executor

namespace {

/// One source in the FROM/JOIN chain with its flat column offset.
struct Source {
  std::string alias;
  const Table* table = nullptr;
  std::size_t offset = 0;  ///< First flat column index of this source.
};

/// Maps (possibly qualified) column names to flat indexes over the
/// concatenated wide row.
class ColumnMap {
 public:
  explicit ColumnMap(const std::vector<Source>& sources) {
    for (const auto& source : sources) {
      const auto& cols = source.table->def().columns;
      for (std::size_t i = 0; i < cols.size(); ++i) {
        const std::size_t flat = source.offset + i;
        qualified_.emplace(source.alias + "." + cols[i].name, flat);
        const auto [it, inserted] = unqualified_.emplace(cols[i].name, flat);
        if (!inserted) it->second = kAmbiguous;
      }
    }
  }

  /// Flat index of `name`; nullopt when unknown or ambiguous.
  [[nodiscard]] std::optional<std::size_t> try_resolve(
      const std::string& name) const {
    const auto q = qualified_.find(name);
    if (q != qualified_.end()) return q->second;
    const auto u = unqualified_.find(name);
    if (u == unqualified_.end() || u->second == kAmbiguous) {
      return std::nullopt;
    }
    return u->second;
  }

  [[nodiscard]] std::size_t resolve(const std::string& name) const {
    const auto q = qualified_.find(name);
    if (q != qualified_.end()) return q->second;
    const auto u = unqualified_.find(name);
    if (u == unqualified_.end()) {
      throw DbError("query: unknown column '" + name + "'");
    }
    if (u->second == kAmbiguous) {
      throw DbError("query: ambiguous column '" + name +
                    "' — qualify with a table alias");
    }
    return u->second;
  }

 private:
  static constexpr std::size_t kAmbiguous = static_cast<std::size_t>(-1);
  std::unordered_map<std::string, std::size_t> qualified_;
  std::unordered_map<std::string, std::size_t> unqualified_;
};

/// Collects top-level equality conjuncts usable as index probes on the
/// base table.
void collect_eq_conjuncts(const Expr& expr,
                          std::vector<const Expr*>& out) {
  if (expr.kind == Expr::Kind::kAnd) {
    for (const auto& child : expr.children) {
      collect_eq_conjuncts(*child, out);
    }
    return;
  }
  if (expr.kind == Expr::Kind::kCompareLiteral && expr.op == CompareOp::kEq) {
    out.push_back(&expr);
  }
}

/// Every column name mentioned anywhere in the expression tree.
void collect_expr_columns(const Expr& expr, std::vector<std::string>& out) {
  if (!expr.column.empty()) out.push_back(expr.column);
  if (!expr.column_rhs.empty()) out.push_back(expr.column_rhs);
  for (const auto& child : expr.children) collect_expr_columns(*child, out);
}

// Aggregator moved to db/aggregate.hpp: the continuous-view engine
// (query/continuous_views.cpp) must fold through the identical
// arithmetic to keep views byte-identical to re-execution.

/// Planner-choice counters (asserted by tests/test_concurrent_queries).
struct PlanCounters {
  telemetry::Counter& base_index =
      telemetry::registry().counter("stampede_db_plan_base_index_total");
  telemetry::Counter& base_scan =
      telemetry::registry().counter("stampede_db_plan_base_scan_total");
  telemetry::Counter& index_join =
      telemetry::registry().counter("stampede_db_plan_index_join_total");
  telemetry::Counter& hash_join =
      telemetry::registry().counter("stampede_db_plan_hash_join_total");
  telemetry::Counter& join_pushdown =
      telemetry::registry().counter("stampede_db_plan_join_pushdown_total");
  telemetry::Counter& columnar =
      telemetry::registry().counter("stampede_db_plan_columnar_total");
  telemetry::Counter& segment_scans =
      telemetry::registry().counter("stampede_segment_scans_total");
  telemetry::Counter& segment_prunes =
      telemetry::registry().counter("stampede_segment_prunes_total");
  telemetry::Counter& segment_range_probes =
      telemetry::registry().counter("stampede_segment_range_probes_total");
};

PlanCounters& plan_counters() {
  static PlanCounters counters;
  return counters;
}

/// Per-thread snapshot of the running query's planner choices; queries
/// never span threads, so thread_local gives race-free attribution.
thread_local PlanInfo g_last_plan;

/// Left rows at or below this count take the index-nested-loop join
/// (O(left · log right) probes) instead of building a hash of the whole
/// right table.
constexpr std::size_t kIndexJoinMaxProbe = 64;

struct GroupKeyHash {
  std::size_t operator()(const Row* row) const noexcept {
    return group_rows_hash(*row, row->size());
  }
};

struct GroupKeyEq {
  bool operator()(const Row* a, const Row* b) const noexcept {
    return a->size() == b->size() && group_rows_equal(*a, *b, a->size());
  }
};

}  // namespace

const PlanInfo& last_plan_info() noexcept { return g_last_plan; }

ResultSet StorageShard::execute(const Select& select) const {
  const ReadGuard guard{*this};
  return execute_unlocked(select);
}

ResultSet StorageShard::execute_unlocked(const Select& select) const {
  g_last_plan = {};
  // Columnar fast path: a single-source query over a table with sealed
  // segments takes the vectorized scan (segment.cpp) when its shape is
  // supported; results are byte-identical to the row path below, so the
  // two are interchangeable mid-workload.
  if (select.joins().empty()) {
    const Table& base = table_ref(select.table());
    if (!base.column_store().empty()) {
      if (auto columnar = execute_columnar(base, select, g_last_plan)) {
        PlanCounters& counters = plan_counters();
        counters.columnar.inc();
        if (g_last_plan.segments_scanned > 0) {
          counters.segment_scans.inc(g_last_plan.segments_scanned);
        }
        if (g_last_plan.segments_pruned > 0) {
          counters.segment_prunes.inc(g_last_plan.segments_pruned);
        }
        if (g_last_plan.range_index_probes > 0) {
          counters.segment_range_probes.inc(g_last_plan.range_index_probes);
        }
        return std::move(*columnar);
      }
    }
  }
  // Assemble the source chain and the flat column map.
  std::vector<Source> sources;
  {
    const Table& base = table_ref(select.table());
    sources.push_back({select.alias(), &base, 0});
    std::size_t offset = base.def().columns.size();
    for (const auto& join : select.joins()) {
      const Table& t = table_ref(join.table);
      sources.push_back({join.alias, &t, offset});
      offset += t.def().columns.size();
    }
  }
  const ColumnMap columns{sources};
  const std::size_t total_width =
      sources.back().offset + sources.back().table->def().columns.size();

  // Planner: flat columns the query actually reads (projection, groups,
  // aggregates, predicate, join keys). Everything else is materialized
  // as NULL in the wide rows, so aggregate-only queries over joins stop
  // copying every text column. Empty mask = keep every column
  // (SELECT *, or a name the residual evaluator must diagnose itself).
  std::vector<char> needed;
  if (!select.selected().empty() || !select.aggs().empty() ||
      !select.groups().empty()) {
    needed.assign(total_width, 0);
    const auto mark = [&](const std::string& name) {
      const auto flat = columns.try_resolve(name);
      if (flat) {
        needed[*flat] = 1;
      } else {
        // Unknown/ambiguous: disable pruning so the error (or the
        // residual evaluation) surfaces exactly where it always did.
        needed.clear();
      }
    };
    for (const auto& name : select.selected()) {
      if (needed.empty()) break;
      mark(name);
    }
    for (const auto& g : select.groups()) {
      if (needed.empty()) break;
      mark(g);
    }
    for (const auto& spec : select.aggs()) {
      if (needed.empty()) break;
      if (!spec.column.empty()) mark(spec.column);
    }
    if (!needed.empty() && select.predicate()) {
      std::vector<std::string> pred_cols;
      collect_expr_columns(*select.predicate(), pred_cols);
      for (const auto& name : pred_cols) {
        if (needed.empty()) break;
        mark(name);
      }
    }
    for (std::size_t j = 0; !needed.empty() && j < select.joins().size();
         ++j) {
      const JoinSpec& join = select.joins()[j];
      // The left key resolves against the sources joined so far; the
      // right key lives at a known offset.
      std::vector<Source> left_sources(
          sources.begin(),
          sources.begin() + static_cast<std::ptrdiff_t>(j + 1));
      const ColumnMap left_columns{left_sources};
      const auto left_flat = left_columns.try_resolve(join.left_col);
      if (left_flat) {
        needed[*left_flat] = 1;
      } else {
        needed.clear();
        break;
      }
      const auto right_col =
          sources[j + 1].table->def().column_index(join.right_col);
      if (right_col) {
        needed[sources[j + 1].offset + *right_col] = 1;
      } else {
        needed.clear();
        break;
      }
    }
  }
  const auto column_needed = [&](std::size_t flat) {
    return needed.empty() || needed[flat] != 0;
  };

  // 1. Base rows — use an index probe when a top-level equality conjunct
  //    targets an indexed base-table column.
  std::vector<Row> wide;
  {
    const Table& base = *sources[0].table;
    std::vector<RowId> candidates;
    bool used_index = false;
    if (select.predicate()) {
      std::vector<const Expr*> eqs;
      collect_eq_conjuncts(*select.predicate(), eqs);
      for (const Expr* e : eqs) {
        // Accept "col" or "<base alias>.col".
        std::string name = e->column;
        const std::string prefix = sources[0].alias + ".";
        if (common::starts_with(name, prefix)) {
          name = name.substr(prefix.size());
        } else if (name.find('.') != std::string::npos) {
          continue;  // Qualified with some join alias.
        }
        // nullopt = no index on this column (try the next conjunct); an
        // engaged empty vector is a real "no matching rows" answer.
        if (auto probe = base.index_lookup(name, e->literal)) {
          candidates = std::move(*probe);
          // Secondary indexes hand ids back in index order; scan order
          // (ascending RowId) keeps every plan's row enumeration — and
          // with it GROUP BY first-occurrence order — identical.
          std::sort(candidates.begin(), candidates.end());
          used_index = true;
          break;
        }
      }
    }
    auto add_row = [&](const Row& row) {
      Row w;
      w.reserve(row.size());
      for (std::size_t i = 0; i < row.size(); ++i) {
        w.push_back(column_needed(i) ? row[i] : Value::null());
      }
      wide.push_back(std::move(w));
    };
    if (used_index) {
      plan_counters().base_index.inc();
      ++g_last_plan.base_index;
      for (const RowId id : candidates) {
        if (const Row* row = base.fetch(id)) add_row(*row);
      }
    } else {
      plan_counters().base_scan.inc();
      ++g_last_plan.base_scan;
      base.scan([&](RowId, const Row& row) { add_row(row); });
    }
  }

  // 2. Joins, left to right. Each join may have an equality conjunct
  //    pushed down onto the joined table (narrowing the build side via
  //    its secondary index when one exists); small probe sides take an
  //    index-nested-loop instead of building a hash at all. The full
  //    predicate is still applied afterwards (step 3), so pushdown only
  //    ever narrows.
  for (std::size_t j = 0; j < select.joins().size(); ++j) {
    const JoinSpec& join = select.joins()[j];
    const Source& source = sources[j + 1];
    const Table& right = *source.table;
    const auto right_col = right.def().column_index(join.right_col);
    if (!right_col) {
      throw DbError("join: unknown column '" + join.right_col + "' on " +
                    join.table);
    }
    const std::size_t right_width = right.def().columns.size();

    // Equality conjunct on this joined table, if any — prefer one whose
    // column is indexed.
    const Expr* filter = nullptr;
    std::optional<std::size_t> filter_col;
    bool filter_indexed = false;
    if (select.predicate()) {
      std::vector<const Expr*> eqs;
      collect_eq_conjuncts(*select.predicate(), eqs);
      for (const Expr* e : eqs) {
        std::string name = e->column;
        const std::string prefix = source.alias + ".";
        if (common::starts_with(name, prefix)) {
          name = name.substr(prefix.size());
        } else if (name.find('.') != std::string::npos) {
          continue;  // Another source's alias.
        } else {
          const auto flat = columns.try_resolve(name);
          if (!flat || *flat < source.offset ||
              *flat >= source.offset + right_width) {
            continue;
          }
        }
        const auto ci = right.def().column_index(name);
        if (!ci) continue;
        const bool indexed = right.has_index(name);
        if (!filter || (indexed && !filter_indexed)) {
          filter = e;
          filter_col = ci;
          filter_indexed = indexed;
          if (filter_indexed) break;
        }
      }
    }
    const auto filter_pass = [&](const Row& row) {
      return !filter || compare_values(row[*filter_col], CompareOp::kEq,
                                       filter->literal);
    };

    // Probe side: the left column resolves against the columns joined so
    // far (all sources with offset < source.offset).
    std::vector<Source> left_sources(sources.begin(),
                                     sources.begin() +
                                         static_cast<std::ptrdiff_t>(j + 1));
    const ColumnMap left_columns{left_sources};
    const std::size_t left_index = left_columns.resolve(join.left_col);

    const auto append_right = [&](Row& w, const Row& match) {
      for (std::size_t i = 0; i < right_width; ++i) {
        w.push_back(column_needed(source.offset + i) ? match[i]
                                                     : Value::null());
      }
    };

    std::vector<Row> joined;
    joined.reserve(wide.size());

    if (right.has_index(join.right_col) &&
        wide.size() <= kIndexJoinMaxProbe) {
      // Index-nested-loop: probe the join index per left row.
      plan_counters().index_join.inc();
      ++g_last_plan.index_joins;
      for (auto& left_row : wide) {
        const Value& key = left_row[left_index];
        std::vector<RowId> ids;
        if (!key.is_null()) {
          // Engaged by the has_index() branch condition above.
          ids = std::move(right.index_lookup(join.right_col, key).value());
          std::sort(ids.begin(), ids.end());
        }
        bool matched = false;
        for (const RowId id : ids) {
          const Row* match = right.fetch(id);
          if (!match || !filter_pass(*match)) continue;
          matched = true;
          Row w;
          w.reserve(left_row.size() + right_width);
          w.insert(w.end(), left_row.begin(), left_row.end());
          append_right(w, *match);
          joined.push_back(std::move(w));
        }
        if (!matched && join.left_outer) {
          Row w = std::move(left_row);
          w.resize(w.size() + right_width, Value::null());
          joined.push_back(std::move(w));
        }
      }
    } else {
      // Hash join; the pushed-down conjunct narrows the build side —
      // through the filter column's index when it has one.
      plan_counters().hash_join.inc();
      ++g_last_plan.hash_joins;
      std::unordered_map<Value, std::vector<const Row*>> build;
      const auto build_add = [&](const Row& row) {
        if (filter_pass(row) && !row[*right_col].is_null()) {
          build[row[*right_col]].push_back(&row);
        }
      };
      if (filter && filter_indexed) {
        plan_counters().join_pushdown.inc();
        ++g_last_plan.join_pushdowns;
        const std::string& filter_name =
            right.def().columns[*filter_col].name;
        // Engaged: filter_indexed was established via has_index().
        std::vector<RowId> ids =
            std::move(right.index_lookup(filter_name, filter->literal).value());
        std::sort(ids.begin(), ids.end());
        for (const RowId id : ids) {
          if (const Row* row = right.fetch(id)) build_add(*row);
        }
      } else {
        right.scan([&](RowId, const Row& row) { build_add(row); });
      }

      for (auto& left_row : wide) {
        const Value& key = left_row[left_index];
        const auto it = key.is_null() ? build.end() : build.find(key);
        if (it == build.end()) {
          if (join.left_outer) {
            Row w = std::move(left_row);
            w.resize(w.size() + right_width, Value::null());
            joined.push_back(std::move(w));
          }
          continue;
        }
        for (const Row* match : it->second) {
          Row w;
          w.reserve(left_row.size() + right_width);
          w.insert(w.end(), left_row.begin(), left_row.end());
          append_right(w, *match);
          joined.push_back(std::move(w));
        }
      }
    }
    wide = std::move(joined);
  }

  // 3. Residual filter (the full predicate — index probes and pushdowns
  //    above only narrowed the candidate set).
  if (select.predicate()) {
    std::vector<Row> filtered;
    filtered.reserve(wide.size());
    for (auto& row : wide) {
      const bool keep =
          evaluate(*select.predicate(), [&](const std::string& name) {
            return row[columns.resolve(name)];
          });
      if (keep) filtered.push_back(std::move(row));
    }
    wide = std::move(filtered);
  }

  ResultSet result;

  // 4. Aggregate or project.
  if (!select.groups().empty() || !select.aggs().empty()) {
    std::vector<std::size_t> group_cols;
    group_cols.reserve(select.groups().size());
    for (const auto& g : select.groups()) {
      group_cols.push_back(columns.resolve(g));
    }
    struct GroupState {
      Row key;
      std::vector<Aggregator> aggs;
    };
    // Insertion-ordered states in a deque (stable addresses), looked up
    // by hashed key rows — no serialized string key per input row.
    std::deque<GroupState> groups;
    std::unordered_map<const Row*, std::size_t, GroupKeyHash, GroupKeyEq>
        index_of;

    for (const auto& row : wide) {
      Row key;
      key.reserve(group_cols.size());
      for (const std::size_t c : group_cols) key.push_back(row[c]);
      auto it = index_of.find(&key);
      if (it == index_of.end()) {
        GroupState state;
        state.key = std::move(key);
        state.aggs.reserve(select.aggs().size());
        for (const auto& spec : select.aggs()) {
          Aggregator agg;
          agg.fn = spec.fn;
          state.aggs.push_back(agg);
        }
        groups.push_back(std::move(state));
        it = index_of.emplace(&groups.back().key, groups.size() - 1).first;
      }
      GroupState& state = groups[it->second];
      for (std::size_t a = 0; a < select.aggs().size(); ++a) {
        const AggSpec& spec = select.aggs()[a];
        if (spec.column.empty()) {
          state.aggs[a].feed_row();
        } else {
          state.aggs[a].feed(row[columns.resolve(spec.column)]);
        }
      }
    }
    // With aggregates but no groups and no input rows, SQL still emits
    // one row (e.g. COUNT(*) == 0).
    if (groups.empty() && select.groups().empty() && !select.aggs().empty()) {
      GroupState state;
      for (const auto& spec : select.aggs()) {
        Aggregator agg;
        agg.fn = spec.fn;
        state.aggs.push_back(agg);
      }
      groups.push_back(std::move(state));
    }

    for (const auto& g : select.groups()) result.columns.push_back(g);
    for (const auto& spec : select.aggs()) result.columns.push_back(spec.alias);
    result.rows.reserve(groups.size());
    for (auto& state : groups) {
      Row out = std::move(state.key);
      out.reserve(out.size() + state.aggs.size());
      for (const auto& agg : state.aggs) out.push_back(agg.result());
      result.rows.push_back(std::move(out));
    }
  } else {
    // Projection.
    std::vector<std::size_t> proj;
    if (select.selected().empty()) {
      for (const auto& source : sources) {
        const auto& cols = source.table->def().columns;
        for (std::size_t i = 0; i < cols.size(); ++i) {
          proj.push_back(source.offset + i);
          result.columns.push_back(sources.size() == 1
                                       ? cols[i].name
                                       : source.alias + "." + cols[i].name);
        }
      }
    } else {
      for (const auto& name : select.selected()) {
        proj.push_back(columns.resolve(name));
        result.columns.push_back(name);
      }
    }
    result.rows.reserve(wide.size());
    for (const auto& row : wide) {
      Row out;
      out.reserve(proj.size());
      for (const std::size_t c : proj) out.push_back(row[c]);
      result.rows.push_back(std::move(out));
    }
  }

  // 5. DISTINCT — dedup on hashed rows; pointers stay valid because
  //    `unique` never reallocates (reserved to the input size).
  if (select.is_distinct()) {
    std::unordered_set<const Row*, GroupKeyHash, GroupKeyEq> seen;
    seen.reserve(result.rows.size());
    std::vector<Row> unique;
    unique.reserve(result.rows.size());
    for (auto& row : result.rows) {
      if (seen.find(&row) != seen.end()) continue;
      unique.push_back(std::move(row));
      seen.insert(&unique.back());
    }
    result.rows = std::move(unique);
  }

  // 6–7. ORDER BY + LIMIT (bounded top-k when a limit is present).
  sort_and_limit(result, select.orders(), select.row_limit());
  return result;
}

std::optional<Value> StorageShard::scalar(const Select& select) const {
  const ReadGuard guard{*this};
  const ResultSet rs = execute_unlocked(select);
  if (rs.rows.empty() || rs.rows.front().empty()) return std::nullopt;
  return rs.rows.front().front();
}

}  // namespace stampede::db
