#pragma once
// The relational archive engine (SQLite substitute, DESIGN.md §2).
//
// A StorageShard is one self-contained partition of the archive: its own
// tables, undo log, write-ahead log file and reader-writer lock.
// `Database` is an alias for StorageShard: a one-shard archive, the
// original single-partition engine. ShardedDatabase (sharded_database.hpp)
// composes N of these behind a partition-routing facade.
//
// Locking discipline (DESIGN.md §10; same documentation contract as
// broker.hpp):
//   1. One writer-preferring reader-writer lock (db::SharedMutex — see
//      shared_mutex.hpp for why std::shared_mutex's reader preference
//      would starve the loader) per shard. Public read entry points
//      (execute, scalar, row_count, has_table, table_names, table_def,
//      table_version(s), in_transaction, wal_truncated_records) take a
//      shared lock, so any number of statistics / analyzer / dashboard
//      queries proceed concurrently against a shard; public write entry
//      points (create_table, set_pk_allocation, insert, update,
//      update_pk, delete_rows, recover) take the exclusive lock.
//   2. A transaction owns the exclusive lock for its whole begin() →
//      commit()/rollback() window (`txn_lock_`). Readers therefore see
//      either all of a committed batch or none of it — the snapshot
//      consistency stampede_statistics needs while a loader lane is
//      mid-flush. The owning thread is recorded in `txn_owner_`; its
//      own statement calls (and reads) pass straight through instead of
//      re-locking, which makes the re-entrancy the old recursive_mutex
//      papered over explicit. A transaction must begin and end on the
//      same thread; begin() from a second thread blocks until the open
//      transaction finishes.
//   3. Every public method is exactly guard + private `*_unlocked`
//      call; the `*_unlocked` internals assume the caller holds the
//      right lock and never lock themselves, so no path locks twice
//      (the lock is not recursive in either mode).
//   4. set_exclusive_reads(true) degrades reads to the exclusive lock —
//      the pre-overhaul single-mutex behaviour, kept selectable so
//      bench_read_while_load can A/B the two disciplines in one binary.
//
// Supports transactions with rollback via an undo log, and an optional
// write-ahead log file for crash recovery / reload.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "db/change.hpp"
#include "db/query.hpp"
#include "db/shared_mutex.hpp"
#include "db/table.hpp"

namespace stampede::telemetry {
class Histogram;
}  // namespace stampede::telemetry

namespace stampede::db {

/// Column-name/value pairs, the convenient insert/update currency.
using NamedValues = std::vector<std::pair<std::string, Value>>;

/// Planner choices made by the most recent execute() on this thread.
/// Reset at the start of every query; read by the query layer to attach
/// plan attributes to query spans and the slow-query log without
/// snapshotting the process-wide counters.
struct PlanInfo {
  std::uint64_t base_index = 0;     ///< Base rows fetched via index probe.
  std::uint64_t base_scan = 0;      ///< Base rows fetched via full scan.
  std::uint64_t index_joins = 0;    ///< Index-nested-loop joins taken.
  std::uint64_t hash_joins = 0;     ///< Hash joins taken.
  std::uint64_t join_pushdowns = 0; ///< Build sides narrowed via pushdown.
  std::uint64_t columnar = 0;           ///< Answered by the vectorized
                                        ///< segment-scan path (§15).
  std::uint64_t segments_scanned = 0;   ///< Segments scanned after pruning.
  std::uint64_t segments_pruned = 0;    ///< Segments skipped via zone maps.
  std::uint64_t range_index_probes = 0; ///< Sorted-column range probes.
};

/// The PlanInfo for the last execute() that ran on the calling thread.
[[nodiscard]] const PlanInfo& last_plan_info() noexcept;

class StorageShard {
 public:
  /// In-memory shard.
  StorageShard() = default;

  /// Shard backed by a write-ahead log: existing contents are
  /// replayed on open, subsequent committed writes are appended.
  /// Note: the schema must be recreated (create_table) before replay
  /// touches a table, so construct, create tables, then call recover().
  explicit StorageShard(std::string wal_path) : wal_path_(std::move(wal_path)) {}

  StorageShard(const StorageShard&) = delete;
  StorageShard& operator=(const StorageShard&) = delete;

  // -- schema -----------------------------------------------------------------

  /// Creates a table; throws common::DbError if the name exists.
  void create_table(TableDef def);

  [[nodiscard]] bool has_table(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;
  [[nodiscard]] const TableDef& table_def(const std::string& name) const;

  // -- partitioning -----------------------------------------------------------

  /// Configures primary-key striding for shard `offset` of `step` total:
  /// every table (existing and future) auto-assigns keys from the
  /// congruence class offset+1 mod step, so keys are globally unique
  /// across the shard set and (key-1) mod step recovers the owner.
  /// (0, 1) — the default — is the ordinary single-shard sequence.
  /// Must be called before any inserts.
  void set_pk_allocation(std::int64_t offset, std::int64_t step);

  /// Installs a per-shard commit-latency histogram (seconds from
  /// begin() to commit()); nullptr detaches. The histogram must outlive
  /// the shard (telemetry registry instruments do).
  void set_commit_latency_sink(telemetry::Histogram* sink);

  /// Forces read entry points onto the exclusive lock (the pre-§10
  /// serialized discipline). Benchmark-only; set before concurrent use.
  void set_exclusive_reads(bool on) noexcept {
    exclusive_reads_.store(on, std::memory_order_relaxed);
  }

  // -- change capture ---------------------------------------------------------

  /// Registers the shard's change sink (one per shard; empty detaches).
  /// After this returns, every committed write to a table in `tables`
  /// (empty = all tables) is delivered as a CommittedBatch — see
  /// change.hpp for the delivery contract. `shard_ordinal` is stamped
  /// into each batch (ShardedDatabase passes the shard index).
  void set_change_sink(ChangeSink sink, std::vector<std::string> tables = {},
                       std::size_t shard_ordinal = 0);

  /// Visits every live row of `table` in ascending RowId order under one
  /// shared lock (a consistent snapshot: no commit interleaves). The
  /// view engine's registration scan.
  void for_each_row(const std::string& table,
                    const std::function<void(RowId, const Row&)>& fn) const;

  // -- DML --------------------------------------------------------------------

  /// Inserts named values (missing columns become NULL / defaults).
  /// Returns the primary-key value assigned (or the row slot when the
  /// table has no declared PK).
  std::int64_t insert(const std::string& table, const NamedValues& values);

  /// Updates all rows matching `predicate`; returns the count updated.
  std::size_t update(const std::string& table, const ExprPtr& predicate,
                     const NamedValues& sets);

  /// Indexed single-row update by primary-key value; returns false when
  /// no such row exists. This is the loader's hot path (O(1) vs the
  /// predicate scan of update()).
  bool update_pk(const std::string& table, std::int64_t pk,
                 const NamedValues& sets);

  /// Deletes all rows matching `predicate`; returns the count deleted.
  std::size_t delete_rows(const std::string& table, const ExprPtr& predicate);

  /// Row count of a table.
  [[nodiscard]] std::size_t row_count(const std::string& table) const;

  // -- queries ------------------------------------------------------------------

  [[nodiscard]] ResultSet execute(const Select& select) const;

  /// Single-value convenience: first row/column of the result, or
  /// nullopt when the result is empty.
  [[nodiscard]] std::optional<Value> scalar(const Select& select) const;

  /// Monotonic per-table modification counter (bumped by every insert /
  /// update / delete / rollback step). Two equal observations bracket a
  /// window with no committed change — the version-keyed query cache
  /// (query::QueryExecutor) is built on this.
  [[nodiscard]] std::uint64_t table_version(const std::string& name) const;

  /// Versions of several tables under one shared lock (one consistent
  /// observation — no commit can interleave between the reads).
  [[nodiscard]] std::vector<std::uint64_t> table_versions(
      const std::vector<std::string>& names) const;

  // -- transactions ---------------------------------------------------------------

  /// Begins a transaction; holds the shard's exclusive lock until
  /// commit()/rollback() so readers never see a partial batch. A nested
  /// begin on the owning thread throws; a begin from another thread
  /// waits for the open transaction to finish.
  void begin();
  /// Commits (appends buffered WAL records) and releases the lock.
  void commit();
  /// Rolls back every change since begin() and releases the lock.
  void rollback();
  [[nodiscard]] bool in_transaction() const;

  // -- persistence ------------------------------------------------------------------

  /// Replays the WAL file (if configured and present). Call after the
  /// schema has been created. Returns the number of operations applied.
  /// A corrupt *final* record — the partial line a crash mid-append
  /// leaves behind — is discarded with a warning counter instead of
  /// failing recovery; corruption anywhere earlier still throws.
  std::size_t recover();

  /// Number of truncated trailing WAL records discarded by recover().
  [[nodiscard]] std::uint64_t wal_truncated_records() const;

  /// Receives every byte range appended to the WAL file (one call per
  /// autocommit line or per committed batch; `bytes` includes the
  /// trailing newlines). The cluster layer ships these to a follower
  /// replica. Invoked while the shard's exclusive lock is held, so the
  /// sink must not call back into the shard; empty detaches. The sink
  /// fires only for a WAL-backed shard (wal_path non-empty) and never
  /// during recover() replay.
  using WalSink = std::function<void(std::string_view bytes)>;
  void set_wal_sink(WalSink sink);

  // -- columnar compaction (segment.hpp, DESIGN.md §15) -----------------------

  struct CompactStats {
    std::size_t segments_built = 0;
    std::size_t rows_sealed = 0;
    std::size_t tombstones_reclaimed = 0;
  };

  /// Seals cold row ranges of every table into columnar segments under
  /// the exclusive lock (so it serializes with committing lanes exactly
  /// like any writer) and reclaims tombstoned payloads inside sealed
  /// ranges. Logical content is unchanged: table versions do not move,
  /// cached results stay valid, and no change-capture deltas fire.
  CompactStats compact(const SealOptions& opts = {});

  /// Live/dead row counts per table, one consistent observation (feeds
  /// the stampede_db_tombstones_total / stampede_db_live_rows gauges).
  struct TableCounts {
    std::string table;
    std::size_t live = 0;
    std::size_t dead = 0;
    std::size_t sealed = 0;  ///< Rows currently inside segments.
  };
  [[nodiscard]] std::vector<TableCounts> table_counts() const;

  /// Rewrites the WAL as a snapshot of the current live rows (atomic
  /// tmp+rename), bounding replay by table size instead of total write
  /// history. Returns false when skipped: not WAL-backed, a transaction
  /// is open, or a replication wal_sink is attached (followers track
  /// byte offsets into the append-only file, which a rewrite would
  /// break). Caveat: tables with no declared PK are addressed by RowId
  /// in U/D records, and a checkpoint compacts slots — like the
  /// pre-existing rolled-back-insert drift, this is only safe for
  /// insert-only PK-less tables (all of stampede's are).
  bool checkpoint_wal();

 private:
  /// Shared lock for a public read entry point — unless this thread
  /// owns the open transaction (txn_lock_ already excludes everyone
  /// else), or exclusive_reads_ degrades reads for the A/B bench.
  class ReadGuard {
   public:
    explicit ReadGuard(const StorageShard& shard) {
      if (shard.txn_owner_.load(std::memory_order_relaxed) ==
          std::this_thread::get_id()) {
        return;
      }
      if (shard.exclusive_reads_.load(std::memory_order_relaxed)) {
        exclusive_ = std::unique_lock{shard.mutex_};
      } else {
        shared_ = std::shared_lock{shard.mutex_};
      }
    }

   private:
    std::shared_lock<SharedMutex> shared_;
    std::unique_lock<SharedMutex> exclusive_;
  };

  /// Exclusive lock for a public write entry point — pass-through when
  /// this thread's open transaction already holds it.
  class WriteGuard {
   public:
    explicit WriteGuard(const StorageShard& shard) {
      if (shard.txn_owner_.load(std::memory_order_relaxed) ==
          std::this_thread::get_id()) {
        return;
      }
      lock_ = std::unique_lock{shard.mutex_};
    }

   private:
    std::unique_lock<SharedMutex> lock_;
  };

  Table& table_ref(const std::string& name);
  const Table& table_ref(const std::string& name) const;
  void wal_write(const std::string& line);

  /// One commit's worth of captured changes on its way out to the sink.
  struct StagedDelivery {
    bool armed = false;
    std::uint64_t ticket = 0;
    CommittedBatch batch;
    ChangeSink sink;
  };
  /// True when writes to `table` should be captured.
  [[nodiscard]] bool capturing(const std::string& table) const;
  /// Records one mutation into the capture buffer (caller checked
  /// capturing()).
  void capture(RowChange::Kind kind, const std::string& table, RowId row_id,
               Row before, Row after);
  /// Takes a delivery ticket and moves the capture buffer out. Must run
  /// while still holding the exclusive lock — the ticket order IS the
  /// commit order.
  StagedDelivery stage_delivery();
  /// Calls the sink once the staged ticket's turn comes. Must run with
  /// no shard lock held: a blocked predecessor would otherwise hold the
  /// lock across an arbitrary sink, and sinks are allowed to read the
  /// shard.
  void deliver(StagedDelivery&& staged);
  /// Guard + fn() + autocommit delivery: the shape of every public
  /// write entry point.
  template <typename Fn>
  auto write_entry(Fn&& fn) -> decltype(fn());

  std::int64_t insert_unlocked(const std::string& table,
                               const NamedValues& values);
  std::size_t update_unlocked(const std::string& table,
                              const ExprPtr& predicate,
                              const NamedValues& sets);
  bool update_pk_unlocked(const std::string& table, std::int64_t pk,
                          const NamedValues& sets);
  std::size_t delete_rows_unlocked(const std::string& table,
                                   const ExprPtr& predicate);
  [[nodiscard]] ResultSet execute_unlocked(const Select& select) const;

  struct UndoOp {
    enum class Kind { kInsert, kUpdate, kDelete };
    Kind kind = Kind::kInsert;
    std::string table;
    RowId row_id = 0;
    Row before;  ///< For update/delete.
  };

  mutable SharedMutex mutex_;
  /// Held for the whole lifetime of an open transaction; empty otherwise.
  std::unique_lock<SharedMutex> txn_lock_;
  /// Thread that called begin(); default id when no transaction is open.
  std::atomic<std::thread::id> txn_owner_{};
  std::atomic<bool> exclusive_reads_{false};

  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::string wal_path_;
  bool txn_active_ = false;
  bool replaying_ = false;
  std::vector<UndoOp> undo_log_;
  std::vector<std::string> wal_buffer_;  ///< Committed at commit().

  WalSink wal_sink_;
  std::int64_t pk_offset_ = 0;  ///< This shard's congruence class.
  std::int64_t pk_step_ = 1;    ///< Total shard count.
  std::uint64_t wal_truncated_ = 0;
  telemetry::Histogram* commit_latency_ = nullptr;
  std::chrono::steady_clock::time_point txn_begin_time_{};

  // Change capture (all guarded by the exclusive lock): the sink, the
  // table filter, the in-flight buffer and the next delivery ticket.
  ChangeSink change_sink_;
  std::set<std::string> capture_tables_;
  std::vector<RowChange> change_buffer_;
  std::size_t shard_ordinal_ = 0;
  std::uint64_t delivery_ticket_ = 0;
  // Ticketed hand-off: deliveries wait their turn here, outside the
  // shard lock, so sink calls serialize in commit order without ever
  // blocking a committer inside the lock.
  std::mutex delivery_mutex_;
  std::condition_variable delivery_cv_;
  std::uint64_t delivery_next_ = 0;  ///< Guarded by delivery_mutex_.
};

/// The single-partition archive: exactly one shard. Existing code built
/// against `Database` is untouched by the sharding refactor.
using Database = StorageShard;

}  // namespace stampede::db
