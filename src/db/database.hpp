#pragma once
// The relational archive engine (SQLite substitute, DESIGN.md §2).
//
// Thread-safe at the API level via one database mutex — the same
// serialized-writer model SQLite provides — which is exactly what the
// loader (single writer) + query tools (concurrent readers tolerating
// serialization) need. Supports transactions with rollback via an undo
// log, and an optional write-ahead log file for crash recovery / reload.

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "db/query.hpp"
#include "db/table.hpp"

namespace stampede::db {

/// Column-name/value pairs, the convenient insert/update currency.
using NamedValues = std::vector<std::pair<std::string, Value>>;

class Database {
 public:
  /// In-memory database.
  Database() = default;

  /// Database backed by a write-ahead log: existing contents are
  /// replayed on open, subsequent committed writes are appended.
  /// Note: the schema must be recreated (create_table) before replay
  /// touches a table, so construct, create tables, then call recover().
  explicit Database(std::string wal_path) : wal_path_(std::move(wal_path)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // -- schema -----------------------------------------------------------------

  /// Creates a table; throws common::DbError if the name exists.
  void create_table(TableDef def);

  [[nodiscard]] bool has_table(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;
  [[nodiscard]] const TableDef& table_def(const std::string& name) const;

  // -- DML --------------------------------------------------------------------

  /// Inserts named values (missing columns become NULL / defaults).
  /// Returns the primary-key value assigned (or the row slot when the
  /// table has no declared PK).
  std::int64_t insert(const std::string& table, const NamedValues& values);

  /// Updates all rows matching `predicate`; returns the count updated.
  std::size_t update(const std::string& table, const ExprPtr& predicate,
                     const NamedValues& sets);

  /// Indexed single-row update by primary-key value; returns false when
  /// no such row exists. This is the loader's hot path (O(1) vs the
  /// predicate scan of update()).
  bool update_pk(const std::string& table, std::int64_t pk,
                 const NamedValues& sets);

  /// Deletes all rows matching `predicate`; returns the count deleted.
  std::size_t delete_rows(const std::string& table, const ExprPtr& predicate);

  /// Row count of a table.
  [[nodiscard]] std::size_t row_count(const std::string& table) const;

  // -- queries ------------------------------------------------------------------

  [[nodiscard]] ResultSet execute(const Select& select) const;

  /// Single-value convenience: first row/column of the result, or
  /// nullopt when the result is empty.
  [[nodiscard]] std::optional<Value> scalar(const Select& select) const;

  // -- transactions ---------------------------------------------------------------

  /// Begins a transaction; nested begins throw.
  void begin();
  /// Commits (appends buffered WAL records).
  void commit();
  /// Rolls back every change since begin().
  void rollback();
  [[nodiscard]] bool in_transaction() const;

  // -- persistence ------------------------------------------------------------------

  /// Replays the WAL file (if configured and present). Call after the
  /// schema has been created. Returns the number of operations applied.
  std::size_t recover();

 private:
  Table& table_ref(const std::string& name);
  const Table& table_ref(const std::string& name) const;
  void wal_write(const std::string& line);

  struct UndoOp {
    enum class Kind { kInsert, kUpdate, kDelete };
    Kind kind = Kind::kInsert;
    std::string table;
    RowId row_id = 0;
    Row before;  ///< For update/delete.
  };

  mutable std::recursive_mutex mutex_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::string wal_path_;
  bool txn_active_ = false;
  bool replaying_ = false;
  std::vector<UndoOp> undo_log_;
  std::vector<std::string> wal_buffer_;  ///< Committed at commit().
};

}  // namespace stampede::db
