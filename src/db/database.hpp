#pragma once
// The relational archive engine (SQLite substitute, DESIGN.md §2).
//
// A StorageShard is one self-contained partition of the archive: its own
// tables, undo log, write-ahead log file and mutex. Thread-safe at the
// API level via one shard mutex — the same serialized-writer model
// SQLite provides — which is exactly what a loader lane (single writer)
// + query tools (concurrent readers tolerating serialization) need.
// Supports transactions with rollback via an undo log, and an optional
// write-ahead log file for crash recovery / reload.
//
// `Database` is an alias for StorageShard: a one-shard archive, the
// original single-partition engine. ShardedDatabase (sharded_database.hpp)
// composes N of these behind a partition-routing facade.

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "db/query.hpp"
#include "db/table.hpp"

namespace stampede::telemetry {
class Histogram;
}  // namespace stampede::telemetry

namespace stampede::db {

/// Column-name/value pairs, the convenient insert/update currency.
using NamedValues = std::vector<std::pair<std::string, Value>>;

class StorageShard {
 public:
  /// In-memory shard.
  StorageShard() = default;

  /// Shard backed by a write-ahead log: existing contents are
  /// replayed on open, subsequent committed writes are appended.
  /// Note: the schema must be recreated (create_table) before replay
  /// touches a table, so construct, create tables, then call recover().
  explicit StorageShard(std::string wal_path) : wal_path_(std::move(wal_path)) {}

  StorageShard(const StorageShard&) = delete;
  StorageShard& operator=(const StorageShard&) = delete;

  // -- schema -----------------------------------------------------------------

  /// Creates a table; throws common::DbError if the name exists.
  void create_table(TableDef def);

  [[nodiscard]] bool has_table(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;
  [[nodiscard]] const TableDef& table_def(const std::string& name) const;

  // -- partitioning -----------------------------------------------------------

  /// Configures primary-key striding for shard `offset` of `step` total:
  /// every table (existing and future) auto-assigns keys from the
  /// congruence class offset+1 mod step, so keys are globally unique
  /// across the shard set and (key-1) mod step recovers the owner.
  /// (0, 1) — the default — is the ordinary single-shard sequence.
  /// Must be called before any inserts.
  void set_pk_allocation(std::int64_t offset, std::int64_t step);

  /// Installs a per-shard commit-latency histogram (seconds from
  /// begin() to commit()); nullptr detaches. The histogram must outlive
  /// the shard (telemetry registry instruments do).
  void set_commit_latency_sink(telemetry::Histogram* sink);

  // -- DML --------------------------------------------------------------------

  /// Inserts named values (missing columns become NULL / defaults).
  /// Returns the primary-key value assigned (or the row slot when the
  /// table has no declared PK).
  std::int64_t insert(const std::string& table, const NamedValues& values);

  /// Updates all rows matching `predicate`; returns the count updated.
  std::size_t update(const std::string& table, const ExprPtr& predicate,
                     const NamedValues& sets);

  /// Indexed single-row update by primary-key value; returns false when
  /// no such row exists. This is the loader's hot path (O(1) vs the
  /// predicate scan of update()).
  bool update_pk(const std::string& table, std::int64_t pk,
                 const NamedValues& sets);

  /// Deletes all rows matching `predicate`; returns the count deleted.
  std::size_t delete_rows(const std::string& table, const ExprPtr& predicate);

  /// Row count of a table.
  [[nodiscard]] std::size_t row_count(const std::string& table) const;

  // -- queries ------------------------------------------------------------------

  [[nodiscard]] ResultSet execute(const Select& select) const;

  /// Single-value convenience: first row/column of the result, or
  /// nullopt when the result is empty.
  [[nodiscard]] std::optional<Value> scalar(const Select& select) const;

  // -- transactions ---------------------------------------------------------------

  /// Begins a transaction; nested begins throw.
  void begin();
  /// Commits (appends buffered WAL records).
  void commit();
  /// Rolls back every change since begin().
  void rollback();
  [[nodiscard]] bool in_transaction() const;

  // -- persistence ------------------------------------------------------------------

  /// Replays the WAL file (if configured and present). Call after the
  /// schema has been created. Returns the number of operations applied.
  /// A corrupt *final* record — the partial line a crash mid-append
  /// leaves behind — is discarded with a warning counter instead of
  /// failing recovery; corruption anywhere earlier still throws.
  std::size_t recover();

  /// Number of truncated trailing WAL records discarded by recover().
  [[nodiscard]] std::uint64_t wal_truncated_records() const;

 private:
  Table& table_ref(const std::string& name);
  const Table& table_ref(const std::string& name) const;
  void wal_write(const std::string& line);

  struct UndoOp {
    enum class Kind { kInsert, kUpdate, kDelete };
    Kind kind = Kind::kInsert;
    std::string table;
    RowId row_id = 0;
    Row before;  ///< For update/delete.
  };

  mutable std::recursive_mutex mutex_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::string wal_path_;
  bool txn_active_ = false;
  bool replaying_ = false;
  std::vector<UndoOp> undo_log_;
  std::vector<std::string> wal_buffer_;  ///< Committed at commit().

  std::int64_t pk_offset_ = 0;  ///< This shard's congruence class.
  std::int64_t pk_step_ = 1;    ///< Total shard count.
  std::uint64_t wal_truncated_ = 0;
  telemetry::Histogram* commit_latency_ = nullptr;
  std::chrono::steady_clock::time_point txn_begin_time_{};
};

/// The single-partition archive: exactly one shard. Existing code built
/// against `Database` is untouched by the sharding refactor.
using Database = StorageShard;

}  // namespace stampede::db
