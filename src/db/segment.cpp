#include "db/segment.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

#include "common/errors.hpp"
#include "common/string_utils.hpp"
#include "db/aggregate.hpp"
#include "db/database.hpp"
#include "db/table.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::db {

using common::DbError;

// ---------------------------------------------------------------------------
// SegmentColumn

std::uint32_t SegmentColumn::code_at(std::size_t pos) const {
  if (!codes.empty()) return codes[pos];
  // RLE: the run owning `pos` is the last run starting at or before it.
  const auto it = std::upper_bound(run_starts.begin(), run_starts.end(),
                                   static_cast<std::uint32_t>(pos));
  return run_codes[static_cast<std::size_t>(it - run_starts.begin()) - 1];
}

Value SegmentColumn::value_at(std::size_t pos) const {
  if (is_null_at(pos)) return Value::null();
  switch (encoding) {
    case Encoding::kInt64:
      return Value{ints[pos]};
    case Encoding::kFloat64:
      return Value{reals[pos]};
    case Encoding::kDict:
      return Value{dict[code_at(pos)]};
    case Encoding::kMixed:
      return values[pos];
  }
  return Value::null();
}

// ---------------------------------------------------------------------------
// ColumnStore

std::size_t ColumnStore::sealed_rows() const noexcept {
  std::size_t total = 0;
  for (const auto& seg : segments_) total += seg.size();
  return total;
}

void ColumnStore::add(Segment segment) {
  const auto it = std::lower_bound(
      segments_.begin(), segments_.end(), segment.lo,
      [](const Segment& s, RowId lo) { return s.lo < lo; });
  covered_hi_ = std::max(covered_hi_, segment.hi);
  segments_.insert(it, std::move(segment));
}

void ColumnStore::invalidate(RowId id) {
  if (id >= covered_hi_) return;  // Hot tail: the common case.
  // Last segment with lo <= id; disjoint ranges make it the only candidate.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), id,
      [](RowId lhs, const Segment& s) { return lhs < s.lo; });
  if (it == segments_.begin()) return;
  --it;
  if (id >= it->hi) return;  // In a gap between segments.
  segments_.erase(it);
  ++invalidations_;
  covered_hi_ = segments_.empty() ? 0 : segments_.back().hi;
  telemetry::registry()
      .counter("stampede_segment_invalidations_total")
      .inc();
}

void ColumnStore::clear() {
  segments_.clear();
  covered_hi_ = 0;
}

// ---------------------------------------------------------------------------
// Sealing: rows -> columnar image

namespace {

/// True for a real Value holding NaN.
bool is_nan_value(const Value& v) {
  return v.is_real() && std::isnan(v.as_real());
}

}  // namespace

Segment build_segment(const TableDef& def, const std::vector<Row>& rows,
                      const std::vector<bool>& live, RowId lo, RowId hi,
                      const std::vector<std::size_t>& range_index_cols) {
  Segment seg;
  seg.lo = lo;
  seg.hi = hi;
  for (RowId id = lo; id < hi; ++id) {
    if (live[static_cast<std::size_t>(id)]) seg.row_ids.push_back(id);
  }
  const std::size_t n = seg.row_ids.size();
  seg.columns.resize(def.columns.size());

  for (std::size_t c = 0; c < def.columns.size(); ++c) {
    SegmentColumn& col = seg.columns[c];
    // Pass 1: classify observed cell types and collect the zone map.
    bool any_int = false, any_real = false, any_text = false;
    col.nulls.assign(n, 0);
    for (std::size_t pos = 0; pos < n; ++pos) {
      const Value& v = rows[static_cast<std::size_t>(seg.row_ids[pos])][c];
      if (v.is_null()) {
        col.nulls[pos] = 1;
        col.has_nulls = true;
        continue;
      }
      col.has_values = true;
      if (v.is_int()) {
        any_int = true;
      } else if (v.is_real()) {
        any_real = true;
      } else {
        any_text = true;
      }
      if (is_nan_value(v)) {
        col.has_nan = true;
        continue;  // Unordered: never a zone-map bound.
      }
      if (col.min_value.is_null() || v < col.min_value) col.min_value = v;
      if (col.max_value.is_null() || col.max_value < v) col.max_value = v;
    }
    if (!col.has_nulls) col.nulls.clear();

    // Pass 2: encode. One observed type -> typed array / dictionary;
    // mixtures (or all-NULL) keep exact Values.
    const int kinds = (any_int ? 1 : 0) + (any_real ? 1 : 0) + (any_text ? 1 : 0);
    const auto cell = [&](std::size_t pos) -> const Value& {
      return rows[static_cast<std::size_t>(seg.row_ids[pos])][c];
    };
    if (kinds == 1 && any_int) {
      col.encoding = SegmentColumn::Encoding::kInt64;
      col.ints.assign(n, 0);
      for (std::size_t pos = 0; pos < n; ++pos) {
        if (!col.is_null_at(pos)) col.ints[pos] = cell(pos).as_int();
      }
    } else if (kinds == 1 && any_real) {
      col.encoding = SegmentColumn::Encoding::kFloat64;
      col.reals.assign(n, 0.0);
      for (std::size_t pos = 0; pos < n; ++pos) {
        if (!col.is_null_at(pos)) col.reals[pos] = cell(pos).as_real();
      }
    } else if (kinds == 1 && any_text) {
      col.encoding = SegmentColumn::Encoding::kDict;
      std::vector<std::string> distinct;
      {
        std::unordered_set<std::string_view> seen;
        for (std::size_t pos = 0; pos < n; ++pos) {
          if (col.is_null_at(pos)) continue;
          const std::string& s = cell(pos).as_text();
          if (seen.insert(s).second) distinct.push_back(s);
        }
      }
      std::sort(distinct.begin(), distinct.end());
      col.dict = std::move(distinct);
      std::vector<std::uint32_t> codes(n, 0);
      for (std::size_t pos = 0; pos < n; ++pos) {
        if (col.is_null_at(pos)) continue;
        const auto it = std::lower_bound(col.dict.begin(), col.dict.end(),
                                         cell(pos).as_text());
        codes[pos] = static_cast<std::uint32_t>(it - col.dict.begin());
      }
      // RLE when runs are long enough to pay for the indirection: states
      // and hosts arrive in long same-value stretches, event names less so.
      std::size_t run_count = 0;
      for (std::size_t pos = 0; pos < n; ++pos) {
        if (pos == 0 || codes[pos] != codes[pos - 1]) ++run_count;
      }
      if (n > 0 && run_count * 4 <= n) {
        for (std::size_t pos = 0; pos < n; ++pos) {
          if (pos == 0 || codes[pos] != codes[pos - 1]) {
            col.run_starts.push_back(static_cast<std::uint32_t>(pos));
            col.run_codes.push_back(codes[pos]);
          }
        }
      } else {
        col.codes = std::move(codes);
      }
    } else {
      col.encoding = SegmentColumn::Encoding::kMixed;
      col.values.reserve(n);
      for (std::size_t pos = 0; pos < n; ++pos) {
        col.values.push_back(cell(pos));
      }
    }
  }

  // Range indexes: positions sorted by (value, position); NULL and NaN
  // excluded (both are unordered targets for range predicates anyway,
  // and NaN would break the sort's strict weak ordering).
  for (const std::size_t c : range_index_cols) {
    if (c >= seg.columns.size()) continue;
    const SegmentColumn& col = seg.columns[c];
    std::vector<std::uint32_t> perm;
    perm.reserve(n);
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (col.is_null_at(pos)) continue;
      if (col.has_nan && is_nan_value(col.value_at(pos))) continue;
      perm.push_back(static_cast<std::uint32_t>(pos));
    }
    std::sort(perm.begin(), perm.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const Value va = col.value_at(a);
                const Value vb = col.value_at(b);
                const auto ord = va.compare(vb);
                if (ord == std::partial_ordering::less) return true;
                if (ord == std::partial_ordering::greater) return false;
                return a < b;
              });
    seg.range_index.emplace(c, std::move(perm));
  }
  return seg;
}

// ---------------------------------------------------------------------------
// Vectorized execution

namespace {

/// Name -> base-table column index, honouring the "col" and "alias.col"
/// spellings the row path accepts for a single-source query.
struct BaseResolver {
  const TableDef* def = nullptr;
  std::string prefix;  ///< alias + "."

  [[nodiscard]] std::optional<std::size_t> resolve(
      const std::string& name) const {
    if (const auto direct = def->column_index(name)) return direct;
    if (common::starts_with(name, prefix)) {
      return def->column_index(name.substr(prefix.size()));
    }
    return std::nullopt;
  }
};

/// Every column mentioned in the expression tree (left and right sides).
void collect_columns(const Expr& expr, std::vector<std::string>& out) {
  if (!expr.column.empty()) out.push_back(expr.column);
  if (!expr.column_rhs.empty()) out.push_back(expr.column_rhs);
  for (const auto& child : expr.children) collect_columns(*child, out);
}

bool expr_supported(const Expr& expr) {
  if (expr.kind == Expr::Kind::kCompareColumns) return false;
  for (const auto& child : expr.children) {
    if (!expr_supported(*child)) return false;
  }
  return true;
}

// -- zone-map pruning -------------------------------------------------------

/// Conservative "could any row in this segment satisfy `expr`?". Must
/// never return false when a row matches; true costs only a scan.
bool zone_maybe(const Segment& seg, const Expr& expr,
                const BaseResolver& resolver) {
  switch (expr.kind) {
    case Expr::Kind::kAnd:
      for (const auto& child : expr.children) {
        if (!zone_maybe(seg, *child, resolver)) return false;
      }
      return true;
    case Expr::Kind::kOr: {
      if (expr.children.empty()) return false;
      for (const auto& child : expr.children) {
        if (zone_maybe(seg, *child, resolver)) return true;
      }
      return false;
    }
    case Expr::Kind::kCompareLiteral: {
      const auto c = resolver.resolve(expr.column);
      if (!c) return true;
      const SegmentColumn& col = seg.columns[*c];
      // All-NULL column: every comparison is false.
      if (!col.has_values) return false;
      // NaN cells are outside the [min,max] bounds; with one present the
      // bounds prove nothing (and kNe against them is always true).
      if (col.has_nan) return true;
      const Value& lit = expr.literal;
      if (lit.is_null()) return false;
      switch (expr.op) {
        case CompareOp::kEq:
          return compare_values(col.min_value, CompareOp::kLe, lit) &&
                 compare_values(lit, CompareOp::kLe, col.max_value);
        case CompareOp::kNe:
          // Only prunable when every cell equals the literal.
          return !(compare_values(col.min_value, CompareOp::kEq, lit) &&
                   compare_values(col.max_value, CompareOp::kEq, lit));
        case CompareOp::kLt:
          return compare_values(col.min_value, CompareOp::kLt, lit);
        case CompareOp::kLe:
          return compare_values(col.min_value, CompareOp::kLe, lit);
        case CompareOp::kGt:
          return compare_values(col.max_value, CompareOp::kGt, lit);
        case CompareOp::kGe:
          return compare_values(col.max_value, CompareOp::kGe, lit);
      }
      return true;
    }
    case Expr::Kind::kIn: {
      const auto c = resolver.resolve(expr.column);
      if (!c) return true;
      const SegmentColumn& col = seg.columns[*c];
      if (!col.has_values) return false;
      if (col.has_nan) return true;
      for (const auto& cand : expr.in_values) {
        if (cand.is_null()) continue;
        if (compare_values(col.min_value, CompareOp::kLe, cand) &&
            compare_values(cand, CompareOp::kLe, col.max_value)) {
          return true;
        }
      }
      return false;
    }
    case Expr::Kind::kIsNull: {
      const auto c = resolver.resolve(expr.column);
      return !c || seg.columns[*c].has_nulls;
    }
    case Expr::Kind::kIsNotNull: {
      const auto c = resolver.resolve(expr.column);
      return !c || seg.columns[*c].has_values;
    }
    case Expr::Kind::kLike: {
      const auto c = resolver.resolve(expr.column);
      if (!c) return true;
      const SegmentColumn& col = seg.columns[*c];
      if (!col.has_values) return false;
      // LIKE is false for every non-text cell; a typed numeric column
      // cannot match at all.
      return col.encoding == SegmentColumn::Encoding::kDict ||
             col.encoding == SegmentColumn::Encoding::kMixed;
    }
    case Expr::Kind::kNot:
    case Expr::Kind::kCompareColumns:
      return true;
  }
  return true;
}

// -- per-segment predicate vectors ------------------------------------------

/// Codes [first, second) of dictionary entries satisfying `op` vs a text
/// literal (the dictionary is sorted, so order ops are code ranges).
std::pair<std::uint32_t, std::uint32_t> dict_range(
    const std::vector<std::string>& dict, CompareOp op,
    const std::string& lit) {
  const auto lower = static_cast<std::uint32_t>(
      std::lower_bound(dict.begin(), dict.end(), lit) - dict.begin());
  const auto upper = static_cast<std::uint32_t>(
      std::upper_bound(dict.begin(), dict.end(), lit) - dict.begin());
  const auto size = static_cast<std::uint32_t>(dict.size());
  switch (op) {
    case CompareOp::kEq:
      return {lower, upper};
    case CompareOp::kLt:
      return {0, lower};
    case CompareOp::kLe:
      return {0, upper};
    case CompareOp::kGt:
      return {upper, size};
    case CompareOp::kGe:
      return {lower, size};
    case CompareOp::kNe:
      break;  // Not a contiguous range; handled by the caller.
  }
  return {0, 0};
}

struct VectorEvaluator {
  const Segment& seg;
  const BaseResolver& resolver;
  PlanInfo& plan;

  using Bits = std::vector<std::uint8_t>;

  [[nodiscard]] Bits eval(const Expr& expr) const {
    const std::size_t n = seg.size();
    switch (expr.kind) {
      case Expr::Kind::kAnd: {
        Bits out(n, 1);  // evaluate(): empty AND is true.
        for (const auto& child : expr.children) {
          const Bits b = eval(*child);
          for (std::size_t i = 0; i < n; ++i) out[i] &= b[i];
        }
        return out;
      }
      case Expr::Kind::kOr: {
        Bits out(n, 0);
        for (const auto& child : expr.children) {
          const Bits b = eval(*child);
          for (std::size_t i = 0; i < n; ++i) out[i] |= b[i];
        }
        return out;
      }
      case Expr::Kind::kNot: {
        if (expr.children.empty()) return Bits(n, 0);  // evaluate(): false.
        Bits out = eval(*expr.children[0]);
        // evaluate() collapses SQL tri-state to bool before NOT, so a
        // bitwise flip reproduces NOT(NULL-comparison) == true exactly.
        for (std::size_t i = 0; i < n; ++i) out[i] = out[i] ? 0 : 1;
        return out;
      }
      case Expr::Kind::kIsNull: {
        const SegmentColumn& col = column(expr.column);
        Bits out(n, 0);
        for (std::size_t i = 0; i < n; ++i) out[i] = col.is_null_at(i) ? 1 : 0;
        return out;
      }
      case Expr::Kind::kIsNotNull: {
        const SegmentColumn& col = column(expr.column);
        Bits out(n, 0);
        for (std::size_t i = 0; i < n; ++i) out[i] = col.is_null_at(i) ? 0 : 1;
        return out;
      }
      case Expr::Kind::kCompareLiteral:
        return compare_literal(expr);
      case Expr::Kind::kIn:
        return in_list(expr);
      case Expr::Kind::kLike:
        return like(expr);
      case Expr::Kind::kCompareColumns:
        break;  // Filtered out by the eligibility walk.
    }
    throw DbError("columnar: unhandled expression kind");
  }

 private:
  [[nodiscard]] const SegmentColumn& column(const std::string& name) const {
    return seg.columns[*resolver.resolve(name)];
  }

  [[nodiscard]] Bits compare_literal(const Expr& expr) const {
    const std::size_t n = seg.size();
    const std::size_t ci = *resolver.resolve(expr.column);
    const SegmentColumn& col = seg.columns[ci];
    const Value& lit = expr.literal;
    Bits out(n, 0);
    if (lit.is_null()) return out;  // NULL comparand: everything false.

    // Range-index probe: binary search the sorted positions instead of
    // scanning the column. kNe is not a contiguous range, and NaN on
    // either side falls back to the scan loops: NaN cells are excluded
    // from the index (yet do satisfy `< text` — numbers order before
    // text), and a NaN literal is unordered against the sorted keys.
    const auto ri = seg.range_index.find(ci);
    if (ri != seg.range_index.end() && expr.op != CompareOp::kNe &&
        !col.has_nan && !is_nan_value(lit)) {
      const std::vector<std::uint32_t>& perm = ri->second;
      const auto less_than_lit = [&](std::uint32_t pos) {
        return col.value_at(pos).compare(lit) == std::partial_ordering::less;
      };
      const auto not_greater_than_lit = [&](std::uint32_t pos) {
        const auto ord = col.value_at(pos).compare(lit);
        return ord == std::partial_ordering::less ||
               ord == std::partial_ordering::equivalent;
      };
      const std::size_t lower = static_cast<std::size_t>(
          std::partition_point(perm.begin(), perm.end(), less_than_lit) -
          perm.begin());
      const std::size_t upper = static_cast<std::size_t>(
          std::partition_point(perm.begin(), perm.end(), not_greater_than_lit) -
          perm.begin());
      std::size_t first = 0, last = 0;
      switch (expr.op) {
        case CompareOp::kEq: first = lower; last = upper; break;
        case CompareOp::kLt: first = 0; last = lower; break;
        case CompareOp::kLe: first = 0; last = upper; break;
        case CompareOp::kGt: first = upper; last = perm.size(); break;
        case CompareOp::kGe: first = lower; last = perm.size(); break;
        case CompareOp::kNe: break;
      }
      for (std::size_t i = first; i < last; ++i) out[perm[i]] = 1;
      ++plan.range_index_probes;
      return out;
    }

    switch (col.encoding) {
      case SegmentColumn::Encoding::kInt64: {
        if (lit.is_int()) {
          const std::int64_t b = lit.as_int();
          fill_typed(col, out, [&](std::size_t i) {
            return int_compare(col.ints[i], expr.op, b);
          });
        } else if (lit.is_real()) {
          // Value::compare widens the int side to double; replicate.
          const double b = lit.as_real();
          fill_typed(col, out, [&](std::size_t i) {
            return double_compare(static_cast<double>(col.ints[i]), expr.op, b);
          });
        } else {
          // Numbers order before text: <, <=, != hold for every cell.
          const bool all = expr.op == CompareOp::kLt ||
                           expr.op == CompareOp::kLe ||
                           expr.op == CompareOp::kNe;
          if (all) fill_typed(col, out, [](std::size_t) { return true; });
        }
        return out;
      }
      case SegmentColumn::Encoding::kFloat64: {
        if (lit.is_int() || lit.is_real()) {
          const double b = lit.as_number();
          fill_typed(col, out, [&](std::size_t i) {
            return double_compare(col.reals[i], expr.op, b);
          });
        } else {
          // Numbers — NaN included, the type rank decides first — order
          // before text: <, <=, != hold for every cell.
          const bool all = expr.op == CompareOp::kLt ||
                           expr.op == CompareOp::kLe ||
                           expr.op == CompareOp::kNe;
          if (all) fill_typed(col, out, [](std::size_t) { return true; });
        }
        return out;
      }
      case SegmentColumn::Encoding::kDict: {
        if (lit.is_text()) {
          if (expr.op == CompareOp::kNe) {
            const auto [lo, hi] =
                dict_range(col.dict, CompareOp::kEq, lit.as_text());
            fill_dict(col, out, [&](std::uint32_t code) {
              return code < lo || code >= hi;
            });
          } else {
            const auto [lo, hi] = dict_range(col.dict, expr.op, lit.as_text());
            fill_dict(col, out, [&](std::uint32_t code) {
              return code >= lo && code < hi;
            });
          }
        } else {
          // Text orders after numbers: >, >=, != hold for every cell.
          const bool all = expr.op == CompareOp::kGt ||
                           expr.op == CompareOp::kGe ||
                           expr.op == CompareOp::kNe;
          if (all) fill_typed(col, out, [](std::size_t) { return true; });
        }
        return out;
      }
      case SegmentColumn::Encoding::kMixed: {
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = compare_values(col.values[i], expr.op, lit) ? 1 : 0;
        }
        return out;
      }
    }
    return out;
  }

  [[nodiscard]] Bits in_list(const Expr& expr) const {
    const std::size_t n = seg.size();
    const SegmentColumn& col = column(expr.column);
    Bits out(n, 0);
    switch (col.encoding) {
      case SegmentColumn::Encoding::kDict: {
        // Per-dictionary-entry membership, evaluated once per distinct
        // value instead of once per row.
        std::vector<std::uint8_t> match(col.dict.size(), 0);
        for (std::size_t d = 0; d < col.dict.size(); ++d) {
          const Value v{col.dict[d]};
          for (const auto& cand : expr.in_values) {
            if (compare_values(v, CompareOp::kEq, cand)) {
              match[d] = 1;
              break;
            }
          }
        }
        fill_dict(col, out,
                  [&](std::uint32_t code) { return match[code] != 0; });
        return out;
      }
      case SegmentColumn::Encoding::kInt64: {
        fill_typed(col, out, [&](std::size_t i) {
          const Value v{col.ints[i]};
          for (const auto& cand : expr.in_values) {
            if (compare_values(v, CompareOp::kEq, cand)) return true;
          }
          return false;
        });
        return out;
      }
      case SegmentColumn::Encoding::kFloat64: {
        fill_typed(col, out, [&](std::size_t i) {
          const Value v{col.reals[i]};
          for (const auto& cand : expr.in_values) {
            if (compare_values(v, CompareOp::kEq, cand)) return true;
          }
          return false;
        });
        return out;
      }
      case SegmentColumn::Encoding::kMixed: {
        for (std::size_t i = 0; i < n; ++i) {
          if (col.values[i].is_null()) continue;
          for (const auto& cand : expr.in_values) {
            if (compare_values(col.values[i], CompareOp::kEq, cand)) {
              out[i] = 1;
              break;
            }
          }
        }
        return out;
      }
    }
    return out;
  }

  [[nodiscard]] Bits like(const Expr& expr) const {
    const std::size_t n = seg.size();
    const SegmentColumn& col = column(expr.column);
    Bits out(n, 0);
    switch (col.encoding) {
      case SegmentColumn::Encoding::kDict: {
        std::vector<std::uint8_t> match(col.dict.size(), 0);
        for (std::size_t d = 0; d < col.dict.size(); ++d) {
          match[d] = common::like_match(col.dict[d], expr.pattern) ? 1 : 0;
        }
        fill_dict(col, out,
                  [&](std::uint32_t code) { return match[code] != 0; });
        return out;
      }
      case SegmentColumn::Encoding::kMixed: {
        for (std::size_t i = 0; i < n; ++i) {
          const Value& v = col.values[i];
          out[i] =
              v.is_text() && common::like_match(v.as_text(), expr.pattern);
        }
        return out;
      }
      case SegmentColumn::Encoding::kInt64:
      case SegmentColumn::Encoding::kFloat64:
        return out;  // LIKE is false for non-text.
    }
    return out;
  }

  // Sets out[i] = pred(i) for every non-null position.
  template <typename Pred>
  void fill_typed(const SegmentColumn& col, Bits& out, Pred&& pred) const {
    const std::size_t n = out.size();
    if (!col.has_nulls) {
      for (std::size_t i = 0; i < n; ++i) out[i] = pred(i) ? 1 : 0;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = (col.nulls[i] == 0 && pred(i)) ? 1 : 0;
      }
    }
  }

  // Sets out[i] = pred(code(i)) for non-null positions; whole runs at a
  // time when the column is RLE.
  template <typename Pred>
  void fill_dict(const SegmentColumn& col, Bits& out, Pred&& pred) const {
    const std::size_t n = out.size();
    if (!col.codes.empty()) {
      fill_typed(col, out, [&](std::size_t i) { return pred(col.codes[i]); });
      return;
    }
    for (std::size_t r = 0; r < col.run_starts.size(); ++r) {
      if (!pred(col.run_codes[r])) continue;
      const std::size_t first = col.run_starts[r];
      const std::size_t last =
          r + 1 < col.run_starts.size() ? col.run_starts[r + 1] : n;
      for (std::size_t i = first; i < last; ++i) {
        out[i] = col.is_null_at(i) ? 0 : 1;
      }
    }
  }

  static bool int_compare(std::int64_t a, CompareOp op, std::int64_t b) {
    switch (op) {
      case CompareOp::kEq: return a == b;
      case CompareOp::kNe: return a != b;
      case CompareOp::kLt: return a < b;
      case CompareOp::kLe: return a <= b;
      case CompareOp::kGt: return a > b;
      case CompareOp::kGe: return a >= b;
    }
    return false;
  }

  // IEEE comparisons reproduce partial_ordering exactly: NaN fails every
  // op except !=, which compare_values maps from "not equivalent".
  static bool double_compare(double a, CompareOp op, double b) {
    switch (op) {
      case CompareOp::kEq: return a == b;
      case CompareOp::kNe: return !(a == b);
      case CompareOp::kLt: return a < b;
      case CompareOp::kLe: return a <= b;
      case CompareOp::kGt: return a > b;
      case CompareOp::kGe: return a >= b;
    }
    return false;
  }
};

// -- result accumulation ----------------------------------------------------

struct GroupKeyHash {
  std::size_t operator()(const Row* row) const noexcept {
    return group_rows_hash(*row, row->size());
  }
};

struct GroupKeyEq {
  bool operator()(const Row* a, const Row* b) const noexcept {
    return a->size() == b->size() && group_rows_equal(*a, *b, a->size());
  }
};

/// Insertion-ordered GROUP BY accumulator — the exact structures and
/// feed order of the row path in database.cpp, so grouped results (state
/// addresses, first-occurrence order, Aggregator arithmetic) match
/// byte-for-byte.
struct GroupAccumulator {
  const Select& select;
  struct GroupState {
    Row key;
    std::vector<Aggregator> aggs;
  };
  std::deque<GroupState> groups;
  std::unordered_map<const Row*, std::size_t, GroupKeyHash, GroupKeyEq>
      index_of;

  std::size_t state_for(Row key) {
    const auto it = index_of.find(&key);
    if (it != index_of.end()) return it->second;
    GroupState state;
    state.key = std::move(key);
    state.aggs.reserve(select.aggs().size());
    for (const auto& spec : select.aggs()) {
      Aggregator agg;
      agg.fn = spec.fn;
      state.aggs.push_back(agg);
    }
    groups.push_back(std::move(state));
    index_of.emplace(&groups.back().key, groups.size() - 1);
    return groups.size() - 1;
  }

  ResultSet finish() {
    // SQL's zero-input aggregate row (e.g. COUNT(*) == 0).
    if (groups.empty() && select.groups().empty() && !select.aggs().empty()) {
      GroupState state;
      for (const auto& spec : select.aggs()) {
        Aggregator agg;
        agg.fn = spec.fn;
        state.aggs.push_back(agg);
      }
      groups.push_back(std::move(state));
    }
    ResultSet result;
    for (const auto& g : select.groups()) result.columns.push_back(g);
    for (const auto& spec : select.aggs()) result.columns.push_back(spec.alias);
    result.rows.reserve(groups.size());
    for (auto& state : groups) {
      Row out = std::move(state.key);
      out.reserve(out.size() + state.aggs.size());
      for (const auto& agg : state.aggs) out.push_back(agg.result());
      result.rows.push_back(std::move(out));
    }
    return result;
  }
};

}  // namespace

std::optional<ResultSet> execute_columnar(const Table& table,
                                          const Select& select,
                                          PlanInfo& plan) {
  if (!select.joins().empty()) return std::nullopt;
  const TableDef& def = table.def();
  const BaseResolver resolver{&def, select.alias() + "."};

  // Eligibility: every referenced name must resolve against the base
  // table and every predicate node must be vectorizable. Anything else
  // falls back to the row path — which also reproduces the row path's
  // error behaviour for genuinely unknown columns.
  if (select.predicate()) {
    if (!expr_supported(*select.predicate())) return std::nullopt;
    std::vector<std::string> pred_cols;
    collect_columns(*select.predicate(), pred_cols);
    for (const auto& name : pred_cols) {
      if (!resolver.resolve(name)) return std::nullopt;
    }
  }
  std::vector<std::size_t> group_cols;
  group_cols.reserve(select.groups().size());
  for (const auto& g : select.groups()) {
    const auto c = resolver.resolve(g);
    if (!c) return std::nullopt;
    group_cols.push_back(*c);
  }
  // -1 marks COUNT(*).
  std::vector<std::ptrdiff_t> agg_cols;
  agg_cols.reserve(select.aggs().size());
  for (const auto& spec : select.aggs()) {
    if (spec.column.empty()) {
      agg_cols.push_back(-1);
      continue;
    }
    const auto c = resolver.resolve(spec.column);
    if (!c) return std::nullopt;
    agg_cols.push_back(static_cast<std::ptrdiff_t>(*c));
  }
  const bool aggregate_mode =
      !select.groups().empty() || !select.aggs().empty();
  // SUM/AVG/MIN/MAX of the same measure is the common dashboard shape;
  // fetch each distinct aggregate source column once per row and feed
  // every aggregator from that cell. Feed order and values are
  // unchanged, only the duplicate cell materialisations go away.
  std::vector<std::size_t> agg_unique;
  std::vector<std::ptrdiff_t> agg_slot(agg_cols.size(), -1);
  for (std::size_t a = 0; a < agg_cols.size(); ++a) {
    if (agg_cols[a] < 0) continue;  // COUNT(*) reads no column.
    const auto col = static_cast<std::size_t>(agg_cols[a]);
    std::size_t u = 0;
    while (u < agg_unique.size() && agg_unique[u] != col) ++u;
    if (u == agg_unique.size()) agg_unique.push_back(col);
    agg_slot[a] = static_cast<std::ptrdiff_t>(u);
  }
  std::vector<Value> agg_cells(agg_unique.size());
  std::vector<std::size_t> proj;
  ResultSet projected;
  if (!aggregate_mode) {
    if (select.selected().empty()) {
      for (std::size_t i = 0; i < def.columns.size(); ++i) {
        proj.push_back(i);
        projected.columns.push_back(def.columns[i].name);
      }
    } else {
      for (const auto& name : select.selected()) {
        const auto c = resolver.resolve(name);
        if (!c) return std::nullopt;
        proj.push_back(*c);
        projected.columns.push_back(name);
      }
    }
  }

  // Row-path resolver for the uncovered gap/tail rows; every name was
  // validated above, so resolution cannot fail.
  const Expr* predicate = select.predicate().get();
  const auto row_matches = [&](const Row& row) {
    return !predicate || evaluate(*predicate, [&](const std::string& name) {
      return row[*resolver.resolve(name)];
    });
  };

  GroupAccumulator acc{select, {}, {}};

  // Global aggregates (no GROUP BY) hit one group for every row; cache
  // it so the hot loop skips the hashed key lookup. deque references
  // stay valid across later state_for() growth.
  GroupAccumulator::GroupState* global_group = nullptr;

  // Per-row consumption, shared by both chunk kinds. `get` returns the
  // cell for a base-table column index.
  const auto consume = [&](const auto& get) {
    if (aggregate_mode) {
      GroupAccumulator::GroupState* found = nullptr;
      if (group_cols.empty()) {
        if (global_group == nullptr) {
          global_group = &acc.groups[acc.state_for(Row{})];
        }
        found = global_group;
      } else {
        Row key;
        key.reserve(group_cols.size());
        for (const std::size_t c : group_cols) key.push_back(get(c));
        found = &acc.groups[acc.state_for(std::move(key))];
      }
      GroupAccumulator::GroupState& state = *found;
      for (std::size_t u = 0; u < agg_unique.size(); ++u) {
        agg_cells[u] = get(agg_unique[u]);
      }
      for (std::size_t a = 0; a < agg_cols.size(); ++a) {
        if (agg_slot[a] < 0) {
          state.aggs[a].feed_row();
        } else {
          state.aggs[a].feed(agg_cells[static_cast<std::size_t>(agg_slot[a])]);
        }
      }
    } else {
      Row out;
      out.reserve(proj.size());
      for (const std::size_t c : proj) out.push_back(get(c));
      projected.rows.push_back(std::move(out));
    }
  };

  // Enumerate chunks in ascending slot order: segments where sealed,
  // row-store scans over the gaps and the hot tail. Ascending order end
  // to end keeps Aggregator arithmetic and GROUP BY first-occurrence
  // order identical to the row path's single scan.
  const auto row_range = [&](RowId from, RowId to) {
    for (RowId id = from; id < to; ++id) {
      const Row* row = table.fetch(id);
      if (!row || !row_matches(*row)) continue;
      consume([&](std::size_t c) -> const Value& { return (*row)[c]; });
    }
  };

  const auto segment_chunk = [&](const Segment& seg) {
    if (seg.size() == 0) return;
    if (predicate && !zone_maybe(seg, *predicate, resolver)) {
      ++plan.segments_pruned;
      return;
    }
    ++plan.segments_scanned;
    std::vector<std::uint8_t> sel;
    if (predicate) {
      const VectorEvaluator ev{seg, resolver, plan};
      sel = ev.eval(*predicate);
    }

    // Fast path for the bench-critical shape — GROUP BY one dictionary
    // column — caching code -> group so surviving rows skip the hashed
    // key lookup (and its per-row key allocation).
    const SegmentColumn* dict_group = nullptr;
    if (aggregate_mode && group_cols.size() == 1 &&
        seg.columns[group_cols[0]].encoding ==
            SegmentColumn::Encoding::kDict) {
      dict_group = &seg.columns[group_cols[0]];
    }
    std::vector<std::ptrdiff_t> code_group;
    std::ptrdiff_t null_group = -1;
    if (dict_group) code_group.assign(dict_group->dict.size(), -1);

    const std::size_t n = seg.size();
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (predicate && !sel[pos]) continue;
      if (dict_group) {
        std::ptrdiff_t* slot = nullptr;
        if (dict_group->is_null_at(pos)) {
          slot = &null_group;
        } else {
          slot = &code_group[dict_group->code_at(pos)];
        }
        if (*slot < 0) {
          Row key;
          key.push_back(dict_group->value_at(pos));
          *slot = static_cast<std::ptrdiff_t>(acc.state_for(std::move(key)));
        }
        GroupAccumulator::GroupState& state =
            acc.groups[static_cast<std::size_t>(*slot)];
        for (std::size_t u = 0; u < agg_unique.size(); ++u) {
          agg_cells[u] = seg.columns[agg_unique[u]].value_at(pos);
        }
        for (std::size_t a = 0; a < agg_cols.size(); ++a) {
          if (agg_slot[a] < 0) {
            state.aggs[a].feed_row();
          } else {
            state.aggs[a].feed(
                agg_cells[static_cast<std::size_t>(agg_slot[a])]);
          }
        }
        continue;
      }
      consume([&](std::size_t c) { return seg.columns[c].value_at(pos); });
    }
  };

  const auto& segments = table.column_store().segments();
  RowId cursor = 0;
  for (const auto& seg : segments) {
    if (seg.lo > cursor) row_range(cursor, seg.lo);
    segment_chunk(seg);
    cursor = seg.hi;
  }
  row_range(cursor, static_cast<RowId>(table.slot_count()));

  ResultSet result = aggregate_mode ? acc.finish() : std::move(projected);

  // DISTINCT, then ORDER BY + LIMIT — same tail as the row path.
  if (select.is_distinct()) {
    std::unordered_set<const Row*, GroupKeyHash, GroupKeyEq> seen;
    seen.reserve(result.rows.size());
    std::vector<Row> unique;
    unique.reserve(result.rows.size());
    for (auto& row : result.rows) {
      if (seen.find(&row) != seen.end()) continue;
      unique.push_back(std::move(row));
      seen.insert(&unique.back());
    }
    result.rows = std::move(unique);
  }
  sort_and_limit(result, select.orders(), select.row_limit());
  ++plan.columnar;
  return result;
}

}  // namespace stampede::db
