#pragma once
// Predicate expressions for WHERE clauses and join conditions.
//
// A small immutable tree evaluated against a row context. Shared pointers
// keep the builder API composable (`where(and_(eq(...), gt(...)))`)
// without manual lifetime management.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "db/value.hpp"

namespace stampede::db {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind {
    kCompareLiteral,   ///< column <op> literal
    kCompareColumns,   ///< column <op> column (used by joins)
    kAnd,
    kOr,
    kNot,
    kIsNull,
    kIsNotNull,
    kLike,             ///< column LIKE pattern ('%', '_')
    kIn,               ///< column IN (values…)
  };

  Kind kind = Kind::kCompareLiteral;
  std::string column;       ///< Left column (possibly "table.column").
  std::string column_rhs;   ///< Right column for kCompareColumns.
  CompareOp op = CompareOp::kEq;
  Value literal;
  std::string pattern;      ///< For kLike.
  std::vector<Value> in_values;
  std::vector<ExprPtr> children;
};

// -- builders ---------------------------------------------------------------

[[nodiscard]] ExprPtr eq(std::string column, Value value);
[[nodiscard]] ExprPtr ne(std::string column, Value value);
[[nodiscard]] ExprPtr lt(std::string column, Value value);
[[nodiscard]] ExprPtr le(std::string column, Value value);
[[nodiscard]] ExprPtr gt(std::string column, Value value);
[[nodiscard]] ExprPtr ge(std::string column, Value value);
[[nodiscard]] ExprPtr eq_cols(std::string left, std::string right);
[[nodiscard]] ExprPtr and_(std::vector<ExprPtr> children);
[[nodiscard]] ExprPtr and_(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr or_(std::vector<ExprPtr> children);
[[nodiscard]] ExprPtr or_(ExprPtr a, ExprPtr b);
[[nodiscard]] ExprPtr not_(ExprPtr child);
[[nodiscard]] ExprPtr is_null(std::string column);
[[nodiscard]] ExprPtr is_not_null(std::string column);
[[nodiscard]] ExprPtr like(std::string column, std::string pattern);
[[nodiscard]] ExprPtr in_list(std::string column, std::vector<Value> values);

/// Resolves a (possibly qualified) column name to its current value.
/// Throws common::DbError for unknown columns.
using ColumnResolver = std::function<Value(const std::string&)>;

/// Tri-state SQL boolean collapsed to bool: NULL comparisons are false.
[[nodiscard]] bool evaluate(const Expr& expr, const ColumnResolver& resolve);

/// True when `op` holds between a and b under SQL semantics (any NULL
/// operand → false, except via is_null which is handled elsewhere).
[[nodiscard]] bool compare_values(const Value& a, CompareOp op, const Value& b);

}  // namespace stampede::db
