#pragma once
// SELECT builder and result set.
//
// Covers the query shapes the Stampede tools need (paper §VII): filtered
// scans, equality hash-joins across the entity tables, GROUP BY with
// COUNT/SUM/MIN/MAX/AVG aggregates, ORDER BY and LIMIT.

#include <optional>
#include <string>
#include <vector>

#include "db/expr.hpp"
#include "db/schema.hpp"

namespace stampede::db {

enum class AggFn { kCount, kSum, kMin, kMax, kAvg };

struct AggSpec {
  AggFn fn = AggFn::kCount;
  std::string column;  ///< Empty means COUNT(*).
  std::string alias;
};

struct JoinSpec {
  std::string table;
  std::string alias;      ///< Defaults to the table name.
  std::string left_col;   ///< Column on the rows built so far (qualified ok).
  std::string right_col;  ///< Column on the joined table.
  bool left_outer = false;
};

struct OrderSpec {
  std::string column;
  bool descending = false;
};

/// Fluent SELECT description. All strings refer to columns either
/// unqualified ("dur" — must be unambiguous) or qualified with the table
/// alias ("invocation.dur").
class Select {
 public:
  explicit Select(std::string table, std::string alias = "");

  Select& columns(std::vector<std::string> cols);
  Select& join(std::string table, std::string left_col, std::string right_col,
               std::string alias = "");
  Select& left_join(std::string table, std::string left_col,
                    std::string right_col, std::string alias = "");
  Select& where(ExprPtr predicate);
  Select& group_by(std::vector<std::string> cols);
  Select& agg(AggFn fn, std::string column, std::string alias);
  Select& count_all(std::string alias);
  Select& order_by(std::string column, bool descending = false);
  Select& limit(std::size_t n);
  Select& distinct();

  // Accessors used by the executor.
  [[nodiscard]] const std::string& table() const noexcept { return table_; }
  [[nodiscard]] const std::string& alias() const noexcept { return alias_; }
  [[nodiscard]] const std::vector<std::string>& selected() const noexcept {
    return columns_;
  }
  [[nodiscard]] const std::vector<JoinSpec>& joins() const noexcept {
    return joins_;
  }
  [[nodiscard]] const ExprPtr& predicate() const noexcept { return where_; }
  [[nodiscard]] const std::vector<std::string>& groups() const noexcept {
    return group_by_;
  }
  [[nodiscard]] const std::vector<AggSpec>& aggs() const noexcept {
    return aggs_;
  }
  [[nodiscard]] const std::vector<OrderSpec>& orders() const noexcept {
    return order_by_;
  }
  [[nodiscard]] std::optional<std::size_t> row_limit() const noexcept {
    return limit_;
  }
  [[nodiscard]] bool is_distinct() const noexcept { return distinct_; }

 private:
  std::string table_;
  std::string alias_;
  std::vector<std::string> columns_;
  std::vector<JoinSpec> joins_;
  ExprPtr where_;
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggs_;
  std::vector<OrderSpec> order_by_;
  std::optional<std::size_t> limit_;
  bool distinct_ = false;
};

// -- row-key semantics for GROUP BY / DISTINCT ------------------------------
//
// Group and DISTINCT keys are type-tagged: int 1 and real 1.0 are
// *different* keys (unlike Value::operator==, which compares
// numerically) — the semantics the engine has always had via its
// serialized string keys, now expressed directly over hashed Values so
// the hot paths stop allocating a string per row.

/// Type-tagged equality of two key values. NULL equals NULL; NaN equals
/// NaN; +0.0 and -0.0 stay distinct (they render differently).
[[nodiscard]] bool group_values_equal(const Value& a, const Value& b) noexcept;

/// Equality of the first `prefix` values of two rows under
/// group_values_equal.
[[nodiscard]] bool group_rows_equal(const Row& a, const Row& b,
                                    std::size_t prefix) noexcept;

/// Order-sensitive combination of std::hash<Value> over the first
/// `prefix` values. Consistent with group_rows_equal (equal rows hash
/// equal; std::hash<Value> already hashes int 1 and real 1.0 alike,
/// which is merely a benign collision here).
[[nodiscard]] std::size_t group_rows_hash(const Row& row,
                                          std::size_t prefix) noexcept;

/// Materialized query result.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  [[nodiscard]] std::optional<std::size_t> column_index(
      std::string_view name) const noexcept {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == name) return i;
    }
    return std::nullopt;
  }

  /// Cell access by column name; throws common::DbError on unknown
  /// column or out-of-range row.
  [[nodiscard]] const Value& at(std::size_t row, std::string_view column) const;

  [[nodiscard]] bool empty() const noexcept { return rows.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return rows.size(); }
};

/// Applies the ORDER BY / LIMIT tail to a materialized result: a bounded
/// top-k (partial sort over row indexes, original index as the final
/// tie-break) when a limit smaller than the row count is present, a full
/// stable sort otherwise. The index tie-break makes the top-k output
/// byte-identical to stable_sort-then-truncate. Throws common::DbError
/// when an order column is not in the result set.
void sort_and_limit(ResultSet& result, const std::vector<OrderSpec>& orders,
                    std::optional<std::size_t> limit);

}  // namespace stampede::db
