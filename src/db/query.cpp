#include "db/query.hpp"

#include "common/errors.hpp"

namespace stampede::db {

Select::Select(std::string table, std::string alias)
    : table_(std::move(table)),
      alias_(alias.empty() ? table_ : std::move(alias)) {}

Select& Select::columns(std::vector<std::string> cols) {
  columns_ = std::move(cols);
  return *this;
}

Select& Select::join(std::string table, std::string left_col,
                     std::string right_col, std::string alias) {
  JoinSpec spec;
  spec.table = std::move(table);
  spec.alias = alias.empty() ? spec.table : std::move(alias);
  spec.left_col = std::move(left_col);
  spec.right_col = std::move(right_col);
  joins_.push_back(std::move(spec));
  return *this;
}

Select& Select::left_join(std::string table, std::string left_col,
                          std::string right_col, std::string alias) {
  join(std::move(table), std::move(left_col), std::move(right_col),
       std::move(alias));
  joins_.back().left_outer = true;
  return *this;
}

Select& Select::where(ExprPtr predicate) {
  where_ = where_ ? and_(std::move(where_), std::move(predicate))
                  : std::move(predicate);
  return *this;
}

Select& Select::group_by(std::vector<std::string> cols) {
  group_by_ = std::move(cols);
  return *this;
}

Select& Select::agg(AggFn fn, std::string column, std::string alias) {
  aggs_.push_back({fn, std::move(column), std::move(alias)});
  return *this;
}

Select& Select::count_all(std::string alias) {
  aggs_.push_back({AggFn::kCount, "", std::move(alias)});
  return *this;
}

Select& Select::order_by(std::string column, bool descending) {
  order_by_.push_back({std::move(column), descending});
  return *this;
}

Select& Select::limit(std::size_t n) {
  limit_ = n;
  return *this;
}

Select& Select::distinct() {
  distinct_ = true;
  return *this;
}

const Value& ResultSet::at(std::size_t row, std::string_view column) const {
  const auto col = column_index(column);
  if (!col) {
    throw common::DbError("ResultSet: unknown column '" + std::string{column} +
                          "'");
  }
  if (row >= rows.size()) {
    throw common::DbError("ResultSet: row index out of range");
  }
  return rows[row][*col];
}

}  // namespace stampede::db
