#include "db/query.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/errors.hpp"

namespace stampede::db {

Select::Select(std::string table, std::string alias)
    : table_(std::move(table)),
      alias_(alias.empty() ? table_ : std::move(alias)) {}

Select& Select::columns(std::vector<std::string> cols) {
  columns_ = std::move(cols);
  return *this;
}

Select& Select::join(std::string table, std::string left_col,
                     std::string right_col, std::string alias) {
  JoinSpec spec;
  spec.table = std::move(table);
  spec.alias = alias.empty() ? spec.table : std::move(alias);
  spec.left_col = std::move(left_col);
  spec.right_col = std::move(right_col);
  joins_.push_back(std::move(spec));
  return *this;
}

Select& Select::left_join(std::string table, std::string left_col,
                          std::string right_col, std::string alias) {
  join(std::move(table), std::move(left_col), std::move(right_col),
       std::move(alias));
  joins_.back().left_outer = true;
  return *this;
}

Select& Select::where(ExprPtr predicate) {
  where_ = where_ ? and_(std::move(where_), std::move(predicate))
                  : std::move(predicate);
  return *this;
}

Select& Select::group_by(std::vector<std::string> cols) {
  group_by_ = std::move(cols);
  return *this;
}

Select& Select::agg(AggFn fn, std::string column, std::string alias) {
  aggs_.push_back({fn, std::move(column), std::move(alias)});
  return *this;
}

Select& Select::count_all(std::string alias) {
  aggs_.push_back({AggFn::kCount, "", std::move(alias)});
  return *this;
}

Select& Select::order_by(std::string column, bool descending) {
  order_by_.push_back({std::move(column), descending});
  return *this;
}

Select& Select::limit(std::size_t n) {
  limit_ = n;
  return *this;
}

Select& Select::distinct() {
  distinct_ = true;
  return *this;
}

const Value& ResultSet::at(std::size_t row, std::string_view column) const {
  const auto col = column_index(column);
  if (!col) {
    throw common::DbError("ResultSet: unknown column '" + std::string{column} +
                          "'");
  }
  if (row >= rows.size()) {
    throw common::DbError("ResultSet: row index out of range");
  }
  return rows[row][*col];
}

bool group_values_equal(const Value& a, const Value& b) noexcept {
  if (a.is_null()) return b.is_null();
  if (a.is_int()) return b.is_int() && a.as_int() == b.as_int();
  if (a.is_real()) {
    if (!b.is_real()) return false;
    const double x = a.as_real();
    const double y = b.as_real();
    if (std::isnan(x) || std::isnan(y)) return std::isnan(x) && std::isnan(y);
    return x == y && std::signbit(x) == std::signbit(y);
  }
  return b.is_text() && a.as_text() == b.as_text();
}

bool group_rows_equal(const Row& a, const Row& b,
                      std::size_t prefix) noexcept {
  if (a.size() < prefix || b.size() < prefix) return false;
  for (std::size_t i = 0; i < prefix; ++i) {
    if (!group_values_equal(a[i], b[i])) return false;
  }
  return true;
}

std::size_t group_rows_hash(const Row& row, std::size_t prefix) noexcept {
  // FNV-style accumulation over the per-value hashes keeps the combined
  // hash sensitive to position.
  std::size_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < prefix && i < row.size(); ++i) {
    h ^= std::hash<Value>{}(row[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void sort_and_limit(ResultSet& result, const std::vector<OrderSpec>& orders,
                    std::optional<std::size_t> limit) {
  if (!orders.empty()) {
    std::vector<std::pair<std::size_t, bool>> keys;
    keys.reserve(orders.size());
    for (const auto& order : orders) {
      const auto idx = result.column_index(order.column);
      if (!idx) {
        throw common::DbError("order by: column '" + order.column +
                              "' not in result set");
      }
      keys.emplace_back(*idx, order.descending);
    }
    const auto row_less = [&](const Row& a, const Row& b) {
      for (const auto& [idx, desc] : keys) {
        const auto ord = a[idx].compare(b[idx]);
        if (ord == std::partial_ordering::less) return !desc;
        if (ord == std::partial_ordering::greater) return desc;
      }
      return false;
    };
    if (limit && *limit < result.rows.size()) {
      std::vector<std::size_t> order(result.rows.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::partial_sort(order.begin(),
                        order.begin() + static_cast<std::ptrdiff_t>(*limit),
                        order.end(), [&](std::size_t ia, std::size_t ib) {
                          if (row_less(result.rows[ia], result.rows[ib])) {
                            return true;
                          }
                          if (row_less(result.rows[ib], result.rows[ia])) {
                            return false;
                          }
                          return ia < ib;
                        });
      std::vector<Row> top;
      top.reserve(*limit);
      for (std::size_t i = 0; i < *limit; ++i) {
        top.push_back(std::move(result.rows[order[i]]));
      }
      result.rows = std::move(top);
      return;
    }
    std::stable_sort(result.rows.begin(), result.rows.end(), row_less);
  }
  if (limit && result.rows.size() > *limit) result.rows.resize(*limit);
}

}  // namespace stampede::db
