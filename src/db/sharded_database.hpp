#pragma once
// Partitioned archive: N StorageShards behind one facade (DESIGN.md §2,
// "Sharded archive").
//
// Rows are partitioned by workflow: the loader routes every event of a
// workflow (and of its whole sub-workflow tree) to one shard, chosen by
// a stable hash of the root workflow UUID. Each shard keeps its own
// mutex, undo log and WAL file (`<base>.0 .. <base>.N-1`), so N loader
// lanes commit without contention. Primary keys are strided
// (shard s draws s+1, s+1+N, s+1+2N, …) which keeps ids globally unique
// and makes the owning shard recoverable from any id as (id-1) mod N.
//
// With shard_count == 1 the facade degenerates to exactly the original
// single Database: same WAL path, same key sequence, bit-compatible
// archives.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "db/database.hpp"

namespace stampede::db {

/// Stable 64-bit FNV-1a of the partition key. Deliberately not
/// std::hash (implementation-defined): shard placement must be
/// reproducible across builds and processes, because WAL recovery has
/// to find rows on the shard that wrote them.
[[nodiscard]] std::uint64_t partition_hash(std::string_view key) noexcept;

class ShardedDatabase {
 public:
  /// In-memory sharded archive.
  explicit ShardedDatabase(std::size_t shard_count = 1);

  /// WAL-backed sharded archive. Shard i logs to shard_wal_path(base,
  /// i, N); with N == 1 that is `base` itself, so a single-shard
  /// archive file round-trips with plain Database unchanged.
  ShardedDatabase(std::size_t shard_count, std::string wal_base_path);

  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  [[nodiscard]] StorageShard& shard(std::size_t index) {
    return *shards_[index];
  }
  [[nodiscard]] const StorageShard& shard(std::size_t index) const {
    return *shards_[index];
  }

  // -- routing ----------------------------------------------------------------

  /// Shard owning `partition_key` (a workflow UUID).
  [[nodiscard]] std::size_t shard_index_for_key(
      std::string_view partition_key) const noexcept;

  /// Shard that allocated primary key `id` (inverse of the stride).
  [[nodiscard]] std::size_t shard_index_for_id(std::int64_t id) const noexcept;

  [[nodiscard]] StorageShard& shard_for(std::string_view partition_key) {
    return *shards_[shard_index_for_key(partition_key)];
  }

  // -- schema / maintenance fan-out ------------------------------------------

  /// Creates the table on every shard.
  void create_table(const TableDef& def);

  [[nodiscard]] bool has_table(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;
  [[nodiscard]] const TableDef& table_def(const std::string& name) const;

  /// Total live rows across shards.
  [[nodiscard]] std::size_t row_count(const std::string& table) const;

  /// Forces every shard's read entry points onto the exclusive lock
  /// (benchmark-only A/B switch; see StorageShard::set_exclusive_reads).
  void set_exclusive_reads(bool on) noexcept;

  /// Installs `sink` on every shard (empty detaches); each shard stamps
  /// its index into the batches it delivers. See
  /// StorageShard::set_change_sink / change.hpp for the contract —
  /// ordering holds per shard, batches from different shards arrive
  /// concurrently.
  void set_change_sink(const ChangeSink& sink,
                       std::vector<std::string> tables = {});

  /// Versions of `names` on every shard, concatenated shard-major
  /// (shard 0's versions, then shard 1's, …). Each shard's block is one
  /// consistent observation; the cache treats the whole vector as the
  /// archive-wide version stamp.
  [[nodiscard]] std::vector<std::uint64_t> table_versions(
      const std::vector<std::string>& names) const;

  /// Replays every shard's WAL; returns total operations applied.
  std::size_t recover();

  /// Truncated trailing WAL records discarded across all shards.
  [[nodiscard]] std::uint64_t wal_truncated_records() const;

  /// WAL file of shard `index` out of `count`: the base path itself for
  /// a single shard, `<base>.<index>` otherwise. Empty base -> empty
  /// (in-memory).
  [[nodiscard]] static std::string shard_wal_path(const std::string& base,
                                                  std::size_t index,
                                                  std::size_t count);

 private:
  std::vector<std::unique_ptr<StorageShard>> shards_;
};

}  // namespace stampede::db
