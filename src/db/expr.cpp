#include "db/expr.hpp"

#include "common/errors.hpp"
#include "common/string_utils.hpp"

namespace stampede::db {
namespace {

ExprPtr make_compare(std::string column, CompareOp op, Value value) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kCompareLiteral;
  e->column = std::move(column);
  e->op = op;
  e->literal = std::move(value);
  return e;
}

}  // namespace

ExprPtr eq(std::string column, Value value) {
  return make_compare(std::move(column), CompareOp::kEq, std::move(value));
}
ExprPtr ne(std::string column, Value value) {
  return make_compare(std::move(column), CompareOp::kNe, std::move(value));
}
ExprPtr lt(std::string column, Value value) {
  return make_compare(std::move(column), CompareOp::kLt, std::move(value));
}
ExprPtr le(std::string column, Value value) {
  return make_compare(std::move(column), CompareOp::kLe, std::move(value));
}
ExprPtr gt(std::string column, Value value) {
  return make_compare(std::move(column), CompareOp::kGt, std::move(value));
}
ExprPtr ge(std::string column, Value value) {
  return make_compare(std::move(column), CompareOp::kGe, std::move(value));
}

ExprPtr eq_cols(std::string left, std::string right) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kCompareColumns;
  e->column = std::move(left);
  e->column_rhs = std::move(right);
  e->op = CompareOp::kEq;
  return e;
}

ExprPtr and_(std::vector<ExprPtr> children) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kAnd;
  e->children = std::move(children);
  return e;
}
ExprPtr and_(ExprPtr a, ExprPtr b) {
  return and_(std::vector<ExprPtr>{std::move(a), std::move(b)});
}
ExprPtr or_(std::vector<ExprPtr> children) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kOr;
  e->children = std::move(children);
  return e;
}
ExprPtr or_(ExprPtr a, ExprPtr b) {
  return or_(std::vector<ExprPtr>{std::move(a), std::move(b)});
}
ExprPtr not_(ExprPtr child) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kNot;
  e->children.push_back(std::move(child));
  return e;
}
ExprPtr is_null(std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kIsNull;
  e->column = std::move(column);
  return e;
}
ExprPtr is_not_null(std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kIsNotNull;
  e->column = std::move(column);
  return e;
}
ExprPtr like(std::string column, std::string pattern) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kLike;
  e->column = std::move(column);
  e->pattern = std::move(pattern);
  return e;
}
ExprPtr in_list(std::string column, std::vector<Value> values) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kIn;
  e->column = std::move(column);
  e->in_values = std::move(values);
  return e;
}

bool compare_values(const Value& a, CompareOp op, const Value& b) {
  if (a.is_null() || b.is_null()) return false;  // SQL NULL semantics.
  const auto ord = a.compare(b);
  switch (op) {
    case CompareOp::kEq:
      return ord == std::partial_ordering::equivalent;
    case CompareOp::kNe:
      return ord != std::partial_ordering::equivalent;
    case CompareOp::kLt:
      return ord == std::partial_ordering::less;
    case CompareOp::kLe:
      return ord == std::partial_ordering::less ||
             ord == std::partial_ordering::equivalent;
    case CompareOp::kGt:
      return ord == std::partial_ordering::greater;
    case CompareOp::kGe:
      return ord == std::partial_ordering::greater ||
             ord == std::partial_ordering::equivalent;
  }
  return false;
}

bool evaluate(const Expr& expr, const ColumnResolver& resolve) {
  switch (expr.kind) {
    case Expr::Kind::kCompareLiteral:
      return compare_values(resolve(expr.column), expr.op, expr.literal);
    case Expr::Kind::kCompareColumns:
      return compare_values(resolve(expr.column), expr.op,
                            resolve(expr.column_rhs));
    case Expr::Kind::kAnd:
      for (const auto& child : expr.children) {
        if (!evaluate(*child, resolve)) return false;
      }
      return true;
    case Expr::Kind::kOr:
      for (const auto& child : expr.children) {
        if (evaluate(*child, resolve)) return true;
      }
      return false;
    case Expr::Kind::kNot:
      return !expr.children.empty() && !evaluate(*expr.children[0], resolve);
    case Expr::Kind::kIsNull:
      return resolve(expr.column).is_null();
    case Expr::Kind::kIsNotNull:
      return !resolve(expr.column).is_null();
    case Expr::Kind::kLike: {
      const Value v = resolve(expr.column);
      if (!v.is_text()) return false;
      return common::like_match(v.as_text(), expr.pattern);
    }
    case Expr::Kind::kIn: {
      const Value v = resolve(expr.column);
      if (v.is_null()) return false;
      for (const auto& candidate : expr.in_values) {
        if (compare_values(v, CompareOp::kEq, candidate)) return true;
      }
      return false;
    }
  }
  throw common::DbError("evaluate: unhandled expression kind");
}

}  // namespace stampede::db
