#pragma once
// Writer-preferring reader-writer mutex (DESIGN.md §10).
//
// Why not std::shared_mutex: on glibc it is a reader-preferring
// pthread_rwlock, so a steady stream of shared acquisitions — exactly
// what dashboard / statistics pollers produce — can starve a waiting
// writer indefinitely. On a loaded (or single-core) host the loader's
// begin() then never acquires the exclusive lock and ingest stops: the
// opposite of the §10 goal of bounded commit latency under reads.
//
// This lock flips the preference: once a writer is *waiting*, new
// shared acquisitions queue behind it, so writer wait time is bounded
// by the in-flight readers only. Readers cannot starve in return
// because writes are punctuated (one commit releases the lock and the
// whole blocked reader cohort enters before the next writer arrives).
//
// Meets BasicLockable / Lockable / SharedLockable, so std::unique_lock
// and std::shared_lock work unchanged. Not recursive in either mode —
// the StorageShard guards never nest (see database.hpp discipline).

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace stampede::db {

class SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  // -- exclusive --------------------------------------------------------------

  void lock() {
    std::unique_lock lk{m_};
    ++writers_waiting_;
    writer_cv_.wait(lk, [&] { return !writer_active_ && readers_ == 0; });
    --writers_waiting_;
    writer_active_ = true;
  }

  bool try_lock() {
    const std::lock_guard lk{m_};
    if (writer_active_ || readers_ != 0) return false;
    writer_active_ = true;
    return true;
  }

  void unlock() {
    {
      const std::lock_guard lk{m_};
      writer_active_ = false;
    }
    // A waiting writer re-checks its predicate; the reader cohort only
    // passes once no writer is waiting, preserving the preference.
    writer_cv_.notify_one();
    reader_cv_.notify_all();
  }

  // -- shared -----------------------------------------------------------------

  void lock_shared() {
    std::unique_lock lk{m_};
    reader_cv_.wait(lk,
                    [&] { return !writer_active_ && writers_waiting_ == 0; });
    ++readers_;
  }

  bool try_lock_shared() {
    const std::lock_guard lk{m_};
    if (writer_active_ || writers_waiting_ != 0) return false;
    ++readers_;
    return true;
  }

  void unlock_shared() {
    const std::lock_guard lk{m_};
    if (--readers_ == 0 && writers_waiting_ != 0) writer_cv_.notify_one();
  }

 private:
  std::mutex m_;
  std::condition_variable writer_cv_;  ///< Waits for: no writer, no readers.
  std::condition_variable reader_cv_;  ///< Waits for: no writer active/waiting.
  std::uint32_t readers_ = 0;
  std::uint32_t writers_waiting_ = 0;
  bool writer_active_ = false;
};

}  // namespace stampede::db
