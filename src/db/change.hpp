#pragma once
// Committed-batch change capture (DESIGN.md §13): the row-level feed a
// StorageShard delivers to its registered ChangeSink after every commit
// (and after every autocommitted public write). This is the push-side
// counterpart of the per-table version counters — versions tell a cache
// *that* something changed, a CommittedBatch tells a continuous-view
// engine *what* changed.
//
// Delivery contract (see StorageShard::set_change_sink):
//   - The sink runs with no shard lock held, so it may read the shard
//     (execute / for_each_row) and take its own locks freely.
//   - Batches from one shard arrive in commit order, one at a time
//     (deliveries are ticketed and serialized per shard).
//   - Rolled-back changes are never delivered.

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "db/schema.hpp"

namespace stampede::db {

/// One row-level mutation inside a committed batch.
struct RowChange {
  enum class Kind { kInsert, kUpdate, kDelete };

  Kind kind = Kind::kInsert;
  std::string table;
  RowId row_id = 0;
  Row before;  ///< Full row image for update/delete; empty for insert.
  Row after;   ///< Full row image for insert/update; empty for delete.
};

/// Everything one commit changed on one shard, in statement order.
struct CommittedBatch {
  std::size_t shard = 0;  ///< Ordinal within the sharded archive.
  std::chrono::steady_clock::time_point commit_time{};
  std::vector<RowChange> changes;
};

using ChangeSink = std::function<void(const CommittedBatch&)>;

}  // namespace stampede::db
