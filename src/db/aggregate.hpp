#pragma once
// Streaming aggregate state for one group: the arithmetic behind the
// engine's GROUP BY path (database.cpp) and the continuous-view engine
// (query/continuous_views.cpp).
//
// Continuous views promise results byte-identical to re-executing the
// Select from scratch, which only holds if both paths fold values
// through this exact code in the exact same (ascending RowId) order —
// floating-point addition is not associative, so do not fork or
// "optimize" this struct.

#include <cstdint>

#include "db/query.hpp"

namespace stampede::db {

struct Aggregator {
  AggFn fn = AggFn::kCount;
  std::int64_t count = 0;
  double sum = 0.0;
  bool any_numeric = false;
  Value min_value;
  Value max_value;
  bool has_minmax = false;

  void feed(const Value& value) {
    if (fn == AggFn::kCount) {
      if (!value.is_null()) ++count;
      return;
    }
    if (value.is_null()) return;
    ++count;
    if (value.is_int() || value.is_real()) {
      sum += value.as_number();
      any_numeric = true;
    }
    if (!has_minmax) {
      min_value = value;
      max_value = value;
      has_minmax = true;
    } else {
      if (value < min_value) min_value = value;
      if (max_value < value) max_value = value;
    }
  }

  void feed_row() { ++count; }  ///< COUNT(*)

  [[nodiscard]] Value result() const {
    switch (fn) {
      case AggFn::kCount:
        return Value{count};
      case AggFn::kSum:
        return any_numeric ? Value{sum} : Value::null();
      case AggFn::kAvg:
        return (any_numeric && count > 0)
                   ? Value{sum / static_cast<double>(count)}
                   : Value::null();
      case AggFn::kMin:
        return has_minmax ? min_value : Value::null();
      case AggFn::kMax:
        return has_minmax ? max_value : Value::null();
    }
    return Value::null();
  }
};

}  // namespace stampede::db
