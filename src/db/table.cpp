#include "db/table.hpp"

#include <algorithm>

#include "common/errors.hpp"

namespace stampede::db {

using common::DbError;

Table::Table(TableDef def) : def_(std::move(def)) {
  if (!def_.primary_key.empty()) {
    pk_col_ = def_.column_index(def_.primary_key);
    if (!pk_col_) {
      throw DbError("table " + def_.name + ": primary key column '" +
                    def_.primary_key + "' not found");
    }
    if (def_.columns[*pk_col_].type != ColumnType::kInteger) {
      throw DbError("table " + def_.name +
                    ": only integer primary keys are supported");
    }
  }
  for (const auto& index : def_.indexes) {
    if (index.columns.empty()) {
      throw DbError("table " + def_.name + ": index with no columns");
    }
    const auto col = def_.column_index(index.columns.front());
    if (!col) {
      throw DbError("table " + def_.name + ": index on unknown column '" +
                    index.columns.front() + "'");
    }
    secondary_.try_emplace(*col);
    if (index.unique && index.columns.size() == 1) {
      unique_single_.push_back(*col);
    }
  }
}

void Table::check_not_null(const Row& row) const {
  for (std::size_t i = 0; i < def_.columns.size(); ++i) {
    if (def_.columns[i].not_null && row[i].is_null()) {
      throw DbError("table " + def_.name + ": NOT NULL violation on column '" +
                    def_.columns[i].name + "'");
    }
  }
}

void Table::check_unique(const Row& row, std::optional<RowId> ignore) const {
  for (const std::size_t col : unique_single_) {
    if (row[col].is_null()) continue;  // SQL: NULLs never collide.
    const auto it = secondary_.find(col);
    if (it == secondary_.end()) continue;
    const auto [lo, hi] = it->second.equal_range(row[col]);
    for (auto cur = lo; cur != hi; ++cur) {
      if (!ignore || cur->second != *ignore) {
        throw DbError("table " + def_.name + ": UNIQUE violation on column '" +
                      def_.columns[col].name + "'");
      }
    }
  }
}

Table::InsertResult Table::insert(Row row) {
  if (row.size() != def_.columns.size()) {
    throw DbError("table " + def_.name + ": row arity " +
                  std::to_string(row.size()) + " != schema arity " +
                  std::to_string(def_.columns.size()));
  }
  // Apply column defaults to NULL slots.
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null() && def_.columns[i].default_value) {
      row[i] = *def_.columns[i].default_value;
    }
  }
  if (pk_col_ && row[*pk_col_].is_null()) {
    row[*pk_col_] = Value{next_auto_};
  }
  if (pk_col_) {
    const Value& key = row[*pk_col_];
    if (!key.is_int()) {
      throw DbError("table " + def_.name + ": non-integer primary key value");
    }
    if (pk_index_.find(key) != pk_index_.end()) {
      throw DbError("table " + def_.name + ": duplicate primary key " +
                    key.to_string());
    }
    // Advance the auto sequence past an explicit key while staying in
    // this table's congruence class (start mod step).
    if (key.as_int() >= next_auto_) {
      const std::int64_t delta = key.as_int() - next_auto_;
      next_auto_ += (delta / auto_step_ + 1) * auto_step_;
    }
  }
  check_not_null(row);
  check_unique(row, std::nullopt);

  const auto id = static_cast<RowId>(rows_.size());
  ++version_;
  index_insert(id, row);
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  return InsertResult{id, pk_col_ ? rows_.back()[*pk_col_].as_int() : id};
}

void Table::set_auto_increment(std::int64_t start, std::int64_t step) {
  if (start < 1 || step < 1) {
    throw DbError("table " + def_.name + ": invalid auto-increment stride");
  }
  if (!rows_.empty()) {
    throw DbError("table " + def_.name +
                  ": auto-increment stride must be set before inserts");
  }
  next_auto_ = start;
  auto_step_ = step;
}

void Table::index_insert(RowId id, const Row& row) {
  if (pk_col_) pk_index_.emplace(row[*pk_col_], id);
  for (auto& [col, index] : secondary_) {
    index.emplace(row[col], id);
  }
}

void Table::index_remove(RowId id, const Row& row) {
  if (pk_col_) pk_index_.erase(row[*pk_col_]);
  for (auto& [col, index] : secondary_) {
    const auto [lo, hi] = index.equal_range(row[col]);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == id) {
        index.erase(it);
        break;
      }
    }
  }
}

const Row* Table::fetch(RowId id) const noexcept {
  if (id < 0 || static_cast<std::size_t>(id) >= rows_.size() ||
      !live_[static_cast<std::size_t>(id)]) {
    return nullptr;
  }
  return &rows_[static_cast<std::size_t>(id)];
}

std::optional<RowId> Table::find_pk(const Value& key) const {
  const auto it = pk_index_.find(key);
  if (it == pk_index_.end()) return std::nullopt;
  return it->second;
}

bool Table::has_index(const std::string& column) const {
  const auto col = def_.column_index(column);
  if (!col) return false;
  if (pk_col_ && *pk_col_ == *col) return true;
  return secondary_.find(*col) != secondary_.end();
}

std::optional<std::vector<RowId>> Table::index_lookup(const std::string& column,
                                                      const Value& key) const {
  const auto col = def_.column_index(column);
  if (!col) return std::nullopt;
  std::vector<RowId> out;
  if (pk_col_ && *pk_col_ == *col) {
    const auto it = pk_index_.find(key);
    if (it != pk_index_.end()) out.push_back(it->second);
    return out;
  }
  const auto it = secondary_.find(*col);
  if (it == secondary_.end()) return std::nullopt;
  const auto [lo, hi] = it->second.equal_range(key);
  for (auto cur = lo; cur != hi; ++cur) out.push_back(cur->second);
  return out;
}

bool Table::update(RowId id,
                   const std::vector<std::pair<std::string, Value>>& sets) {
  if (id < 0 || static_cast<std::size_t>(id) >= rows_.size() ||
      !live_[static_cast<std::size_t>(id)]) {
    return false;
  }
  const auto slot = static_cast<std::size_t>(id);
  store_.invalidate(id);
  Row updated = rows_[slot];
  for (const auto& [name, value] : sets) {
    const auto col = def_.column_index(name);
    if (!col) {
      throw DbError("table " + def_.name + ": update of unknown column '" +
                    name + "'");
    }
    if (pk_col_ && *col == *pk_col_) {
      throw DbError("table " + def_.name + ": primary key is immutable");
    }
    updated[*col] = value;
  }
  check_not_null(updated);
  check_unique(updated, static_cast<RowId>(slot));
  ++version_;
  index_remove(static_cast<RowId>(slot), rows_[slot]);
  rows_[slot] = std::move(updated);
  index_insert(static_cast<RowId>(slot), rows_[slot]);
  return true;
}

bool Table::erase(RowId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= rows_.size() ||
      !live_[static_cast<std::size_t>(id)]) {
    return false;
  }
  const auto slot = static_cast<std::size_t>(id);
  ++version_;
  store_.invalidate(id);
  index_remove(static_cast<RowId>(slot), rows_[slot]);
  live_[slot] = false;
  --live_count_;
  return true;
}

void Table::raw_replace(RowId id, Row row) {
  const auto slot = static_cast<std::size_t>(id);
  if (slot >= rows_.size() || !live_[slot]) {
    throw DbError("table " + def_.name + ": raw_replace of dead row");
  }
  ++version_;
  store_.invalidate(id);
  index_remove(id, rows_[slot]);
  rows_[slot] = std::move(row);
  index_insert(id, rows_[slot]);
}

void Table::raw_revive(RowId id, Row row) {
  const auto slot = static_cast<std::size_t>(id);
  if (slot >= rows_.size() || live_[slot]) {
    throw DbError("table " + def_.name + ": raw_revive of live row");
  }
  ++version_;
  // The covering segment (if any) omitted this row when it was dead;
  // reviving it makes that image stale. The payload arrives with the
  // call, so sealing having reclaimed the dead slot is harmless.
  store_.invalidate(id);
  rows_[slot] = std::move(row);
  live_[slot] = true;
  ++live_count_;
  index_insert(id, rows_[slot]);
}

SealStats Table::seal(const SealOptions& opts) {
  SealStats stats;
  const auto total = static_cast<RowId>(rows_.size());
  const auto hot =
      static_cast<RowId>(std::min<std::size_t>(opts.hot_tail_rows, rows_.size()));
  const RowId sealable_hi = total - hot;  // Slots below stay sealable.
  if (sealable_hi <= 0) return stats;

  // Range indexes: declared REAL columns (timestamps) plus any extras.
  std::vector<std::size_t> range_cols;
  for (std::size_t c = 0; c < def_.columns.size(); ++c) {
    if (def_.columns[c].type == ColumnType::kReal) range_cols.push_back(c);
  }
  for (const auto& name : opts.range_index_columns) {
    const auto c = def_.column_index(name);
    if (c && std::find(range_cols.begin(), range_cols.end(), *c) ==
                 range_cols.end()) {
      range_cols.push_back(*c);
    }
  }

  // Uncovered gaps below the hot tail, left to right. A gap in front of
  // an existing segment was opened by an invalidation — always re-seal
  // it; the trailing gap waits until it is worth a segment.
  struct Gap {
    RowId lo, hi;
    bool interior;
  };
  std::vector<Gap> gaps;
  RowId cursor = 0;
  for (const auto& seg : store_.segments()) {
    if (seg.lo > cursor) {
      gaps.push_back({cursor, std::min(seg.lo, sealable_hi), true});
    }
    cursor = std::max(cursor, seg.hi);
    if (cursor >= sealable_hi) break;
  }
  if (cursor < sealable_hi) gaps.push_back({cursor, sealable_hi, false});

  for (const auto& gap : gaps) {
    if (gap.lo >= gap.hi) continue;
    const auto len = static_cast<std::size_t>(gap.hi - gap.lo);
    if (!gap.interior && len < opts.min_seal_rows) continue;
    const auto target =
        static_cast<RowId>(std::max<std::size_t>(opts.target_segment_rows, 1));
    for (RowId lo = gap.lo; lo < gap.hi; lo += target) {
      const RowId hi = std::min(lo + target, gap.hi);
      Segment seg = build_segment(def_, rows_, live_, lo, hi, range_cols);
      // Tombstones vanish in the columnar image; free their row-store
      // payloads too. raw_revive() restores content from the undo log,
      // so rollbacks never need the dead bytes back.
      for (RowId id = lo; id < hi; ++id) {
        const auto slot = static_cast<std::size_t>(id);
        if (!live_[slot] && !rows_[slot].empty()) {
          Row{}.swap(rows_[slot]);
          ++reclaimed_;
          ++stats.tombstones_reclaimed;
        }
      }
      ++stats.segments_built;
      stats.rows_sealed += seg.size();
      store_.add(std::move(seg));
    }
  }
  return stats;
}

}  // namespace stampede::db
