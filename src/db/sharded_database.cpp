#include "db/sharded_database.hpp"

#include "common/errors.hpp"
#include "common/hash.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::db {

std::uint64_t partition_hash(std::string_view key) noexcept {
  // One shared definition (common/hash.hpp): the cluster router hashes
  // the same keys in another process and must land on the same shard.
  return common::fnv1a64(key);
}

std::string ShardedDatabase::shard_wal_path(const std::string& base,
                                            std::size_t index,
                                            std::size_t count) {
  if (base.empty() || count <= 1) return base;
  return base + "." + std::to_string(index);
}

ShardedDatabase::ShardedDatabase(std::size_t shard_count)
    : ShardedDatabase(shard_count, std::string{}) {}

ShardedDatabase::ShardedDatabase(std::size_t shard_count,
                                 std::string wal_base_path) {
  if (shard_count == 0) {
    throw common::DbError("ShardedDatabase: shard_count must be >= 1");
  }
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<StorageShard>(
        shard_wal_path(wal_base_path, i, shard_count));
    shard->set_pk_allocation(static_cast<std::int64_t>(i),
                             static_cast<std::int64_t>(shard_count));
    shard->set_commit_latency_sink(&telemetry::registry().histogram(
        telemetry::labeled("stampede_shard_commit_latency_seconds", "shard",
                           std::to_string(i))));
    shards_.push_back(std::move(shard));
  }
}

std::size_t ShardedDatabase::shard_index_for_key(
    std::string_view partition_key) const noexcept {
  return static_cast<std::size_t>(partition_hash(partition_key) %
                                  shards_.size());
}

std::size_t ShardedDatabase::shard_index_for_id(
    std::int64_t id) const noexcept {
  const auto n = static_cast<std::int64_t>(shards_.size());
  return static_cast<std::size_t>(((id - 1) % n + n) % n);
}

void ShardedDatabase::create_table(const TableDef& def) {
  for (auto& shard : shards_) shard->create_table(def);
}

bool ShardedDatabase::has_table(const std::string& name) const {
  return shards_.front()->has_table(name);
}

std::vector<std::string> ShardedDatabase::table_names() const {
  return shards_.front()->table_names();
}

const TableDef& ShardedDatabase::table_def(const std::string& name) const {
  return shards_.front()->table_def(name);
}

std::size_t ShardedDatabase::row_count(const std::string& table) const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->row_count(table);
  return total;
}

void ShardedDatabase::set_exclusive_reads(bool on) noexcept {
  for (auto& shard : shards_) shard->set_exclusive_reads(on);
}

void ShardedDatabase::set_change_sink(const ChangeSink& sink,
                                      std::vector<std::string> tables) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->set_change_sink(sink, tables, i);
  }
}

std::vector<std::uint64_t> ShardedDatabase::table_versions(
    const std::vector<std::string>& names) const {
  std::vector<std::uint64_t> versions;
  versions.reserve(names.size() * shards_.size());
  for (const auto& shard : shards_) {
    const auto block = shard->table_versions(names);
    versions.insert(versions.end(), block.begin(), block.end());
  }
  return versions;
}

std::size_t ShardedDatabase::recover() {
  std::size_t applied = 0;
  for (auto& shard : shards_) applied += shard->recover();
  return applied;
}

std::uint64_t ShardedDatabase::wal_truncated_records() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->wal_truncated_records();
  return total;
}

}  // namespace stampede::db
