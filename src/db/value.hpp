#pragma once
// Dynamically typed cell value for the relational archive.
//
// Three storage classes (integer, real, text) plus NULL — the subset of
// SQLite's type system the Stampede schema actually uses (UUIDs and
// timestamps are stored as text/real respectively, as the real
// stampede_loader does via SQLAlchemy).

#include <cstdint>
#include <compare>
#include <string>
#include <variant>

namespace stampede::db {

class Value {
 public:
  struct Null {
    friend constexpr bool operator==(Null, Null) noexcept { return true; }
    friend constexpr std::strong_ordering operator<=>(Null, Null) noexcept {
      return std::strong_ordering::equal;
    }
  };

  Value() : data_(Null{}) {}
  Value(std::int64_t v) : data_(v) {}                   // NOLINT(google-explicit-constructor)
  Value(int v) : data_(static_cast<std::int64_t>(v)) {} // NOLINT(google-explicit-constructor)
  Value(double v) : data_(v) {}                         // NOLINT(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}         // NOLINT(google-explicit-constructor)
  Value(const char* v) : data_(std::string{v}) {}       // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Value null() { return Value{}; }

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<Null>(data_);
  }
  [[nodiscard]] bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(data_);
  }
  [[nodiscard]] bool is_real() const noexcept {
    return std::holds_alternative<double>(data_);
  }
  [[nodiscard]] bool is_text() const noexcept {
    return std::holds_alternative<std::string>(data_);
  }

  /// Integer content; throws std::bad_variant_access on type mismatch.
  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(data_);
  }
  [[nodiscard]] double as_real() const { return std::get<double>(data_); }
  [[nodiscard]] const std::string& as_text() const {
    return std::get<std::string>(data_);
  }

  /// Numeric view: ints widen to double; throws for text/null.
  [[nodiscard]] double as_number() const {
    if (is_int()) return static_cast<double>(as_int());
    return as_real();
  }

  /// Lossy human rendering (NULL → "NULL").
  [[nodiscard]] std::string to_string() const;

  /// SQL-style comparison semantics except that NULL compares equal to
  /// NULL and less than everything else (needed for ORDER BY and index
  /// keys). Cross-type numeric comparisons compare numerically; numbers
  /// order before text.
  [[nodiscard]] std::partial_ordering compare(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.compare(b) == std::partial_ordering::equivalent;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.compare(b) == std::partial_ordering::less;
  }

 private:
  std::variant<Null, std::int64_t, double, std::string> data_;
};

}  // namespace stampede::db

template <>
struct std::hash<stampede::db::Value> {
  std::size_t operator()(const stampede::db::Value& v) const noexcept {
    using stampede::db::Value;
    if (v.is_null()) return 0x9bf1a9;
    if (v.is_int()) return std::hash<std::int64_t>{}(v.as_int());
    if (v.is_real()) {
      // Hash integral-valued reals like their int counterpart so mixed
      // int/real keys that compare equal also hash equal.
      const double d = v.as_real();
      const auto i = static_cast<std::int64_t>(d);
      if (static_cast<double>(i) == d) return std::hash<std::int64_t>{}(i);
      return std::hash<double>{}(d);
    }
    return std::hash<std::string>{}(v.as_text());
  }
};
