#pragma once
// Row storage with primary-key and secondary indexes.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/expr.hpp"
#include "db/schema.hpp"
#include "db/segment.hpp"

namespace stampede::db {

/// One table's data. Rows are addressed by a stable RowId; deletions
/// tombstone in place so ids never shift. Not internally synchronized —
/// the owning Database serializes access.
class Table {
 public:
  explicit Table(TableDef def);

  [[nodiscard]] const TableDef& def() const noexcept { return def_; }

  struct InsertResult {
    RowId row_id = 0;     ///< Stable storage slot.
    std::int64_t pk = 0;  ///< Primary-key value (== row_id when no PK).
  };

  /// Inserts a row (positionally aligned with the schema). Auto-assigns
  /// the integer primary key when its slot is NULL. Enforces NOT NULL,
  /// PK uniqueness and unique indexes; throws common::DbError on
  /// violation.
  InsertResult insert(Row row);

  /// Configures a strided auto-increment sequence: generated keys are
  /// start, start+step, start+step*2, … Shard s of N uses (s+1, N) so
  /// every shard draws from a disjoint congruence class and the owning
  /// shard of any key is recoverable as (key-1) mod N. Must be called
  /// before the first insert; (1, 1) is the default single-shard
  /// sequence.
  void set_auto_increment(std::int64_t start, std::int64_t step);

  /// Fetch by RowId; nullptr when deleted/nonexistent.
  [[nodiscard]] const Row* fetch(RowId id) const noexcept;

  /// Fetch by primary-key value (indexed).
  [[nodiscard]] std::optional<RowId> find_pk(const Value& key) const;

  /// RowIds whose indexed column equals `key`. nullopt when the column
  /// has no exact-match index (callers should fall back to a scan);
  /// an engaged empty vector means "indexed, no matches" — the two
  /// cases were conflated as one empty vector before.
  [[nodiscard]] std::optional<std::vector<RowId>> index_lookup(
      const std::string& column, const Value& key) const;

  /// True when `column` has an exact-match index available.
  [[nodiscard]] bool has_index(const std::string& column) const;

  /// Updates columns of the row `id`; maintains indexes. Returns false
  /// when the row does not exist.
  bool update(RowId id, const std::vector<std::pair<std::string, Value>>& sets);

  /// Tombstones the row; returns false when absent.
  bool erase(RowId id);

  // Low-level hooks used by Database's transaction rollback; they bypass
  // constraint checks because they restore a previously valid state.

  /// Overwrites a live row in place, maintaining indexes.
  void raw_replace(RowId id, Row row);

  /// Revives a tombstoned row with its prior contents.
  void raw_revive(RowId id, Row row);

  /// Applies `fn(id, row)` to every live row.
  template <typename Fn>
  void scan(Fn&& fn) const {
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (!live_[i]) continue;
      fn(static_cast<RowId>(i), rows_[i]);
    }
  }

  [[nodiscard]] std::size_t row_count() const noexcept { return live_count_; }

  /// Total storage slots, live or tombstoned (== one past the highest
  /// RowId ever assigned).
  [[nodiscard]] std::size_t slot_count() const noexcept { return rows_.size(); }

  /// Tombstoned slots still occupying storage.
  [[nodiscard]] std::size_t dead_count() const noexcept {
    return rows_.size() - live_count_;
  }

  /// Tombstoned slots whose payloads sealing has reclaimed so far.
  [[nodiscard]] std::size_t reclaimed_count() const noexcept {
    return reclaimed_;
  }

  /// Monotonic modification counter: bumped by every mutation, including
  /// the raw_* rollback hooks (an undone change still invalidates any
  /// result computed from the intermediate state). Query caches key
  /// results on it (query::QueryExecutor).
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  // -- columnar segments (segment.hpp, DESIGN.md §15) -----------------------

  [[nodiscard]] const ColumnStore& column_store() const noexcept {
    return store_;
  }

  /// Rolls cold, uncovered slot ranges into columnar segments per
  /// `opts`, reclaiming tombstoned payloads inside sealed ranges. Does
  /// NOT bump version(): sealing changes the physical layout only, so
  /// cached results stay valid. Caller holds the shard's exclusive lock.
  SealStats seal(const SealOptions& opts);

 private:
  void index_insert(RowId id, const Row& row);
  void index_remove(RowId id, const Row& row);
  void check_not_null(const Row& row) const;
  void check_unique(const Row& row, std::optional<RowId> ignore) const;

  TableDef def_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  std::size_t live_count_ = 0;
  std::uint64_t version_ = 0;

  std::optional<std::size_t> pk_col_;  ///< Index into columns.
  std::int64_t next_auto_ = 1;
  std::int64_t auto_step_ = 1;
  std::unordered_map<Value, RowId> pk_index_;

  /// column index -> (value -> row ids). Built for every IndexDef column
  /// (first column of a composite index gets the exact-match map).
  std::unordered_map<std::size_t, std::multimap<Value, RowId>> secondary_;
  std::vector<std::size_t> unique_single_;  ///< Columns with UNIQUE index.

  ColumnStore store_;          ///< Columnar acceleration segments.
  std::size_t reclaimed_ = 0;  ///< Dead payloads freed by seal().
};

}  // namespace stampede::db
