#pragma once
// Per-event trace stamps threaded through the monitoring pipeline.
//
// Each BP record is stamped (telemetry::now() seconds, one shared steady
// clock) as it crosses a pipeline stage:
//
//   published  — BpPublisher::publish, before the broker sees it
//   enqueued   — Broker::publish, as the message lands on a queue
//   dequeued   — QueuePump, when the loader pulls it off the queue
//   (commit)   — observed by the loader when the ORM transaction that
//                contains the event's rows commits
//
// The stamps ride on bus::Message (not on the BP text), so the record
// bytes stay identical to what a file replay would see. A zero stamp
// means "stage not traced" (telemetry disabled, or the event entered the
// pipeline downstream of that stage — e.g. file replays never pass the
// broker); consumers skip observations whose inputs are zero.
//
// Since distributed tracing (DESIGN.md §11) the stamps also carry the
// event's TraceContext plus wall-clock-anchored copies of each stage
// time. The steady stamps above remain the source of truth for the
// latency histograms (immune to wall steps, but process-local); the
// wall stamps place the same instants on a cross-process axis so the
// loader can reconstruct a publish→enqueue→spool→dequeue→commit
// waterfall even when the publisher was another host.

#include "telemetry/span.hpp"

namespace stampede::telemetry {

struct TraceStamps {
  double published = 0.0;
  double enqueued = 0.0;
  double dequeued = 0.0;

  // Distributed-tracing context + anchored wall-clock stage times
  // (Tracer::wall_at); 0 = stage not traced or upstream peer untraced.
  TraceContext context;
  double published_wall = 0.0;
  double enqueued_wall = 0.0;
  double spooled_wall = 0.0;
  double dequeued_wall = 0.0;

  [[nodiscard]] bool traced() const noexcept { return published > 0.0; }
};

}  // namespace stampede::telemetry
