#pragma once
// Per-event trace stamps threaded through the monitoring pipeline.
//
// Each BP record is stamped (telemetry::now() seconds, one shared steady
// clock) as it crosses a pipeline stage:
//
//   published  — BpPublisher::publish, before the broker sees it
//   enqueued   — Broker::publish, as the message lands on a queue
//   dequeued   — QueuePump, when the loader pulls it off the queue
//   (commit)   — observed by the loader when the ORM transaction that
//                contains the event's rows commits
//
// The stamps ride on bus::Message (not on the BP text), so the record
// bytes stay identical to what a file replay would see. A zero stamp
// means "stage not traced" (telemetry disabled, or the event entered the
// pipeline downstream of that stage — e.g. file replays never pass the
// broker); consumers skip observations whose inputs are zero.

namespace stampede::telemetry {

struct TraceStamps {
  double published = 0.0;
  double enqueued = 0.0;
  double dequeued = 0.0;

  [[nodiscard]] bool traced() const noexcept { return published > 0.0; }
};

}  // namespace stampede::telemetry
