#pragma once
// The process-wide tracer (DESIGN.md §11): id generation, head-based
// sampling, wall-clock anchoring, and the SpanSink finished spans flow
// into.
//
// Sampling is decided once, at the trace root (BpPublisher, or the root
// SpanGuard of a local operation), by comparing a fresh random id
// against a threshold derived from the configured rate; the decision
// travels in TraceContext.flags so downstream stages never re-decide.
// Unsampled work costs one relaxed atomic RMW at the root and nothing
// downstream. Error spans are always recorded, even when their trace
// was not head-sampled — failed operations synthesize ids on the spot.
//
// The tracer is inert while telemetry is disabled (runtime kill-switch
// or STAMPEDE_TELEMETRY_DISABLED): start_trace() returns an invalid
// context and guards never record.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace stampede::telemetry {

class Tracer {
 public:
  /// The process singleton. First use captures the wall-clock anchor.
  static Tracer& instance();

  /// Fraction of new traces to sample, clamped to [0, 1]. Default 0.01
  /// (kDefaultSampleRate); 0 disables root span creation entirely.
  void set_sample_rate(double rate);
  [[nodiscard]] double sample_rate() const;

  /// A fresh nonzero 64-bit id (splitmix64 over a random-seeded
  /// counter; no locks).
  [[nodiscard]] std::uint64_t next_id();

  /// One head-sampling decision at the configured rate.
  [[nodiscard]] bool head_sample();

  /// Starts a new trace: fresh trace + span ids with the sampled flag
  /// set, or an invalid (all-zero) context when the head-sampling
  /// decision says no or telemetry is disabled.
  [[nodiscard]] TraceContext start_trace();

  /// A child position in `parent`'s trace (same trace id + flags, fresh
  /// span id). Invalid when the parent is invalid or unsampled.
  [[nodiscard]] TraceContext child_of(const TraceContext& parent);

  // -- Wall-clock anchoring --------------------------------------------
  // One (wall epoch, steady) pair captured at construction; spans
  // convert steady readings to epoch seconds through it so traces from
  // different processes share a time axis.

  /// Current anchored epoch seconds.
  [[nodiscard]] double wall_now() const;
  /// Anchored epoch seconds for a telemetry::now() steady reading.
  [[nodiscard]] double wall_at(double steady_seconds) const;

  [[nodiscard]] SpanSink& sink() noexcept { return sink_; }
  [[nodiscard]] const SpanSink& sink() const noexcept { return sink_; }

  /// Records a finished span into the sink (and the export hook, if
  /// set). Re-entrant calls made *from inside* the hook are dropped —
  /// the self-amplification guard for span re-publication.
  void record(Span span);

  /// Optional extra consumer of finished spans (e.g. re-publication as
  /// BP events onto the bus). Pass nullptr to clear. Set before spans
  /// flow; the hook runs on the recording thread.
  void set_export_hook(std::function<void(const Span&)> hook);

 private:
  Tracer();

  SpanSink sink_;
  std::atomic<std::uint64_t> id_state_;
  std::atomic<std::uint64_t> sample_threshold_;
  double wall_anchor_;    ///< Epoch seconds at anchor capture...
  double steady_anchor_;  ///< ...and the matching telemetry::now().
  std::mutex hook_mutex_;
  std::function<void(const Span&)> export_hook_;
};

inline constexpr double kDefaultSampleRate = 0.01;

/// RAII span: captures the start on construction, records on
/// destruction (or finish()). Inactive guards — unsampled parent,
/// telemetry disabled — cost two clock reads and never record, unless
/// set_error() fires, in which case the span is recorded regardless
/// (errors are always sampled).
class SpanGuard {
 public:
  SpanGuard() = default;  ///< Inactive.

  /// A child span of `parent`; inactive when parent is unsampled.
  SpanGuard(std::string name, const TraceContext& parent);

  /// A root span: makes its own head-sampling decision.
  [[nodiscard]] static SpanGuard root(std::string name);

  ~SpanGuard() { finish(); }

  SpanGuard(SpanGuard&& other) noexcept { *this = std::move(other); }
  SpanGuard& operator=(SpanGuard&& other) noexcept {
    finish();
    span_ = std::move(other.span_);
    start_steady_ = other.start_steady_;
    active_ = other.active_;
    done_ = other.done_;
    other.done_ = true;
    return *this;
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Attaches a key/value attribute (no-op when the span won't record).
  void attr(std::string key, std::string value);
  /// Marks the span failed; forces recording even when unsampled.
  void set_error();

  /// Records now instead of at destruction.
  void finish();

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] const TraceContext& context() const noexcept {
    return span_.context;
  }

 private:
  SpanGuard(std::string name, TraceContext context,
            std::uint64_t parent_span_id, bool active);

  Span span_;
  double start_steady_ = 0.0;
  bool active_ = false;
  bool done_ = true;
};

}  // namespace stampede::telemetry
