#include "telemetry/self_stats.hpp"

#include <chrono>

namespace stampede::telemetry {
namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// BP attribute keys must stay `key=value`-parseable; labeled series
/// names carry quotes and braces, so they are summarized by their base
/// family elsewhere and skipped here.
bool bp_safe(const std::string& name) {
  return name.find('{') == std::string::npos;
}

}  // namespace

SelfStatsEmitter::SelfStatsEmitter(Registry& registry, double interval_seconds,
                                   Emit emit)
    : registry_(&registry),
      interval_seconds_(interval_seconds > 0 ? interval_seconds : 1.0),
      emit_(std::move(emit)) {}

SelfStatsEmitter::~SelfStatsEmitter() { stop(); }

void SelfStatsEmitter::start() {
  if (started_) return;
  started_ = true;
  worker_ = std::jthread([this](std::stop_token stop) { run(stop); });
}

void SelfStatsEmitter::stop() {
  if (worker_.joinable()) {
    worker_.request_stop();
    wake_.notify_all();
    worker_.join();
  }
  started_ = false;
}

std::vector<nl::LogRecord> SelfStatsEmitter::snapshot_records() const {
  const double ts = wall_now();
  nl::LogRecord snapshot{ts, "stampede.loader.stats.snapshot"};
  nl::LogRecord latency{ts, "stampede.loader.stats.latency"};
  bool have_latency = false;
  for (const auto& sample : registry_->collect()) {
    if (!bp_safe(sample.name)) continue;
    switch (sample.type) {
      case Registry::Type::kCounter:
        snapshot.set(sample.name,
                     static_cast<std::int64_t>(sample.counter_value));
        break;
      case Registry::Type::kGauge:
        snapshot.set(sample.name, sample.gauge_value);
        snapshot.set(sample.name + ".high_water", sample.gauge_high_water);
        break;
      case Registry::Type::kHistogram:
        latency.set(sample.name + ".count",
                    static_cast<std::int64_t>(sample.histogram.count));
        latency.set(sample.name + ".p50", sample.histogram.quantile(0.50));
        latency.set(sample.name + ".p95", sample.histogram.quantile(0.95));
        latency.set(sample.name + ".p99", sample.histogram.quantile(0.99));
        have_latency = true;
        break;
    }
  }
  std::vector<nl::LogRecord> records;
  records.push_back(std::move(snapshot));
  if (have_latency) records.push_back(std::move(latency));
  return records;
}

void SelfStatsEmitter::run(const std::stop_token& stop) {
  const auto interval = std::chrono::duration<double>(interval_seconds_);
  std::unique_lock lock{wake_mutex_};
  while (!stop.stop_requested()) {
    if (wake_.wait_for(lock, stop, interval,
                       [&stop] { return stop.stop_requested(); })) {
      break;
    }
    lock.unlock();
    for (const auto& record : snapshot_records()) emit_(record);
    lock.lock();
  }
  lock.unlock();
  // Final snapshot so runs shorter than one interval still report.
  for (const auto& record : snapshot_records()) emit_(record);
}

}  // namespace stampede::telemetry
