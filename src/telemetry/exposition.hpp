#pragma once
// Renders a telemetry Registry for scrapers and humans.
//
// to_prometheus: the Prometheus text exposition format (v0.0.4) — what
// GET /metrics serves. Histograms render as native histogram series
// (<name>_bucket{le=...}, _sum, _count) plus convenience gauges
// <name>_p50/_p95/_p99 so dashboards get quantiles without PromQL.
//
// to_json: the same data as one JSON document — what GET /selfz serves.

#include <string>

#include "telemetry/metrics.hpp"

namespace stampede::telemetry {

[[nodiscard]] std::string to_prometheus(const Registry& registry);
[[nodiscard]] std::string to_json(const Registry& registry);

}  // namespace stampede::telemetry
