#include "telemetry/exposition.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string_view>

namespace stampede::telemetry {
namespace {

/// Base series name with any {label} suffix stripped — what # TYPE lines
/// announce.
std::string_view base_name(std::string_view name) {
  const auto brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

/// Splices an `le` label into a (possibly already labeled) series name:
/// "x" -> "x_bucket{le=\"b\"}", "x{q=\"y\"}" -> "x_bucket{q=\"y\",le=\"b\"}".
std::string bucket_series(std::string_view name, std::string_view le) {
  const auto brace = name.find('{');
  std::string out;
  if (brace == std::string_view::npos) {
    out.append(name);
    out.append("_bucket{le=\"");
  } else {
    out.append(name.substr(0, brace));
    out.append("_bucket");
    out.append(name.substr(brace, name.size() - brace - 1));
    out.append(",le=\"");
  }
  out.append(le);
  out.append("\"}");
  return out;
}

/// Suffixes a name before its label block: ("x{a=..}", "_sum") -> "x_sum{a=..}".
std::string suffixed(std::string_view name, std::string_view suffix) {
  const auto brace = name.find('{');
  std::string out;
  if (brace == std::string_view::npos) {
    out.append(name);
    out.append(suffix);
  } else {
    out.append(name.substr(0, brace));
    out.append(suffix);
    out.append(name.substr(brace));
  }
  return out;
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void type_line(std::string& out, std::string_view seen_before,
               std::string_view name, std::string_view type) {
  const auto base = base_name(name);
  if (base == seen_before) return;
  out.append("# TYPE ");
  out.append(base);
  out.push_back(' ');
  out.append(type);
  out.push_back('\n');
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\t':
        out.append("\\t");
        break;
      case '\r':
        out.append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string to_prometheus(const Registry& registry) {
  std::string out;
  std::string last_base;
  for (const auto& sample : registry.collect()) {
    switch (sample.type) {
      case Registry::Type::kCounter:
        type_line(out, last_base, sample.name, "counter");
        out.append(sample.name);
        out.push_back(' ');
        out.append(std::to_string(sample.counter_value));
        out.push_back('\n');
        break;
      case Registry::Type::kGauge:
        type_line(out, last_base, sample.name, "gauge");
        out.append(sample.name);
        out.push_back(' ');
        out.append(std::to_string(sample.gauge_value));
        out.push_back('\n');
        out.append(suffixed(sample.name, "_high_water"));
        out.push_back(' ');
        out.append(std::to_string(sample.gauge_high_water));
        out.push_back('\n');
        break;
      case Registry::Type::kHistogram: {
        type_line(out, last_base, sample.name, "histogram");
        const auto& h = sample.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += h.buckets[i];
          out.append(bucket_series(sample.name, format_double(h.bounds[i])));
          out.push_back(' ');
          out.append(std::to_string(cumulative));
          out.push_back('\n');
        }
        out.append(bucket_series(sample.name, "+Inf"));
        out.push_back(' ');
        out.append(std::to_string(h.count));
        out.push_back('\n');
        out.append(suffixed(sample.name, "_sum"));
        out.push_back(' ');
        out.append(format_double(h.sum));
        out.push_back('\n');
        out.append(suffixed(sample.name, "_count"));
        out.push_back(' ');
        out.append(std::to_string(h.count));
        out.push_back('\n');
        for (const auto& [suffix, q] :
             {std::pair{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}}) {
          out.append(suffixed(sample.name, suffix));
          out.push_back(' ');
          out.append(format_double(h.quantile(q)));
          out.push_back('\n');
        }
        break;
      }
    }
    last_base = base_name(sample.name);
  }
  return out;
}

std::string to_json(const Registry& registry) {
  std::string out = "{\"counters\":{";
  const auto samples = registry.collect();
  bool first = true;
  for (const auto& s : samples) {
    if (s.type != Registry::Type::kCounter) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(json_escape(s.name));
    out.append("\":");
    out.append(std::to_string(s.counter_value));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& s : samples) {
    if (s.type != Registry::Type::kGauge) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(json_escape(s.name));
    out.append("\":{\"value\":");
    out.append(std::to_string(s.gauge_value));
    out.append(",\"high_water\":");
    out.append(std::to_string(s.gauge_high_water));
    out.push_back('}');
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& s : samples) {
    if (s.type != Registry::Type::kHistogram) continue;
    if (!first) out.push_back(',');
    first = false;
    const auto& h = s.histogram;
    out.push_back('"');
    out.append(json_escape(s.name));
    out.append("\":{\"count\":");
    out.append(std::to_string(h.count));
    out.append(",\"sum\":");
    out.append(format_double(h.sum));
    out.append(",\"mean\":");
    out.append(format_double(h.mean()));
    out.append(",\"p50\":");
    out.append(format_double(h.quantile(0.50)));
    out.append(",\"p95\":");
    out.append(format_double(h.quantile(0.95)));
    out.append(",\"p99\":");
    out.append(format_double(h.quantile(0.99)));
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

}  // namespace stampede::telemetry
