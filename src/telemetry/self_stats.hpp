#pragma once
// Periodic self-telemetry snapshots as NetLogger BP events.
//
// The system's own health rides the same bus it monitors (the CMS
// pattern: the monitoring stack self-monitors). Every interval the
// emitter renders the registry into `stampede.loader.stats.*` records
// and hands them to a caller-supplied emit function — typically a
// bus::BpPublisher::publish bound with std::bind_front, or a formatter
// writing BP lines to a log. Attribute names are metric names; labeled
// series (containing '{') are skipped to keep the BP lines parseable.
//
// Emitted events:
//   stampede.loader.stats.snapshot — counters and gauges
//   stampede.loader.stats.latency  — histogram count/p50/p95/p99 series

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "netlogger/record.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::telemetry {

class SelfStatsEmitter {
 public:
  using Emit = std::function<void(const nl::LogRecord&)>;

  /// Emits every `interval_seconds` once started; also emits one final
  /// snapshot on stop so short runs still report.
  SelfStatsEmitter(Registry& registry, double interval_seconds, Emit emit);
  ~SelfStatsEmitter();

  SelfStatsEmitter(const SelfStatsEmitter&) = delete;
  SelfStatsEmitter& operator=(const SelfStatsEmitter&) = delete;

  void start();
  void stop();  ///< Idempotent; joins the emitter thread.

  /// Renders the registry into the snapshot + latency records without
  /// touching the schedule (used by the periodic thread, the final
  /// flush, and tests).
  [[nodiscard]] std::vector<nl::LogRecord> snapshot_records() const;

 private:
  void run(const std::stop_token& stop);

  Registry* registry_;
  double interval_seconds_;
  Emit emit_;
  std::jthread worker_;
  std::mutex wake_mutex_;
  std::condition_variable_any wake_;
  bool started_ = false;
};

}  // namespace stampede::telemetry
