#include "telemetry/tracer.hpp"

#include <chrono>
#include <random>

namespace stampede::telemetry {

namespace {

/// Tracer instruments, resolved once (same pattern as the bus/net
/// telemetry structs).
struct TraceTelemetry {
  Counter& spans = registry().counter("stampede_trace_spans_total");
  Counter& sampled = registry().counter("stampede_trace_sampled_total");
  Counter& unsampled = registry().counter("stampede_trace_unsampled_total");
  Counter& export_suppressed =
      registry().counter("stampede_trace_export_suppressed_total");
  Gauge& sample_permille =
      registry().gauge("stampede_trace_sample_rate_permille");
};

TraceTelemetry& trace_telemetry() {
  static TraceTelemetry instance;
  return instance;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t random_seed() {
  std::random_device rd;
  const std::uint64_t hi = static_cast<std::uint64_t>(rd()) << 32;
  const std::uint64_t steady = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return hi ^ rd() ^ splitmix64(steady);
}

std::uint64_t rate_to_threshold(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return UINT64_MAX;
  return static_cast<std::uint64_t>(rate * 18446744073709551616.0 /* 2^64 */);
}

/// True while the current thread is inside the export hook — recording
/// from there would let re-published spans spawn further spans.
thread_local bool g_in_export_hook = false;

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer()
    : id_state_(random_seed()),
      sample_threshold_(rate_to_threshold(kDefaultSampleRate)) {
  wall_anchor_ = std::chrono::duration<double>(
                     std::chrono::system_clock::now().time_since_epoch())
                     .count();
  steady_anchor_ = now();
  trace_telemetry().sample_permille.set(
      static_cast<std::int64_t>(kDefaultSampleRate * 1000.0));
}

void Tracer::set_sample_rate(double rate) {
  if (rate < 0.0) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  sample_threshold_.store(rate_to_threshold(rate), std::memory_order_relaxed);
  trace_telemetry().sample_permille.set(
      static_cast<std::int64_t>(rate * 1000.0));
}

double Tracer::sample_rate() const {
  const std::uint64_t threshold =
      sample_threshold_.load(std::memory_order_relaxed);
  if (threshold == 0) return 0.0;
  if (threshold == UINT64_MAX) return 1.0;
  return static_cast<double>(threshold) / 18446744073709551616.0;
}

std::uint64_t Tracer::next_id() {
  // fetch_add with an odd constant walks the full 2^64 cycle; splitmix64
  // whitens it into well-distributed nonzero ids.
  const std::uint64_t raw = id_state_.fetch_add(0x9E3779B97F4A7C15ULL,
                                                std::memory_order_relaxed);
  const std::uint64_t id = splitmix64(raw);
  return id != 0 ? id : 1;
}

bool Tracer::head_sample() {
  const std::uint64_t threshold =
      sample_threshold_.load(std::memory_order_relaxed);
  if (threshold == 0) return false;
  if (threshold == UINT64_MAX) {
    trace_telemetry().sampled.inc();
    return true;
  }
  if (next_id() < threshold) {
    trace_telemetry().sampled.inc();
    return true;
  }
  trace_telemetry().unsampled.inc();
  return false;
}

TraceContext Tracer::start_trace() {
  if (!enabled() || !head_sample()) return {};
  TraceContext context;
  context.trace_hi = next_id();
  context.trace_lo = next_id();
  context.span_id = next_id();
  context.flags = kTraceFlagSampled;
  return context;
}

TraceContext Tracer::child_of(const TraceContext& parent) {
  if (!parent.valid() || !parent.sampled()) return {};
  TraceContext context = parent;
  context.span_id = next_id();
  return context;
}

double Tracer::wall_now() const { return wall_at(now()); }

double Tracer::wall_at(double steady_seconds) const {
  return wall_anchor_ + (steady_seconds - steady_anchor_);
}

void Tracer::record(Span span) {
  if (g_in_export_hook) {
    trace_telemetry().export_suppressed.inc();
    return;
  }
  trace_telemetry().spans.inc();
  std::function<void(const Span&)> hook;
  {
    const std::lock_guard<std::mutex> lock{hook_mutex_};
    hook = export_hook_;
  }
  if (hook) {
    g_in_export_hook = true;
    try {
      hook(span);
    } catch (...) {
      // An exporter failure must never break the traced operation.
    }
    g_in_export_hook = false;
  }
  sink_.record(std::move(span));
}

void Tracer::set_export_hook(std::function<void(const Span&)> hook) {
  const std::lock_guard<std::mutex> lock{hook_mutex_};
  export_hook_ = std::move(hook);
}

// ---------------------------------------------------------------------------
// SpanGuard

SpanGuard::SpanGuard(std::string name, const TraceContext& parent)
    : SpanGuard(std::move(name), Tracer::instance().child_of(parent),
                parent.span_id, parent.valid() && parent.sampled()) {}

SpanGuard SpanGuard::root(std::string name) {
  TraceContext context = Tracer::instance().start_trace();
  return SpanGuard{std::move(name), context, 0, context.valid()};
}

SpanGuard::SpanGuard(std::string name, TraceContext context,
                     std::uint64_t parent_span_id, bool active)
    : active_(active && enabled()), done_(false) {
  span_.name = std::move(name);
  span_.context = context;
  span_.parent_span_id = parent_span_id;
  start_steady_ = now();
  span_.start_wall = Tracer::instance().wall_at(start_steady_);
}

void SpanGuard::attr(std::string key, std::string value) {
  if (done_ || (!active_ && !span_.error)) return;
  span_.attributes.emplace_back(std::move(key), std::move(value));
}

void SpanGuard::set_error() {
  if (done_) return;
  span_.error = true;
}

void SpanGuard::finish() {
  if (done_) return;
  done_ = true;
  if (!active_ && !span_.error) return;
  if (!enabled()) return;
  auto& tracer = Tracer::instance();
  if (!span_.context.valid()) {
    // Error in an unsampled operation: synthesize ids so the span is
    // self-consistent (errors are always sampled).
    span_.context.trace_hi = tracer.next_id();
    span_.context.trace_lo = tracer.next_id();
    span_.context.span_id = tracer.next_id();
    span_.context.flags = kTraceFlagSampled;
  }
  span_.duration = now() - start_steady_;
  tracer.record(std::move(span_));
}

}  // namespace stampede::telemetry
