#include "telemetry/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace stampede::telemetry {

double now() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(HistogramOptions options) : options_(options) {
  if (options_.bucket_count < 1) options_.bucket_count = 1;
  if (options_.growth <= 1.0) options_.growth = 2.0;
  if (options_.first_bound <= 0.0) options_.first_bound = 1e-6;
  bounds_.reserve(static_cast<std::size_t>(options_.bucket_count));
  double bound = options_.first_bound;
  for (int i = 0; i < options_.bucket_count; ++i) {
    bounds_.push_back(bound);
    bound *= options_.growth;
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

std::size_t Histogram::bucket_index(double value) const noexcept {
  if (!(value > bounds_.front())) return 0;  // Also catches NaN/negatives.
  // log-bucketed: index is the ceiling of log_growth(value / first_bound).
  const double exact =
      std::log(value / options_.first_bound) / std::log(options_.growth);
  auto index = static_cast<std::size_t>(std::ceil(exact - 1e-9));
  if (index >= bounds_.size()) return bounds_.size();  // Overflow bucket.
  // Guard against floating-point edge cases right at a bound.
  while (index > 0 && value <= bounds_[index - 1]) --index;
  while (index < bounds_.size() && value > bounds_[index]) ++index;
  return index;
}

void Histogram::observe(double value) noexcept {
#ifndef STAMPEDE_TELEMETRY_DISABLED
  if (!enabled()) return;
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
#else
  (void)value;
#endif
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  // Derive the count from the copied buckets so count and buckets agree
  // even while observes race the copy; sum is best-effort.
  snap.count = 0;
  for (const auto b : snap.buckets) snap.count += b;
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (i >= bounds.size()) return bounds.back();  // Overflow bucket.
      const double upper = bounds[i];
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * within;
    }
    cumulative += in_bucket;
  }
  return bounds.back();
}

// ---------------------------------------------------------------------------
// Registry

std::string labeled(std::string_view name, std::string_view key,
                    std::string_view value) {
  std::string out;
  out.reserve(name.size() + key.size() + value.size() + 5);
  out.append(name);
  out.push_back('{');
  out.append(key);
  out.append("=\"");
  for (const char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.append("\"}");
  return out;
}

Counter& Registry::counter(const std::string& name) {
  const std::scoped_lock lock{mutex_};
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::scoped_lock lock{mutex_};
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               HistogramOptions options) {
  const std::scoped_lock lock{mutex_};
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(options);
  return *slot;
}

std::vector<Registry::Sample> Registry::collect() const {
  const std::scoped_lock lock{mutex_};
  std::vector<Sample> samples;
  samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    Sample s;
    s.name = name;
    s.type = Type::kCounter;
    s.counter_value = counter->value();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    Sample s;
    s.name = name;
    s.type = Type::kGauge;
    s.gauge_value = gauge->value();
    s.gauge_high_water = gauge->high_water();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, histogram] : histograms_) {
    Sample s;
    s.name = name;
    s.type = Type::kHistogram;
    s.histogram = histogram->snapshot();
    samples.push_back(std::move(s));
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return samples;
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace stampede::telemetry
