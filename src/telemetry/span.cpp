#include "telemetry/span.hpp"

#include <algorithm>
#include <cstdint>

namespace stampede::telemetry {

namespace {

void append_hex(std::string& out, std::uint64_t v, int digits) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = (digits - 1) * 4; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(v >> shift) & 0xF]);
  }
}

/// Parses exactly `digits` lowercase-or-uppercase hex characters.
bool parse_hex(std::string_view text, std::uint64_t* out) {
  std::uint64_t v = 0;
  for (const char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

}  // namespace

std::string TraceContext::to_traceparent() const {
  std::string out;
  out.reserve(55);
  out.append("00-");
  append_hex(out, trace_hi, 16);
  append_hex(out, trace_lo, 16);
  out.push_back('-');
  append_hex(out, span_id, 16);
  out.push_back('-');
  append_hex(out, flags, 2);
  return out;
}

bool TraceContext::from_traceparent(std::string_view text, TraceContext* out) {
  // 00-<32>-<16>-<2> = 2 + 1 + 32 + 1 + 16 + 1 + 2 = 55 characters.
  if (text.size() != 55 || text.substr(0, 3) != "00-" || text[35] != '-' ||
      text[52] != '-') {
    return false;
  }
  TraceContext parsed;
  std::uint64_t flags = 0;
  if (!parse_hex(text.substr(3, 16), &parsed.trace_hi) ||
      !parse_hex(text.substr(19, 16), &parsed.trace_lo) ||
      !parse_hex(text.substr(36, 16), &parsed.span_id) ||
      !parse_hex(text.substr(53, 2), &flags)) {
    return false;
  }
  parsed.flags = static_cast<std::uint8_t>(flags);
  if (!parsed.valid()) return false;
  *out = parsed;
  return true;
}

std::string TraceContext::trace_id_hex() const {
  std::string out;
  out.reserve(32);
  append_hex(out, trace_hi, 16);
  append_hex(out, trace_lo, 16);
  return out;
}

std::string TraceContext::span_id_hex() const {
  std::string out;
  out.reserve(16);
  append_hex(out, span_id, 16);
  return out;
}

// ---------------------------------------------------------------------------
// SpanSink

SpanSink::SpanSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 256));
}

void SpanSink::record(Span span) {
  const std::lock_guard<std::mutex> lock{mutex_};
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[next_] = std::move(span);
  next_ = (next_ + 1) % capacity_;
}

std::vector<Span> SpanSink::recent(std::size_t limit) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<Span> out;
  const std::size_t n = std::min(limit, ring_.size());
  out.reserve(n);
  // Newest element sits just before the write cursor (or at the back
  // while the ring is still filling).
  std::size_t pos = ring_.size() < capacity_ ? ring_.size() : next_;
  for (std::size_t i = 0; i < n; ++i) {
    pos = (pos + ring_.size() - 1) % ring_.size();
    out.push_back(ring_[pos]);
  }
  return out;
}

std::vector<Span> SpanSink::slowest(std::size_t limit) const {
  std::vector<Span> out;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    out = ring_;
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.duration > b.duration;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<Span> SpanSink::errors(std::size_t limit) const {
  std::vector<Span> newest = recent(capacity_);
  std::vector<Span> out;
  for (auto& span : newest) {
    if (!span.error) continue;
    out.push_back(std::move(span));
    if (out.size() >= limit) break;
  }
  return out;
}

std::vector<Span> SpanSink::trace(std::uint64_t trace_hi,
                                  std::uint64_t trace_lo) const {
  std::vector<Span> out;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    for (const auto& span : ring_) {
      if (span.context.trace_hi == trace_hi &&
          span.context.trace_lo == trace_lo) {
        out.push_back(span);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_wall < b.start_wall;
  });
  return out;
}

std::uint64_t SpanSink::recorded() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return recorded_;
}

std::uint64_t SpanSink::dropped() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

void SpanSink::clear() {
  const std::lock_guard<std::mutex> lock{mutex_};
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

}  // namespace stampede::telemetry
