#pragma once
// Distributed-tracing primitives (DESIGN.md §11).
//
// A trace is one monitoring event's causal path through the pipeline
// (publish → enqueue → spool → dequeue → commit), possibly crossing
// process boundaries over the networked bus. Identifiers follow the
// W3C trace-context shape: a 128-bit trace id names the whole causal
// tree, a 64-bit span id names one timed operation inside it, and the
// `traceparent` text form (`00-<32 hex>-<16 hex>-<2 hex>`) is what
// rides in message headers and spool records so old peers — which
// forward headers untouched — keep the trace alive.
//
// Span timestamps are *wall-clock anchored*: each process captures one
// (wall epoch, steady clock) pair at tracer startup and converts its
// steady-clock readings to epoch seconds through that anchor. Durations
// therefore come from the steady clock (immune to wall steps) while
// start times from different hosts line up on a shared axis — the
// property the latency-waterfall view needs.
//
// Finished spans land in a SpanSink: a fixed-capacity ring buffer (the
// self-monitoring archive) that /tracez renders as recent/slow/error
// views and the dashboard renders as a per-trace waterfall.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stampede::telemetry {

/// TraceContext.flags bit 0 — the head-based sampling decision made at
/// the trace root; downstream stages create spans only when set.
inline constexpr std::uint8_t kTraceFlagSampled = 0x01;

/// The propagated identity of one position in a trace: which trace, which
/// span, and whether the root sampled it. All-zero ids mean "no trace".
struct TraceContext {
  std::uint64_t trace_hi = 0;  ///< High 64 bits of the 128-bit trace id.
  std::uint64_t trace_lo = 0;  ///< Low 64 bits of the 128-bit trace id.
  std::uint64_t span_id = 0;   ///< This hop's span id.
  std::uint8_t flags = 0;      ///< kTraceFlag* bits.

  [[nodiscard]] bool valid() const noexcept {
    return (trace_hi | trace_lo) != 0 && span_id != 0;
  }
  [[nodiscard]] bool sampled() const noexcept {
    return (flags & kTraceFlagSampled) != 0;
  }

  /// `00-<trace id, 32 hex>-<span id, 16 hex>-<flags, 2 hex>`.
  [[nodiscard]] std::string to_traceparent() const;
  /// Parses the exact format to_traceparent emits (version 00 only).
  /// Returns false — leaving *out untouched — on anything malformed.
  [[nodiscard]] static bool from_traceparent(std::string_view text,
                                             TraceContext* out);

  [[nodiscard]] std::string trace_id_hex() const;
  [[nodiscard]] std::string span_id_hex() const;

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// One finished, timed operation. `context.span_id` is this span's own
/// id; `parent_span_id` links it into the trace tree (0 = root).
struct Span {
  std::string name;
  TraceContext context;
  std::uint64_t parent_span_id = 0;
  double start_wall = 0.0;  ///< Anchored epoch seconds (Tracer::wall_at).
  double duration = 0.0;    ///< Steady-clock seconds.
  bool error = false;
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// Fixed-capacity ring buffer of finished spans — the tracer's
/// self-monitoring archive. Thread-safe; when full, the oldest span is
/// overwritten (and counted as dropped) so memory stays bounded no
/// matter the sampling rate.
class SpanSink {
 public:
  explicit SpanSink(std::size_t capacity = 4096);

  void record(Span span);

  /// Newest-first, up to `limit` spans.
  [[nodiscard]] std::vector<Span> recent(std::size_t limit) const;
  /// Longest-duration-first, up to `limit` spans.
  [[nodiscard]] std::vector<Span> slowest(std::size_t limit) const;
  /// Newest-first error spans, up to `limit`.
  [[nodiscard]] std::vector<Span> errors(std::size_t limit) const;
  /// Every retained span of one trace, ascending start time — the
  /// waterfall's input.
  [[nodiscard]] std::vector<Span> trace(std::uint64_t trace_hi,
                                        std::uint64_t trace_lo) const;

  [[nodiscard]] std::uint64_t recorded() const;  ///< Spans ever recorded.
  [[nodiscard]] std::uint64_t dropped() const;   ///< Overwritten by wrap.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void clear();

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<Span> ring_;       ///< Grows to capacity_, then wraps.
  std::size_t next_ = 0;         ///< Ring write cursor.
  std::uint64_t recorded_ = 0;
};

}  // namespace stampede::telemetry
