#pragma once
// Self-telemetry primitives: the monitoring system monitoring itself.
//
// The paper's pitch is *real-time* loading — events reach the archive
// "while the workflow is still running" (§IV-D/E) — but that claim is
// only as good as our ability to measure it. This module provides the
// thread-safe, low-overhead instruments the pipeline hot paths use:
// atomic counters, gauges with high-water tracking, and log-bucketed
// histograms with percentile extraction. A Registry owns instruments by
// name and hands out stable references so hot paths pay one lookup at
// construction time and plain relaxed atomics afterwards.
//
// Cost model: every mutation is a relaxed atomic RMW (plus one log2 for
// histograms) behind a relaxed enabled() check. Building with
// -DSTAMPEDE_TELEMETRY_DISABLED compiles all mutations out entirely;
// bench/bench_telemetry_overhead.cpp quantifies both configurations.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace stampede::telemetry {

// ---------------------------------------------------------------------------
// Runtime switch + monotonic clock

namespace detail {
inline std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}
}  // namespace detail

/// Global runtime kill-switch (default on). Checked with relaxed loads on
/// every instrument mutation; flipping it off reduces telemetry to a
/// single predictable branch per site.
[[nodiscard]] inline bool enabled() noexcept {
#ifdef STAMPEDE_TELEMETRY_DISABLED
  return false;
#else
  return detail::enabled_flag().load(std::memory_order_relaxed);
#endif
}

inline void set_enabled(bool on) noexcept {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Monotonic seconds since process start (steady clock). All trace
/// stamps share this base so cross-stage differences are meaningful even
/// when the wall clock steps.
[[nodiscard]] double now() noexcept;

/// now() when telemetry is enabled, 0.0 otherwise. Stages treat a zero
/// stamp as "not traced" and skip downstream observations.
[[nodiscard]] inline double trace_now() noexcept {
  return enabled() ? now() : 0.0;
}

// ---------------------------------------------------------------------------
// Instruments

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
#ifndef STAMPEDE_TELEMETRY_DISABLED
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, pending rows...) with a high-water
/// mark so short spikes survive scrape intervals.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#ifndef STAMPEDE_TELEMETRY_DISABLED
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
    raise_high_water(v);
#else
    (void)v;
#endif
  }

  void add(std::int64_t delta) noexcept {
#ifndef STAMPEDE_TELEMETRY_DISABLED
    if (!enabled()) return;
    const std::int64_t v =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    raise_high_water(v);
#else
    (void)delta;
#endif
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  void raise_high_water(std::int64_t v) noexcept {
    std::int64_t seen = high_water_.load(std::memory_order_relaxed);
    while (v > seen && !high_water_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> high_water_{0};
};

/// Bucket layout for a log-bucketed histogram: bucket i covers
/// (first_bound * growth^(i-1), first_bound * growth^i]; one overflow
/// bucket catches everything beyond the last bound. The defaults span
/// 1µs .. ~9 minutes of latency in 40 power-of-two buckets.
struct HistogramOptions {
  double first_bound = 1e-6;
  double growth = 2.0;
  int bucket_count = 40;
};

/// Lock-free log-bucketed histogram over non-negative doubles.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void observe(double value) noexcept;

  /// Consistent-enough copy for exposition (buckets are read relaxed;
  /// concurrent observes may straddle the copy, never corrupt it).
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<double> bounds;         ///< Upper bound per finite bucket.
    std::vector<std::uint64_t> buckets; ///< bounds.size() + 1 (overflow).

    [[nodiscard]] double mean() const noexcept {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /// q in [0,1]; linear interpolation inside the winning bucket. The
    /// overflow bucket reports the last finite bound.
    [[nodiscard]] double quantile(double q) const noexcept;
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::size_t bucket_index(double value) const noexcept;

  HistogramOptions options_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// ---------------------------------------------------------------------------
// Registry

/// Builds "name{key=\"value\"}" — the labeled-series naming convention
/// the registry and the Prometheus exposition share. Quotes and
/// backslashes in the value are escaped.
[[nodiscard]] std::string labeled(std::string_view name, std::string_view key,
                                  std::string_view value);

/// Thread-safe instrument directory. get-or-create returns references
/// that stay valid for the registry's lifetime, so hot paths resolve
/// their instruments once and never touch the registry lock again.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, HistogramOptions options = {});

  enum class Type { kCounter, kGauge, kHistogram };

  struct Sample {
    std::string name;
    Type type = Type::kCounter;
    std::uint64_t counter_value = 0;
    std::int64_t gauge_value = 0;
    std::int64_t gauge_high_water = 0;
    Histogram::Snapshot histogram;
  };

  /// Point-in-time copy of every instrument, sorted by name.
  [[nodiscard]] std::vector<Sample> collect() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every built-in instrumentation site uses.
[[nodiscard]] Registry& registry();

}  // namespace stampede::telemetry
