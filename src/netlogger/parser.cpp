#include "netlogger/parser.hpp"

#include <cctype>

#include "common/string_utils.hpp"
#include "common/time_utils.hpp"

namespace stampede::nl {
namespace {

bool is_key_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' ||
         c == '_' || c == '-';
}

}  // namespace

std::string escape_value(std::string_view value) {
  bool needs_quotes = value.empty();
  for (const char c : value) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0 || c == '=' ||
        c == '"' || c == '\\') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string{value};
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (const char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

ParseResult parse_line(std::string_view line) {
  const std::string_view trimmed = common::trim(line);
  if (trimmed.empty() || trimmed.front() == '#') {
    return ParseError{0, 0, "empty"};
  }

  LogRecord record;
  bool saw_ts = false;
  bool saw_event = false;

  std::size_t i = 0;
  const std::size_t n = trimmed.size();
  while (i < n) {
    // Skip inter-pair whitespace.
    while (i < n && std::isspace(static_cast<unsigned char>(trimmed[i]))) ++i;
    if (i >= n) break;

    // Key.
    const std::size_t key_start = i;
    while (i < n && is_key_char(trimmed[i])) ++i;
    if (i == key_start || i >= n || trimmed[i] != '=') {
      return ParseError{0, i, "expected key=value pair"};
    }
    const std::string_view key = trimmed.substr(key_start, i - key_start);
    ++i;  // consume '='

    // Value: quoted or bare.
    std::string value;
    if (i < n && trimmed[i] == '"') {
      ++i;
      bool closed = false;
      while (i < n) {
        const char c = trimmed[i];
        if (c == '\\') {
          if (i + 1 >= n) return ParseError{0, i, "dangling escape"};
          value.push_back(trimmed[i + 1]);
          i += 2;
        } else if (c == '"') {
          ++i;
          closed = true;
          break;
        } else {
          value.push_back(c);
          ++i;
        }
      }
      if (!closed) return ParseError{0, i, "unterminated quoted value"};
      if (i < n && !std::isspace(static_cast<unsigned char>(trimmed[i]))) {
        return ParseError{0, i, "garbage after quoted value"};
      }
    } else {
      const std::size_t val_start = i;
      while (i < n && !std::isspace(static_cast<unsigned char>(trimmed[i]))) {
        ++i;
      }
      value.assign(trimmed.substr(val_start, i - val_start));
    }

    if (key == "ts") {
      const auto ts = common::parse_timestamp(value);
      if (!ts) return ParseError{0, key_start, "bad timestamp: " + value};
      record.set_ts(*ts);
      saw_ts = true;
    } else if (key == "event") {
      if (value.empty()) return ParseError{0, key_start, "empty event name"};
      record.set_event(std::move(value));
      saw_event = true;
    } else if (key == "level") {
      const auto level = parse_level(value);
      if (!level) return ParseError{0, key_start, "bad level: " + value};
      record.set_level(*level);
    } else {
      record.set(key, std::move(value));
    }
  }

  if (!saw_ts) return ParseError{0, 0, "missing ts"};
  if (!saw_event) return ParseError{0, 0, "missing event"};
  return record;
}

std::optional<LogRecord> StreamParser::next() {
  std::string line;
  while (std::getline(*in_, line)) {
    ++lines_;
    const std::string_view trimmed = common::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    ParseResult result = parse_line(line);
    if (auto* record = std::get_if<LogRecord>(&result)) {
      return std::move(*record);
    }
    auto& err = std::get<ParseError>(result);
    err.line_number = lines_;
    errors_.push_back(std::move(err));
  }
  return std::nullopt;
}

}  // namespace stampede::nl
