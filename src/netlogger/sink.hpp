#pragma once
// Event sinks: where engines send their normalized Stampede events.
//
// The paper's Triana integration (§V, Fig. 5) lets the Rabbit Appender
// record events "to either a file for later evaluation, or ... directly
// to an AMQP queue for runtime processing". This interface abstracts that
// choice; a fan-out sink supports doing both at once (the DART experiment
// retained the plain-text logs *and* streamed to AMQP, §VII-A).

#include <memory>
#include <vector>

#include "netlogger/bp_file.hpp"
#include "netlogger/record.hpp"

namespace stampede::nl {

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const LogRecord& record) = 0;
};

/// Collects events in memory (tests, replay fixtures).
class VectorSink final : public EventSink {
 public:
  void emit(const LogRecord& record) override { records_.push_back(record); }
  [[nodiscard]] const std::vector<LogRecord>& records() const noexcept {
    return records_;
  }
  void clear() { records_.clear(); }

 private:
  std::vector<LogRecord> records_;
};

/// Appends events to a BP log file.
class FileSink final : public EventSink {
 public:
  explicit FileSink(const std::string& path) : writer_(path) {}
  void emit(const LogRecord& record) override {
    writer_.write(record);
    writer_.flush();
  }

 private:
  BpFileWriter writer_;
};

/// Fans one event out to several sinks.
class TeeSink final : public EventSink {
 public:
  void add(EventSink& sink) { sinks_.push_back(&sink); }
  void emit(const LogRecord& record) override {
    for (auto* sink : sinks_) sink->emit(record);
  }

 private:
  std::vector<EventSink*> sinks_;
};

}  // namespace stampede::nl
