#pragma once
// NetLogger Best-Practices (BP) log record.
//
// A BP message is a single line of `key=value` pairs. Three keys are
// universal: `ts` (timestamp), `event` (hierarchical dotted name) and
// `level`. The Stampede data model (paper §IV-B) rides on top of this
// format; every monitoring datum in the system is one of these records.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/time_utils.hpp"
#include "common/uuid.hpp"

namespace stampede::nl {

/// Severity levels from the NetLogger BP guide.
enum class Level : std::uint8_t {
  kFatal,
  kError,
  kWarn,
  kInfo,
  kDebug,
  kTrace,
};

/// Renders the canonical capitalized name ("Info", "Error", ...).
[[nodiscard]] std::string_view level_name(Level level) noexcept;

/// Parses a level name case-insensitively.
[[nodiscard]] std::optional<Level> parse_level(std::string_view name);

/// One BP log message.
///
/// Attribute order is preserved (insertion order) so formatted output is
/// stable and diff-able; lookup is linear, which is faster than a map for
/// the ≤20 attributes real events carry.
class LogRecord {
 public:
  LogRecord() = default;

  /// Convenience constructor for producers.
  LogRecord(common::Timestamp ts, std::string event, Level level = Level::kInfo)
      : ts_(ts), event_(std::move(event)), level_(level) {}

  [[nodiscard]] common::Timestamp ts() const noexcept { return ts_; }
  void set_ts(common::Timestamp ts) noexcept { ts_ = ts; }

  [[nodiscard]] const std::string& event() const noexcept { return event_; }
  void set_event(std::string event) { event_ = std::move(event); }

  [[nodiscard]] Level level() const noexcept { return level_; }
  void set_level(Level level) noexcept { level_ = level; }

  /// Sets (or replaces) an attribute.
  void set(std::string_view key, std::string value);
  void set(std::string_view key, std::int64_t value);
  void set(std::string_view key, double value);
  void set(std::string_view key, const common::Uuid& value);

  /// Raw string lookup; nullopt when absent.
  [[nodiscard]] std::optional<std::string_view> get(
      std::string_view key) const noexcept;

  /// Typed lookups; nullopt when absent *or* unparseable.
  [[nodiscard]] std::optional<std::int64_t> get_int(
      std::string_view key) const noexcept;
  [[nodiscard]] std::optional<double> get_double(
      std::string_view key) const noexcept;
  [[nodiscard]] std::optional<common::Uuid> get_uuid(
      std::string_view key) const noexcept;

  [[nodiscard]] bool has(std::string_view key) const noexcept {
    return get(key).has_value();
  }

  /// Removes an attribute; returns true if it was present.
  bool erase(std::string_view key);

  /// All attributes, in insertion order (excludes ts/event/level).
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  attributes() const noexcept {
    return attrs_;
  }

  friend bool operator==(const LogRecord&, const LogRecord&) = default;

 private:
  common::Timestamp ts_ = 0.0;
  std::string event_;
  Level level_ = Level::kInfo;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace stampede::nl
