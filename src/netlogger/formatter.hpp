#pragma once
// Renders LogRecords back to canonical BP text.

#include <string>

#include "netlogger/record.hpp"

namespace stampede::nl {

/// Timestamp rendering choice; the paper's examples use ISO8601 but the
/// loader accepts either, and epoch is cheaper for high-rate producers.
enum class TsFormat { kIso8601, kEpochSeconds };

/// Formats one record as a single BP line (no trailing newline).
/// `ts=` then `event=` then `level=` lead, followed by the remaining
/// attributes in insertion order — the canonical ordering used in the
/// paper's example messages.
[[nodiscard]] std::string format_record(const LogRecord& record,
                                        TsFormat ts_format = TsFormat::kIso8601);

}  // namespace stampede::nl
