#pragma once
// The Stampede event catalogue (paper §IV, and DESIGN.md §5).
//
// Producers (the Triana and Pegasus integrations) and the consumer
// (stampede_loader) agree on these dotted event names; the YANG schema in
// src/yang/stampede_schema.cpp formalizes the attributes each carries.

#include <string_view>

namespace stampede::nl::events {

// -- workflow lifecycle -----------------------------------------------------
inline constexpr std::string_view kWfPlan = "stampede.wf.plan";
inline constexpr std::string_view kXwfStart = "stampede.xwf.start";
inline constexpr std::string_view kXwfEnd = "stampede.xwf.end";

// -- static structure (emitted before execution begins) ---------------------
inline constexpr std::string_view kTaskInfo = "stampede.task.info";
inline constexpr std::string_view kTaskEdge = "stampede.task.edge";
inline constexpr std::string_view kJobInfo = "stampede.job.info";
inline constexpr std::string_view kJobEdge = "stampede.job.edge";
inline constexpr std::string_view kMapTaskJob = "stampede.wf.map.task_job";
inline constexpr std::string_view kMapSubwfJob = "stampede.xwf.map.subwf_job";

// -- job-instance lifecycle ---------------------------------------------------
inline constexpr std::string_view kJobInstPreStart =
    "stampede.job_inst.pre.start";
inline constexpr std::string_view kJobInstPreTerm =
    "stampede.job_inst.pre.term";
inline constexpr std::string_view kJobInstPreEnd = "stampede.job_inst.pre.end";
inline constexpr std::string_view kJobInstSubmitStart =
    "stampede.job_inst.submit.start";
inline constexpr std::string_view kJobInstSubmitEnd =
    "stampede.job_inst.submit.end";
inline constexpr std::string_view kJobInstHeldStart =
    "stampede.job_inst.held.start";
inline constexpr std::string_view kJobInstHeldEnd =
    "stampede.job_inst.held.end";
inline constexpr std::string_view kJobInstMainStart =
    "stampede.job_inst.main.start";
inline constexpr std::string_view kJobInstMainTerm =
    "stampede.job_inst.main.term";
inline constexpr std::string_view kJobInstMainEnd =
    "stampede.job_inst.main.end";
inline constexpr std::string_view kJobInstPostStart =
    "stampede.job_inst.post.start";
inline constexpr std::string_view kJobInstPostTerm =
    "stampede.job_inst.post.term";
inline constexpr std::string_view kJobInstPostEnd =
    "stampede.job_inst.post.end";
inline constexpr std::string_view kJobInstHostInfo =
    "stampede.job_inst.host.info";
inline constexpr std::string_view kJobInstImageInfo =
    "stampede.job_inst.image.info";

// -- invocations --------------------------------------------------------------
inline constexpr std::string_view kInvStart = "stampede.inv.start";
inline constexpr std::string_view kInvEnd = "stampede.inv.end";

// -- common attribute keys ----------------------------------------------------
namespace attr {
inline constexpr std::string_view kXwfId = "xwf.id";
inline constexpr std::string_view kParentXwfId = "parent.xwf.id";
inline constexpr std::string_view kRootXwfId = "root.xwf.id";
inline constexpr std::string_view kTaskId = "task.id";
inline constexpr std::string_view kJobId = "job.id";
inline constexpr std::string_view kJobInstId = "job_inst.id";
inline constexpr std::string_view kInvId = "inv.id";
inline constexpr std::string_view kParentTaskId = "parent.task.id";
inline constexpr std::string_view kChildTaskId = "child.task.id";
inline constexpr std::string_view kParentJobId = "parent.job.id";
inline constexpr std::string_view kChildJobId = "child.job.id";
inline constexpr std::string_view kSubwfId = "subwf.id";
inline constexpr std::string_view kRestartCount = "restart_count";
inline constexpr std::string_view kStatus = "status";
inline constexpr std::string_view kExitcode = "exitcode";
inline constexpr std::string_view kDur = "dur";
inline constexpr std::string_view kRemoteCpuTime = "remote_cpu_time";
inline constexpr std::string_view kName = "name";
inline constexpr std::string_view kType = "type";
inline constexpr std::string_view kTypeDesc = "type_desc";
inline constexpr std::string_view kTransformation = "transformation";
inline constexpr std::string_view kArgv = "argv";
inline constexpr std::string_view kExecutable = "executable";
inline constexpr std::string_view kSite = "site";
inline constexpr std::string_view kHostname = "hostname";
inline constexpr std::string_view kIp = "ip";
inline constexpr std::string_view kTotalMemory = "total_memory";
inline constexpr std::string_view kUname = "uname";
inline constexpr std::string_view kSchedId = "sched.id";
inline constexpr std::string_view kJobSubmitSeq = "js.id";
inline constexpr std::string_view kStdOut = "stdout.text";
inline constexpr std::string_view kStdErr = "stderr.text";
inline constexpr std::string_view kStdFile = "stdout.file";
inline constexpr std::string_view kSubmitDir = "submit.dir";
inline constexpr std::string_view kPlanner = "planner.version";
inline constexpr std::string_view kUser = "user";
inline constexpr std::string_view kDaxLabel = "dax.label";
}  // namespace attr

}  // namespace stampede::nl::events
