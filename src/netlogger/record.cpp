#include "netlogger/record.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>

#include "common/string_utils.hpp"

namespace stampede::nl {
namespace {

constexpr std::array<std::string_view, 6> kLevelNames = {
    "Fatal", "Error", "Warn", "Info", "Debug", "Trace"};

}  // namespace

std::string_view level_name(Level level) noexcept {
  return kLevelNames[static_cast<std::size_t>(level)];
}

std::optional<Level> parse_level(std::string_view name) {
  const std::string lower = common::to_lower(name);
  for (std::size_t i = 0; i < kLevelNames.size(); ++i) {
    if (lower == common::to_lower(kLevelNames[i])) {
      return static_cast<Level>(i);
    }
  }
  return std::nullopt;
}

void LogRecord::set(std::string_view key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::string{key}, std::move(value));
}

void LogRecord::set(std::string_view key, std::int64_t value) {
  set(key, std::to_string(value));
}

void LogRecord::set(std::string_view key, double value) {
  set(key, common::format_fixed(value, 6));
}

void LogRecord::set(std::string_view key, const common::Uuid& value) {
  set(key, value.to_string());
}

std::optional<std::string_view> LogRecord::get(
    std::string_view key) const noexcept {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return std::string_view{v};
  }
  return std::nullopt;
}

std::optional<std::int64_t> LogRecord::get_int(
    std::string_view key) const noexcept {
  const auto raw = get(key);
  if (!raw) return std::nullopt;
  const std::string owned{*raw};
  char* end = nullptr;
  const long long v = std::strtoll(owned.c_str(), &end, 10);
  if (end != owned.c_str() + owned.size() || owned.empty()) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(v);
}

std::optional<double> LogRecord::get_double(
    std::string_view key) const noexcept {
  const auto raw = get(key);
  if (!raw) return std::nullopt;
  const std::string owned{*raw};
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size() || owned.empty()) {
    return std::nullopt;
  }
  return v;
}

std::optional<common::Uuid> LogRecord::get_uuid(
    std::string_view key) const noexcept {
  const auto raw = get(key);
  if (!raw) return std::nullopt;
  return common::Uuid::parse(*raw);
}

bool LogRecord::erase(std::string_view key) {
  const auto it = std::find_if(attrs_.begin(), attrs_.end(),
                               [&](const auto& kv) { return kv.first == key; });
  if (it == attrs_.end()) return false;
  attrs_.erase(it);
  return true;
}

}  // namespace stampede::nl
