#include "netlogger/bp_file.hpp"

#include <stdexcept>

namespace stampede::nl {

BpFileWriter::BpFileWriter(const std::string& path, TsFormat ts_format)
    : out_(path, std::ios::app), ts_format_(ts_format) {
  if (!out_) {
    throw std::runtime_error("BpFileWriter: cannot open " + path);
  }
}

void BpFileWriter::write(const LogRecord& record) {
  out_ << format_record(record, ts_format_) << '\n';
  ++count_;
}

void BpFileWriter::flush() { out_.flush(); }

BpFileContents read_bp_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error("read_bp_file: cannot open " + path);
  }
  BpFileContents contents;
  StreamParser parser{in};
  while (auto record = parser.next()) {
    contents.records.push_back(std::move(*record));
  }
  contents.errors = parser.errors();
  return contents;
}

void write_bp_file(const std::string& path,
                   const std::vector<LogRecord>& records, TsFormat ts_format) {
  std::ofstream out{path, std::ios::trunc};
  if (!out) {
    throw std::runtime_error("write_bp_file: cannot open " + path);
  }
  for (const auto& record : records) {
    out << format_record(record, ts_format) << '\n';
  }
}

}  // namespace stampede::nl
