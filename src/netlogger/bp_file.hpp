#pragma once
// BP log file reader/writer.
//
// Workflow engines append normalized events to plain-text BP files (the
// paper keeps the original plain-text logs alongside the AMQP stream,
// §VII-A); nl_load can later replay them into the archive.

#include <fstream>
#include <string>
#include <vector>

#include "netlogger/formatter.hpp"
#include "netlogger/parser.hpp"
#include "netlogger/record.hpp"

namespace stampede::nl {

/// Append-only writer for BP log files.
class BpFileWriter {
 public:
  /// Opens (creating or appending). Throws std::runtime_error on failure.
  explicit BpFileWriter(const std::string& path,
                        TsFormat ts_format = TsFormat::kIso8601);

  /// Appends one record as a line.
  void write(const LogRecord& record);

  /// Flushes buffered output to the OS.
  void flush();

  [[nodiscard]] std::size_t records_written() const noexcept {
    return count_;
  }

 private:
  std::ofstream out_;
  TsFormat ts_format_;
  std::size_t count_ = 0;
};

/// Reads a whole BP file; malformed lines are collected, not fatal.
struct BpFileContents {
  std::vector<LogRecord> records;
  std::vector<ParseError> errors;
};

/// Loads every record from `path`. Throws std::runtime_error if the file
/// cannot be opened.
[[nodiscard]] BpFileContents read_bp_file(const std::string& path);

/// Writes all records to `path`, truncating. Throws on open failure.
void write_bp_file(const std::string& path,
                   const std::vector<LogRecord>& records,
                   TsFormat ts_format = TsFormat::kIso8601);

}  // namespace stampede::nl
