#include "netlogger/formatter.hpp"

#include "common/string_utils.hpp"
#include "common/time_utils.hpp"
#include "netlogger/parser.hpp"

namespace stampede::nl {

std::string format_record(const LogRecord& record, TsFormat ts_format) {
  std::string out = "ts=";
  if (ts_format == TsFormat::kIso8601) {
    out += common::format_iso8601(record.ts());
  } else {
    out += common::format_fixed(record.ts(), 6);
  }
  out += " event=";
  out += escape_value(record.event());
  out += " level=";
  out += level_name(record.level());
  for (const auto& [key, value] : record.attributes()) {
    out += ' ';
    out += key;
    out += '=';
    out += escape_value(value);
  }
  return out;
}

}  // namespace stampede::nl
