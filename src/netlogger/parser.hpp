#pragma once
// Parser for NetLogger Best-Practices log lines.
//
// Grammar (per the BP guide): a line is a whitespace-separated sequence of
// `key=value` pairs. Values containing whitespace or '=' are wrapped in
// double quotes with backslash escapes for `"` and `\`. The `ts` value may
// be ISO8601 or epoch seconds; `event` is a dotted hierarchical name.
//
// The parser is tolerant: a malformed line yields a ParseError rather than
// an exception, because the loader must keep running across garbage in a
// multi-gigabyte log stream and report error counts (paper §IV: thousands
// of log files feeding one repository).

#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "netlogger/record.hpp"

namespace stampede::nl {

/// Why a line failed to parse.
struct ParseError {
  std::size_t line_number = 0;  ///< 1-based, when parsing a stream; else 0.
  std::size_t column = 0;       ///< 0-based byte offset of the error.
  std::string message;
};

using ParseResult = std::variant<LogRecord, ParseError>;

/// Parses one BP line. Requires `ts` and `event` keys; `level` defaults to
/// Info. Blank/comment(#) lines produce a ParseError with message "empty"
/// — stream-level APIs skip those silently.
[[nodiscard]] ParseResult parse_line(std::string_view line);

/// Escapes a value for inclusion in a BP line (quotes iff needed).
[[nodiscard]] std::string escape_value(std::string_view value);

/// Incremental parser over an input stream; counts lines and errors.
class StreamParser {
 public:
  explicit StreamParser(std::istream& in) : in_(&in) {}

  /// Returns the next well-formed record, skipping blank and comment
  /// lines. Malformed lines are recorded in errors() and skipped.
  /// nullopt at end of stream.
  [[nodiscard]] std::optional<LogRecord> next();

  [[nodiscard]] const std::vector<ParseError>& errors() const noexcept {
    return errors_;
  }
  [[nodiscard]] std::size_t lines_read() const noexcept { return lines_; }

 private:
  std::istream* in_;
  std::vector<ParseError> errors_;
  std::size_t lines_ = 0;
};

}  // namespace stampede::nl
