#include "orm/session.hpp"

#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace stampede::orm {

namespace {

struct OrmTelemetry {
  telemetry::Counter& flushed_ops =
      telemetry::registry().counter("stampede_orm_flushed_ops_total");
  telemetry::Counter& flush_batches =
      telemetry::registry().counter("stampede_orm_flush_batches_total");
  telemetry::Histogram& flush_latency = telemetry::registry().histogram(
      "stampede_orm_flush_latency_seconds");
  // Operations per committed batch; bucket layout sized for row counts
  // (1 .. ~32k) rather than latencies.
  telemetry::Histogram& flush_batch_ops = telemetry::registry().histogram(
      "stampede_orm_flush_batch_ops", {1.0, 2.0, 16});
};

OrmTelemetry& orm_telemetry() {
  static OrmTelemetry instance;
  return instance;
}

}  // namespace

Session::~Session() {
  try {
    flush();
  } catch (...) {
    // A destructor must not throw; pending rows are lost, which mirrors
    // an uncommitted SQLAlchemy session being garbage-collected.
  }
}

void Session::add(std::string table, db::NamedValues values) {
  pending_.emplace_back(InsertOp{std::move(table), std::move(values)});
  ++stats_.queued;
  if (pending_.size() >= batch_size_) flush();
}

void Session::add_update_pk(std::string table, std::int64_t pk,
                            db::NamedValues sets) {
  pending_.emplace_back(UpdatePkOp{std::move(table), pk, std::move(sets)});
  ++stats_.queued;
  if (pending_.size() >= batch_size_) flush();
}

std::int64_t Session::insert_now(const std::string& table,
                                 const db::NamedValues& values) {
  flush();
  ++stats_.queued;
  ++stats_.flushed_ops;
  return db_->insert(table, values);
}

void Session::flush() {
  if (pending_.empty()) return;
  auto& tele = orm_telemetry();
  const double start = telemetry::trace_now();
  auto span = telemetry::SpanGuard::root("orm.commit");
  span.attr("ops", std::to_string(pending_.size()));
  db_->begin();
  try {
    for (const auto& op : pending_) {
      if (const auto* ins = std::get_if<InsertOp>(&op)) {
        db_->insert(ins->table, ins->values);
      } else {
        const auto& upd = std::get<UpdatePkOp>(op);
        db_->update_pk(upd.table, upd.pk, upd.sets);
      }
    }
    db_->commit();
  } catch (...) {
    db_->rollback();
    span.set_error();
    throw;
  }
  const std::size_t ops = pending_.size();
  stats_.flushed_ops += ops;
  ++stats_.flush_batches;
  pending_.clear();
  if (start > 0.0) {
    tele.flush_latency.observe(telemetry::now() - start);
    tele.flush_batch_ops.observe(static_cast<double>(ops));
  }
  tele.flushed_ops.inc(ops);
  tele.flush_batches.inc();
  if (commit_hook_) commit_hook_(ops);
}

std::size_t Session::update(const std::string& table,
                            const db::ExprPtr& predicate,
                            const db::NamedValues& sets) {
  flush();
  return db_->update(table, predicate, sets);
}

}  // namespace stampede::orm
