#include "orm/session.hpp"

namespace stampede::orm {

Session::~Session() {
  try {
    flush();
  } catch (...) {
    // A destructor must not throw; pending rows are lost, which mirrors
    // an uncommitted SQLAlchemy session being garbage-collected.
  }
}

void Session::add(std::string table, db::NamedValues values) {
  pending_.emplace_back(InsertOp{std::move(table), std::move(values)});
  ++stats_.queued;
  if (pending_.size() >= batch_size_) flush();
}

void Session::add_update_pk(std::string table, std::int64_t pk,
                            db::NamedValues sets) {
  pending_.emplace_back(UpdatePkOp{std::move(table), pk, std::move(sets)});
  ++stats_.queued;
  if (pending_.size() >= batch_size_) flush();
}

std::int64_t Session::insert_now(const std::string& table,
                                 const db::NamedValues& values) {
  flush();
  ++stats_.queued;
  ++stats_.flushed_ops;
  return db_->insert(table, values);
}

void Session::flush() {
  if (pending_.empty()) return;
  db_->begin();
  try {
    for (const auto& op : pending_) {
      if (const auto* ins = std::get_if<InsertOp>(&op)) {
        db_->insert(ins->table, ins->values);
      } else {
        const auto& upd = std::get<UpdatePkOp>(op);
        db_->update_pk(upd.table, upd.pk, upd.sets);
      }
    }
    db_->commit();
  } catch (...) {
    db_->rollback();
    throw;
  }
  stats_.flushed_ops += pending_.size();
  ++stats_.flush_batches;
  pending_.clear();
}

std::size_t Session::update(const std::string& table,
                            const db::ExprPtr& predicate,
                            const db::NamedValues& sets) {
  flush();
  return db_->update(table, predicate, sets);
}

}  // namespace stampede::orm
