#pragma once
// DDL for the Stampede relational archive (paper Fig. 3).
//
// Eleven tables: workflow, workflowstate, host, task, task_edge, job,
// job_edge, job_instance, jobstate, invocation, schema_info. The AW is
// captured by task/task_edge, the EW by job/job_edge; the many-to-many
// AW→EW mapping is recorded on task.job_id (populated by
// stampede.wf.map.task_job events) plus invocation.abs_task_id.

#include <memory>

#include "db/database.hpp"
#include "db/sharded_database.hpp"

namespace stampede::orm {

/// Version tag stored in schema_info.
inline constexpr int kSchemaVersion = 4;

/// Creates all Stampede tables (throws common::DbError if any exist).
void create_stampede_schema(db::Database& database);

/// DDL only — no schema_info version row (used by open_archive, which
/// replays the WAL before deciding whether the version row exists).
void create_stampede_tables(db::Database& database);

/// Sharded variants: fan the DDL out to every shard. Each shard carries
/// its own schema_info row so every per-shard WAL file self-describes.
void create_stampede_schema(db::ShardedDatabase& database);
void create_stampede_tables(db::ShardedDatabase& database);

/// Opens (or creates) a WAL-backed archive file: creates the tables,
/// replays the WAL, and ensures the schema_info version row exists
/// exactly once. This is the entry point the CLI tools share.
[[nodiscard]] std::unique_ptr<db::Database> open_archive(
    const std::string& wal_path);

/// Sharded equivalent of open_archive: shard i replays/appends
/// `<wal_path>.<i>` (just `wal_path` when shards == 1, so existing
/// single-shard archives open unchanged).
[[nodiscard]] std::unique_ptr<db::ShardedDatabase> open_sharded_archive(
    const std::string& wal_path, std::size_t shards);

/// Names of all tables created by create_stampede_schema, in creation
/// (dependency) order.
[[nodiscard]] const std::vector<std::string>& stampede_table_names();

}  // namespace stampede::orm
