#include "orm/stampede_tables.hpp"

namespace stampede::orm {
namespace {

using db::ColumnDef;
using db::ColumnType;
using db::IndexDef;
using db::TableDef;

ColumnDef col(std::string name, ColumnType type, bool not_null = false) {
  ColumnDef c;
  c.name = std::move(name);
  c.type = type;
  c.not_null = not_null;
  return c;
}

TableDef workflow_table() {
  TableDef t;
  t.name = "workflow";
  t.primary_key = "wf_id";
  t.columns = {
      col("wf_id", ColumnType::kInteger),
      col("wf_uuid", ColumnType::kText, true),
      col("dax_label", ColumnType::kText),
      col("timestamp", ColumnType::kReal),
      col("submit_hostname", ColumnType::kText),
      col("submit_dir", ColumnType::kText),
      col("planner_version", ColumnType::kText),
      col("user", ColumnType::kText),
      col("root_wf_id", ColumnType::kInteger),
      col("parent_wf_id", ColumnType::kInteger),
  };
  t.indexes = {{"ix_workflow_wf_uuid", {"wf_uuid"}, /*unique=*/true},
               {"ix_workflow_parent", {"parent_wf_id"}, false},
               {"ix_workflow_root", {"root_wf_id"}, false}};
  return t;
}

TableDef workflowstate_table() {
  TableDef t;
  t.name = "workflowstate";
  t.columns = {
      col("wf_id", ColumnType::kInteger, true),
      col("state", ColumnType::kText, true),  // WORKFLOW_STARTED/_TERMINATED
      col("timestamp", ColumnType::kReal, true),
      col("restart_count", ColumnType::kInteger),
      col("status", ColumnType::kInteger),
  };
  t.foreign_keys = {{"wf_id", "workflow", "wf_id"}};
  t.indexes = {{"ix_workflowstate_wf", {"wf_id"}, false}};
  return t;
}

TableDef host_table() {
  TableDef t;
  t.name = "host";
  t.primary_key = "host_id";
  t.columns = {
      col("host_id", ColumnType::kInteger),
      col("wf_id", ColumnType::kInteger, true),
      col("site", ColumnType::kText),
      col("hostname", ColumnType::kText, true),
      col("ip", ColumnType::kText),
      col("uname", ColumnType::kText),
      col("total_memory", ColumnType::kInteger),
  };
  t.foreign_keys = {{"wf_id", "workflow", "wf_id"}};
  t.indexes = {{"ix_host_wf", {"wf_id"}, false},
               {"ix_host_hostname", {"hostname"}, false}};
  return t;
}

TableDef task_table() {
  TableDef t;
  t.name = "task";
  t.primary_key = "task_id";
  t.columns = {
      col("task_id", ColumnType::kInteger),
      col("wf_id", ColumnType::kInteger, true),
      col("abs_task_id", ColumnType::kText, true),
      col("job_id", ColumnType::kInteger),  // AW→EW mapping (nullable).
      col("type", ColumnType::kText),
      col("type_desc", ColumnType::kText),
      col("transformation", ColumnType::kText, true),
      col("argv", ColumnType::kText),
  };
  t.foreign_keys = {{"wf_id", "workflow", "wf_id"},
                    {"job_id", "job", "job_id"}};
  t.indexes = {{"ix_task_wf", {"wf_id"}, false},
               {"ix_task_abs", {"abs_task_id"}, false},
               {"ix_task_job", {"job_id"}, false}};
  return t;
}

TableDef task_edge_table() {
  TableDef t;
  t.name = "task_edge";
  t.columns = {
      col("wf_id", ColumnType::kInteger, true),
      col("parent_abs_task_id", ColumnType::kText, true),
      col("child_abs_task_id", ColumnType::kText, true),
  };
  t.foreign_keys = {{"wf_id", "workflow", "wf_id"}};
  t.indexes = {{"ix_task_edge_wf", {"wf_id"}, false}};
  return t;
}

TableDef job_table() {
  TableDef t;
  t.name = "job";
  t.primary_key = "job_id";
  t.columns = {
      col("job_id", ColumnType::kInteger),
      col("wf_id", ColumnType::kInteger, true),
      col("exec_job_id", ColumnType::kText, true),
      col("type", ColumnType::kText),
      col("type_desc", ColumnType::kText),
      col("transformation", ColumnType::kText),
      col("executable", ColumnType::kText),
      col("argv", ColumnType::kText),
      col("task_count", ColumnType::kInteger),
  };
  t.foreign_keys = {{"wf_id", "workflow", "wf_id"}};
  t.indexes = {{"ix_job_wf", {"wf_id"}, false},
               {"ix_job_exec_id", {"exec_job_id"}, false}};
  return t;
}

TableDef job_edge_table() {
  TableDef t;
  t.name = "job_edge";
  t.columns = {
      col("wf_id", ColumnType::kInteger, true),
      col("parent_exec_job_id", ColumnType::kText, true),
      col("child_exec_job_id", ColumnType::kText, true),
  };
  t.foreign_keys = {{"wf_id", "workflow", "wf_id"}};
  t.indexes = {{"ix_job_edge_wf", {"wf_id"}, false}};
  return t;
}

TableDef job_instance_table() {
  TableDef t;
  t.name = "job_instance";
  t.primary_key = "job_instance_id";
  t.columns = {
      col("job_instance_id", ColumnType::kInteger),
      col("job_id", ColumnType::kInteger, true),
      col("host_id", ColumnType::kInteger),
      col("job_submit_seq", ColumnType::kInteger, true),
      col("sched_id", ColumnType::kText),
      col("site", ColumnType::kText),
      col("subwf_id", ColumnType::kInteger),  // wf_id of a sub-workflow.
      col("stdout_text", ColumnType::kText),
      col("stderr_text", ColumnType::kText),
      col("stdout_file", ColumnType::kText),
      col("multiplier_factor", ColumnType::kReal),
      col("local_duration", ColumnType::kReal),
      col("exitcode", ColumnType::kInteger),
  };
  t.foreign_keys = {{"job_id", "job", "job_id"},
                    {"host_id", "host", "host_id"},
                    {"subwf_id", "workflow", "wf_id"}};
  t.indexes = {{"ix_ji_job", {"job_id"}, false},
               {"ix_ji_host", {"host_id"}, false}};
  return t;
}

TableDef jobstate_table() {
  TableDef t;
  t.name = "jobstate";
  t.columns = {
      col("job_instance_id", ColumnType::kInteger, true),
      col("state", ColumnType::kText, true),  // SUBMIT, EXECUTE, ...
      col("timestamp", ColumnType::kReal, true),
      col("jobstate_submit_seq", ColumnType::kInteger),
  };
  t.foreign_keys = {{"job_instance_id", "job_instance", "job_instance_id"}};
  t.indexes = {{"ix_jobstate_ji", {"job_instance_id"}, false},
               {"ix_jobstate_state", {"state"}, false}};
  return t;
}

TableDef invocation_table() {
  TableDef t;
  t.name = "invocation";
  t.primary_key = "invocation_id";
  t.columns = {
      col("invocation_id", ColumnType::kInteger),
      col("job_instance_id", ColumnType::kInteger, true),
      col("wf_id", ColumnType::kInteger, true),
      col("task_submit_seq", ColumnType::kInteger, true),
      col("abs_task_id", ColumnType::kText),  // NULL for planner-added jobs.
      col("start_time", ColumnType::kReal),
      col("remote_duration", ColumnType::kReal),
      col("remote_cpu_time", ColumnType::kReal),
      col("exitcode", ColumnType::kInteger),
      col("transformation", ColumnType::kText),
      col("executable", ColumnType::kText),
      col("argv", ColumnType::kText),
  };
  t.foreign_keys = {{"job_instance_id", "job_instance", "job_instance_id"},
                    {"wf_id", "workflow", "wf_id"}};
  t.indexes = {{"ix_inv_ji", {"job_instance_id"}, false},
               {"ix_inv_wf", {"wf_id"}, false},
               {"ix_inv_task", {"abs_task_id"}, false}};
  return t;
}

TableDef schema_info_table() {
  TableDef t;
  t.name = "schema_info";
  t.columns = {
      col("version", ColumnType::kInteger, true),
      col("created", ColumnType::kReal),
  };
  return t;
}

}  // namespace

const std::vector<std::string>& stampede_table_names() {
  static const std::vector<std::string> kNames = {
      "workflow", "workflowstate", "host",     "task",
      "task_edge", "job",          "job_edge", "job_instance",
      "jobstate", "invocation",    "schema_info"};
  return kNames;
}

void create_stampede_tables(db::Database& database) {
  database.create_table(workflow_table());
  database.create_table(workflowstate_table());
  database.create_table(host_table());
  database.create_table(task_table());
  database.create_table(task_edge_table());
  database.create_table(job_table());
  database.create_table(job_edge_table());
  database.create_table(job_instance_table());
  database.create_table(jobstate_table());
  database.create_table(invocation_table());
  database.create_table(schema_info_table());
}

void create_stampede_schema(db::Database& database) {
  create_stampede_tables(database);
  database.insert("schema_info", {{"version", db::Value{kSchemaVersion}}});
}

void create_stampede_tables(db::ShardedDatabase& database) {
  database.create_table(workflow_table());
  database.create_table(workflowstate_table());
  database.create_table(host_table());
  database.create_table(task_table());
  database.create_table(task_edge_table());
  database.create_table(job_table());
  database.create_table(job_edge_table());
  database.create_table(job_instance_table());
  database.create_table(jobstate_table());
  database.create_table(invocation_table());
  database.create_table(schema_info_table());
}

void create_stampede_schema(db::ShardedDatabase& database) {
  create_stampede_tables(database);
  for (std::size_t i = 0; i < database.shard_count(); ++i) {
    database.shard(i).insert("schema_info",
                             {{"version", db::Value{kSchemaVersion}}});
  }
}

std::unique_ptr<db::Database> open_archive(const std::string& wal_path) {
  auto database = std::make_unique<db::Database>(wal_path);
  create_stampede_tables(*database);
  database->recover();
  if (database->row_count("schema_info") == 0) {
    database->insert("schema_info",
                     {{"version", db::Value{kSchemaVersion}}});
  }
  return database;
}

std::unique_ptr<db::ShardedDatabase> open_sharded_archive(
    const std::string& wal_path, std::size_t shards) {
  auto database = std::make_unique<db::ShardedDatabase>(shards, wal_path);
  create_stampede_tables(*database);
  database->recover();
  for (std::size_t i = 0; i < database->shard_count(); ++i) {
    auto& shard = database->shard(i);
    if (shard.row_count("schema_info") == 0) {
      shard.insert("schema_info", {{"version", db::Value{kSchemaVersion}}});
    }
  }
  return database;
}

}  // namespace stampede::orm
