#pragma once
// Unit-of-work session (the SQLAlchemy-substitute surface the loader uses).
//
// Inserts and primary-key updates are queued in arrival order and flushed
// in batches inside one transaction — the "batching similar inserts
// together" optimization the paper credits for Pegasus-scale loading
// performance (§V-D). Reads must call flush() (or use the flushing
// helpers) to see queued state.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <variant>

#include "db/database.hpp"

namespace stampede::orm {

struct SessionStats {
  std::uint64_t queued = 0;
  std::uint64_t flushed_ops = 0;
  std::uint64_t flush_batches = 0;
};

class Session {
 public:
  /// `batch_size`: pending operations that trigger an automatic flush.
  explicit Session(db::Database& database, std::size_t batch_size = 256)
      : db_(&database), batch_size_(batch_size) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  ~Session();

  /// Queues an insert whose generated key nobody needs.
  void add(std::string table, db::NamedValues values);

  /// Queues an indexed single-row update by primary key.
  void add_update_pk(std::string table, std::int64_t pk,
                     db::NamedValues sets);

  /// Flush-then-insert for rows whose generated primary key the caller
  /// needs right away (e.g. workflow → wf_id used by every child row).
  std::int64_t insert_now(const std::string& table,
                          const db::NamedValues& values);

  /// Writes all pending operations, in order, inside one transaction.
  void flush();

  /// Invoked after every successful flush() commit with the number of
  /// operations written. The loader uses this to observe true
  /// publish→commit latency: rows are durable exactly when the hook
  /// fires. One hook per session; pass {} to clear.
  void set_commit_hook(std::function<void(std::size_t)> hook) {
    commit_hook_ = std::move(hook);
  }

  /// Predicate update against flushed state (flushes first).
  std::size_t update(const std::string& table, const db::ExprPtr& predicate,
                     const db::NamedValues& sets);

  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] const SessionStats& stats() const noexcept { return stats_; }
  [[nodiscard]] db::Database& database() noexcept { return *db_; }

 private:
  struct InsertOp {
    std::string table;
    db::NamedValues values;
  };
  struct UpdatePkOp {
    std::string table;
    std::int64_t pk;
    db::NamedValues sets;
  };
  using Op = std::variant<InsertOp, UpdatePkOp>;

  db::Database* db_;
  std::size_t batch_size_;
  std::deque<Op> pending_;
  SessionStats stats_;
  std::function<void(std::size_t)> commit_hook_;
};

}  // namespace stampede::orm
