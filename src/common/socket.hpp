#pragma once
// Shared raw-socket helpers for the embedded servers (dashboard HTTP,
// net::BusServer/BusClient). Plain POSIX TCP, loopback-oriented, no
// external dependencies: RAII fds, bind/listen/accept with poll-based
// timeouts, and full-buffer read/write loops that handle short
// transfers and EINTR.

#include <cstddef>
#include <cstdint>
#include <string>

namespace stampede::common {

/// Move-only RAII file descriptor; closes on destruction.
class SocketFd {
 public:
  SocketFd() = default;
  explicit SocketFd(int fd) noexcept : fd_(fd) {}
  ~SocketFd() { reset(); }

  SocketFd(const SocketFd&) = delete;
  SocketFd& operator=(const SocketFd&) = delete;
  SocketFd(SocketFd&& other) noexcept : fd_(other.release()) {}
  SocketFd& operator=(SocketFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes now (idempotent).
  void reset() noexcept;

  /// shutdown(SHUT_RDWR): unblocks a peer thread parked in poll/recv on
  /// this fd without racing the close (the fd number stays reserved).
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

/// Binds and listens on `host`:`port` (port 0 = ephemeral) with
/// SO_REUSEADDR. `bound_port` (may be null) receives the actual port.
/// Throws std::runtime_error on failure. `host` must be a dotted-quad
/// IPv4 literal or "localhost".
[[nodiscard]] SocketFd listen_tcp(const std::string& host, int port,
                                  int backlog, int* bound_port);

/// Polls the listening fd up to `timeout_ms` and accepts one client.
/// Invalid SocketFd on timeout or error.
[[nodiscard]] SocketFd accept_client(int listen_fd, int timeout_ms);

/// Connects to `host`:`port`. Invalid SocketFd on failure.
[[nodiscard]] SocketFd connect_tcp(const std::string& host, int port);

/// Writes the whole buffer, looping over short sends. False on error
/// (peer gone).
bool send_all(int fd, const void* data, std::size_t size);

/// Result of a single timed read.
enum class RecvStatus { kData, kClosed, kTimeout, kError };

/// Polls up to `timeout_ms` then recv()s once into `buf`. On kData,
/// `received` holds the byte count (> 0).
RecvStatus recv_some(int fd, void* buf, std::size_t size, int timeout_ms,
                     std::size_t* received);

}  // namespace stampede::common
