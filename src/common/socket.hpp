#pragma once
// Shared raw-socket helpers for the embedded servers (dashboard HTTP,
// net::BusServer/BusClient). Plain POSIX TCP, loopback-oriented, no
// external dependencies: RAII fds, bind/listen/accept with poll-based
// timeouts, and full-buffer read/write loops that handle short
// transfers, EINTR and SIGPIPE (every send uses MSG_NOSIGNAL, so a
// vanished peer surfaces as an error return instead of killing the
// process).
//
// Two call families live here:
//   - Blocking helpers (send_all, recv_some, accept_client) used by the
//     synchronous client paths and tests.
//   - Non-blocking primitives (set_nonblocking, send_some,
//     recv_nonblocking, accept_nonblocking) used by the net::EventLoop
//     reactor under the bus and dashboard servers. These never park the
//     caller: they report kWouldBlock/-EAGAIN and let the event loop
//     re-arm interest.

#include <cstddef>
#include <cstdint>
#include <string>

namespace stampede::common {

/// Move-only RAII file descriptor; closes on destruction.
class SocketFd {
 public:
  SocketFd() = default;
  explicit SocketFd(int fd) noexcept : fd_(fd) {}
  ~SocketFd() { reset(); }

  SocketFd(const SocketFd&) = delete;
  SocketFd& operator=(const SocketFd&) = delete;
  SocketFd(SocketFd&& other) noexcept : fd_(other.release()) {}
  SocketFd& operator=(SocketFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes now (idempotent, EINTR-safe).
  void reset() noexcept;

  /// shutdown(SHUT_RDWR): unblocks a peer thread parked in poll/recv on
  /// this fd without racing the close (the fd number stays reserved).
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

// ---------------------------------------------------------------------------
// Socket-option helpers (each returns false when setsockopt/fcntl fails)

/// O_NONBLOCK on/off.
bool set_nonblocking(int fd, bool enabled = true);
/// TCP_NODELAY: no Nagle batching — the framing layer coalesces writes
/// itself, so delaying small segments only adds latency.
bool set_tcp_nodelay(int fd, bool enabled = true);
/// SO_REUSEADDR: rebind a listening port still in TIME_WAIT (server
/// restarts).
bool set_reuseaddr(int fd, bool enabled = true);

// ---------------------------------------------------------------------------
// Setup

/// Binds and listens on `host`:`port` (port 0 = ephemeral) with
/// SO_REUSEADDR. `bound_port` (may be null) receives the actual port.
/// Throws std::runtime_error on failure. `host` must be a dotted-quad
/// IPv4 literal or "localhost".
[[nodiscard]] SocketFd listen_tcp(const std::string& host, int port,
                                  int backlog, int* bound_port);

/// Polls the listening fd up to `timeout_ms` and accepts one client
/// (EINTR/ECONNABORTED retried within the window, TCP_NODELAY applied).
/// Invalid SocketFd on timeout or error; `fatal_errno` (may be null)
/// receives the errno of a non-retryable accept failure (EMFILE-class)
/// and 0 otherwise, so accept loops can back off instead of re-polling
/// a backlog that stays readable.
[[nodiscard]] SocketFd accept_client(int listen_fd, int timeout_ms,
                                     int* fatal_errno = nullptr);

/// Non-blocking accept for a listening fd owned by an event loop.
/// Invalid SocketFd when no connection is pending (EAGAIN) or on a
/// transient error (ECONNABORTED); the accepted fd has TCP_NODELAY set
/// but inherits blocking mode — callers switch it themselves.
/// `fatal_errno` (may be null) receives the errno of a persistent
/// failure (EMFILE/ENFILE/ENOMEM) and 0 otherwise — distinguishing
/// "backlog drained" from "accept failing while the fd stays readable",
/// which a level-triggered watcher must answer with backoff, not retry.
[[nodiscard]] SocketFd accept_nonblocking(int listen_fd,
                                          int* fatal_errno = nullptr);

/// Connects to `host`:`port` (EINTR-safe) and sets TCP_NODELAY.
/// Invalid SocketFd on failure.
[[nodiscard]] SocketFd connect_tcp(const std::string& host, int port);

// ---------------------------------------------------------------------------
// Blocking transfer loops

/// Writes the whole buffer, looping over short sends and EINTR. False
/// on error (peer gone). MSG_NOSIGNAL: a dead peer is a return value,
/// never a SIGPIPE.
bool send_all(int fd, const void* data, std::size_t size);

/// Result of a single timed read.
enum class RecvStatus { kData, kClosed, kTimeout, kError };

/// Polls up to `timeout_ms` then recv()s once into `buf`. On kData,
/// `received` holds the byte count (> 0). EINTR during the poll or the
/// recv reports kTimeout so callers simply re-enter their read loop.
RecvStatus recv_some(int fd, void* buf, std::size_t size, int timeout_ms,
                     std::size_t* received);

// ---------------------------------------------------------------------------
// Non-blocking transfer primitives (reactor building blocks)

/// One non-blocking send attempt handling partial writes: returns the
/// byte count actually queued (possibly 0 when the socket buffer is
/// full), or -1 on a fatal socket error. Loops only over EINTR.
std::ptrdiff_t send_some(int fd, const void* data, std::size_t size);

/// One non-blocking recv attempt. kTimeout doubles as "would block".
RecvStatus recv_nonblocking(int fd, void* buf, std::size_t size,
                            std::size_t* received);

}  // namespace stampede::common
