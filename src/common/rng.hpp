#pragma once
// Deterministic random number generation for the simulation substrate.
//
// All stochastic behaviour in the simulated engines (task runtimes, queue
// jitter, failure injection) flows through this type so experiments are
// exactly reproducible from a seed — a requirement for the bench harness
// to regenerate the paper's tables stably.

#include <cstdint>
#include <random>

namespace stampede::common {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d{lo, hi};
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d{lo, hi};
    return d(engine_);
  }

  /// Normal draw, truncated below at `min` (rejection-free clamp).
  [[nodiscard]] double normal(double mean, double stddev, double min = 0.0) {
    std::normal_distribution<double> d{mean, stddev};
    const double v = d(engine_);
    return v < min ? min : v;
  }

  /// Exponential draw with the given mean.
  [[nodiscard]] double exponential(double mean) {
    std::exponential_distribution<double> d{1.0 / mean};
    return d(engine_);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double probability) {
    std::bernoulli_distribution d{probability};
    return d(engine_);
  }

  /// Access to the underlying engine for std::shuffle etc.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace stampede::common
