#pragma once
// Timestamp handling for NetLogger Best-Practices log messages.
//
// The Stampede YANG schema defines the `nl_ts` type as "ISO8601 or seconds
// since 1/1/1970". Internally we represent timestamps as double seconds
// since the Unix epoch (the NetLogger convention), which gives microsecond
// precision over the ranges workflows care about while staying trivially
// arithmetic for duration math.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace stampede::common {

/// Seconds since the Unix epoch, fractional part = sub-second precision.
using Timestamp = double;

/// Seconds.
using Duration = double;

/// Parses either ISO8601 ("2012-03-13T12:35:38.000000Z", with optional
/// fractional seconds and either 'Z' or a +hh:mm / -hh:mm offset) or a
/// plain decimal epoch-seconds number. Returns nullopt on malformed input.
[[nodiscard]] std::optional<Timestamp> parse_timestamp(std::string_view text);

/// Formats a timestamp as UTC ISO8601 with microsecond precision, e.g.
/// "2012-03-13T12:35:38.000000Z" — the form used in the paper's examples.
[[nodiscard]] std::string format_iso8601(Timestamp ts);

/// Formats a duration the way stampede-statistics prints it, e.g.
/// "11 mins, 1 sec" or "11 hrs, 10 mins". Sub-minute durations render as
/// "41 secs"; zero renders as "0 secs".
[[nodiscard]] std::string format_duration_human(Duration seconds);

/// Formats a duration as both human text and raw seconds, matching the
/// Table I style: "11 mins, 1 sec, (661 seconds)".
[[nodiscard]] std::string format_duration_with_seconds(Duration seconds);

/// True for leap years in the proleptic Gregorian calendar.
[[nodiscard]] constexpr bool is_leap_year(int year) noexcept {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

/// Days in the given month (1-12) of the given year.
[[nodiscard]] int days_in_month(int year, int month) noexcept;

/// Civil date/time decomposed from a UTC timestamp.
struct CivilTime {
  int year = 1970;
  int month = 1;   ///< 1-12
  int day = 1;     ///< 1-31
  int hour = 0;    ///< 0-23
  int minute = 0;  ///< 0-59
  int second = 0;  ///< 0-59
  std::int64_t microsecond = 0;
};

/// Decomposes epoch seconds into UTC civil time.
[[nodiscard]] CivilTime to_civil(Timestamp ts);

/// Recomposes UTC civil time into epoch seconds.
[[nodiscard]] Timestamp from_civil(const CivilTime& ct);

}  // namespace stampede::common
