#pragma once
// Error taxonomy for the stampede-cpp library.
//
// We follow the Core Guidelines split: exceptions for violations that the
// immediate caller cannot reasonably handle (schema misuse, broken
// invariants), and value-carried errors (std::optional / ParseError lists)
// for data-dependent conditions like malformed log lines, which the loader
// must tolerate and count rather than abort on.

#include <stdexcept>
#include <string>

namespace stampede::common {

/// Base class for all stampede-cpp exceptions.
class StampedeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Misuse of a database/ORM API: unknown table, type mismatch, duplicate
/// primary key, etc.
class DbError : public StampedeError {
 public:
  using StampedeError::StampedeError;
};

/// Misuse of the message-bus API: unknown exchange/queue, redeclaration
/// with conflicting attributes.
class BusError : public StampedeError {
 public:
  using StampedeError::StampedeError;
};

/// Structural error in a YANG schema source text.
class SchemaError : public StampedeError {
 public:
  using StampedeError::StampedeError;
};

/// Workflow-engine configuration errors (cycles in a DAG, dangling cable).
class EngineError : public StampedeError {
 public:
  using StampedeError::StampedeError;
};

}  // namespace stampede::common
