#pragma once
// Bounded multi-producer/multi-consumer blocking queue.
//
// This is the hand-off primitive between event producers (workflow
// engines), the message-bus delivery threads and the loader pump. Per the
// Core Guidelines concurrency rules we never wait without a condition
// (CP.42), hold locks only across the queue mutation (CP.43), and pass
// items by value (CP.31).

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace stampede::common {

template <typename T>
class ConcurrentQueue {
 public:
  /// `capacity` == 0 means unbounded.
  explicit ConcurrentQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  ConcurrentQueue(const ConcurrentQueue&) = delete;
  ConcurrentQueue& operator=(const ConcurrentQueue&) = delete;

  /// Blocks until space is available (or the queue is closed).
  /// Returns false if the queue was closed before the item was accepted.
  bool push(T item) {
    std::unique_lock lock{mutex_};
    not_full_.wait(lock, [this] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      std::scoped_lock lock{mutex_};
      if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; returns nullopt once the queue is
  /// closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock{mutex_};
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Blocks up to `timeout`; nullopt on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock{mutex_};
    if (!not_empty_.wait_for(lock, timeout,
                             [this] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: pending pops drain remaining items then see
  /// nullopt; pushes fail. Idempotent.
  void close() {
    {
      std::scoped_lock lock{mutex_};
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock{mutex_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock{mutex_};
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace stampede::common
