#include "common/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace stampede::common {

namespace {

sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (host.empty() || host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("socket: bad IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

void SocketFd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SocketFd::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

SocketFd listen_tcp(const std::string& host, int port, int backlog,
                    int* bound_port) {
  SocketFd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw std::runtime_error("bind(" + host + ":" + std::to_string(port) +
                             ") failed: " + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len);
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  if (::listen(fd.get(), backlog) < 0) {
    throw std::runtime_error("listen() failed");
  }
  return fd;
}

SocketFd accept_client(int listen_fd, int timeout_ms) {
  pollfd pfd{listen_fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return SocketFd{};
  return SocketFd{::accept(listen_fd, nullptr, nullptr)};
}

SocketFd connect_tcp(const std::string& host, int port) {
  sockaddr_in addr;
  try {
    addr = make_addr(host, port);
  } catch (const std::exception&) {
    return SocketFd{};
  }
  SocketFd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) return SocketFd{};
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return SocketFd{};
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

RecvStatus recv_some(int fd, void* buf, std::size_t size, int timeout_ms,
                     std::size_t* received) {
  pollfd pfd{fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) return RecvStatus::kTimeout;
  if (ready < 0) return errno == EINTR ? RecvStatus::kTimeout
                                       : RecvStatus::kError;
  const ssize_t n = ::recv(fd, buf, size, 0);
  if (n > 0) {
    if (received != nullptr) *received = static_cast<std::size_t>(n);
    return RecvStatus::kData;
  }
  if (n == 0) return RecvStatus::kClosed;
  return errno == EINTR ? RecvStatus::kTimeout : RecvStatus::kError;
}

}  // namespace stampede::common
