#include "common/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace stampede::common {

namespace {

sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (host.empty() || host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("socket: bad IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

void SocketFd::reset() noexcept {
  if (fd_ >= 0) {
    // POSIX leaves the fd state unspecified after close() fails with
    // EINTR; on Linux the descriptor is gone either way, so retrying
    // would race a concurrent open. One close is correct here.
    ::close(fd_);
    fd_ = -1;
  }
}

void SocketFd::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool set_nonblocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

bool set_tcp_nodelay(int fd, bool enabled) {
  const int value = enabled ? 1 : 0;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &value, sizeof(value)) ==
         0;
}

bool set_reuseaddr(int fd, bool enabled) {
  const int value = enabled ? 1 : 0;
  return ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &value, sizeof(value)) ==
         0;
}

SocketFd listen_tcp(const std::string& host, int port, int backlog,
                    int* bound_port) {
  SocketFd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) throw std::runtime_error("socket() failed");
  (void)set_reuseaddr(fd.get());
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw std::runtime_error("bind(" + host + ":" + std::to_string(port) +
                             ") failed: " + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len);
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  if (::listen(fd.get(), backlog) < 0) {
    throw std::runtime_error("listen() failed");
  }
  return fd;
}

SocketFd accept_client(int listen_fd, int timeout_ms, int* fatal_errno) {
  if (fatal_errno != nullptr) *fatal_errno = 0;
  pollfd pfd{listen_fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return SocketFd{};
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      SocketFd client{fd};
      (void)set_tcp_nodelay(client.get());
      return client;
    }
    // The pending connection was reset before we got to it, or a signal
    // landed mid-accept; both are retryable without re-polling because
    // the listening socket is still readable-or-empty (EAGAIN exits).
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK && fatal_errno != nullptr) {
      *fatal_errno = errno;
    }
    return SocketFd{};
  }
}

SocketFd accept_nonblocking(int listen_fd, int* fatal_errno) {
  if (fatal_errno != nullptr) *fatal_errno = 0;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      SocketFd client{fd};
      (void)set_tcp_nodelay(client.get());
      return client;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    // EAGAIN means the backlog is drained; anything else (EMFILE,
    // ENFILE, ENOMEM, ...) leaves the pending connection in place — the
    // fd stays level-triggered-readable, so a caller that cannot tell
    // the two apart retries in a tight spin. Surface the errno.
    if (errno != EAGAIN && errno != EWOULDBLOCK && fatal_errno != nullptr) {
      *fatal_errno = errno;
    }
    return SocketFd{};
  }
}

SocketFd connect_tcp(const std::string& host, int port) {
  sockaddr_in addr;
  try {
    addr = make_addr(host, port);
  } catch (const std::exception&) {
    return SocketFd{};
  }
  SocketFd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) return SocketFd{};
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) {
      // The connect continues in the background; wait for writability
      // and read the result instead of calling connect() again (a
      // second connect on an in-progress socket yields EALREADY).
      pollfd pfd{fd.get(), POLLOUT, 0};
      while (::poll(&pfd, 1, -1) < 0 && errno == EINTR) {
      }
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &len) == 0 &&
          soerr == 0) {
        break;
      }
      return SocketFd{};
    }
    return SocketFd{};
  }
  (void)set_tcp_nodelay(fd.get());
  return fd;
}

bool send_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // A blocking caller handed us a non-blocking fd (or SO_SNDTIMEO
      // fired): park on writability rather than spin.
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, -1);
      if (ready < 0 && errno != EINTR) return false;
      continue;
    }
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

RecvStatus recv_some(int fd, void* buf, std::size_t size, int timeout_ms,
                     std::size_t* received) {
  pollfd pfd{fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) return RecvStatus::kTimeout;
  if (ready < 0) return errno == EINTR ? RecvStatus::kTimeout
                                       : RecvStatus::kError;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, size, 0);
    if (n > 0) {
      if (received != nullptr) *received = static_cast<std::size_t>(n);
      return RecvStatus::kData;
    }
    if (n == 0) return RecvStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvStatus::kTimeout;
    return RecvStatus::kError;
  }
}

std::ptrdiff_t send_some(int fd, const void* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

RecvStatus recv_nonblocking(int fd, void* buf, std::size_t size,
                            std::size_t* received) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, size, MSG_DONTWAIT);
    if (n > 0) {
      if (received != nullptr) *received = static_cast<std::size_t>(n);
      return RecvStatus::kData;
    }
    if (n == 0) return RecvStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvStatus::kTimeout;
    return RecvStatus::kError;
  }
}

}  // namespace stampede::common
