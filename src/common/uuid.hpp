#pragma once
// UUID support for Stampede entity identifiers (xwf.id, task.id, ...).
//
// The paper's data model keys every workflow entity by UUID (see the
// `xwf.id` leaf of the YANG base-event grouping). We implement RFC 4122
// version-4 UUIDs with a seedable generator so that simulated runs are
// fully deterministic and reproducible.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace stampede::common {

/// A 128-bit RFC 4122 UUID value type.
///
/// Comparable and hashable so it can be used as a map key throughout the
/// loader and query layers.
class Uuid {
 public:
  /// The all-zero ("nil") UUID.
  constexpr Uuid() noexcept : bytes_{} {}

  /// Constructs from raw bytes (big-endian textual order).
  explicit constexpr Uuid(const std::array<std::uint8_t, 16>& bytes) noexcept
      : bytes_(bytes) {}

  /// Parses the canonical 8-4-4-4-12 hex form. Returns nullopt on any
  /// malformed input (wrong length, bad hex digit, misplaced dash).
  [[nodiscard]] static std::optional<Uuid> parse(std::string_view text);

  /// Renders the canonical lowercase 8-4-4-4-12 form.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr const std::array<std::uint8_t, 16>& bytes()
      const noexcept {
    return bytes_;
  }

  [[nodiscard]] constexpr bool is_nil() const noexcept {
    for (const auto b : bytes_) {
      if (b != 0) return false;
    }
    return true;
  }

  friend constexpr bool operator==(const Uuid&, const Uuid&) = default;
  friend constexpr auto operator<=>(const Uuid&, const Uuid&) = default;

 private:
  std::array<std::uint8_t, 16> bytes_;
};

/// Deterministic UUIDv4 generator.
///
/// Not thread-safe by design (CP.3: minimize shared writable data); give
/// each producer thread its own generator, seeded distinctly.
class UuidGenerator {
 public:
  explicit UuidGenerator(std::uint64_t seed = 0x5741'4d50'4544'4531ULL);

  /// Produces the next version-4 UUID in the deterministic stream.
  [[nodiscard]] Uuid next();

 private:
  std::uint64_t state_[2];
  std::uint64_t next_u64();
};

}  // namespace stampede::common

template <>
struct std::hash<stampede::common::Uuid> {
  std::size_t operator()(const stampede::common::Uuid& u) const noexcept {
    // FNV-1a over the 16 bytes; cheap and adequate for hash-map keys.
    std::size_t h = 1469598103934665603ULL;
    for (const auto b : u.bytes()) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    return h;
  }
};
