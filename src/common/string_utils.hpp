#pragma once
// Small string helpers shared by the BP parser, YANG lexer and tools.

#include <string>
#include <string_view>
#include <vector>

namespace stampede::common {

/// Splits on a single-character delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  char delim);

/// Splits on a delimiter, dropping empty fields.
[[nodiscard]] std::vector<std::string_view> split_nonempty(
    std::string_view text, char delim);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Joins items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

/// True if `text` ends with `suffix`.
[[nodiscard]] bool ends_with(std::string_view text,
                             std::string_view suffix) noexcept;

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Simple SQL-LIKE style match where '%' matches any run (including empty)
/// and '_' matches exactly one character. Case-sensitive.
[[nodiscard]] bool like_match(std::string_view text, std::string_view pattern);

/// Left-pads with spaces to at least `width` characters.
[[nodiscard]] std::string pad_left(std::string_view text, std::size_t width);

/// Right-pads with spaces to at least `width` characters.
[[nodiscard]] std::string pad_right(std::string_view text, std::size_t width);

/// Formats a double with `decimals` fractional digits (fixed notation),
/// matching the "74.0" style of the paper's tables.
[[nodiscard]] std::string format_fixed(double value, int decimals);

}  // namespace stampede::common
