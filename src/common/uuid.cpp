#include "common/uuid.hpp"

#include <cstdio>

namespace stampede::common {
namespace {

constexpr int kHexInvalid = -1;

constexpr int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return kHexInvalid;
}

}  // namespace

std::optional<Uuid> Uuid::parse(std::string_view text) {
  // Canonical form: xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx (36 chars).
  if (text.size() != 36) return std::nullopt;
  static constexpr std::size_t kDashPositions[] = {8, 13, 18, 23};
  for (const std::size_t pos : kDashPositions) {
    if (text[pos] != '-') return std::nullopt;
  }
  std::array<std::uint8_t, 16> bytes{};
  std::size_t out = 0;
  for (std::size_t i = 0; i < text.size();) {
    if (text[i] == '-') {
      ++i;
      continue;
    }
    const int hi = hex_value(text[i]);
    const int lo = hex_value(text[i + 1]);
    if (hi == kHexInvalid || lo == kHexInvalid) return std::nullopt;
    bytes[out++] = static_cast<std::uint8_t>((hi << 4) | lo);
    i += 2;
  }
  return Uuid{bytes};
}

std::string Uuid::to_string() const {
  char buf[37];
  std::snprintf(buf, sizeof(buf),
                "%02x%02x%02x%02x-%02x%02x-%02x%02x-%02x%02x-"
                "%02x%02x%02x%02x%02x%02x",
                bytes_[0], bytes_[1], bytes_[2], bytes_[3], bytes_[4],
                bytes_[5], bytes_[6], bytes_[7], bytes_[8], bytes_[9],
                bytes_[10], bytes_[11], bytes_[12], bytes_[13], bytes_[14],
                bytes_[15]);
  return std::string{buf, 36};
}

UuidGenerator::UuidGenerator(std::uint64_t seed) {
  // splitmix64 expansion of the seed into the xorshift128+ state; avoids
  // the all-zero state and decorrelates nearby seeds.
  auto splitmix = [&seed]() {
    seed += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  state_[0] = splitmix();
  state_[1] = splitmix();
  if (state_[0] == 0 && state_[1] == 0) state_[0] = 1;
}

std::uint64_t UuidGenerator::next_u64() {
  std::uint64_t s1 = state_[0];
  const std::uint64_t s0 = state_[1];
  state_[0] = s0;
  s1 ^= s1 << 23;
  state_[1] = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
  return state_[1] + s0;
}

Uuid UuidGenerator::next() {
  std::array<std::uint8_t, 16> bytes{};
  const std::uint64_t hi = next_u64();
  const std::uint64_t lo = next_u64();
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(hi >> (56 - 8 * i));
    bytes[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(lo >> (56 - 8 * i));
  }
  bytes[6] = static_cast<std::uint8_t>((bytes[6] & 0x0f) | 0x40);  // version 4
  bytes[8] = static_cast<std::uint8_t>((bytes[8] & 0x3f) | 0x80);  // variant 1
  return Uuid{bytes};
}

}  // namespace stampede::common
