#include "common/time_utils.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace stampede::common {
namespace {

// Days from 1970-01-01 to the first day of `year` (proleptic Gregorian),
// via the standard days-from-civil algorithm (Howard Hinnant's).
std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& y, int& m, int& d) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
  y = static_cast<int>(yy + (m <= 2));
}

bool parse_fixed_int(std::string_view s, std::size_t pos, std::size_t len,
                     int& out) noexcept {
  if (pos + len > s.size()) return false;
  int v = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const char c = s[pos + i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  out = v;
  return true;
}

std::optional<Timestamp> parse_iso8601(std::string_view s) {
  // YYYY-MM-DDTHH:MM:SS[.ffffff](Z|+hh:mm|-hh:mm)
  int year = 0, month = 0, day = 0, hour = 0, minute = 0, second = 0;
  if (!parse_fixed_int(s, 0, 4, year)) return std::nullopt;
  if (s.size() < 19 || s[4] != '-' || s[7] != '-' ||
      (s[10] != 'T' && s[10] != ' ') || s[13] != ':' || s[16] != ':') {
    return std::nullopt;
  }
  if (!parse_fixed_int(s, 5, 2, month) || !parse_fixed_int(s, 8, 2, day) ||
      !parse_fixed_int(s, 11, 2, hour) || !parse_fixed_int(s, 14, 2, minute) ||
      !parse_fixed_int(s, 17, 2, second)) {
    return std::nullopt;
  }
  if (month < 1 || month > 12 || day < 1 || day > days_in_month(year, month) ||
      hour > 23 || minute > 59 || second > 60) {
    return std::nullopt;
  }
  std::size_t pos = 19;
  double frac = 0.0;
  if (pos < s.size() && s[pos] == '.') {
    ++pos;
    double scale = 0.1;
    bool any = false;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      frac += (s[pos] - '0') * scale;
      scale *= 0.1;
      ++pos;
      any = true;
    }
    if (!any) return std::nullopt;
  }
  double offset_seconds = 0.0;
  if (pos < s.size()) {
    const char c = s[pos];
    if (c == 'Z' || c == 'z') {
      ++pos;
    } else if (c == '+' || c == '-') {
      int oh = 0, om = 0;
      if (!parse_fixed_int(s, pos + 1, 2, oh)) return std::nullopt;
      std::size_t mpos = pos + 3;
      if (mpos < s.size() && s[mpos] == ':') ++mpos;
      if (!parse_fixed_int(s, mpos, 2, om)) return std::nullopt;
      offset_seconds = (oh * 3600 + om * 60) * (c == '+' ? 1.0 : -1.0);
      pos = mpos + 2;
    } else {
      return std::nullopt;
    }
  }
  if (pos != s.size()) return std::nullopt;
  const std::int64_t days = days_from_civil(year, month, day);
  const double base = static_cast<double>(days) * 86400.0 + hour * 3600.0 +
                      minute * 60.0 + second;
  return base + frac - offset_seconds;
}

}  // namespace

int days_in_month(int year, int month) noexcept {
  static constexpr std::array<int, 13> kDays = {0,  31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[static_cast<std::size_t>(month)];
}

std::optional<Timestamp> parse_timestamp(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // Epoch-seconds form: all digits, optional single '.', optional sign.
  bool numeric = true;
  bool seen_dot = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '-' && i == 0) continue;
    if (c == '.' && !seen_dot && i > 0) {
      seen_dot = true;
      continue;
    }
    if (c < '0' || c > '9') {
      numeric = false;
      break;
    }
  }
  if (numeric) {
    char* end = nullptr;
    const std::string owned{text};
    const double v = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size()) return std::nullopt;
    return v;
  }
  return parse_iso8601(text);
}

CivilTime to_civil(Timestamp ts) {
  double whole = std::floor(ts);
  double frac = ts - whole;
  auto secs = static_cast<std::int64_t>(whole);
  std::int64_t days = secs / 86400;
  std::int64_t rem = secs % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  CivilTime ct;
  civil_from_days(days, ct.year, ct.month, ct.day);
  ct.hour = static_cast<int>(rem / 3600);
  ct.minute = static_cast<int>((rem % 3600) / 60);
  ct.second = static_cast<int>(rem % 60);
  ct.microsecond = static_cast<std::int64_t>(std::llround(frac * 1e6));
  if (ct.microsecond >= 1000000) {
    // Rounding pushed us into the next second; renormalize.
    ct.microsecond -= 1000000;
    return to_civil(static_cast<double>(secs + 1) +
                    static_cast<double>(ct.microsecond) / 1e6);
  }
  return ct;
}

Timestamp from_civil(const CivilTime& ct) {
  const std::int64_t days = days_from_civil(ct.year, ct.month, ct.day);
  return static_cast<double>(days) * 86400.0 + ct.hour * 3600.0 +
         ct.minute * 60.0 + ct.second +
         static_cast<double>(ct.microsecond) / 1e6;
}

std::string format_iso8601(Timestamp ts) {
  const CivilTime ct = to_civil(ts);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%06lldZ",
                ct.year, ct.month, ct.day, ct.hour, ct.minute, ct.second,
                static_cast<long long>(ct.microsecond));
  return buf;
}

std::string format_duration_human(Duration seconds) {
  auto total = static_cast<std::int64_t>(std::llround(seconds));
  if (total < 0) total = 0;
  const std::int64_t hrs = total / 3600;
  const std::int64_t mins = (total % 3600) / 60;
  const std::int64_t secs = total % 60;
  auto unit = [](std::int64_t n, const char* one, const char* many) {
    return std::to_string(n) + " " + (n == 1 ? one : many);
  };
  std::string out;
  if (hrs > 0) {
    out = unit(hrs, "hr", "hrs");
    if (mins > 0) out += ", " + unit(mins, "min", "mins");
  } else if (mins > 0) {
    out = unit(mins, "min", "mins");
    if (secs > 0) out += ", " + unit(secs, "sec", "secs");
  } else {
    out = unit(secs, "sec", "secs");
  }
  return out;
}

std::string format_duration_with_seconds(Duration seconds) {
  const auto total = static_cast<std::int64_t>(std::llround(seconds));
  return format_duration_human(seconds) + ", (" + std::to_string(total) +
         " seconds)";
}

}  // namespace stampede::common
