#include "common/string_utils.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace stampede::common {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_nonempty(std::string_view text,
                                             char delim) {
  std::vector<std::string_view> out;
  for (const auto piece : split(text, delim)) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out{text};
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool like_match(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer algorithm with backtracking over the last '%'.
  std::size_t t = 0, p = 0;
  std::size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string{text};
  return std::string(width - text.size(), ' ') + std::string{text};
}

std::string pad_right(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string{text};
  return std::string{text} + std::string(width - text.size(), ' ');
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace stampede::common
