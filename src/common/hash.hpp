#pragma once
// Stable, implementation-independent hashing shared by every layer that
// must agree on placement across builds and processes.
//
// db::ShardedDatabase (in-process partition routing) and the cluster
// query router (cross-process shard maps) both derive "which shard owns
// this workflow" from fnv1a64 — one definition here, so the two can
// never silently diverge and misroute rows. Deliberately not std::hash:
// that is implementation-defined and WAL recovery has to find rows on
// the shard that wrote them, possibly in a different binary.

#include <cstdint>
#include <string_view>

namespace stampede::common {

/// 64-bit FNV-1a over the bytes of `key`.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view key) noexcept {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace stampede::common
