#pragma once
// Live analysis attached to the message bus (paper §IV-C: topic queues
// give "a great deal of flexibility in gluing together analysis
// components"; §IV: "users need automated analyses that can alert them
// to problems before resources and time are wasted").
//
// The monitor declares its own queue, binds it to the monitoring
// exchange for the event subsets it cares about (invocation ends and job
// terminations), and feeds two online analyses as messages arrive:
//   * per-transformation runtime z-scoring (RuntimeAnomalyDetector)
//   * workflow failure prediction (FailurePredictor)
// Alerts fire through a callback the moment the analysis trips — while
// the workflow is still running.

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "bus/broker.hpp"
#include "query/anomaly.hpp"

namespace stampede::query {

struct LiveAlert {
  enum class Kind { kRuntimeAnomaly, kPredictedFailure };
  Kind kind = Kind::kRuntimeAnomaly;
  std::string workflow_uuid;
  std::string detail;
};

class LiveMonitor {
 public:
  using AlertFn = std::function<void(const LiveAlert&)>;

  struct Options {
    std::string exchange = "monitoring";
    std::string queue = "live-analysis";
    double z_threshold = 3.0;
    std::int64_t min_samples = 8;
    std::size_t failure_window = 20;
    double failure_threshold = 0.5;
  };

  /// Declares + binds the analysis queue and starts consuming. The
  /// callback runs on the consumer thread — keep it cheap.
  LiveMonitor(bus::Broker& broker, Options options, AlertFn on_alert);
  ~LiveMonitor();

  LiveMonitor(const LiveMonitor&) = delete;
  LiveMonitor& operator=(const LiveMonitor&) = delete;

  /// Stops consuming (idempotent).
  void stop();

  /// Blocks until `n` messages were analyzed or the timeout elapsed.
  bool wait_for_messages(std::uint64_t n, int timeout_ms) const;

  [[nodiscard]] std::uint64_t messages_seen() const;
  [[nodiscard]] std::vector<LiveAlert> alerts() const;

 private:
  bool handle(const bus::Delivery& delivery);

  bus::Broker* broker_;
  Options options_;
  AlertFn on_alert_;
  mutable std::mutex mutex_;
  RuntimeAnomalyDetector runtimes_;
  std::map<std::string, FailurePredictor> per_workflow_;
  std::vector<LiveAlert> alerts_;
  std::uint64_t messages_ = 0;
  bus::Subscription subscription_;
};

}  // namespace stampede::query
