#pragma once
// Performance prediction (paper §IV): "Performance prediction of runtime
// and other resources, which are useful e.g. for provisioning on grids
// and clouds."
//
// The predictor learns per-transformation runtime distributions from the
// archive's invocation history (possibly across many past runs — the
// §VII motivation: "do a baseline run and use that to extrapolate") and
// answers two provisioning questions about a planned workflow:
//   * cumulative compute demand (CPU-hours to reserve), and
//   * a makespan estimate for a given slot count (critical-path bound
//     combined with the work bound — the classic Graham bound).

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "query/anomaly.hpp"
#include "query/query_interface.hpp"

namespace stampede::query {

struct TransformationEstimate {
  std::string transformation;
  std::int64_t samples = 0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// A task of a planned (not yet executed) workflow: its transformation
/// plus dependency edges, the minimum a provisioning estimate needs.
struct PlannedTask {
  std::string transformation;
  std::vector<std::size_t> parents;
};

struct WorkflowForecast {
  double cumulative_seconds = 0.0;  ///< Σ expected runtimes (work bound).
  double critical_path_seconds = 0.0;
  /// Graham bound for `slots` machines:
  ///   makespan ≤ work/slots + critical path.
  double makespan_estimate = 0.0;
  /// Transformations with no history — their tasks contribute the
  /// fallback estimate and widen uncertainty.
  std::vector<std::string> unknown_transformations;
};

class RuntimePredictor {
 public:
  /// Learns from every invocation in the archive (all workflows —
  /// history across runs is the point).
  explicit RuntimePredictor(const QueryInterface& query);

  /// Per-transformation estimate; nullopt when never observed.
  [[nodiscard]] std::optional<TransformationEstimate> estimate(
      const std::string& transformation) const;

  /// All learned estimates, sorted by transformation.
  [[nodiscard]] std::vector<TransformationEstimate> estimates() const;

  /// Forecasts a planned workflow on `slots` parallel slots.
  /// `fallback_seconds` prices tasks of unknown transformations.
  [[nodiscard]] WorkflowForecast forecast(
      const std::vector<PlannedTask>& tasks, int slots,
      double fallback_seconds = 60.0) const;

 private:
  std::map<std::string, OnlineStats> history_;
};

}  // namespace stampede::query
