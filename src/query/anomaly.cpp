#include "query/anomaly.hpp"

#include <algorithm>
#include <cmath>

namespace stampede::query {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

std::optional<RuntimeAnomaly> RuntimeAnomalyDetector::observe(
    const std::string& transformation, double runtime) {
  ++observed_;
  OnlineStats& s = stats_[transformation];
  std::optional<RuntimeAnomaly> result;
  if (s.count() >= min_samples_ && s.stddev() > 0.0) {
    const double z = (runtime - s.mean()) / s.stddev();
    if (std::abs(z) >= threshold_) {
      ++flagged_;
      result = RuntimeAnomaly{transformation, runtime, s.mean(), s.stddev(),
                              z};
    }
  }
  s.add(runtime);
  return result;
}

const OnlineStats* RuntimeAnomalyDetector::stats(
    const std::string& transformation) const {
  const auto it = stats_.find(transformation);
  return it == stats_.end() ? nullptr : &it->second;
}

std::vector<std::size_t> iqr_outliers(const std::vector<double>& values,
                                      double k) {
  if (values.size() < 4) return {};
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const auto quantile = [&sorted](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
  };
  const double q1 = quantile(0.25);
  const double q3 = quantile(0.75);
  const double iqr = q3 - q1;
  const double lo_fence = q1 - k * iqr;
  const double hi_fence = q3 + k * iqr;
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] < lo_fence || values[i] > hi_fence) out.push_back(i);
  }
  return out;
}

void FailurePredictor::record(bool success) {
  ++total_;
  recent_.push_back(success);
  if (!success) ++failures_in_window_;
  if (recent_.size() > window_) {
    if (!recent_.front()) --failures_in_window_;
    recent_.pop_front();
  }
  if (tripped_ == 0 && recent_.size() >= window_ / 2 &&
      failure_ratio() >= threshold_) {
    tripped_ = total_;
  }
}

double FailurePredictor::failure_ratio() const noexcept {
  if (recent_.empty()) return 0.0;
  return static_cast<double>(failures_in_window_) /
         static_cast<double>(recent_.size());
}

bool FailurePredictor::predicts_failure() const noexcept {
  return tripped_ != 0;
}

}  // namespace stampede::query
