#pragma once
// stampede_analyzer (paper §VII-B): interactive failure drill-down.
//
// "Its output contains a brief summary section, showing how many jobs
// have succeeded and how many have failed. For each failed job,
// stampede_analyzer will print information showing its last known state,
// along with the location of its job description, output, and error
// files. It will also display any application stdout and stderr ... It
// first identifies for users the failures at the top level workflow and
// then allows them to drill down the hierarchy."

#include <optional>
#include <string>
#include <vector>

#include "query/query_interface.hpp"

namespace stampede::query {

struct FailedJobDetail {
  std::string job_name;
  std::int64_t job_instance_id = 0;
  std::int64_t try_number = 1;
  std::string last_state;   ///< Last jobstate row.
  std::string site;
  std::string host;
  std::optional<std::int64_t> exitcode;
  std::string stdout_text;
  std::string stderr_text;
  /// Set when the failed job wraps a sub-workflow the user can drill into.
  std::optional<std::int64_t> subwf_id;
};

struct WorkflowAnalysis {
  std::int64_t wf_id = 0;
  std::string wf_uuid;
  std::string dax_label;
  std::int64_t total_jobs = 0;
  std::int64_t succeeded = 0;
  std::int64_t failed = 0;
  std::int64_t unsubmitted = 0;  ///< Jobs with no instance at all.
  std::vector<FailedJobDetail> failures;
  /// Failed sub-workflows one level down (drill-down targets).
  std::vector<std::int64_t> failed_subworkflows;
};

class StampedeAnalyzer {
 public:
  explicit StampedeAnalyzer(const QueryInterface& query) : q_(&query) {}

  /// Analyzes one workflow (one level of the hierarchy).
  [[nodiscard]] WorkflowAnalysis analyze(std::int64_t wf_id) const;

  /// Recursive drill-down: analyses for this workflow and every failed
  /// descendant, in drill-down (pre)order — the interactive session's
  /// transcript.
  [[nodiscard]] std::vector<WorkflowAnalysis> drill_down(
      std::int64_t wf_id) const;

  /// Renders one analysis the way the CLI tool prints it.
  [[nodiscard]] static std::string render(const WorkflowAnalysis& analysis);

 private:
  const QueryInterface* q_;
};

}  // namespace stampede::query
