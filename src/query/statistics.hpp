#pragma once
// stampede_statistics (paper §VII): workflow-level and job-level metrics.
//
// Produces exactly the artifacts the paper's evaluation shows:
//   * the summary block of Table I (task/job/sub-workflow counts, workflow
//     wall time, cumulative job wall time)
//   * breakdown.txt (Table II): per-transformation runtime statistics
//   * jobs.txt (Tables III & IV): per-job site, invocation duration,
//     queue time, runtime, exit code and host
//   * the per-host over-time series and the per-bundle progress series
//     behind Fig. 7

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "query/query_interface.hpp"

namespace stampede::query {

// ---------------------------------------------------------------------------
// Table I — summary

struct EntityCounts {
  std::int64_t succeeded = 0;
  std::int64_t failed = 0;
  std::int64_t incomplete = 0;
  std::int64_t retries = 0;
  [[nodiscard]] std::int64_t total() const noexcept {
    return succeeded + failed + incomplete;
  }
  [[nodiscard]] std::int64_t total_with_retries() const noexcept {
    return total() + retries;
  }
};

struct SummaryStats {
  EntityCounts tasks;
  EntityCounts jobs;
  EntityCounts sub_workflows;
  double workflow_wall_time = 0.0;
  /// Sum of job runtimes over the whole workflow tree — "the resources a
  /// workflow requires in a perfect system without delays". Includes
  /// sub-workflow container jobs (pegasus-statistics accounting; see
  /// DESIGN.md calibration notes).
  double cumulative_job_wall_time = 0.0;
};

// ---------------------------------------------------------------------------
// Table II — breakdown.txt

struct TransformationStats {
  std::string transformation;
  std::int64_t count = 0;
  std::int64_t succeeded = 0;
  std::int64_t failed = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double total = 0.0;
};

// ---------------------------------------------------------------------------
// Tables III & IV — jobs.txt

struct JobRow {
  std::string job_name;  ///< exec_job_id.
  std::int64_t try_number = 1;
  std::string site;
  double invocation_duration = 0.0;  ///< Sum over invocations (Table III).
  double queue_time = 0.0;           ///< SUBMIT → EXECUTE delay (Table IV).
  double runtime = 0.0;              ///< EXECUTE → terminal state.
  std::optional<std::int64_t> exitcode;
  std::string host;                  ///< "None" when never placed.
};

// ---------------------------------------------------------------------------
// Host / progress series

struct HostUsage {
  std::string hostname;
  std::int64_t jobs = 0;
  double total_runtime = 0.0;
};

/// One time bucket of a host's activity ("breakdown of tasks and jobs
/// over time on hosts", §VII): jobs that *started executing* in the
/// bucket, and the runtime they contributed.
struct HostTimeBucket {
  double bucket_start = 0.0;  ///< Seconds since root workflow start.
  std::int64_t jobs = 0;
  double runtime = 0.0;
};

struct HostTimeline {
  std::string hostname;
  std::vector<HostTimeBucket> buckets;  ///< Dense from 0, fixed width.
};

struct ProgressPoint {
  double wall_clock = 0.0;      ///< Seconds since root workflow start.
  double cumulative_runtime = 0.0;
};

struct ProgressSeries {
  std::int64_t wf_id = 0;
  std::string label;
  std::vector<ProgressPoint> points;
};

// ---------------------------------------------------------------------------
// The tool

class StampedeStatistics {
 public:
  explicit StampedeStatistics(const QueryInterface& query) : q_(&query) {}

  /// Table I over the workflow and all descendants.
  [[nodiscard]] SummaryStats summary(std::int64_t root_wf_id) const;

  /// Table II for one workflow (no descendants), sorted by name.
  [[nodiscard]] std::vector<TransformationStats> breakdown(
      std::int64_t wf_id) const;

  /// Tables III/IV for one workflow, sorted by job name.
  [[nodiscard]] std::vector<JobRow> jobs(std::int64_t wf_id) const;

  /// Jobs and total runtime per host across the workflow tree.
  [[nodiscard]] std::vector<HostUsage> host_usage(
      std::int64_t root_wf_id) const;

  /// Per-host activity over time across the workflow tree, bucketed by
  /// `bucket_seconds` of wall clock since the root start.
  [[nodiscard]] std::vector<HostTimeline> host_timeline(
      std::int64_t root_wf_id, double bucket_seconds = 60.0) const;

  /// Fig. 7: one cumulative-runtime series per direct sub-workflow of
  /// the root (the DART "bundles"), x = wall clock since root start.
  [[nodiscard]] std::vector<ProgressSeries> progress(
      std::int64_t root_wf_id) const;

  // -- text rendering in the paper's format ---------------------------------

  [[nodiscard]] static std::string render_summary(const SummaryStats& s);
  [[nodiscard]] static std::string render_breakdown(
      const std::vector<TransformationStats>& rows);
  [[nodiscard]] static std::string render_jobs_invocations(
      const std::vector<JobRow>& rows);  ///< Table III shape.
  [[nodiscard]] static std::string render_jobs_queue(
      const std::vector<JobRow>& rows);  ///< Table IV shape.
  [[nodiscard]] static std::string render_host_usage(
      const std::vector<HostUsage>& rows);

 private:
  [[nodiscard]] EntityCounts count_tasks(
      const std::vector<std::int64_t>& tree) const;
  [[nodiscard]] EntityCounts count_jobs(
      const std::vector<std::int64_t>& tree) const;

  const QueryInterface* q_;
};

}  // namespace stampede::query
