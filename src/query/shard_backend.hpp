#pragma once
// Abstract shard access for the scatter-gather executor (DESIGN.md §14).
//
// QueryExecutor's merge machinery (AVG as SUM+COUNT partials, global
// DISTINCT / ORDER BY / LIMIT, the version-keyed cache) is independent
// of WHERE the shards live. This interface is the seam: a local
// ShardedDatabase satisfies it trivially, and cluster::Router satisfies
// it over TCP — so stampede_statistics runs unchanged against a fleet
// of shard-host processes.

#include <cstdint>
#include <string>
#include <vector>

#include "db/query.hpp"

namespace stampede::query {

class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  [[nodiscard]] virtual std::size_t shard_count() const = 0;

  /// Executes `select` against shard `shard` and materializes the rows.
  /// Implementations may run this concurrently from gather() workers.
  [[nodiscard]] virtual db::ResultSet execute_on(
      std::size_t shard, const db::Select& select) const = 0;

  /// Version stamps of `tables` on every shard, concatenated
  /// shard-major — the same contract as ShardedDatabase::table_versions
  /// (each shard's block is one consistent observation; the cache
  /// treats the whole vector as the fleet-wide stamp).
  [[nodiscard]] virtual std::vector<std::uint64_t> table_versions(
      const std::vector<std::string>& tables) const = 0;
};

}  // namespace stampede::query
