#pragma once
// Online anomaly detection and failure prediction (paper §IV/§VIII,
// following the approach of Samak et al., "Online fault and anomaly
// detection for large-scale scientific workflows" [37]).
//
// Two granularities, as the paper describes:
//   * job-level analysis — per-transformation runtime distributions kept
//     online (Welford) so an invocation can be z-score-flagged the moment
//     its inv.end event arrives, plus an IQR detector for post-hoc scans;
//   * workflow-level analysis — "predict workflow failures from basic
//     aggregations on high-level statistics": a sliding-window failure
//     ratio that trips a threshold before the workflow finishes.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace stampede::query {

/// Numerically stable online mean/variance (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::int64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct RuntimeAnomaly {
  std::string transformation;
  double value = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double z_score = 0.0;
};

/// Per-transformation z-score detector fed one runtime at a time.
class RuntimeAnomalyDetector {
 public:
  /// `threshold`: |z| at which an observation is anomalous;
  /// `min_samples`: observations required before flagging starts.
  explicit RuntimeAnomalyDetector(double threshold = 3.0,
                                  std::int64_t min_samples = 5)
      : threshold_(threshold), min_samples_(min_samples) {}

  /// Feeds one observation; returns the anomaly when flagged. The
  /// observation is always absorbed into the distribution afterwards.
  std::optional<RuntimeAnomaly> observe(const std::string& transformation,
                                        double runtime);

  [[nodiscard]] const OnlineStats* stats(
      const std::string& transformation) const;
  [[nodiscard]] std::uint64_t observed() const noexcept { return observed_; }
  [[nodiscard]] std::uint64_t flagged() const noexcept { return flagged_; }

 private:
  double threshold_;
  std::int64_t min_samples_;
  std::map<std::string, OnlineStats> stats_;
  std::uint64_t observed_ = 0;
  std::uint64_t flagged_ = 0;
};

/// Tukey-fence (IQR) outlier scan over a batch of runtimes: anything
/// outside [Q1 − k·IQR, Q3 + k·IQR].
[[nodiscard]] std::vector<std::size_t> iqr_outliers(
    const std::vector<double>& values, double k = 1.5);

/// Workflow-level failure prediction from a sliding window over job
/// terminations: once the window's failure ratio crosses the threshold,
/// the run is predicted to fail (so the user can be alerted "before
/// resources and time are wasted", §IV).
class FailurePredictor {
 public:
  explicit FailurePredictor(std::size_t window = 20, double threshold = 0.5)
      : window_(window), threshold_(threshold) {}

  /// Records one job termination (true = success).
  void record(bool success);

  [[nodiscard]] double failure_ratio() const noexcept;
  [[nodiscard]] bool predicts_failure() const noexcept;
  [[nodiscard]] std::size_t observed() const noexcept { return total_; }
  /// Index (1-based) of the observation that first tripped the
  /// prediction, 0 when never tripped.
  [[nodiscard]] std::size_t tripped_at() const noexcept { return tripped_; }

 private:
  std::size_t window_;
  double threshold_;
  std::deque<bool> recent_;
  std::size_t failures_in_window_ = 0;
  std::size_t total_ = 0;
  std::size_t tripped_ = 0;
};

}  // namespace stampede::query
