#pragma once
// Cross-shard aggregate merging, shared by the scatter-gather executor
// (query_executor.cpp) and the continuous-view engine
// (continuous_views.cpp).
//
// MergeAgg reproduces db::Aggregator's result semantics from per-shard
// partials: COUNT sums partial counts, SUM adds non-null partial sums,
// AVG divides summed SUM partials by summed COUNT partials, MIN/MAX
// compare partial extrema. Views are byte-identical to re-execution
// only because both paths feed partials through this exact code in
// shard order — do not fork it.

#include <cstdint>

#include "db/query.hpp"

namespace stampede::query::detail {

struct MergeAgg {
  db::AggFn fn = db::AggFn::kCount;
  std::int64_t count = 0;  ///< kCount: summed partial counts.
  double sum = 0.0;        ///< kSum / kAvg: summed non-null partial sums.
  bool any_sum = false;
  std::int64_t avg_count = 0;  ///< kAvg: summed non-null-value counts.
  db::Value minmax;
  bool has_minmax = false;

  void feed_count(const db::Value& partial) { count += partial.as_int(); }

  void feed_sum(const db::Value& partial) {
    if (partial.is_null()) return;
    sum += partial.as_number();
    any_sum = true;
  }

  void feed_minmax(const db::Value& partial, bool want_min) {
    if (partial.is_null()) return;
    if (!has_minmax) {
      minmax = partial;
      has_minmax = true;
    } else if (want_min ? partial < minmax : minmax < partial) {
      minmax = partial;
    }
  }

  [[nodiscard]] db::Value result() const {
    switch (fn) {
      case db::AggFn::kCount:
        return db::Value{count};
      case db::AggFn::kSum:
        return any_sum ? db::Value{sum} : db::Value::null();
      case db::AggFn::kAvg:
        return (any_sum && avg_count > 0)
                   ? db::Value{sum / static_cast<double>(avg_count)}
                   : db::Value::null();
      case db::AggFn::kMin:
      case db::AggFn::kMax:
        return has_minmax ? minmax : db::Value::null();
    }
    return db::Value::null();
  }
};

}  // namespace stampede::query::detail
