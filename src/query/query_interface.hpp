#pragma once
// The Stampede Query Interface (paper layer 3): "a standard query
// interface for extracting the data from the relational archive. The
// Stampede troubleshooting, analysis and dashboard tools use this
// interface."

#include <optional>
#include <string>
#include <vector>

#include "common/uuid.hpp"
#include "db/database.hpp"
#include "db/sharded_database.hpp"
#include "query/query_executor.hpp"

namespace stampede::query {

struct WorkflowInfo {
  std::int64_t wf_id = 0;
  std::string wf_uuid;
  std::string dax_label;
  std::optional<std::int64_t> parent_wf_id;
  std::optional<std::int64_t> root_wf_id;
  std::string user;
  std::string planner_version;
};

class QueryInterface {
 public:
  explicit QueryInterface(const db::Database& database) : exec_(database) {}
  explicit QueryInterface(const db::ShardedDatabase& sharded)
      : exec_(sharded) {}
  /// Remote fleet: shards served by cluster shard hosts, reached
  /// through a ShardBackend (e.g. cluster::Router::backend()).
  explicit QueryInterface(const ShardBackend& backend) : exec_(backend) {}

  /// The scatter-gather executor; query tools route their own Selects
  /// through this (workflow-scoped ones via execute_for and friends).
  [[nodiscard]] const QueryExecutor& executor() const noexcept {
    return exec_;
  }

  /// Workflow lookup by UUID / id; nullopt when absent.
  [[nodiscard]] std::optional<WorkflowInfo> workflow_by_uuid(
      const std::string& uuid) const;
  [[nodiscard]] std::optional<WorkflowInfo> workflow_by_id(
      std::int64_t wf_id) const;

  /// All workflows with no parent (top-level runs).
  [[nodiscard]] std::vector<WorkflowInfo> root_workflows() const;

  /// Direct children (sub-workflows) of a workflow.
  [[nodiscard]] std::vector<WorkflowInfo> children_of(
      std::int64_t wf_id) const;

  /// The workflow and every transitive descendant, pre-order.
  [[nodiscard]] std::vector<std::int64_t> workflow_tree(
      std::int64_t wf_id) const;

  /// Timestamps of WORKFLOW_STARTED / WORKFLOW_TERMINATED states.
  [[nodiscard]] std::optional<double> start_time(std::int64_t wf_id) const;
  [[nodiscard]] std::optional<double> end_time(std::int64_t wf_id) const;

  /// Final status from the last WORKFLOW_TERMINATED row (0 success).
  [[nodiscard]] std::optional<std::int64_t> final_status(
      std::int64_t wf_id) const;

 private:
  [[nodiscard]] static WorkflowInfo row_to_info(const db::ResultSet& rs,
                                                std::size_t row);
  [[nodiscard]] std::optional<double> state_time(std::int64_t wf_id,
                                                 std::string_view state,
                                                 bool last) const;

  QueryExecutor exec_;
};

}  // namespace stampede::query
