#include "query/analyzer.hpp"

#include <map>

#include "common/string_utils.hpp"

namespace stampede::query {

using db::Select;
using db::Value;

WorkflowAnalysis StampedeAnalyzer::analyze(std::int64_t wf_id) const {
  WorkflowAnalysis analysis;
  analysis.wf_id = wf_id;
  if (const auto info = q_->workflow_by_id(wf_id)) {
    analysis.wf_uuid = info->wf_uuid;
    analysis.dax_label = info->dax_label;
  }

  const auto& exec = q_->executor();
  analysis.total_jobs = static_cast<std::int64_t>(
      exec.execute_for(wf_id,
                       Select{"job"}.where(db::eq("wf_id", Value{wf_id})))
          .size());

  // Last instance per job with its exit code and detail columns.
  const auto rows = exec.execute_for(
      wf_id,
      Select{"job_instance"}
          .join("job", "job_id", "job_id")
          .where(db::eq("job.wf_id", Value{wf_id}))
          .columns({"job_instance.job_instance_id", "job.exec_job_id",
                    "job_instance.job_submit_seq", "job_instance.exitcode",
                    "job_instance.site", "job_instance.host_id",
                    "job_instance.stdout_text", "job_instance.stderr_text",
                    "job_instance.subwf_id"}));
  struct Last {
    std::int64_t row = 0;
    std::int64_t seq = -1;
  };
  std::map<std::string, Last> last_of;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string& name = rows.at(i, "job.exec_job_id").as_text();
    const std::int64_t seq =
        rows.at(i, "job_instance.job_submit_seq").as_int();
    auto& slot = last_of[name];
    if (seq > slot.seq) {
      slot.seq = seq;
      slot.row = static_cast<std::int64_t>(i);
    }
  }
  analysis.unsubmitted =
      analysis.total_jobs - static_cast<std::int64_t>(last_of.size());

  // Last jobstate per instance.
  const auto states = exec.execute_for(
      wf_id,
      Select{"jobstate"}
          .join("job_instance", "job_instance_id", "job_instance_id")
          .join("job", "job_instance.job_id", "job_id")
          .where(db::eq("job.wf_id", Value{wf_id}))
          .columns({"jobstate.job_instance_id", "jobstate.state",
                    "jobstate.jobstate_submit_seq"}));
  std::map<std::int64_t, std::pair<std::int64_t, std::string>> last_state;
  for (std::size_t i = 0; i < states.size(); ++i) {
    const std::int64_t ji = states.at(i, "jobstate.job_instance_id").as_int();
    const std::int64_t seq =
        states.at(i, "jobstate.jobstate_submit_seq").is_null()
            ? 0
            : states.at(i, "jobstate.jobstate_submit_seq").as_int();
    auto& slot = last_state[ji];
    if (seq >= slot.first) {
      slot = {seq, states.at(i, "jobstate.state").as_text()};
    }
  }

  const auto hosts =
      exec.execute(Select{"host"}.columns({"host_id", "hostname"}));
  std::map<std::int64_t, std::string> hostnames;
  for (std::size_t i = 0; i < hosts->size(); ++i) {
    hostnames[hosts->at(i, "host_id").as_int()] =
        hosts->at(i, "hostname").as_text();
  }

  for (const auto& [name, slot] : last_of) {
    const auto i = static_cast<std::size_t>(slot.row);
    const auto& exit = rows.at(i, "job_instance.exitcode");
    if (!exit.is_null() && exit.as_int() == 0) {
      ++analysis.succeeded;
      continue;
    }
    ++analysis.failed;
    FailedJobDetail detail;
    detail.job_name = name;
    detail.job_instance_id =
        rows.at(i, "job_instance.job_instance_id").as_int();
    detail.try_number = slot.seq;
    if (!exit.is_null()) detail.exitcode = exit.as_int();
    const auto& site = rows.at(i, "job_instance.site");
    if (site.is_text()) detail.site = site.as_text();
    const auto& host = rows.at(i, "job_instance.host_id");
    if (!host.is_null() && hostnames.count(host.as_int()) != 0) {
      detail.host = hostnames[host.as_int()];
    }
    const auto& out_text = rows.at(i, "job_instance.stdout_text");
    if (out_text.is_text()) detail.stdout_text = out_text.as_text();
    const auto& err_text = rows.at(i, "job_instance.stderr_text");
    if (err_text.is_text()) detail.stderr_text = err_text.as_text();
    const auto st = last_state.find(detail.job_instance_id);
    if (st != last_state.end()) detail.last_state = st->second.second;
    const auto& subwf = rows.at(i, "job_instance.subwf_id");
    if (!subwf.is_null()) {
      detail.subwf_id = subwf.as_int();
      // A failed sub-workflow is a drill-down target.
      analysis.failed_subworkflows.push_back(subwf.as_int());
    }
    analysis.failures.push_back(std::move(detail));
  }
  return analysis;
}

std::vector<WorkflowAnalysis> StampedeAnalyzer::drill_down(
    std::int64_t wf_id) const {
  std::vector<WorkflowAnalysis> out;
  WorkflowAnalysis top = analyze(wf_id);
  const auto targets = top.failed_subworkflows;
  out.push_back(std::move(top));
  for (const auto sub : targets) {
    const auto nested = drill_down(sub);
    out.insert(out.end(), nested.begin(), nested.end());
  }
  return out;
}

std::string StampedeAnalyzer::render(const WorkflowAnalysis& analysis) {
  std::string out;
  out += "************************************\n";
  out += " stampede_analyzer — workflow " + analysis.wf_uuid + "\n";
  if (!analysis.dax_label.empty()) {
    out += " label: " + analysis.dax_label + "\n";
  }
  out += "************************************\n";
  out += " total jobs      : " + std::to_string(analysis.total_jobs) + "\n";
  out += " # jobs succeeded: " + std::to_string(analysis.succeeded) + "\n";
  out += " # jobs failed   : " + std::to_string(analysis.failed) + "\n";
  out += " # jobs unsubmitted: " + std::to_string(analysis.unsubmitted) +
         "\n";
  for (const auto& f : analysis.failures) {
    out += "\n==== failed job: " + f.job_name + " (try " +
           std::to_string(f.try_number) + ")\n";
    out += " last state: " +
           (f.last_state.empty() ? "(none recorded)" : f.last_state) + "\n";
    out += " site      : " + (f.site.empty() ? "local" : f.site) + "\n";
    out += " hostname  : " + (f.host.empty() ? "None" : f.host) + "\n";
    out += " exitcode  : " +
           (f.exitcode ? std::to_string(*f.exitcode) : "(incomplete)") + "\n";
    if (!f.stdout_text.empty()) {
      out += " stdout    : " + f.stdout_text + "\n";
    }
    if (!f.stderr_text.empty()) {
      out += " stderr    : " + f.stderr_text + "\n";
    }
    if (f.subwf_id) {
      out += " sub-workflow wf_id " + std::to_string(*f.subwf_id) +
             " failed — drill down for details\n";
    }
  }
  return out;
}

}  // namespace stampede::query
