#include "query/query_interface.hpp"

#include "loader/stampede_loader.hpp"

namespace stampede::query {

using db::Select;
using db::Value;

WorkflowInfo QueryInterface::row_to_info(const db::ResultSet& rs,
                                         std::size_t row) {
  WorkflowInfo info;
  info.wf_id = rs.at(row, "wf_id").as_int();
  const auto& uuid = rs.at(row, "wf_uuid");
  if (uuid.is_text()) info.wf_uuid = uuid.as_text();
  const auto& label = rs.at(row, "dax_label");
  if (label.is_text()) info.dax_label = label.as_text();
  const auto& parent = rs.at(row, "parent_wf_id");
  if (!parent.is_null()) info.parent_wf_id = parent.as_int();
  const auto& root = rs.at(row, "root_wf_id");
  if (!root.is_null()) info.root_wf_id = root.as_int();
  const auto& user = rs.at(row, "user");
  if (user.is_text()) info.user = user.as_text();
  const auto& planner = rs.at(row, "planner_version");
  if (planner.is_text()) info.planner_version = planner.as_text();
  return info;
}

namespace {

db::Select workflow_columns(db::Select select) {
  return select.columns({"wf_id", "wf_uuid", "dax_label", "parent_wf_id",
                         "root_wf_id", "user", "planner_version"});
}

}  // namespace

std::optional<WorkflowInfo> QueryInterface::workflow_by_uuid(
    const std::string& uuid) const {
  const auto rs = exec_.execute(
      workflow_columns(Select{"workflow"}.where(db::eq("wf_uuid",
                                                       Value{uuid}))));
  if (rs->empty()) return std::nullopt;
  return row_to_info(*rs, 0);
}

std::optional<WorkflowInfo> QueryInterface::workflow_by_id(
    std::int64_t wf_id) const {
  const auto rs = exec_.execute_for(
      wf_id, workflow_columns(Select{"workflow"}.where(db::eq("wf_id",
                                                              Value{wf_id}))));
  if (rs.empty()) return std::nullopt;
  return row_to_info(rs, 0);
}

std::vector<WorkflowInfo> QueryInterface::root_workflows() const {
  const auto rs = exec_.execute(workflow_columns(
      Select{"workflow"}.where(db::is_null("parent_wf_id"))));
  std::vector<WorkflowInfo> out;
  out.reserve(rs->size());
  for (std::size_t i = 0; i < rs->size(); ++i) {
    out.push_back(row_to_info(*rs, i));
  }
  return out;
}

std::vector<WorkflowInfo> QueryInterface::children_of(
    std::int64_t wf_id) const {
  // Children are co-located with their parent by the loader's sticky
  // routing, but correctness must not depend on that: scan every shard.
  const auto rs = exec_.execute(workflow_columns(
      Select{"workflow"}
          .where(db::eq("parent_wf_id", Value{wf_id}))
          .order_by("wf_id")));
  std::vector<WorkflowInfo> out;
  out.reserve(rs->size());
  for (std::size_t i = 0; i < rs->size(); ++i) {
    out.push_back(row_to_info(*rs, i));
  }
  return out;
}

std::vector<std::int64_t> QueryInterface::workflow_tree(
    std::int64_t wf_id) const {
  std::vector<std::int64_t> out{wf_id};
  for (const auto& child : children_of(wf_id)) {
    const auto subtree = workflow_tree(child.wf_id);
    out.insert(out.end(), subtree.begin(), subtree.end());
  }
  return out;
}

std::optional<double> QueryInterface::state_time(std::int64_t wf_id,
                                                 std::string_view state,
                                                 bool last) const {
  auto select = Select{"workflowstate"}
                    .where(db::and_(db::eq("wf_id", Value{wf_id}),
                                    db::eq("state",
                                           Value{std::string{state}})))
                    .columns({"timestamp"})
                    .order_by("timestamp", /*descending=*/last)
                    .limit(1);
  const auto v = exec_.scalar_for(wf_id, select);
  if (!v || v->is_null()) return std::nullopt;
  return v->as_number();
}

std::optional<double> QueryInterface::start_time(std::int64_t wf_id) const {
  return state_time(wf_id, loader::wfstate::kStarted, /*last=*/false);
}

std::optional<double> QueryInterface::end_time(std::int64_t wf_id) const {
  return state_time(wf_id, loader::wfstate::kTerminated, /*last=*/true);
}

std::optional<std::int64_t> QueryInterface::final_status(
    std::int64_t wf_id) const {
  const auto rs = exec_.execute_for(
      wf_id,
      Select{"workflowstate"}
          .where(db::and_(
              db::eq("wf_id", Value{wf_id}),
              db::eq("state", Value{std::string{loader::wfstate::kTerminated}})))
          .columns({"status", "timestamp"})
          .order_by("timestamp", /*descending=*/true)
          .limit(1));
  if (rs.empty() || rs.at(0, "status").is_null()) return std::nullopt;
  return rs.at(0, "status").as_int();
}

}  // namespace stampede::query
