#include "query/query_executor.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/errors.hpp"
#include "query/partial_merge.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace stampede::query {
namespace {

using common::DbError;
using db::AggFn;
using db::AggSpec;
using db::Expr;
using db::ResultSet;
using db::Row;
using db::Select;
using db::Value;

// -- structural fingerprint --------------------------------------------------
//
// Collision-free serialization of a Select for the cache key
// (length-prefixed fields, so no escaping is needed).

void fp_string(std::string& out, const std::string& text) {
  out += std::to_string(text.size());
  out += ':';
  out += text;
}

void fp_value(std::string& out, const Value& value) {
  std::string text;
  if (value.is_null()) {
    out += "N;";
    return;
  }
  if (value.is_int()) {
    text = "I" + std::to_string(value.as_int());
  } else if (value.is_real()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "R%.17g", value.as_real());
    text = buf;
  } else {
    text = "S" + value.as_text();
  }
  fp_string(out, text);
}

void fp_expr(std::string& out, const Expr& expr) {
  out += 'E';
  out += std::to_string(static_cast<int>(expr.kind));
  out += ',';
  out += std::to_string(static_cast<int>(expr.op));
  fp_string(out, expr.column);
  fp_string(out, expr.column_rhs);
  fp_value(out, expr.literal);
  fp_string(out, expr.pattern);
  out += '[';
  for (const auto& value : expr.in_values) fp_value(out, value);
  out += "](";
  for (const auto& child : expr.children) {
    if (child) fp_expr(out, *child);
  }
  out += ')';
}

std::string fingerprint(const Select& select) {
  std::string out = "v1|";
  fp_string(out, select.table());
  fp_string(out, select.alias());
  out += 'C';
  for (const auto& name : select.selected()) fp_string(out, name);
  out += 'J';
  for (const auto& join : select.joins()) {
    fp_string(out, join.table);
    fp_string(out, join.alias);
    fp_string(out, join.left_col);
    fp_string(out, join.right_col);
    out += join.left_outer ? '1' : '0';
  }
  out += 'W';
  if (select.predicate()) fp_expr(out, *select.predicate());
  out += 'G';
  for (const auto& name : select.groups()) fp_string(out, name);
  out += 'A';
  for (const auto& spec : select.aggs()) {
    out += std::to_string(static_cast<int>(spec.fn));
    fp_string(out, spec.column);
    fp_string(out, spec.alias);
  }
  out += 'O';
  for (const auto& order : select.orders()) {
    fp_string(out, order.column);
    out += order.descending ? '1' : '0';
  }
  out += 'L';
  out += select.row_limit() ? std::to_string(*select.row_limit()) : "-";
  out += select.is_distinct() ? "D1" : "D0";
  return out;
}

// -- hashed merge / dedup keys ----------------------------------------------
//
// Group-merge and DISTINCT keys hash the first `prefix` values of a row
// under the engine's type-tagged key semantics (db::group_rows_hash /
// group_rows_equal) instead of serializing a string per row.

struct PrefixRowHash {
  std::size_t prefix = 0;
  std::size_t operator()(const Row* row) const noexcept {
    return db::group_rows_hash(*row, prefix);
  }
};

struct PrefixRowEq {
  std::size_t prefix = 0;
  bool operator()(const Row* a, const Row* b) const noexcept {
    return db::group_rows_equal(*a, *b, prefix);
  }
};

// Separator between an AVG alias and its partial-column suffix; cannot
// collide with user aliases (control character).
constexpr char kPartialSep = '\x1f';

/// Rebuilds `select` as the per-shard partial query: same sources,
/// predicate and grouping, but AVG aggregates split into SUM+COUNT
/// partials and the global DISTINCT / ORDER BY / LIMIT stripped (a
/// top-k prune is kept when it is safe — see gather()).
Select build_partial(const Select& select) {
  Select partial{select.table(), select.alias()};
  partial.columns(select.selected());
  for (const auto& join : select.joins()) {
    if (join.left_outer) {
      partial.left_join(join.table, join.left_col, join.right_col, join.alias);
    } else {
      partial.join(join.table, join.left_col, join.right_col, join.alias);
    }
  }
  if (select.predicate()) partial.where(select.predicate());
  partial.group_by(select.groups());
  for (const auto& spec : select.aggs()) {
    if (spec.fn == AggFn::kAvg) {
      partial.agg(AggFn::kSum, spec.column, spec.alias + kPartialSep + 's');
      partial.agg(AggFn::kCount, spec.column, spec.alias + kPartialSep + 'c');
    } else {
      partial.agg(spec.fn, spec.column, spec.alias);
    }
  }
  const bool aggregated = !select.groups().empty() || !select.aggs().empty();
  if (!aggregated) {
    if (select.is_distinct()) partial.distinct();
    // Safe top-k prune: each shard's top `limit` rows (under the global
    // order) are a superset of its contribution to the global top-k.
    // DISTINCT breaks that (a per-shard cut can starve the global set
    // after dedup), so only prune without it.
    if (select.row_limit() && !select.is_distinct()) {
      for (const auto& order : select.orders()) {
        partial.order_by(order.column, order.descending);
      }
      partial.limit(*select.row_limit());
    }
  }
  return partial;
}

// MergeAgg moved to query/partial_merge.hpp so the continuous-view
// engine merges per-shard partials through the identical arithmetic.
using detail::MergeAgg;

ResultSet merge_aggregates(const Select& select,
                           const std::vector<ResultSet>& parts) {
  const std::size_t n_groups = select.groups().size();

  struct GroupState {
    Row key;
    std::vector<MergeAgg> aggs;
  };
  // Keyed on pointers into the (immutable, stable) partial rows.
  std::unordered_map<const Row*, std::size_t, PrefixRowHash, PrefixRowEq>
      index_of{0, PrefixRowHash{n_groups}, PrefixRowEq{n_groups}};
  std::vector<GroupState> groups;

  for (const auto& part : parts) {
    for (const auto& row : part.rows) {
      auto [it, inserted] = index_of.emplace(&row, groups.size());
      if (inserted) {
        GroupState state;
        state.key.assign(row.begin(),
                         row.begin() + static_cast<std::ptrdiff_t>(n_groups));
        state.aggs.reserve(select.aggs().size());
        for (const auto& spec : select.aggs()) {
          MergeAgg agg;
          agg.fn = spec.fn;
          state.aggs.push_back(agg);
        }
        groups.push_back(std::move(state));
      }
      GroupState& state = groups[it->second];
      // Partial rows lay out as: group values, then one column per
      // non-AVG aggregate and two (sum, count) per AVG, in spec order.
      std::size_t col = n_groups;
      for (std::size_t a = 0; a < select.aggs().size(); ++a) {
        MergeAgg& agg = state.aggs[a];
        switch (agg.fn) {
          case AggFn::kCount:
            agg.feed_count(row[col++]);
            break;
          case AggFn::kSum:
            agg.feed_sum(row[col++]);
            break;
          case AggFn::kAvg:
            agg.feed_sum(row[col++]);
            agg.avg_count += row[col++].as_int();
            break;
          case AggFn::kMin:
            agg.feed_minmax(row[col++], /*want_min=*/true);
            break;
          case AggFn::kMax:
            agg.feed_minmax(row[col++], /*want_min=*/false);
            break;
        }
      }
    }
  }

  // Aggregates with no groups emit one row even from zero input — each
  // shard already did, so `groups` is non-empty in that case; this is
  // just belt and braces for defensive symmetry with the engine.
  if (groups.empty() && n_groups == 0 && !select.aggs().empty()) {
    GroupState state;
    for (const auto& spec : select.aggs()) {
      MergeAgg agg;
      agg.fn = spec.fn;
      state.aggs.push_back(agg);
    }
    groups.push_back(std::move(state));
  }

  ResultSet result;
  for (const auto& g : select.groups()) result.columns.push_back(g);
  for (const auto& spec : select.aggs()) result.columns.push_back(spec.alias);
  result.rows.reserve(groups.size());
  for (auto& state : groups) {
    Row out = std::move(state.key);
    out.reserve(out.size() + state.aggs.size());
    for (const auto& agg : state.aggs) out.push_back(agg.result());
    result.rows.push_back(std::move(out));
  }
  return result;
}

/// Re-applies the global DISTINCT / ORDER BY / LIMIT tail on the merged
/// rows, mirroring the single-shard engine's steps 5-7.
void apply_tail(const Select& select, ResultSet& result) {
  if (select.is_distinct()) {
    const std::size_t width = result.columns.size();
    // Pointers stay valid: `unique` is reserved to the input size and
    // never reallocates.
    std::unordered_set<const Row*, PrefixRowHash, PrefixRowEq> seen{
        0, PrefixRowHash{width}, PrefixRowEq{width}};
    seen.reserve(result.rows.size());
    std::vector<Row> unique;
    unique.reserve(result.rows.size());
    for (auto& row : result.rows) {
      if (seen.find(&row) != seen.end()) continue;
      unique.push_back(std::move(row));
      seen.insert(&unique.back());
    }
    result.rows = std::move(unique);
  }
  db::sort_and_limit(result, select.orders(), select.row_limit());
}

telemetry::Counter& scatter_counter() {
  static telemetry::Counter& counter =
      telemetry::registry().counter("stampede_query_scatter_total");
  return counter;
}

telemetry::Counter& single_shard_counter() {
  static telemetry::Counter& counter =
      telemetry::registry().counter("stampede_query_single_shard_total");
  return counter;
}

telemetry::Counter& cache_hit_counter() {
  static telemetry::Counter& counter =
      telemetry::registry().counter("stampede_query_cache_hits_total");
  return counter;
}

telemetry::Counter& cache_miss_counter() {
  static telemetry::Counter& counter =
      telemetry::registry().counter("stampede_query_cache_misses_total");
  return counter;
}

telemetry::Counter& cache_invalidation_counter() {
  static telemetry::Counter& counter =
      telemetry::registry().counter("stampede_query_cache_invalidations_total");
  return counter;
}

telemetry::Counter& slow_query_counter() {
  static telemetry::Counter& counter =
      telemetry::registry().counter("stampede_query_slow_total");
  return counter;
}

/// Seconds, as an atomic bit pattern (atomic<double> lacks lock-free
/// guarantees on some targets; u64 bit_cast is always fine).
std::atomic<std::uint64_t> g_slow_threshold_bits{
    std::bit_cast<std::uint64_t>(0.25)};

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

void set_slow_query_threshold(double seconds) {
  g_slow_threshold_bits.store(std::bit_cast<std::uint64_t>(seconds),
                              std::memory_order_relaxed);
}

double slow_query_threshold() noexcept {
  return std::bit_cast<double>(
      g_slow_threshold_bits.load(std::memory_order_relaxed));
}

/// Version-keyed memo of fleet-wide results. An entry is valid while
/// every referenced table's modification counter (on every shard) still
/// matches the stamp recorded at store time; any committed write bumps a
/// counter and the next lookup discards the entry (counted as an
/// invalidation). Thread-safe; results are held behind shared_ptr so the
/// lock is never held while a caller copies a large ResultSet.
class QueryCache {
 public:
  /// Cached result for (key, versions), or nullptr on miss. Bumps the
  /// hit / miss / invalidation counters.
  std::shared_ptr<const ResultSet> lookup(
      const std::string& key, const std::vector<std::uint64_t>& versions) {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        if (it->second.versions == versions) {
          cache_hit_counter().inc();
          return it->second.result;
        }
        entries_.erase(it);
        cache_invalidation_counter().inc();
      }
    }
    cache_miss_counter().inc();
    return nullptr;
  }

  void store(std::string key, std::vector<std::uint64_t> versions,
             std::shared_ptr<const ResultSet> shared) {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (entries_.size() >= kMaxEntries &&
        entries_.find(key) == entries_.end()) {
      // Bounded memory beats retention: the workload this serves
      // (dashboards re-issuing a small query set) never gets near the
      // cap, so wholesale reset is simpler than LRU bookkeeping.
      entries_.clear();
    }
    entries_[std::move(key)] = Entry{std::move(versions), std::move(shared)};
  }

 private:
  static constexpr std::size_t kMaxEntries = 256;

  struct Entry {
    std::vector<std::uint64_t> versions;
    std::shared_ptr<const ResultSet> result;
  };

  std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
};

QueryExecutor::QueryExecutor(const db::Database& database)
    : single_(&database), cache_(std::make_shared<QueryCache>()) {}

QueryExecutor::QueryExecutor(const db::ShardedDatabase& sharded)
    : sharded_(&sharded), cache_(std::make_shared<QueryCache>()) {}

QueryExecutor::QueryExecutor(const ShardBackend& backend)
    : backend_(&backend), cache_(std::make_shared<QueryCache>()) {}

QueryExecutor::QueryExecutor(const QueryExecutor&) = default;
QueryExecutor& QueryExecutor::operator=(const QueryExecutor&) = default;
QueryExecutor::~QueryExecutor() = default;

std::vector<std::uint64_t> QueryExecutor::collect_versions(
    const Select& select) const {
  std::vector<std::string> tables;
  tables.reserve(1 + select.joins().size());
  tables.push_back(select.table());
  for (const auto& join : select.joins()) tables.push_back(join.table);
  if (single_) return single_->table_versions(tables);
  if (backend_ != nullptr) return backend_->table_versions(tables);
  return sharded_->table_versions(tables);
}

ResultSet QueryExecutor::run_on_shard(std::size_t shard,
                                      const Select& select) const {
  if (backend_ != nullptr) return backend_->execute_on(shard, select);
  return sharded_->shard(shard).execute(select);
}

std::size_t QueryExecutor::owner_of_id(std::int64_t id) const noexcept {
  if (sharded_ != nullptr) return sharded_->shard_index_for_id(id);
  const auto n = static_cast<std::int64_t>(shard_count());
  return static_cast<std::size_t>(((id - 1) % n + n) % n);
}

ResultSet QueryExecutor::gather(const std::vector<std::size_t>& shards,
                                const Select& select) const {
  if (shards.size() == 1) {
    single_shard_counter().inc();
    return run_on_shard(shards.front(), select);
  }
  scatter_counter().inc();

  const Select partial = build_partial(select);
  std::vector<ResultSet> parts(shards.size());
  std::vector<std::exception_ptr> errors(shards.size());
  {
    std::vector<std::thread> workers;
    workers.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      workers.emplace_back([&, i] {
        try {
          parts[i] = run_on_shard(shards[i], partial);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  ResultSet merged;
  if (!select.groups().empty() || !select.aggs().empty()) {
    merged = merge_aggregates(select, parts);
  } else {
    merged.columns = parts.front().columns;
    std::size_t total = 0;
    for (const auto& part : parts) total += part.rows.size();
    merged.rows.reserve(total);
    for (auto& part : parts) {
      for (auto& row : part.rows) merged.rows.push_back(std::move(row));
    }
  }
  apply_tail(select, merged);
  return merged;
}

ResultSet QueryExecutor::execute_uncached(const Select& select) const {
  if (single_) return single_->execute(select);
  std::vector<std::size_t> all(shard_count());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return gather(all, select);
}

std::shared_ptr<const ResultSet> QueryExecutor::execute(
    const Select& select) const {
  const std::string key = fingerprint(select);
  const std::uint64_t fp_hash = std::hash<std::string>{}(key);
  auto span = telemetry::SpanGuard::root("query.execute");
  span.attr("table", select.table());
  span.attr("fingerprint", hex_u64(fp_hash));
  const double start = telemetry::now();

  std::vector<std::uint64_t> versions = collect_versions(select);
  bool cache_hit = false;
  std::shared_ptr<const ResultSet> result;
  db::PlanInfo plan;
  if (auto cached = cache_->lookup(key, versions)) {
    // O(1) hit: hand back the cached snapshot itself; copying
    // fleet-wide rows per dashboard poll is exactly what the cache was
    // meant to avoid.
    cache_hit = true;
    result = std::move(cached);
  } else {
    result = std::make_shared<const ResultSet>(execute_uncached(select));
    // Planner attribution: last_plan_info() is thread_local, so it only
    // reflects this query when execution stayed on the calling thread
    // (a single Database, or a one-shard fleet). Multi-shard scatters
    // run on worker threads and report no per-query plan.
    // (Remote backends never report one: their execution ran in another
    // process, so this thread's plan info would be stale.)
    if (single_ != nullptr ||
        (sharded_ != nullptr && sharded_->shard_count() == 1)) {
      plan = db::last_plan_info();
      span.attr("plan_base_index", std::to_string(plan.base_index));
      span.attr("plan_base_scan", std::to_string(plan.base_scan));
      span.attr("plan_index_joins", std::to_string(plan.index_joins));
      span.attr("plan_hash_joins", std::to_string(plan.hash_joins));
      span.attr("plan_pushdowns", std::to_string(plan.join_pushdowns));
      span.attr("plan_columnar", plan.columnar ? "true" : "false");
      if (plan.columnar) {
        span.attr("plan_segments_scanned",
                  std::to_string(plan.segments_scanned));
        span.attr("plan_segments_pruned",
                  std::to_string(plan.segments_pruned));
        span.attr("plan_range_index_probes",
                  std::to_string(plan.range_index_probes));
      }
    }
    // Only cache when no write committed while we were computing —
    // otherwise the result belongs to neither the before- nor the
    // after-stamp and must not be served again.
    if (collect_versions(select) == versions) {
      cache_->store(key, std::move(versions), result);
    }
  }
  span.attr("cache", cache_hit ? "hit" : "miss");
  span.attr("rows", std::to_string(result->rows.size()));

  const double elapsed = telemetry::now() - start;
  const double threshold = slow_query_threshold();
  if (threshold > 0.0 && elapsed >= threshold) {
    slow_query_counter().inc();
    span.attr("slow", "true");
    std::fprintf(stderr,
                 "[stampede.query.slow] fingerprint=%s table=%s "
                 "elapsed_ms=%.3f threshold_ms=%.3f cache=%s rows=%zu "
                 "plan_base_index=%llu plan_base_scan=%llu "
                 "plan_index_joins=%llu plan_hash_joins=%llu "
                 "plan_pushdowns=%llu plan_columnar=%d\n",
                 hex_u64(fp_hash).c_str(), select.table().c_str(),
                 elapsed * 1e3, threshold * 1e3,
                 cache_hit ? "hit" : "miss", result->rows.size(),
                 static_cast<unsigned long long>(plan.base_index),
                 static_cast<unsigned long long>(plan.base_scan),
                 static_cast<unsigned long long>(plan.index_joins),
                 static_cast<unsigned long long>(plan.hash_joins),
                 static_cast<unsigned long long>(plan.join_pushdowns),
                 plan.columnar ? 1 : 0);
  }
  return result;
}

std::optional<Value> QueryExecutor::scalar(const Select& select) const {
  const auto rs = execute(select);
  if (rs->rows.empty() || rs->rows.front().empty()) return std::nullopt;
  return rs->rows.front().front();
}

ResultSet QueryExecutor::execute_for(std::int64_t wf_id,
                                     const Select& select) const {
  if (single_) return single_->execute(select);
  return gather({owner_of_id(wf_id)}, select);
}

std::optional<Value> QueryExecutor::scalar_for(std::int64_t wf_id,
                                               const Select& select) const {
  if (single_) return single_->scalar(select);
  const ResultSet rs = execute_for(wf_id, select);
  if (rs.rows.empty() || rs.rows.front().empty()) return std::nullopt;
  return rs.rows.front().front();
}

ResultSet QueryExecutor::execute_for_ids(
    const std::vector<std::int64_t>& wf_ids, const Select& select) const {
  if (single_) return single_->execute(select);
  std::vector<std::size_t> shards;
  for (const std::int64_t id : wf_ids) {
    const std::size_t s = owner_of_id(id);
    if (std::find(shards.begin(), shards.end(), s) == shards.end()) {
      shards.push_back(s);
    }
  }
  if (shards.empty()) return *execute(select);
  std::sort(shards.begin(), shards.end());
  return gather(shards, select);
}

std::size_t QueryExecutor::row_count(const std::string& table) const {
  if (single_) return single_->row_count(table);
  if (sharded_ != nullptr) return sharded_->row_count(table);
  // Remote fleet: one mergeable COUNT(*) scatter (cached like any other
  // fleet-wide query, so dashboard polls stay O(1) between writes).
  const auto count = scalar(Select{table}.count_all("n"));
  return count && count->is_int() ? static_cast<std::size_t>(count->as_int())
                                  : 0;
}

}  // namespace stampede::query
