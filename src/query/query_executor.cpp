#include "query/query_executor.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/errors.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::query {
namespace {

using common::DbError;
using db::AggFn;
using db::AggSpec;
using db::ResultSet;
using db::Row;
using db::Select;
using db::Value;

// Collision-free serialization of a value for DISTINCT / group-merge
// keys (length-prefixed, so no escaping is needed).
void append_key(std::string& out, const Value& value) {
  std::string text;
  if (value.is_null()) {
    out += "N;";
    return;
  }
  if (value.is_int()) {
    text = "I" + std::to_string(value.as_int());
  } else if (value.is_real()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "R%.17g", value.as_real());
    text = buf;
  } else {
    text = "S" + value.as_text();
  }
  out += std::to_string(text.size());
  out += ':';
  out += text;
}

std::string row_key(const Row& row, std::size_t prefix) {
  std::string key;
  for (std::size_t i = 0; i < prefix; ++i) append_key(key, row[i]);
  return key;
}

// Separator between an AVG alias and its partial-column suffix; cannot
// collide with user aliases (control character).
constexpr char kPartialSep = '\x1f';

/// Rebuilds `select` as the per-shard partial query: same sources,
/// predicate and grouping, but AVG aggregates split into SUM+COUNT
/// partials and the global DISTINCT / ORDER BY / LIMIT stripped (a
/// top-k prune is kept when it is safe — see gather()).
Select build_partial(const Select& select) {
  Select partial{select.table(), select.alias()};
  partial.columns(select.selected());
  for (const auto& join : select.joins()) {
    if (join.left_outer) {
      partial.left_join(join.table, join.left_col, join.right_col, join.alias);
    } else {
      partial.join(join.table, join.left_col, join.right_col, join.alias);
    }
  }
  if (select.predicate()) partial.where(select.predicate());
  partial.group_by(select.groups());
  for (const auto& spec : select.aggs()) {
    if (spec.fn == AggFn::kAvg) {
      partial.agg(AggFn::kSum, spec.column, spec.alias + kPartialSep + 's');
      partial.agg(AggFn::kCount, spec.column, spec.alias + kPartialSep + 'c');
    } else {
      partial.agg(spec.fn, spec.column, spec.alias);
    }
  }
  const bool aggregated = !select.groups().empty() || !select.aggs().empty();
  if (!aggregated) {
    if (select.is_distinct()) partial.distinct();
    // Safe top-k prune: each shard's top `limit` rows (under the global
    // order) are a superset of its contribution to the global top-k.
    // DISTINCT breaks that (a per-shard cut can starve the global set
    // after dedup), so only prune without it.
    if (select.row_limit() && !select.is_distinct()) {
      for (const auto& order : select.orders()) {
        partial.order_by(order.column, order.descending);
      }
      partial.limit(*select.row_limit());
    }
  }
  return partial;
}

/// Cross-shard accumulator reproducing Aggregator's result semantics
/// from per-shard partials.
struct MergeAgg {
  AggFn fn = AggFn::kCount;
  std::int64_t count = 0;  ///< kCount: summed partial counts.
  double sum = 0.0;        ///< kSum / kAvg: summed non-null partial sums.
  bool any_sum = false;
  std::int64_t avg_count = 0;  ///< kAvg: summed non-null-value counts.
  Value minmax;
  bool has_minmax = false;

  void feed_count(const Value& partial) { count += partial.as_int(); }

  void feed_sum(const Value& partial) {
    if (partial.is_null()) return;
    sum += partial.as_number();
    any_sum = true;
  }

  void feed_minmax(const Value& partial, bool want_min) {
    if (partial.is_null()) return;
    if (!has_minmax) {
      minmax = partial;
      has_minmax = true;
    } else if (want_min ? partial < minmax : minmax < partial) {
      minmax = partial;
    }
  }

  [[nodiscard]] Value result() const {
    switch (fn) {
      case AggFn::kCount:
        return Value{count};
      case AggFn::kSum:
        return any_sum ? Value{sum} : Value::null();
      case AggFn::kAvg:
        return (any_sum && avg_count > 0)
                   ? Value{sum / static_cast<double>(avg_count)}
                   : Value::null();
      case AggFn::kMin:
      case AggFn::kMax:
        return has_minmax ? minmax : Value::null();
    }
    return Value::null();
  }
};

ResultSet merge_aggregates(const Select& select,
                           const std::vector<ResultSet>& parts) {
  const std::size_t n_groups = select.groups().size();

  struct GroupState {
    Row key;
    std::vector<MergeAgg> aggs;
  };
  std::unordered_map<std::string, std::size_t> index_of;
  std::vector<GroupState> groups;

  for (const auto& part : parts) {
    for (const auto& row : part.rows) {
      auto [it, inserted] = index_of.emplace(row_key(row, n_groups),
                                             groups.size());
      if (inserted) {
        GroupState state;
        state.key.assign(row.begin(),
                         row.begin() + static_cast<std::ptrdiff_t>(n_groups));
        state.aggs.reserve(select.aggs().size());
        for (const auto& spec : select.aggs()) {
          MergeAgg agg;
          agg.fn = spec.fn;
          state.aggs.push_back(agg);
        }
        groups.push_back(std::move(state));
      }
      GroupState& state = groups[it->second];
      // Partial rows lay out as: group values, then one column per
      // non-AVG aggregate and two (sum, count) per AVG, in spec order.
      std::size_t col = n_groups;
      for (std::size_t a = 0; a < select.aggs().size(); ++a) {
        MergeAgg& agg = state.aggs[a];
        switch (agg.fn) {
          case AggFn::kCount:
            agg.feed_count(row[col++]);
            break;
          case AggFn::kSum:
            agg.feed_sum(row[col++]);
            break;
          case AggFn::kAvg:
            agg.feed_sum(row[col++]);
            agg.avg_count += row[col++].as_int();
            break;
          case AggFn::kMin:
            agg.feed_minmax(row[col++], /*want_min=*/true);
            break;
          case AggFn::kMax:
            agg.feed_minmax(row[col++], /*want_min=*/false);
            break;
        }
      }
    }
  }

  // Aggregates with no groups emit one row even from zero input — each
  // shard already did, so `groups` is non-empty in that case; this is
  // just belt and braces for defensive symmetry with the engine.
  if (groups.empty() && n_groups == 0 && !select.aggs().empty()) {
    GroupState state;
    for (const auto& spec : select.aggs()) {
      MergeAgg agg;
      agg.fn = spec.fn;
      state.aggs.push_back(agg);
    }
    groups.push_back(std::move(state));
  }

  ResultSet result;
  for (const auto& g : select.groups()) result.columns.push_back(g);
  for (const auto& spec : select.aggs()) result.columns.push_back(spec.alias);
  result.rows.reserve(groups.size());
  for (auto& state : groups) {
    Row out = std::move(state.key);
    for (const auto& agg : state.aggs) out.push_back(agg.result());
    result.rows.push_back(std::move(out));
  }
  return result;
}

/// Re-applies the global DISTINCT / ORDER BY / LIMIT tail on the merged
/// rows, mirroring the single-shard engine's steps 5-7.
void apply_tail(const Select& select, ResultSet& result) {
  if (select.is_distinct()) {
    std::unordered_set<std::string> seen;
    std::vector<Row> unique;
    unique.reserve(result.rows.size());
    for (auto& row : result.rows) {
      if (seen.insert(row_key(row, row.size())).second) {
        unique.push_back(std::move(row));
      }
    }
    result.rows = std::move(unique);
  }
  if (!select.orders().empty()) {
    std::vector<std::pair<std::size_t, bool>> keys;
    for (const auto& order : select.orders()) {
      const auto idx = result.column_index(order.column);
      if (!idx) {
        throw DbError("order by: column '" + order.column +
                      "' not in result set");
      }
      keys.emplace_back(*idx, order.descending);
    }
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (const auto& [idx, desc] : keys) {
                         const auto ord = a[idx].compare(b[idx]);
                         if (ord == std::partial_ordering::less) return !desc;
                         if (ord == std::partial_ordering::greater) return desc;
                       }
                       return false;
                     });
  }
  if (select.row_limit() && result.rows.size() > *select.row_limit()) {
    result.rows.resize(*select.row_limit());
  }
}

telemetry::Counter& scatter_counter() {
  static telemetry::Counter& counter =
      telemetry::registry().counter("stampede_query_scatter_total");
  return counter;
}

telemetry::Counter& single_shard_counter() {
  static telemetry::Counter& counter =
      telemetry::registry().counter("stampede_query_single_shard_total");
  return counter;
}

}  // namespace

ResultSet QueryExecutor::gather(const std::vector<std::size_t>& shards,
                                const Select& select) const {
  if (shards.size() == 1) {
    single_shard_counter().inc();
    return sharded_->shard(shards.front()).execute(select);
  }
  scatter_counter().inc();

  const Select partial = build_partial(select);
  std::vector<ResultSet> parts(shards.size());
  std::vector<std::exception_ptr> errors(shards.size());
  {
    std::vector<std::thread> workers;
    workers.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      workers.emplace_back([&, i] {
        try {
          parts[i] = sharded_->shard(shards[i]).execute(partial);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  ResultSet merged;
  if (!select.groups().empty() || !select.aggs().empty()) {
    merged = merge_aggregates(select, parts);
  } else {
    merged.columns = parts.front().columns;
    std::size_t total = 0;
    for (const auto& part : parts) total += part.rows.size();
    merged.rows.reserve(total);
    for (auto& part : parts) {
      for (auto& row : part.rows) merged.rows.push_back(std::move(row));
    }
  }
  apply_tail(select, merged);
  return merged;
}

ResultSet QueryExecutor::execute(const Select& select) const {
  if (single_) return single_->execute(select);
  std::vector<std::size_t> all(sharded_->shard_count());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return gather(all, select);
}

std::optional<Value> QueryExecutor::scalar(const Select& select) const {
  if (single_) return single_->scalar(select);
  const ResultSet rs = execute(select);
  if (rs.rows.empty() || rs.rows.front().empty()) return std::nullopt;
  return rs.rows.front().front();
}

ResultSet QueryExecutor::execute_for(std::int64_t wf_id,
                                     const Select& select) const {
  if (single_) return single_->execute(select);
  return gather({sharded_->shard_index_for_id(wf_id)}, select);
}

std::optional<Value> QueryExecutor::scalar_for(std::int64_t wf_id,
                                               const Select& select) const {
  if (single_) return single_->scalar(select);
  const ResultSet rs = execute_for(wf_id, select);
  if (rs.rows.empty() || rs.rows.front().empty()) return std::nullopt;
  return rs.rows.front().front();
}

ResultSet QueryExecutor::execute_for_ids(
    const std::vector<std::int64_t>& wf_ids, const Select& select) const {
  if (single_) return single_->execute(select);
  std::vector<std::size_t> shards;
  for (const std::int64_t id : wf_ids) {
    const std::size_t s = sharded_->shard_index_for_id(id);
    if (std::find(shards.begin(), shards.end(), s) == shards.end()) {
      shards.push_back(s);
    }
  }
  if (shards.empty()) return execute(select);
  std::sort(shards.begin(), shards.end());
  return gather(shards, select);
}

std::size_t QueryExecutor::row_count(const std::string& table) const {
  return single_ ? single_->row_count(table) : sharded_->row_count(table);
}

}  // namespace stampede::query
