#include "query/continuous_views.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <set>
#include <unordered_map>
#include <utility>

#include "bus/ibus.hpp"
#include "common/errors.hpp"
#include "db/aggregate.hpp"
#include "db/database.hpp"
#include "db/sharded_database.hpp"
#include "query/anomaly.hpp"
#include "query/partial_merge.hpp"
#include "query/query_executor.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::query {

using db::AggFn;
using db::Aggregator;
using db::Row;
using db::RowId;
using db::Value;

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// -- wire codec -------------------------------------------------------------
//
// Line-oriented: a header line then one line per change. Fields are
// '|'-separated; text payloads escape '\' -> "\\", '|' -> "\p" and
// '\n' -> "\n" so the separators stay unambiguous. Doubles travel as
// their 16-hex-digit bit pattern: the decoder reconstructs the exact
// double, including -0.0 and NaN payloads, which is what keeps a remote
// subscriber's view byte-identical to the engine's.

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '|':
        out += "\\p";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    const char c = s[++i];
    out += c == 'p' ? '|' : c == 'n' ? '\n' : c;
  }
  return out;
}

/// Appends one value as a wire field (already field-safe; do not escape
/// the result again).
void append_value(std::string& out, const Value& v) {
  if (v.is_null()) {
    out += 'N';
  } else if (v.is_int()) {
    out += 'I';
    out += std::to_string(v.as_int());
  } else if (v.is_real()) {
    std::uint64_t bits = 0;
    const double d = v.as_real();
    std::memcpy(&bits, &d, sizeof bits);
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(bits));
    out += 'R';
    out += buf;
  } else {
    out += 'S';
    append_escaped(out, v.as_text());
  }
}

std::optional<Value> decode_value(std::string_view field) {
  if (field.empty()) return std::nullopt;
  const std::string_view payload = field.substr(1);
  switch (field[0]) {
    case 'N':
      return Value::null();
    case 'I': {
      errno = 0;
      char* end = nullptr;
      const std::string text{payload};
      const long long n = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end != text.c_str() + text.size() || text.empty()) {
        return std::nullopt;
      }
      return Value{static_cast<std::int64_t>(n)};
    }
    case 'R': {
      if (payload.size() != 16) return std::nullopt;
      std::uint64_t bits = 0;
      for (const char c : payload) {
        const int digit = c >= '0' && c <= '9'   ? c - '0'
                          : c >= 'a' && c <= 'f' ? c - 'a' + 10
                                                 : -1;
        if (digit < 0) return std::nullopt;
        bits = bits << 4 | static_cast<std::uint64_t>(digit);
      }
      double d = 0.0;
      std::memcpy(&d, &bits, sizeof d);
      return Value{d};
    }
    case 'S':
      return Value{unescape(payload)};
    default:
      return std::nullopt;
  }
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t n = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return n;
}

/// Stable row-identity string for the first `prefix` values of a result
/// row. NaN is canonicalized (group semantics treat every NaN as the
/// same key, so the identity must not depend on its payload bits);
/// +0.0/-0.0 and int-vs-real keep distinct identities through the bit
/// pattern / type tag.
std::string key_string(const Row& row, std::size_t prefix) {
  std::string out;
  for (std::size_t i = 0; i < prefix; ++i) {
    if (i != 0) out += '|';
    const Value& v = row[i];
    if (v.is_real() && std::isnan(v.as_real())) {
      out += "Rnan";
    } else {
      append_value(out, v);
    }
  }
  return out;
}

const char* op_name(db::CompareOp op) {
  switch (op) {
    case db::CompareOp::kEq:
      return "==";
    case db::CompareOp::kNe:
      return "!=";
    case db::CompareOp::kLt:
      return "<";
    case db::CompareOp::kLe:
      return "<=";
    case db::CompareOp::kGt:
      return ">";
    case db::CompareOp::kGe:
      return ">=";
  }
  return "?";
}

struct KeyHash {
  std::size_t prefix = 0;
  std::size_t operator()(const Row* row) const noexcept {
    return db::group_rows_hash(*row, prefix);
  }
};

struct KeyEq {
  std::size_t prefix = 0;
  bool operator()(const Row* a, const Row* b) const noexcept {
    return db::group_rows_equal(*a, *b, prefix);
  }
};

/// Exact cell equality for the self-check: type tags must match, reals
/// must be bit-identical (NaN equals NaN regardless of payload — the
/// declared key semantics).
bool cells_identical(const Value& a, const Value& b) {
  if (a.is_null()) return b.is_null();
  if (a.is_int()) return b.is_int() && a.as_int() == b.as_int();
  if (a.is_real()) {
    if (!b.is_real()) return false;
    const double x = a.as_real();
    const double y = b.as_real();
    if (std::isnan(x) || std::isnan(y)) return std::isnan(x) && std::isnan(y);
    std::uint64_t xb = 0;
    std::uint64_t yb = 0;
    std::memcpy(&xb, &x, sizeof xb);
    std::memcpy(&yb, &y, sizeof yb);
    return xb == yb;
  }
  return b.is_text() && a.as_text() == b.as_text();
}

}  // namespace

std::string encode_view_update(const ViewUpdate& update) {
  std::string out = "VU1|";
  out += std::to_string(update.view);
  out += '|';
  out += std::to_string(update.seq);
  out += '|';
  out += update.snapshot ? '1' : '0';
  out += '|';
  append_escaped(out, update.name);
  out += '\n';
  for (const auto& change : update.changes) {
    if (change.op == ViewChange::Op::kDelete) {
      out += "D|";
      append_escaped(out, change.key);
    } else {
      out += "U|";
      append_escaped(out, change.key);
      out += '|';
      out += std::to_string(change.row.size());
      for (const auto& v : change.row) {
        out += '|';
        append_value(out, v);
      }
    }
    out += '\n';
  }
  return out;
}

std::optional<ViewUpdate> decode_view_update(std::string_view body) {
  auto lines = split(body, '\n');
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) return std::nullopt;

  const auto header = split(lines[0], '|');
  if (header.size() != 5 || header[0] != "VU1") return std::nullopt;
  const auto view = parse_u64(header[1]);
  const auto seq = parse_u64(header[2]);
  if (!view || !seq || (header[3] != "0" && header[3] != "1")) {
    return std::nullopt;
  }
  ViewUpdate update;
  update.view = *view;
  update.seq = *seq;
  update.snapshot = header[3] == "1";
  update.name = unescape(header[4]);

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto fields = split(lines[i], '|');
    if (fields.empty()) return std::nullopt;
    ViewChange change;
    if (fields[0] == "D") {
      if (fields.size() != 2) return std::nullopt;
      change.op = ViewChange::Op::kDelete;
      change.key = unescape(fields[1]);
    } else if (fields[0] == "U") {
      if (fields.size() < 3) return std::nullopt;
      change.op = ViewChange::Op::kUpsert;
      change.key = unescape(fields[1]);
      const auto n = parse_u64(fields[2]);
      if (!n || fields.size() != 3 + *n) return std::nullopt;
      change.row.reserve(*n);
      for (std::size_t f = 3; f < fields.size(); ++f) {
        auto v = decode_value(fields[f]);
        if (!v) return std::nullopt;
        change.row.push_back(std::move(*v));
      }
    } else {
      return std::nullopt;
    }
    update.changes.push_back(std::move(change));
  }
  return update;
}

// ---------------------------------------------------------------------------
// View state

/// One partial aggregator slot: single-shard views keep the declared
/// function; multi-shard views split AVG into SUM+COUNT partials (spec
/// index says which input value feeds it), mirroring the scatter-gather
/// executor's build_partial.
struct PartialSpec {
  AggFn fn = AggFn::kCount;
  std::size_t spec = 0;
  bool count_star = false;
};

struct ContinuousQueryEngine::View {
  std::uint64_t id = 0;
  ViewOptions options;
  db::Select select{""};
  bool aggregated = false;
  std::size_t n_groups = 0;
  std::size_t n_specs = 0;
  std::size_t width = 0;  ///< Stored-row width (and result width).
  std::size_t shard_count = 1;
  std::vector<std::string> result_columns;
  std::vector<std::size_t> group_cols;  ///< Table column index per group.
  std::vector<std::size_t> agg_cols;    ///< Per spec; kNone for COUNT(*).
  std::vector<PartialSpec> partials;
  /// Per spec: partial slot(s). second == kNone except AVG's COUNT leg.
  std::vector<std::pair<std::size_t, std::size_t>> spec_partials;
  std::vector<std::size_t> proj_cols;  ///< Plain views.
  std::unordered_map<std::string, std::size_t> name_to_col;

  /// Stored rows per shard, keyed by RowId. Aggregated views store
  /// [group values..., one input value per spec (null for COUNT(*))];
  /// plain views store the projected result row.
  std::vector<std::map<RowId, Row>> rows;

  struct ShardAgg {
    std::set<RowId> members;
    std::vector<Aggregator> aggs;
    RowId max_row = -1;
    bool dirty = false;
  };
  struct Group {
    Row key;
    std::vector<ShardAgg> shards;
    Row last_emitted;
    bool present = false;
    std::string key_str;
  };
  std::deque<Group> groups;
  std::unordered_map<const Row*, std::size_t, KeyHash, KeyEq> group_index{
      0, KeyHash{}, KeyEq{}};
  std::set<std::size_t> touched;  ///< Group indexes changed this batch.
  std::map<std::string, ViewChange> pending_plain;  ///< Plain-view deltas.

  std::uint64_t seq = 0;
  std::deque<ViewUpdate> log;

  struct Threshold {
    std::string column;
    db::CompareOp op;
    Value bound;
    AlertHandler handler;
    std::unordered_map<std::string, bool> firing;  ///< By row key.
  };
  std::vector<Threshold> thresholds;

  struct Anomaly {
    std::string key_column;
    std::string value_column;
    AlertHandler handler;
    RuntimeAnomalyDetector detector;
  };
  std::vector<Anomaly> anomalies;
};

// ---------------------------------------------------------------------------
// Impl

struct ContinuousQueryEngine::Impl {
  db::ShardedDatabase& archive;
  QueryExecutor executor;

  mutable std::mutex mu;
  std::condition_variable seq_cv;
  std::uint64_t next_id = 1;
  std::map<std::uint64_t, std::unique_ptr<View>> views;

  UpdateHandler update_handler;
  bus::IBus* bus = nullptr;
  std::string exchange;

  bool self_check = false;
  std::uint64_t check_runs = 0;
  std::uint64_t check_failures = 0;
  std::string check_error;
  std::uint64_t rescan_count = 0;

  struct Waiter {
    std::uint64_t view = 0;
    std::uint64_t after = 0;
    std::chrono::steady_clock::time_point deadline;
    std::function<void(std::vector<ViewUpdate>)> cb;
  };
  std::mutex wmu;
  std::condition_variable wcv;
  std::list<Waiter> waiters;
  bool stopping = false;
  std::thread waiter_thread;

  telemetry::Counter& m_updates =
      telemetry::registry().counter("stampede_view_updates_total");
  telemetry::Counter& m_rows =
      telemetry::registry().counter("stampede_view_rows_emitted_total");
  telemetry::Counter& m_rescans =
      telemetry::registry().counter("stampede_view_rescans_total");
  telemetry::Counter& m_published =
      telemetry::registry().counter("stampede_view_published_total");
  telemetry::Counter& m_alerts =
      telemetry::registry().counter("stampede_view_alerts_total");
  telemetry::Gauge& m_registered =
      telemetry::registry().gauge("stampede_view_registered");
  telemetry::Histogram& m_latency =
      telemetry::registry().histogram("stampede_view_update_latency_seconds");

  explicit Impl(db::ShardedDatabase& db) : archive(db), executor(db) {}

  // -- helpers ---------------------------------------------------------------

  [[nodiscard]] std::size_t resolve(const View& v,
                                    const std::string& name) const {
    const auto it = v.name_to_col.find(name);
    if (it == v.name_to_col.end()) {
      throw common::DbError("continuous view: unknown column '" + name + "'");
    }
    return it->second;
  }

  [[nodiscard]] bool passes(const View& v, const Row& row) const {
    if (!v.select.predicate()) return true;
    return db::evaluate(*v.select.predicate(), [&](const std::string& name) {
      return row[resolve(v, name)];
    });
  }

  [[nodiscard]] static Row build_stored(const View& v, const Row& row) {
    Row stored;
    stored.reserve(v.width);
    for (const std::size_t c : v.group_cols) stored.push_back(row[c]);
    for (const std::size_t c : v.agg_cols) {
      stored.push_back(c == kNone ? Value::null() : row[c]);
    }
    return stored;
  }

  [[nodiscard]] static Row project(const View& v, const Row& row) {
    Row out;
    out.reserve(v.proj_cols.size());
    for (const std::size_t c : v.proj_cols) out.push_back(row[c]);
    return out;
  }

  [[nodiscard]] static std::vector<Aggregator> make_aggs(const View& v) {
    std::vector<Aggregator> aggs;
    aggs.reserve(v.partials.size());
    for (const auto& p : v.partials) {
      Aggregator agg;
      agg.fn = p.fn;
      aggs.push_back(agg);
    }
    return aggs;
  }

  static void feed_stored(const View& v, View::ShardAgg& sa,
                          const Row& stored) {
    for (std::size_t p = 0; p < v.partials.size(); ++p) {
      if (v.partials[p].count_star) {
        sa.aggs[p].feed_row();
      } else {
        sa.aggs[p].feed(stored[v.n_groups + v.partials[p].spec]);
      }
    }
  }

  std::size_t ensure_group(View& v, const Row& keyed) {
    const auto it = v.group_index.find(&keyed);
    if (it != v.group_index.end()) return it->second;
    View::Group g;
    g.key.assign(keyed.begin(),
                 keyed.begin() + static_cast<std::ptrdiff_t>(v.n_groups));
    g.shards.resize(v.shard_count);
    for (auto& sa : g.shards) sa.aggs = make_aggs(v);
    v.groups.push_back(std::move(g));
    const std::size_t index = v.groups.size() - 1;
    v.group_index.emplace(&v.groups.back().key, index);
    return index;
  }

  void add_member(View& v, std::size_t shard, RowId rid, const Row& stored) {
    const std::size_t gi = ensure_group(v, stored);
    auto& sa = v.groups[gi].shards[shard];
    if (!sa.dirty && rid > sa.max_row) {
      // Tail append: feeding the live aggregators now is exactly what a
      // full rescan in RowId order would do — the hot path stays O(1).
      feed_stored(v, sa, stored);
      sa.max_row = rid;
    } else {
      sa.dirty = true;
    }
    sa.members.insert(rid);
    v.touched.insert(gi);
  }

  void remove_member(View& v, std::size_t shard, RowId rid,
                     const Row& stored) {
    const auto it = v.group_index.find(&stored);
    if (it == v.group_index.end()) return;
    auto& sa = v.groups[it->second].shards[shard];
    sa.members.erase(rid);
    sa.dirty = true;
    v.touched.insert(it->second);
  }

  void rescan(View& v, View::Group& g, std::size_t shard) {
    auto& sa = g.shards[shard];
    sa.aggs = make_aggs(v);
    sa.max_row = -1;
    for (const RowId rid : sa.members) {
      feed_stored(v, sa, v.rows[shard].at(rid));
      sa.max_row = rid;
    }
    sa.dirty = false;
    ++rescan_count;
    m_rescans.inc();
  }

  /// Current result row of a group: canonical key (from the stored row
  /// the executor would see first) followed by the aggregate results —
  /// direct Aggregator results on one shard, MergeAgg over per-shard
  /// partials in shard order otherwise.
  [[nodiscard]] Row group_result(const View& v, const View::Group& g) const {
    Row out;
    out.reserve(v.width);
    if (v.n_groups > 0) {
      for (std::size_t s = 0; s < v.shard_count; ++s) {
        if (g.shards[s].members.empty()) continue;
        const Row& first = v.rows[s].at(*g.shards[s].members.begin());
        out.assign(first.begin(),
                   first.begin() + static_cast<std::ptrdiff_t>(v.n_groups));
        break;
      }
    }
    if (v.shard_count == 1) {
      for (std::size_t a = 0; a < v.n_specs; ++a) {
        out.push_back(g.shards[0].aggs[a].result());
      }
      return out;
    }
    for (std::size_t a = 0; a < v.n_specs; ++a) {
      detail::MergeAgg merge;
      merge.fn = v.select.aggs()[a].fn;
      const auto [p0, p1] = v.spec_partials[a];
      for (std::size_t s = 0; s < v.shard_count; ++s) {
        const auto& sa = g.shards[s];
        if (sa.members.empty()) continue;
        switch (merge.fn) {
          case AggFn::kCount:
            merge.feed_count(sa.aggs[p0].result());
            break;
          case AggFn::kSum:
            merge.feed_sum(sa.aggs[p0].result());
            break;
          case AggFn::kAvg:
            merge.feed_sum(sa.aggs[p0].result());
            merge.avg_count += sa.aggs[p1].result().as_int();
            break;
          case AggFn::kMin:
            merge.feed_minmax(sa.aggs[p0].result(), /*want_min=*/true);
            break;
          case AggFn::kMax:
            merge.feed_minmax(sa.aggs[p0].result(), /*want_min=*/false);
            break;
        }
      }
      out.push_back(merge.result());
    }
    return out;
  }

  [[nodiscard]] static bool has_members(const View::Group& g) {
    for (const auto& sa : g.shards) {
      if (!sa.members.empty()) return true;
    }
    return false;
  }

  // -- change application ----------------------------------------------------

  bool apply_agg(View& v, std::size_t shard, const db::RowChange& c) {
    std::optional<Row> stored;
    if (c.kind != db::RowChange::Kind::kDelete && passes(v, c.after)) {
      stored = build_stored(v, c.after);
    }
    auto& shard_rows = v.rows[shard];
    const auto it = shard_rows.find(c.row_id);
    if (!stored) {
      if (it == shard_rows.end()) return false;
      remove_member(v, shard, c.row_id, it->second);
      shard_rows.erase(it);
      return true;
    }
    if (it != shard_rows.end()) {
      if (db::group_rows_equal(it->second, *stored, v.width)) {
        return false;  // Idempotent replay / no-op update.
      }
      if (db::group_rows_equal(it->second, *stored, v.n_groups)) {
        // Same group, inputs changed: no incremental shortcut exists
        // (float addition is order-sensitive) — rescan the group-shard.
        const auto gi = v.group_index.find(&it->second);
        it->second = std::move(*stored);
        if (gi != v.group_index.end()) {
          v.groups[gi->second].shards[shard].dirty = true;
          v.touched.insert(gi->second);
        }
        return true;
      }
      remove_member(v, shard, c.row_id, it->second);
      it->second = std::move(*stored);
      add_member(v, shard, c.row_id, it->second);
      return true;
    }
    const auto pos = shard_rows.emplace(c.row_id, std::move(*stored)).first;
    add_member(v, shard, c.row_id, pos->second);
    return true;
  }

  bool apply_plain(View& v, std::size_t shard, const db::RowChange& c) {
    const std::string key =
        "s" + std::to_string(shard) + ":" + std::to_string(c.row_id);
    std::optional<Row> proj;
    if (c.kind != db::RowChange::Kind::kDelete && passes(v, c.after)) {
      proj = project(v, c.after);
    }
    auto& shard_rows = v.rows[shard];
    const auto it = shard_rows.find(c.row_id);
    if (!proj) {
      if (it == shard_rows.end()) return false;
      shard_rows.erase(it);
      ViewChange change;
      change.op = ViewChange::Op::kDelete;
      change.key = key;
      v.pending_plain[key] = std::move(change);
      return true;
    }
    if (it != shard_rows.end() &&
        db::group_rows_equal(it->second, *proj, v.width)) {
      return false;
    }
    ViewChange change;
    change.op = ViewChange::Op::kUpsert;
    change.key = key;
    change.row = *proj;
    shard_rows[c.row_id] = std::move(*proj);
    v.pending_plain[key] = std::move(change);
    return true;
  }

  /// Resolves dirty state for touched groups and collects the deltas.
  /// With emit == false (registration fill) the result state is set
  /// without producing changes.
  ViewUpdate collect_changes(View& v, bool emit) {
    ViewUpdate update;
    if (!v.aggregated) {
      for (auto& [key, change] : v.pending_plain) {
        (void)key;
        if (emit) update.changes.push_back(std::move(change));
      }
      v.pending_plain.clear();
      return update;
    }
    for (const std::size_t gi : v.touched) {
      auto& g = v.groups[gi];
      for (std::size_t s = 0; s < v.shard_count; ++s) {
        if (g.shards[s].dirty) rescan(v, g, s);
      }
      const bool now_present = v.n_groups == 0 || has_members(g);
      if (!now_present) {
        if (g.present) {
          if (emit) {
            ViewChange change;
            change.op = ViewChange::Op::kDelete;
            change.key = g.key_str;
            update.changes.push_back(std::move(change));
          }
          g.present = false;
          g.last_emitted.clear();
        }
        continue;
      }
      Row result = group_result(v, g);
      if (g.present &&
          db::group_rows_equal(result, g.last_emitted, result.size())) {
        continue;  // Aggregates landed on the same value — nothing moved.
      }
      g.key_str = key_string(result, v.n_groups);
      if (emit) {
        ViewChange change;
        change.op = ViewChange::Op::kUpsert;
        change.key = g.key_str;
        change.row = result;
        update.changes.push_back(std::move(change));
      }
      g.last_emitted = std::move(result);
      g.present = true;
    }
    v.touched.clear();
    return update;
  }

  // -- reads (mu held) -------------------------------------------------------

  /// Present groups ordered as the scatter-gather merge would order
  /// them: by (first shard holding the group, smallest current RowId in
  /// that shard) — first-occurrence order across a shard-ordered scan.
  [[nodiscard]] std::vector<std::size_t> ordered_groups(const View& v) const {
    struct Entry {
      std::size_t shard;
      RowId rid;
      std::size_t group;
    };
    std::vector<Entry> entries;
    for (std::size_t gi = 0; gi < v.groups.size(); ++gi) {
      const auto& g = v.groups[gi];
      if (!g.present) continue;
      Entry e{0, -1, gi};
      for (std::size_t s = 0; s < v.shard_count; ++s) {
        if (g.shards[s].members.empty()) continue;
        e.shard = s;
        e.rid = *g.shards[s].members.begin();
        break;
      }
      entries.push_back(e);
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.shard != b.shard ? a.shard < b.shard : a.rid < b.rid;
              });
    std::vector<std::size_t> out;
    out.reserve(entries.size());
    for (const auto& e : entries) out.push_back(e.group);
    return out;
  }

  [[nodiscard]] db::ResultSet snapshot_locked(const View& v) const {
    db::ResultSet rs;
    rs.columns = v.result_columns;
    if (v.aggregated) {
      for (const std::size_t gi : ordered_groups(v)) {
        rs.rows.push_back(v.groups[gi].last_emitted);
      }
    } else {
      for (const auto& shard_rows : v.rows) {
        for (const auto& [rid, row] : shard_rows) {
          (void)rid;
          rs.rows.push_back(row);
        }
      }
    }
    return rs;
  }

  [[nodiscard]] ViewUpdate resync_update(const View& v) const {
    ViewUpdate update;
    update.view = v.id;
    update.name = v.options.name;
    update.seq = v.seq;
    update.snapshot = true;
    if (v.aggregated) {
      for (const std::size_t gi : ordered_groups(v)) {
        const auto& g = v.groups[gi];
        ViewChange change;
        change.op = ViewChange::Op::kUpsert;
        change.key = g.key_str;
        change.row = g.last_emitted;
        update.changes.push_back(std::move(change));
      }
    } else {
      for (std::size_t s = 0; s < v.shard_count; ++s) {
        for (const auto& [rid, row] : v.rows[s]) {
          ViewChange change;
          change.op = ViewChange::Op::kUpsert;
          change.key = "s" + std::to_string(s) + ":" + std::to_string(rid);
          change.row = row;
          update.changes.push_back(std::move(change));
        }
      }
    }
    return update;
  }

  [[nodiscard]] std::vector<ViewUpdate> updates_since_locked(
      const View& v, std::uint64_t after) const {
    if (after >= v.seq) return {};
    const std::uint64_t first_logged = v.seq - v.log.size() + 1;
    if (v.log.empty() || after + 1 < first_logged) {
      // The requested position has aged out of the log — resync.
      return {resync_update(v)};
    }
    std::vector<ViewUpdate> out;
    for (const auto& update : v.log) {
      if (update.seq > after) out.push_back(update);
    }
    return out;
  }

  [[nodiscard]] std::size_t result_rows_locked(const View& v) const {
    if (!v.aggregated) {
      std::size_t n = 0;
      for (const auto& shard_rows : v.rows) n += shard_rows.size();
      return n;
    }
    std::size_t n = 0;
    for (const auto& g : v.groups) n += g.present ? 1 : 0;
    return n;
  }

  // -- alerts / self-check (mu held) -----------------------------------------

  void run_alerts(View& v, const ViewUpdate& update) {
    for (auto& t : v.thresholds) {
      const auto col = std::find(v.result_columns.begin(),
                                 v.result_columns.end(), t.column);
      if (col == v.result_columns.end()) continue;
      const auto ci =
          static_cast<std::size_t>(col - v.result_columns.begin());
      for (const auto& change : update.changes) {
        if (change.op == ViewChange::Op::kDelete) {
          t.firing.erase(change.key);
          continue;
        }
        const Value& value = change.row[ci];
        const bool now = db::compare_values(value, t.op, t.bound);
        bool& was = t.firing[change.key];
        if (now && !was) {
          ViewAlert alert;
          alert.view = v.id;
          alert.name = v.options.name;
          alert.detail = "view '" + v.options.name + "' row [" + change.key +
                         "]: " + t.column + "=" + value.to_string() + " " +
                         op_name(t.op) + " " + t.bound.to_string();
          m_alerts.inc();
          t.handler(alert);
        }
        was = now;
      }
    }
    for (auto& a : v.anomalies) {
      const auto kc = std::find(v.result_columns.begin(),
                                v.result_columns.end(), a.key_column);
      const auto vc = std::find(v.result_columns.begin(),
                                v.result_columns.end(), a.value_column);
      if (kc == v.result_columns.end() || vc == v.result_columns.end()) {
        continue;
      }
      const auto ki = static_cast<std::size_t>(kc - v.result_columns.begin());
      const auto vi = static_cast<std::size_t>(vc - v.result_columns.begin());
      for (const auto& change : update.changes) {
        if (change.op == ViewChange::Op::kDelete) continue;
        const Value& value = change.row[vi];
        if (value.is_null() || value.is_text()) continue;
        const auto flagged = a.detector.observe(change.row[ki].to_string(),
                                                value.as_number());
        if (!flagged) continue;
        ViewAlert alert;
        alert.view = v.id;
        alert.name = v.options.name;
        alert.detail = "view '" + v.options.name + "' anomaly: " +
                       flagged->transformation + " " + a.value_column + "=" +
                       std::to_string(flagged->value) +
                       " z=" + std::to_string(flagged->z_score) +
                       " (mean " + std::to_string(flagged->mean) + ")";
        m_alerts.inc();
        a.handler(alert);
      }
    }
  }

  void run_self_check(const View& v) {
    ++check_runs;
    const auto expect = executor.execute(v.select);
    const auto got = snapshot_locked(v);
    std::string error;
    if (expect->columns != got.columns) {
      error = "column mismatch";
    } else if (expect->rows.size() != got.rows.size()) {
      error = "row count " + std::to_string(got.rows.size()) + " != " +
              std::to_string(expect->rows.size());
    } else {
      for (std::size_t r = 0; r < got.rows.size() && error.empty(); ++r) {
        for (std::size_t c = 0; c < got.columns.size(); ++c) {
          if (!cells_identical(got.rows[r][c], expect->rows[r][c])) {
            error = "cell (" + std::to_string(r) + "," + got.columns[c] +
                    "): view=" + got.rows[r][c].to_string() +
                    " rescan=" + expect->rows[r][c].to_string();
            break;
          }
        }
      }
    }
    if (!error.empty()) {
      ++check_failures;
      check_error = "view '" + v.options.name + "': " + error;
    }
  }

  // -- delivery --------------------------------------------------------------

  void on_batch(const db::CommittedBatch& batch) {
    {
      std::unique_lock lock{mu};
      for (auto& [id, vp] : views) {
        (void)id;
        View& v = *vp;
        bool any = false;
        for (const auto& change : batch.changes) {
          if (change.table != v.select.table()) continue;
          any = (v.aggregated ? apply_agg(v, batch.shard, change)
                              : apply_plain(v, batch.shard, change)) ||
                any;
        }
        if (!any) continue;
        ViewUpdate update = collect_changes(v, /*emit=*/true);
        if (update.changes.empty()) {
          if (self_check) run_self_check(v);
          continue;
        }
        update.view = v.id;
        update.name = v.options.name;
        update.seq = ++v.seq;
        v.log.push_back(update);
        while (v.log.size() > std::max<std::size_t>(
                                  1, v.options.update_log_capacity)) {
          v.log.pop_front();
        }
        m_updates.inc();
        m_rows.inc(update.changes.size());
        m_latency.observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          batch.commit_time)
                .count());
        if (bus != nullptr) {
          bus::Message message;
          message.routing_key = "stampede.view." + std::to_string(v.id);
          message.headers["view-name"] = v.options.name;
          message.body = encode_view_update(update);
          bus->publish(exchange, std::move(message));
          m_published.inc();
        }
        if (update_handler) update_handler(update);
        run_alerts(v, update);
        if (self_check) run_self_check(v);
      }
    }
    seq_cv.notify_all();
    {
      // Taken-and-dropped so a waiter between its check and its wait
      // cannot miss this notification.
      const std::lock_guard<std::mutex> wl{wmu};
    }
    wcv.notify_all();
  }

  // -- waiter thread ---------------------------------------------------------

  void waiter_loop() {
    std::unique_lock wl{wmu};
    while (!stopping) {
      if (waiters.empty()) {
        wcv.wait(wl);
        continue;
      }
      auto nearest = waiters.front().deadline;
      for (const auto& w : waiters) nearest = std::min(nearest, w.deadline);
      wcv.wait_until(wl, nearest);
      if (stopping) break;

      std::vector<std::pair<std::function<void(std::vector<ViewUpdate>)>,
                            std::vector<ViewUpdate>>>
          fire;
      const auto now = std::chrono::steady_clock::now();
      for (auto it = waiters.begin(); it != waiters.end();) {
        std::vector<ViewUpdate> updates;
        bool view_gone = false;
        {
          const std::lock_guard<std::mutex> lock{mu};
          const auto vi = views.find(it->view);
          if (vi == views.end()) {
            view_gone = true;
          } else {
            updates = updates_since_locked(*vi->second, it->after);
          }
        }
        if (!updates.empty() || view_gone || now >= it->deadline) {
          fire.emplace_back(std::move(it->cb), std::move(updates));
          it = waiters.erase(it);
        } else {
          ++it;
        }
      }
      wl.unlock();
      for (auto& [cb, updates] : fire) cb(std::move(updates));
      wl.lock();
    }
    // Shutdown: honor the fire-exactly-once contract with empty results.
    auto orphans = std::move(waiters);
    waiters.clear();
    wl.unlock();
    for (auto& w : orphans) w.cb({});
  }
};

// ---------------------------------------------------------------------------
// Engine surface

ContinuousQueryEngine::ContinuousQueryEngine(db::ShardedDatabase& archive)
    : impl_(std::make_unique<Impl>(archive)) {
  impl_->waiter_thread = std::thread{[this] { impl_->waiter_loop(); }};
  archive.set_change_sink(
      [this](const db::CommittedBatch& batch) { on_batch(batch); });
}

ContinuousQueryEngine::~ContinuousQueryEngine() {
  // Detach first: set_change_sink drains in-flight deliveries, so no
  // on_batch can be running (or start) once it returns.
  impl_->archive.set_change_sink(nullptr);
  {
    const std::lock_guard<std::mutex> wl{impl_->wmu};
    impl_->stopping = true;
  }
  impl_->wcv.notify_all();
  impl_->waiter_thread.join();
}

void ContinuousQueryEngine::on_batch(const db::CommittedBatch& batch) {
  impl_->on_batch(batch);
}

std::uint64_t ContinuousQueryEngine::register_view(db::Select select,
                                                   ViewOptions options) {
  if (!select.joins().empty()) {
    throw common::DbError("continuous view: joins are not supported");
  }
  if (select.is_distinct()) {
    throw common::DbError("continuous view: DISTINCT is not supported");
  }
  if (!select.orders().empty()) {
    throw common::DbError("continuous view: ORDER BY is not supported");
  }
  if (select.row_limit()) {
    throw common::DbError("continuous view: LIMIT is not supported");
  }

  auto& impl = *impl_;
  const db::TableDef& def = impl.archive.table_def(select.table());
  const std::string alias =
      select.alias().empty() ? select.table() : select.alias();

  auto v = std::make_unique<View>();
  v->select = select;
  v->options = std::move(options);
  v->shard_count = impl.archive.shard_count();
  v->rows.resize(v->shard_count);
  for (std::size_t i = 0; i < def.columns.size(); ++i) {
    v->name_to_col[def.columns[i].name] = i;
    v->name_to_col[alias + "." + def.columns[i].name] = i;
  }
  const auto resolve = [&](const std::string& name) {
    return impl.resolve(*v, name);
  };

  // Pre-validate the predicate so delivery never throws on resolution.
  const std::function<void(const db::Expr&)> check = [&](const db::Expr& e) {
    if (!e.column.empty()) resolve(e.column);
    if (e.kind == db::Expr::Kind::kCompareColumns) resolve(e.column_rhs);
    for (const auto& child : e.children) check(*child);
  };
  if (select.predicate()) check(*select.predicate());

  v->aggregated = !select.groups().empty() || !select.aggs().empty();
  if (v->aggregated) {
    v->n_groups = select.groups().size();
    v->n_specs = select.aggs().size();
    v->width = v->n_groups + v->n_specs;
    for (const auto& g : select.groups()) {
      v->group_cols.push_back(resolve(g));
      v->result_columns.push_back(g);
    }
    for (std::size_t a = 0; a < select.aggs().size(); ++a) {
      const auto& spec = select.aggs()[a];
      v->agg_cols.push_back(spec.column.empty() ? kNone
                                                : resolve(spec.column));
      v->result_columns.push_back(spec.alias);
      std::pair<std::size_t, std::size_t> slots{v->partials.size(), kNone};
      if (v->shard_count > 1 && spec.fn == AggFn::kAvg) {
        // Mirror build_partial: AVG is maintained as SUM+COUNT partials
        // and merged, never averaged per shard.
        v->partials.push_back({AggFn::kSum, a, false});
        slots.second = v->partials.size();
        v->partials.push_back({AggFn::kCount, a, false});
      } else {
        v->partials.push_back({spec.fn, a, spec.column.empty()});
      }
      v->spec_partials.push_back(slots);
    }
    v->group_index = decltype(v->group_index){
        0, KeyHash{v->n_groups}, KeyEq{v->n_groups}};
  } else {
    if (select.selected().empty()) {
      for (std::size_t i = 0; i < def.columns.size(); ++i) {
        v->proj_cols.push_back(i);
        v->result_columns.push_back(def.columns[i].name);
      }
    } else {
      for (const auto& name : select.selected()) {
        v->proj_cols.push_back(resolve(name));
        v->result_columns.push_back(name);
      }
    }
    v->width = v->proj_cols.size();
  }

  // Registration holds the engine mutex across the backfill scan:
  // batches staged before the scan park in their shard's delivery
  // hand-off wanting this mutex, and replay after — the idempotent
  // content checks in apply_* make that replay a no-op.
  const std::unique_lock lock{impl.mu};
  v->id = impl.next_id++;
  if (v->options.name.empty()) {
    v->options.name = "view-" + std::to_string(v->id);
  }

  for (std::size_t s = 0; s < v->shard_count; ++s) {
    impl.archive.shard(s).for_each_row(
        select.table(), [&](RowId rid, const Row& row) {
          if (!impl.passes(*v, row)) return;
          if (v->aggregated) {
            Row stored = Impl::build_stored(*v, row);
            const auto pos = v->rows[s].emplace(rid, std::move(stored)).first;
            impl.add_member(*v, s, rid, pos->second);
          } else {
            v->rows[s].emplace(rid, Impl::project(*v, row));
          }
        });
  }
  if (v->aggregated) {
    if (v->n_groups == 0) {
      // Zero-input aggregates still have one result row (COUNT(*)==0).
      v->touched.insert(impl.ensure_group(*v, Row{}));
    }
    (void)impl.collect_changes(*v, /*emit=*/false);
  }

  const std::uint64_t id = v->id;
  impl.views.emplace(id, std::move(v));
  impl.m_registered.add(1);
  return id;
}

void ContinuousQueryEngine::unregister(std::uint64_t view_id) {
  {
    const std::lock_guard<std::mutex> lock{impl_->mu};
    if (impl_->views.erase(view_id) == 0) return;
    impl_->m_registered.add(-1);
  }
  impl_->seq_cv.notify_all();
  {
    const std::lock_guard<std::mutex> wl{impl_->wmu};
  }
  impl_->wcv.notify_all();
}

std::vector<ViewInfo> ContinuousQueryEngine::list() const {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  std::vector<ViewInfo> out;
  out.reserve(impl_->views.size());
  for (const auto& [id, v] : impl_->views) {
    ViewInfo info;
    info.id = id;
    info.name = v->options.name;
    info.table = v->select.table();
    info.seq = v->seq;
    info.rows = impl_->result_rows_locked(*v);
    out.push_back(std::move(info));
  }
  return out;
}

std::optional<ViewInfo> ContinuousQueryEngine::info(
    std::uint64_t view_id) const {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  const auto it = impl_->views.find(view_id);
  if (it == impl_->views.end()) return std::nullopt;
  ViewInfo info;
  info.id = view_id;
  info.name = it->second->options.name;
  info.table = it->second->select.table();
  info.seq = it->second->seq;
  info.rows = impl_->result_rows_locked(*it->second);
  return info;
}

db::ResultSet ContinuousQueryEngine::snapshot(std::uint64_t view_id,
                                              std::uint64_t* seq_out) const {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  const auto it = impl_->views.find(view_id);
  if (it == impl_->views.end()) {
    throw common::DbError("continuous view: unknown view id " +
                          std::to_string(view_id));
  }
  if (seq_out != nullptr) *seq_out = it->second->seq;
  return impl_->snapshot_locked(*it->second);
}

std::vector<ViewUpdate> ContinuousQueryEngine::updates_since(
    std::uint64_t view_id, std::uint64_t after_seq) const {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  const auto it = impl_->views.find(view_id);
  if (it == impl_->views.end()) return {};
  return impl_->updates_since_locked(*it->second, after_seq);
}

std::vector<ViewUpdate> ContinuousQueryEngine::wait_for(std::uint64_t view_id,
                                                        std::uint64_t after_seq,
                                                        int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds{std::max(0, timeout_ms)};
  std::unique_lock lock{impl_->mu};
  for (;;) {
    const auto it = impl_->views.find(view_id);
    if (it == impl_->views.end()) return {};
    if (it->second->seq > after_seq) {
      return impl_->updates_since_locked(*it->second, after_seq);
    }
    if (impl_->seq_cv.wait_until(lock, deadline) ==
        std::cv_status::timeout) {
      const auto again = impl_->views.find(view_id);
      if (again != impl_->views.end() && again->second->seq > after_seq) {
        return impl_->updates_since_locked(*again->second, after_seq);
      }
      return {};
    }
  }
}

void ContinuousQueryEngine::async_wait(
    std::uint64_t view_id, std::uint64_t after_seq, int timeout_ms,
    std::function<void(std::vector<ViewUpdate>)> cb) {
  std::vector<ViewUpdate> ready;
  bool immediate = false;
  {
    const std::lock_guard<std::mutex> lock{impl_->mu};
    const auto it = impl_->views.find(view_id);
    if (it == impl_->views.end()) {
      immediate = true;
    } else {
      ready = impl_->updates_since_locked(*it->second, after_seq);
      immediate = !ready.empty();
    }
  }
  if (immediate) {
    cb(std::move(ready));
    return;
  }
  {
    const std::lock_guard<std::mutex> wl{impl_->wmu};
    if (!impl_->stopping) {
      Impl::Waiter w;
      w.view = view_id;
      w.after = after_seq;
      w.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds{std::max(0, timeout_ms)};
      w.cb = std::move(cb);
      impl_->waiters.push_back(std::move(w));
      cb = nullptr;
    }
  }
  if (cb) {
    cb({});  // Engine is shutting down; honor fire-exactly-once.
    return;
  }
  impl_->wcv.notify_all();
}

void ContinuousQueryEngine::publish_to(bus::IBus& bus, std::string exchange) {
  bus.declare_exchange(exchange, bus::ExchangeType::kTopic);
  const std::lock_guard<std::mutex> lock{impl_->mu};
  impl_->bus = &bus;
  impl_->exchange = std::move(exchange);
}

void ContinuousQueryEngine::on_update(UpdateHandler handler) {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  impl_->update_handler = std::move(handler);
}

void ContinuousQueryEngine::add_threshold(std::uint64_t view_id,
                                          const std::string& column,
                                          db::CompareOp op, db::Value bound,
                                          AlertHandler handler) {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  const auto it = impl_->views.find(view_id);
  if (it == impl_->views.end()) {
    throw common::DbError("continuous view: unknown view id " +
                          std::to_string(view_id));
  }
  View::Threshold t{column, op, std::move(bound), std::move(handler), {}};
  it->second->thresholds.push_back(std::move(t));
}

void ContinuousQueryEngine::add_anomaly(std::uint64_t view_id,
                                        const std::string& key_column,
                                        const std::string& value_column,
                                        AlertHandler handler, double threshold,
                                        std::int64_t min_samples) {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  const auto it = impl_->views.find(view_id);
  if (it == impl_->views.end()) {
    throw common::DbError("continuous view: unknown view id " +
                          std::to_string(view_id));
  }
  View::Anomaly a{key_column, value_column, std::move(handler),
                  RuntimeAnomalyDetector{threshold, min_samples}};
  it->second->anomalies.push_back(std::move(a));
}

void ContinuousQueryEngine::enable_self_check() {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  impl_->self_check = true;
}

std::uint64_t ContinuousQueryEngine::self_check_runs() const {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  return impl_->check_runs;
}

std::uint64_t ContinuousQueryEngine::self_check_failures() const {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  return impl_->check_failures;
}

std::string ContinuousQueryEngine::last_self_check_error() const {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  return impl_->check_error;
}

std::uint64_t ContinuousQueryEngine::rescans() const {
  const std::lock_guard<std::mutex> lock{impl_->mu};
  return impl_->rescan_count;
}

}  // namespace stampede::query
