#include "query/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_utils.hpp"
#include "common/time_utils.hpp"
#include "loader/stampede_loader.hpp"

namespace stampede::query {

using db::Select;
using db::Value;

namespace {

std::vector<Value> to_values(const std::vector<std::int64_t>& ids) {
  std::vector<Value> out;
  out.reserve(ids.size());
  for (const auto id : ids) out.emplace_back(id);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Summary (Table I)

EntityCounts StampedeStatistics::count_tasks(
    const std::vector<std::int64_t>& tree) const {
  const auto& exec = q_->executor();
  // A task succeeded when any of its invocations (over every retry of
  // its job) exited 0; it failed when it was attempted but never
  // succeeded; with no invocations at all it is incomplete.
  const auto invs = exec.execute_for_ids(
      tree,
      Select{"invocation"}
          .where(db::and_(db::in_list("wf_id", to_values(tree)),
                          db::is_not_null("abs_task_id")))
          .columns({"wf_id", "abs_task_id", "exitcode"}));
  std::map<std::pair<std::int64_t, std::string>, bool> outcome;
  for (std::size_t i = 0; i < invs.size(); ++i) {
    const std::pair<std::int64_t, std::string> key{
        invs.at(i, "wf_id").as_int(), invs.at(i, "abs_task_id").as_text()};
    const bool ok = !invs.at(i, "exitcode").is_null() &&
                    invs.at(i, "exitcode").as_int() == 0;
    auto [it, inserted] = outcome.emplace(key, ok);
    if (!inserted) it->second = it->second || ok;
  }

  const auto tasks = exec.execute_for_ids(
      tree,
      Select{"task"}
          .where(db::in_list("wf_id", to_values(tree)))
          .columns({"wf_id", "abs_task_id"}));
  EntityCounts counts;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const std::pair<std::int64_t, std::string> key{
        tasks.at(i, "wf_id").as_int(), tasks.at(i, "abs_task_id").as_text()};
    const auto it = outcome.find(key);
    if (it == outcome.end()) {
      ++counts.incomplete;
    } else if (it->second) {
      ++counts.succeeded;
    } else {
      ++counts.failed;
    }
  }
  return counts;
}

EntityCounts StampedeStatistics::count_jobs(
    const std::vector<std::int64_t>& tree) const {
  const auto rows = q_->executor().execute_for_ids(
      tree,
      Select{"job_instance"}
          .join("job", "job_id", "job_id")
          .where(db::in_list("job.wf_id", to_values(tree)))
          .columns({"job.wf_id", "job.job_id", "job_instance.job_submit_seq",
                    "job_instance.exitcode"}));
  struct JobAgg {
    std::int64_t instances = 0;
    std::int64_t last_seq = -1;
    std::optional<std::int64_t> last_exit;
  };
  std::map<std::pair<std::int64_t, std::int64_t>, JobAgg> jobs;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::pair<std::int64_t, std::int64_t> key{
        rows.at(i, "job.wf_id").as_int(), rows.at(i, "job.job_id").as_int()};
    JobAgg& agg = jobs[key];
    ++agg.instances;
    const std::int64_t seq = rows.at(i, "job_instance.job_submit_seq").as_int();
    if (seq > agg.last_seq) {
      agg.last_seq = seq;
      const auto& exit = rows.at(i, "job_instance.exitcode");
      agg.last_exit = exit.is_null()
                          ? std::optional<std::int64_t>{}
                          : std::optional<std::int64_t>{exit.as_int()};
    }
  }
  EntityCounts counts;
  for (const auto& [key, agg] : jobs) {
    if (!agg.last_exit) {
      ++counts.incomplete;
    } else if (*agg.last_exit == 0) {
      ++counts.succeeded;
    } else {
      ++counts.failed;
    }
    counts.retries += agg.instances - 1;
  }
  return counts;
}

SummaryStats StampedeStatistics::summary(std::int64_t root_wf_id) const {
  SummaryStats stats;
  const auto tree = q_->workflow_tree(root_wf_id);
  stats.tasks = count_tasks(tree);
  stats.jobs = count_jobs(tree);

  // Sub-workflows: every tree member except the root, judged by its
  // final WORKFLOW_TERMINATED status.
  for (const auto wf : tree) {
    if (wf == root_wf_id) continue;
    const auto status = q_->final_status(wf);
    if (!status) {
      ++stats.sub_workflows.incomplete;
    } else if (*status == 0) {
      ++stats.sub_workflows.succeeded;
    } else {
      ++stats.sub_workflows.failed;
    }
  }

  const auto start = q_->start_time(root_wf_id);
  const auto end = q_->end_time(root_wf_id);
  if (start && end) stats.workflow_wall_time = *end - *start;

  const auto durations = q_->executor().execute_for_ids(
      tree,
      Select{"job_instance"}
          .join("job", "job_id", "job_id")
          .where(db::in_list("job.wf_id", to_values(tree)))
          .agg(db::AggFn::kSum, "job_instance.local_duration", "total"));
  if (!durations.empty() && !durations.at(0, "total").is_null()) {
    stats.cumulative_job_wall_time = durations.at(0, "total").as_number();
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Breakdown (Table II)

std::vector<TransformationStats> StampedeStatistics::breakdown(
    std::int64_t wf_id) const {
  const auto rows = q_->executor().execute_for(
      wf_id,
      Select{"invocation"}
          .where(db::eq("wf_id", Value{wf_id}))
          .columns({"transformation", "remote_duration", "exitcode"}));
  std::map<std::string, TransformationStats> by_name;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& name_cell = rows.at(i, "transformation");
    const std::string name =
        name_cell.is_text() ? name_cell.as_text() : "(unknown)";
    TransformationStats& t = by_name[name];
    t.transformation = name;
    const double dur = rows.at(i, "remote_duration").is_null()
                           ? 0.0
                           : rows.at(i, "remote_duration").as_number();
    if (t.count == 0) {
      t.min = dur;
      t.max = dur;
    } else {
      t.min = std::min(t.min, dur);
      t.max = std::max(t.max, dur);
    }
    ++t.count;
    t.total += dur;
    const auto& exit = rows.at(i, "exitcode");
    if (!exit.is_null() && exit.as_int() == 0) {
      ++t.succeeded;
    } else {
      ++t.failed;
    }
  }
  std::vector<TransformationStats> out;
  out.reserve(by_name.size());
  for (auto& [name, t] : by_name) {
    t.mean = t.count > 0 ? t.total / static_cast<double>(t.count) : 0.0;
    out.push_back(std::move(t));
  }
  return out;
}

// ---------------------------------------------------------------------------
// jobs.txt (Tables III & IV)

std::vector<JobRow> StampedeStatistics::jobs(std::int64_t wf_id) const {
  const auto& exec = q_->executor();
  const auto instances = exec.execute_for(
      wf_id,
      Select{"job_instance"}
          .join("job", "job_id", "job_id")
          .where(db::eq("job.wf_id", Value{wf_id}))
          .columns({"job_instance.job_instance_id", "job.exec_job_id",
                    "job_instance.job_submit_seq", "job_instance.site",
                    "job_instance.exitcode", "job_instance.host_id",
                    "job_instance.local_duration"}));

  // Invocation durations per instance.
  const auto invs = exec.execute_for(
      wf_id,
      Select{"invocation"}
          .where(db::eq("wf_id", Value{wf_id}))
          .columns({"job_instance_id", "remote_duration"}));
  std::map<std::int64_t, double> inv_dur;
  for (std::size_t i = 0; i < invs.size(); ++i) {
    if (!invs.at(i, "remote_duration").is_null()) {
      inv_dur[invs.at(i, "job_instance_id").as_int()] +=
          invs.at(i, "remote_duration").as_number();
    }
  }

  // Jobstate timestamps per instance.
  const auto states = exec.execute_for(
      wf_id,
      Select{"jobstate"}
          .join("job_instance", "job_instance_id", "job_instance_id")
          .join("job", "job_instance.job_id", "job_id")
          .where(db::eq("job.wf_id", Value{wf_id}))
          .columns({"jobstate.job_instance_id", "jobstate.state",
                    "jobstate.timestamp"}));
  struct Times {
    std::optional<double> submit, execute, terminal;
  };
  std::map<std::int64_t, Times> times;
  for (std::size_t i = 0; i < states.size(); ++i) {
    const std::int64_t ji = states.at(i, "jobstate.job_instance_id").as_int();
    const std::string& state = states.at(i, "jobstate.state").as_text();
    const double ts = states.at(i, "jobstate.timestamp").as_number();
    Times& t = times[ji];
    if (state == loader::jobstate::kSubmit && !t.submit) t.submit = ts;
    if (state == loader::jobstate::kExecute && !t.execute) t.execute = ts;
    if (state == loader::jobstate::kSuccess ||
        state == loader::jobstate::kFailure) {
      t.terminal = ts;
    }
  }

  // Host names.
  // Hosts are fleet-wide (host ids resolve across the whole archive).
  const auto hosts = exec.execute(
      Select{"host"}.columns({"host_id", "hostname"}));
  std::map<std::int64_t, std::string> hostnames;
  for (std::size_t i = 0; i < hosts->size(); ++i) {
    hostnames[hosts->at(i, "host_id").as_int()] =
        hosts->at(i, "hostname").as_text();
  }

  std::vector<JobRow> out;
  out.reserve(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    JobRow row;
    const std::int64_t ji =
        instances.at(i, "job_instance.job_instance_id").as_int();
    row.job_name = instances.at(i, "job.exec_job_id").as_text();
    row.try_number = instances.at(i, "job_instance.job_submit_seq").as_int();
    const auto& site = instances.at(i, "job_instance.site");
    if (site.is_text()) row.site = site.as_text();
    const auto& exit = instances.at(i, "job_instance.exitcode");
    if (!exit.is_null()) row.exitcode = exit.as_int();
    const auto& host = instances.at(i, "job_instance.host_id");
    row.host = host.is_null()
                   ? "None"
                   : (hostnames.count(host.as_int()) != 0
                          ? hostnames[host.as_int()]
                          : "None");
    const auto dur = inv_dur.find(ji);
    if (dur != inv_dur.end()) row.invocation_duration = dur->second;
    const auto t = times.find(ji);
    if (t != times.end()) {
      if (t->second.submit && t->second.execute) {
        row.queue_time = *t->second.execute - *t->second.submit;
      }
      if (t->second.execute && t->second.terminal) {
        row.runtime = *t->second.terminal - *t->second.execute;
      }
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const JobRow& a, const JobRow& b) {
    return a.job_name < b.job_name;
  });
  return out;
}

// ---------------------------------------------------------------------------
// Hosts & progress

std::vector<HostUsage> StampedeStatistics::host_usage(
    std::int64_t root_wf_id) const {
  const auto tree = q_->workflow_tree(root_wf_id);
  const auto rows = q_->executor().execute_for_ids(
      tree,
      Select{"job_instance"}
          .join("job", "job_id", "job_id")
          .join("host", "job_instance.host_id", "host_id")
          .where(db::in_list("job.wf_id", to_values(tree)))
          .group_by({"host.hostname"})
          .count_all("jobs")
          .agg(db::AggFn::kSum, "job_instance.local_duration", "runtime")
          .order_by("host.hostname"));
  std::vector<HostUsage> out;
  out.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    HostUsage usage;
    usage.hostname = rows.at(i, "host.hostname").as_text();
    usage.jobs = rows.at(i, "jobs").as_int();
    if (!rows.at(i, "runtime").is_null()) {
      usage.total_runtime = rows.at(i, "runtime").as_number();
    }
    out.push_back(std::move(usage));
  }
  return out;
}

std::vector<HostTimeline> StampedeStatistics::host_timeline(
    std::int64_t root_wf_id, double bucket_seconds) const {
  const auto tree = q_->workflow_tree(root_wf_id);
  const double t0 = q_->start_time(root_wf_id).value_or(0.0);
  // EXECUTE timestamp + host + duration per job instance.
  const auto rows = q_->executor().execute_for_ids(
      tree,
      Select{"jobstate"}
          .join("job_instance", "job_instance_id", "job_instance_id")
          .join("job", "job_instance.job_id", "job_id")
          .join("host", "job_instance.host_id", "host_id")
          .where(db::and_(
              db::in_list("job.wf_id", to_values(tree)),
              db::eq("jobstate.state",
                     Value{std::string{loader::jobstate::kExecute}})))
          .columns({"host.hostname", "jobstate.timestamp",
                    "job_instance.local_duration"}));
  std::map<std::string, std::map<std::int64_t, HostTimeBucket>> sparse;
  std::int64_t max_bucket = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string& host = rows.at(i, "host.hostname").as_text();
    const double offset = rows.at(i, "jobstate.timestamp").as_number() - t0;
    const auto bucket =
        static_cast<std::int64_t>(std::floor(std::max(0.0, offset) /
                                             bucket_seconds));
    max_bucket = std::max(max_bucket, bucket);
    HostTimeBucket& b = sparse[host][bucket];
    b.bucket_start = static_cast<double>(bucket) * bucket_seconds;
    ++b.jobs;
    const auto& dur = rows.at(i, "job_instance.local_duration");
    if (!dur.is_null()) b.runtime += dur.as_number();
  }
  std::vector<HostTimeline> out;
  out.reserve(sparse.size());
  for (const auto& [host, buckets] : sparse) {
    HostTimeline timeline;
    timeline.hostname = host;
    for (std::int64_t b = 0; b <= max_bucket; ++b) {
      const auto it = buckets.find(b);
      HostTimeBucket bucket;
      bucket.bucket_start = static_cast<double>(b) * bucket_seconds;
      if (it != buckets.end()) bucket = it->second;
      timeline.buckets.push_back(bucket);
    }
    out.push_back(std::move(timeline));
  }
  return out;
}

std::vector<ProgressSeries> StampedeStatistics::progress(
    std::int64_t root_wf_id) const {
  const auto start = q_->start_time(root_wf_id);
  const double t0 = start.value_or(0.0);
  std::vector<ProgressSeries> out;
  for (const auto& child : q_->children_of(root_wf_id)) {
    ProgressSeries series;
    series.wf_id = child.wf_id;
    series.label = child.dax_label.empty()
                       ? ("wf-" + std::to_string(child.wf_id))
                       : child.dax_label;
    // Completed jobs of the bundle in completion order.
    const auto rows = q_->executor().execute_for(
        child.wf_id,
        Select{"jobstate"}
            .join("job_instance", "job_instance_id", "job_instance_id")
            .join("job", "job_instance.job_id", "job_id")
            .where(db::and_(
                db::eq("job.wf_id", Value{child.wf_id}),
                db::eq("jobstate.state",
                       Value{std::string{loader::jobstate::kSuccess}})))
            .columns({"jobstate.timestamp", "job_instance.local_duration"})
            .order_by("jobstate.timestamp"));
    double cumulative = 0.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& dur = rows.at(i, "job_instance.local_duration");
      cumulative += dur.is_null() ? 0.0 : dur.as_number();
      series.points.push_back(
          {rows.at(i, "jobstate.timestamp").as_number() - t0, cumulative});
    }
    out.push_back(std::move(series));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rendering

namespace {

std::string counts_line(std::string_view label, const EntityCounts& c) {
  using common::pad_left;
  using common::pad_right;
  std::string line = pad_right(label, 8);
  line += pad_left(std::to_string(c.succeeded), 10);
  line += pad_left(std::to_string(c.failed), 8);
  line += pad_left(std::to_string(c.incomplete), 12);
  line += pad_left(std::to_string(c.total()), 7);
  line += pad_left(std::to_string(c.retries), 9);
  line += pad_left(std::to_string(c.total_with_retries()), 14);
  return line + "\n";
}

}  // namespace

std::string StampedeStatistics::render_summary(const SummaryStats& s) {
  using common::pad_left;
  using common::pad_right;
  std::string out;
  out += pad_right("Type", 8) + pad_left("Succeeded", 10) +
         pad_left("Failed", 8) + pad_left("Incomplete", 12) +
         pad_left("Total", 7) + pad_left("Retries", 9) +
         pad_left("Total+Retries", 14) + "\n";
  out += counts_line("Tasks", s.tasks);
  out += counts_line("Jobs", s.jobs);
  out += counts_line("Sub WF", s.sub_workflows);
  out += "\n";
  out += "Workflow wall time : " +
         common::format_duration_with_seconds(s.workflow_wall_time) + "\n";
  out += "Workflow cumulative job wall time : " +
         common::format_duration_with_seconds(s.cumulative_job_wall_time) +
         "\n";
  return out;
}

std::string StampedeStatistics::render_breakdown(
    const std::vector<TransformationStats>& rows) {
  using common::format_fixed;
  using common::pad_left;
  using common::pad_right;
  std::string out = pad_right("Type", 14) + pad_left("Count", 6) +
                    pad_left("Success", 8) + pad_left("Failed", 7) +
                    pad_left("Min", 8) + pad_left("Max", 8) +
                    pad_left("Mean", 8) + pad_left("Total", 9) + "\n";
  for (const auto& t : rows) {
    out += pad_right(t.transformation, 14);
    out += pad_left(std::to_string(t.count), 6);
    out += pad_left(std::to_string(t.succeeded), 8);
    out += pad_left(std::to_string(t.failed), 7);
    out += pad_left(format_fixed(t.min, 1), 8);
    out += pad_left(format_fixed(t.max, 1), 8);
    out += pad_left(format_fixed(t.mean, 1), 8);
    out += pad_left(format_fixed(t.total, 1), 9);
    out += "\n";
  }
  return out;
}

std::string StampedeStatistics::render_jobs_invocations(
    const std::vector<JobRow>& rows) {
  using common::format_fixed;
  using common::pad_left;
  using common::pad_right;
  std::string out = pad_right("Job", 20) + pad_left("Try", 4) +
                    pad_left("Site", 14) + pad_left("Invocation Duration", 21) +
                    "\n";
  for (const auto& r : rows) {
    out += pad_right(r.job_name, 20);
    out += pad_left(std::to_string(r.try_number), 4);
    out += pad_left(r.site.empty() ? "local" : r.site, 14);
    out += pad_left(format_fixed(r.invocation_duration, 1), 21);
    out += "\n";
  }
  return out;
}

std::string StampedeStatistics::render_jobs_queue(
    const std::vector<JobRow>& rows) {
  using common::format_fixed;
  using common::pad_left;
  using common::pad_right;
  std::string out = pad_right("Job", 20) + pad_left("Queue Time", 11) +
                    pad_left("Runtime", 9) + pad_left("Exit", 6) +
                    pad_left("Host", 15) + "\n";
  for (const auto& r : rows) {
    out += pad_right(r.job_name, 20);
    out += pad_left(format_fixed(r.queue_time, 2), 11);
    out += pad_left(format_fixed(r.runtime, 1), 9);
    out += pad_left(r.exitcode ? std::to_string(*r.exitcode) : "-", 6);
    out += pad_left(r.host, 15);
    out += "\n";
  }
  return out;
}

std::string StampedeStatistics::render_host_usage(
    const std::vector<HostUsage>& rows) {
  using common::format_fixed;
  using common::pad_left;
  using common::pad_right;
  std::string out = pad_right("Host", 18) + pad_left("Jobs", 6) +
                    pad_left("Total Runtime", 15) + "\n";
  for (const auto& r : rows) {
    out += pad_right(r.hostname, 18);
    out += pad_left(std::to_string(r.jobs), 6);
    out += pad_left(format_fixed(r.total_runtime, 1), 15);
    out += "\n";
  }
  return out;
}

}  // namespace stampede::query
