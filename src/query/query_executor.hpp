#pragma once
// Scatter-gather query execution over the (possibly sharded) archive.
//
// Over a single Database this is a thin pass-through. Over a
// ShardedDatabase it fans a Select out to every shard in parallel and
// merges the partial results: plain scans concatenate (then re-apply
// DISTINCT / ORDER BY / LIMIT globally), aggregates are rewritten into
// mergeable partials (AVG becomes per-shard SUM+COUNT) and combined
// per group with the same null semantics as the single-shard engine.
//
// Fleet-wide execute()/scalar() results are memoized in a version-keyed
// cache: the key is (structural fingerprint of the Select, per-table
// modification counters of every referenced table across every shard).
// Any committed write bumps a counter and naturally invalidates — no
// explicit invalidation hook, and a result is only stored when the
// versions observed before and after execution match (so a result
// computed while a writer raced is never cached). Telemetry:
// stampede_query_cache_{hits,misses,invalidations}_total. Copies of an
// executor share one cache; the cache itself is thread-safe.
//
// Workflow-scoped queries should use the *_for routes: because primary
// keys are strided by shard, the owner of wf_id is known without
// hashing, and the query touches exactly one shard — which also makes
// tie-breaking (ORDER BY … LIMIT 1) deterministic and identical to an
// unsharded archive.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/sharded_database.hpp"
#include "query/shard_backend.hpp"

namespace stampede::query {

/// Version-keyed result cache (defined in query_executor.cpp).
class QueryCache;

/// Fleet-wide execute() calls slower than this many seconds emit one
/// structured slow-query log line on stderr (fingerprint hash, planner
/// choices, row count), mark their span slow=true, and count in
/// stampede_query_slow_total. 0 disables. Thread-safe.
void set_slow_query_threshold(double seconds);
[[nodiscard]] double slow_query_threshold() noexcept;

class QueryExecutor {
 public:
  /// Single-shard pass-through (the original Database path).
  explicit QueryExecutor(const db::Database& database);

  /// Scatter-gather over every shard.
  explicit QueryExecutor(const db::ShardedDatabase& sharded);

  /// Scatter-gather through an abstract backend (e.g. cluster::Router's
  /// remote shards). The backend must outlive the executor and all its
  /// copies.
  explicit QueryExecutor(const ShardBackend& backend);

  QueryExecutor(const QueryExecutor&);
  QueryExecutor& operator=(const QueryExecutor&);
  ~QueryExecutor();

  [[nodiscard]] std::size_t shard_count() const noexcept {
    if (backend_ != nullptr) return backend_->shard_count();
    return sharded_ ? sharded_->shard_count() : 1;
  }

  /// Fleet-wide: all shards, merged; memoized in the version-keyed
  /// cache (see file header). Returns a shared handle so a cache hit is
  /// O(1) — no row is copied; callers must not hold the pointer across
  /// writes they need to observe (re-execute instead).
  [[nodiscard]] std::shared_ptr<const db::ResultSet> execute(
      const db::Select& select) const;
  [[nodiscard]] std::optional<db::Value> scalar(const db::Select& select) const;

  /// Workflow-scoped: exactly the shard owning `wf_id`.
  [[nodiscard]] db::ResultSet execute_for(std::int64_t wf_id,
                                          const db::Select& select) const;
  [[nodiscard]] std::optional<db::Value> scalar_for(
      std::int64_t wf_id, const db::Select& select) const;

  /// Tree-scoped: the union of shards owning `wf_ids` (deduplicated).
  [[nodiscard]] db::ResultSet execute_for_ids(
      const std::vector<std::int64_t>& wf_ids, const db::Select& select) const;

  [[nodiscard]] std::size_t row_count(const std::string& table) const;

 private:
  [[nodiscard]] db::ResultSet gather(const std::vector<std::size_t>& shards,
                                     const db::Select& select) const;

  /// `select` executed on one shard, via whichever multi-shard source
  /// this executor wraps (sharded_ or backend_).
  [[nodiscard]] db::ResultSet run_on_shard(std::size_t shard,
                                           const db::Select& select) const;

  /// Shard owning primary key `id` under the global stride.
  [[nodiscard]] std::size_t owner_of_id(std::int64_t id) const noexcept;

  /// The uncached fleet-wide path behind execute().
  [[nodiscard]] db::ResultSet execute_uncached(const db::Select& select) const;

  /// Version stamp of every table `select` references (base + joins),
  /// across every shard.
  [[nodiscard]] std::vector<std::uint64_t> collect_versions(
      const db::Select& select) const;

  const db::Database* single_ = nullptr;
  const db::ShardedDatabase* sharded_ = nullptr;
  const ShardBackend* backend_ = nullptr;
  std::shared_ptr<QueryCache> cache_;  ///< Shared by copies.
};

}  // namespace stampede::query
