#include "query/prediction.hpp"

#include <algorithm>

#include "common/errors.hpp"

namespace stampede::query {

RuntimePredictor::RuntimePredictor(const QueryInterface& query) {
  // Prediction learns from every workflow's history: fleet-wide scatter.
  const auto rows = query.executor().execute(
      db::Select{"invocation"}
          .where(db::and_(db::eq("exitcode", db::Value{0}),
                          db::is_not_null("remote_duration")))
          .columns({"transformation", "remote_duration"}));
  for (std::size_t i = 0; i < rows->size(); ++i) {
    const auto& name = rows->at(i, "transformation");
    if (!name.is_text()) continue;
    history_[name.as_text()].add(rows->at(i, "remote_duration").as_number());
  }
}

std::optional<TransformationEstimate> RuntimePredictor::estimate(
    const std::string& transformation) const {
  const auto it = history_.find(transformation);
  if (it == history_.end()) return std::nullopt;
  TransformationEstimate e;
  e.transformation = transformation;
  e.samples = it->second.count();
  e.mean = it->second.mean();
  e.stddev = it->second.stddev();
  return e;
}

std::vector<TransformationEstimate> RuntimePredictor::estimates() const {
  std::vector<TransformationEstimate> out;
  out.reserve(history_.size());
  for (const auto& [name, stats] : history_) {
    TransformationEstimate e;
    e.transformation = name;
    e.samples = stats.count();
    e.mean = stats.mean();
    e.stddev = stats.stddev();
    out.push_back(std::move(e));
  }
  return out;
}

WorkflowForecast RuntimePredictor::forecast(
    const std::vector<PlannedTask>& tasks, int slots,
    double fallback_seconds) const {
  if (slots < 1) {
    throw common::StampedeError("forecast: slots must be ≥ 1");
  }
  WorkflowForecast forecast;
  std::vector<double> expected(tasks.size(), 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto est = estimate(tasks[i].transformation);
    if (est) {
      expected[i] = est->mean;
    } else {
      expected[i] = fallback_seconds;
      if (std::find(forecast.unknown_transformations.begin(),
                    forecast.unknown_transformations.end(),
                    tasks[i].transformation) ==
          forecast.unknown_transformations.end()) {
        forecast.unknown_transformations.push_back(
            tasks[i].transformation);
      }
    }
    forecast.cumulative_seconds += expected[i];
  }

  // Longest path through the DAG (tasks are assumed listed so that
  // parents precede children — the planner's natural order; violations
  // surface as an error rather than a wrong answer).
  std::vector<double> finish(tasks.size(), 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    double ready = 0.0;
    for (const std::size_t p : tasks[i].parents) {
      if (p >= i) {
        throw common::StampedeError(
            "forecast: tasks must be topologically ordered");
      }
      ready = std::max(ready, finish[p]);
    }
    finish[i] = ready + expected[i];
    forecast.critical_path_seconds =
        std::max(forecast.critical_path_seconds, finish[i]);
  }

  forecast.makespan_estimate =
      forecast.cumulative_seconds / static_cast<double>(slots) +
      forecast.critical_path_seconds;
  return forecast;
}

}  // namespace stampede::query
