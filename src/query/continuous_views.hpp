#pragma once
// Continuous queries (DESIGN.md §13): register a Select once, stream
// only the result rows that change as commits land — R-GMA's
// continuous-query consumers grafted onto the Stampede archive.
//
// The engine installs itself as the archive's ChangeSink (db/change.hpp)
// and maintains, per registered view, incrementally-updated aggregate
// state. The invariant is strict: after every delivered commit, the
// maintained result is byte-identical to re-executing the Select from
// scratch (same Value semantics as db::group_rows_hash — int != real,
// NaN == NaN, +0.0/-0.0 distinct; same row order; bit-identical
// doubles). That works because:
//   * per (group, shard) state folds values through db::Aggregator —
//     the exact code the engine's GROUP BY path runs — in ascending
//     RowId order, the exact order a table scan feeds it;
//   * multi-shard results merge per-shard partials through
//     query::detail::MergeAgg in shard order, mirroring the
//     scatter-gather executor (AVG kept as SUM+COUNT partials);
//   * any retraction (delete, update, predicate flip, group move)
//     marks the (group, shard) dirty and the next emission rescans just
//     that group's stored rows in RowId order — float addition is not
//     associative, so there is no "subtract the retracted value"
//     shortcut (stampede_view_rescans_total counts these);
//   * pure tail appends (new RowId above every member) feed the live
//     aggregator directly — the loader's append-mostly hot path.
//
// Supported Selects: plain filtered projections, and GROUP BY with
// COUNT/SUM/AVG/MIN/MAX. Joins, DISTINCT, ORDER BY and LIMIT are
// rejected at registration (deltas and global reordering do not
// compose).
//
// Update protocol: every emission gets the view's next seq and lists
// only changed result rows as upserts/deletes keyed by a stable row
// identity (serialized group key, or shard:rowid for plain views).
// Subscribers resync via snapshot()+seq then apply deltas with a higher
// seq; updates_since() replays from the bounded per-view log, or
// returns one snapshot-update when the requested seq has been trimmed
// (the reconnect path). publish_to() mirrors every update onto a bus
// topic exchange as `stampede.view.{id}` messages.
//
// Threading: one engine mutex guards all view state; per-shard batch
// delivery is serialized in commit order by the shard's ticket hand-off
// (sinks run with no shard lock held, so the engine may re-read the
// archive freely — registration scans and self-check re-executions do).
// Alert/update callbacks run under the engine mutex: they must not call
// back into the engine.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "db/change.hpp"
#include "db/expr.hpp"
#include "db/query.hpp"

namespace stampede::bus {
class IBus;
}
namespace stampede::db {
class ShardedDatabase;
class StorageShard;
}

namespace stampede::query {

class QueryExecutor;

/// One result-row change inside a view update.
struct ViewChange {
  enum class Op { kUpsert, kDelete };
  Op op = Op::kUpsert;
  std::string key;  ///< Stable row identity within the view.
  db::Row row;      ///< Full result row for upserts; empty for deletes.
};

/// One emitted update: everything one committed batch changed in one
/// view. `snapshot` marks a full-state resync (every current row as an
/// upsert; discard prior state before applying).
struct ViewUpdate {
  std::uint64_t view = 0;
  std::string name;
  std::uint64_t seq = 0;
  bool snapshot = false;
  std::vector<ViewChange> changes;
};

struct ViewOptions {
  /// Display name (also carried in published updates); defaults to
  /// "view-{id}".
  std::string name;
  /// Updates kept for updates_since() replay; older seqs resync.
  std::size_t update_log_capacity = 1024;
};

struct ViewInfo {
  std::uint64_t id = 0;
  std::string name;
  std::string table;
  std::uint64_t seq = 0;
  std::size_t rows = 0;
};

struct ViewAlert {
  std::uint64_t view = 0;
  std::string name;
  std::string detail;
};

/// Wire codec for bus-published updates (exact: doubles travel as bit
/// patterns, so a remote subscriber reconstructs byte-identical rows).
[[nodiscard]] std::string encode_view_update(const ViewUpdate& update);
[[nodiscard]] std::optional<ViewUpdate> decode_view_update(
    std::string_view body);

class ContinuousQueryEngine {
 public:
  using AlertHandler = std::function<void(const ViewAlert&)>;
  using UpdateHandler = std::function<void(const ViewUpdate&)>;

  /// Attaches to every shard of `archive` as its change sink. The
  /// engine must outlive nothing: the destructor detaches and drains
  /// in-flight deliveries before returning.
  explicit ContinuousQueryEngine(db::ShardedDatabase& archive);
  ~ContinuousQueryEngine();

  ContinuousQueryEngine(const ContinuousQueryEngine&) = delete;
  ContinuousQueryEngine& operator=(const ContinuousQueryEngine&) = delete;

  // -- registration -----------------------------------------------------------

  /// Registers `select` as a continuous view: scans current archive
  /// state under the shard read locks, then maintains it incrementally.
  /// Returns the view id. Throws common::DbError for unsupported
  /// shapes (joins / DISTINCT / ORDER BY / LIMIT) or unknown columns.
  std::uint64_t register_view(db::Select select, ViewOptions options = {});

  /// Drops a view; its seqs and update log go with it.
  void unregister(std::uint64_t view_id);

  // -- reads ------------------------------------------------------------------

  [[nodiscard]] std::vector<ViewInfo> list() const;
  [[nodiscard]] std::optional<ViewInfo> info(std::uint64_t view_id) const;

  /// Current result, byte-identical to executing the Select now (with
  /// respect to delivered commits). `seq_out` receives the seq the
  /// snapshot reflects — resume deltas strictly after it.
  [[nodiscard]] db::ResultSet snapshot(std::uint64_t view_id,
                                       std::uint64_t* seq_out = nullptr) const;

  /// Updates with seq > after_seq, in order. When after_seq has aged
  /// out of the log, returns one snapshot-update at the current seq
  /// instead (the resync path). Empty when already current (or the view
  /// is gone).
  [[nodiscard]] std::vector<ViewUpdate> updates_since(
      std::uint64_t view_id, std::uint64_t after_seq) const;

  /// Blocks until the view advances past after_seq (then returns those
  /// updates) or timeout_ms elapses (empty).
  std::vector<ViewUpdate> wait_for(std::uint64_t view_id,
                                   std::uint64_t after_seq, int timeout_ms);

  /// Long-poll flavor: `cb` fires exactly once — immediately when
  /// updates are already available, from the engine's waiter thread on
  /// advance or timeout (empty vector) otherwise. The callback must not
  /// call back into the engine.
  void async_wait(std::uint64_t view_id, std::uint64_t after_seq,
                  int timeout_ms,
                  std::function<void(std::vector<ViewUpdate>)> cb);

  // -- delivery ---------------------------------------------------------------

  /// Publishes every subsequent update onto `bus` through a topic
  /// exchange (declared here) with routing key "stampede.view.{id}".
  /// `bus` must outlive the engine or its detach.
  void publish_to(bus::IBus& bus, std::string exchange = "stampede.views");

  /// In-process update hook (fires under the engine mutex).
  void on_update(UpdateHandler handler);

  // -- alerts -----------------------------------------------------------------

  /// Edge-triggered threshold on an output column: `handler` fires when
  /// a result row's `column` starts satisfying (value <op> bound), and
  /// re-arms when it stops. Wired to deltas — no polling.
  void add_threshold(std::uint64_t view_id, const std::string& column,
                     db::CompareOp op, db::Value bound, AlertHandler handler);

  /// Streaming z-score anomaly detection on view deltas: each upsert
  /// feeds (key_column → value_column) into a RuntimeAnomalyDetector;
  /// flagged observations fire `handler`.
  void add_anomaly(std::uint64_t view_id, const std::string& key_column,
                   const std::string& value_column, AlertHandler handler,
                   double threshold = 3.0, std::int64_t min_samples = 5);

  // -- self-check -------------------------------------------------------------

  /// After every delivered batch, re-execute each view's Select and
  /// compare byte-for-byte with the maintained result. Test harness for
  /// the byte-identity invariant; only meaningful when commits are
  /// serialized (concurrent shards can commit between a delivery and
  /// its re-execution, which is a false mismatch, not a bug).
  void enable_self_check();
  [[nodiscard]] std::uint64_t self_check_runs() const;
  [[nodiscard]] std::uint64_t self_check_failures() const;
  [[nodiscard]] std::string last_self_check_error() const;

  /// Group rescans taken on the retraction path (engine lifetime).
  [[nodiscard]] std::uint64_t rescans() const;

 private:
  struct View;
  struct Impl;

  void on_batch(const db::CommittedBatch& batch);

  std::unique_ptr<Impl> impl_;
};

}  // namespace stampede::query
