#include "query/live_monitor.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "netlogger/events.hpp"
#include "netlogger/parser.hpp"

namespace stampede::query {

namespace ev = nl::events;
namespace attr = nl::events::attr;

LiveMonitor::LiveMonitor(bus::Broker& broker, Options options,
                         AlertFn on_alert)
    : broker_(&broker),
      options_(std::move(options)),
      on_alert_(std::move(on_alert)),
      runtimes_(options_.z_threshold, options_.min_samples) {
  broker_->declare_exchange(options_.exchange, bus::ExchangeType::kTopic);
  broker_->declare_queue(options_.queue);
  // Only the event subsets the analyses need — the §IV-C topic-filter
  // pattern.
  broker_->bind(options_.queue, options_.exchange, "stampede.inv.end");
  broker_->bind(options_.queue, options_.exchange,
                "stampede.job_inst.main.end");
  subscription_ = broker_->subscribe(
      options_.queue,
      [this](const bus::Delivery& delivery) { return handle(delivery); },
      "live-monitor");
}

LiveMonitor::~LiveMonitor() { stop(); }

void LiveMonitor::stop() { subscription_.cancel(); }

bool LiveMonitor::handle(const bus::Delivery& delivery) {
  auto parsed = nl::parse_line(delivery.message().body);
  const auto* record = std::get_if<nl::LogRecord>(&parsed);
  {
    const std::scoped_lock lock{mutex_};
    ++messages_;
  }
  if (record == nullptr) return true;  // Unparseable → ack and move on.

  const std::string wf =
      std::string{record->get(attr::kXwfId).value_or("unknown")};

  if (record->event() == ev::kInvEnd) {
    const auto dur = record->get_double(attr::kDur);
    const auto xform = record->get(attr::kTransformation);
    if (dur && xform) {
      std::optional<RuntimeAnomaly> anomaly;
      {
        const std::scoped_lock lock{mutex_};
        anomaly = runtimes_.observe(std::string{*xform}, *dur);
      }
      if (anomaly) {
        LiveAlert alert;
        alert.kind = LiveAlert::Kind::kRuntimeAnomaly;
        alert.workflow_uuid = wf;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s ran %.1fs vs mean %.1fs (z=%.1f)",
                      anomaly->transformation.c_str(), anomaly->value,
                      anomaly->mean, anomaly->z_score);
        alert.detail = buf;
        {
          const std::scoped_lock lock{mutex_};
          alerts_.push_back(alert);
        }
        if (on_alert_) on_alert_(alert);
      }
    }
  } else if (record->event() == ev::kJobInstMainEnd) {
    const bool success = record->get_int(attr::kExitcode).value_or(0) == 0;
    bool tripped_now = false;
    {
      const std::scoped_lock lock{mutex_};
      auto [it, inserted] = per_workflow_.try_emplace(
          wf, options_.failure_window, options_.failure_threshold);
      const bool before = it->second.predicts_failure();
      it->second.record(success);
      tripped_now = !before && it->second.predicts_failure();
    }
    if (tripped_now) {
      LiveAlert alert;
      alert.kind = LiveAlert::Kind::kPredictedFailure;
      alert.workflow_uuid = wf;
      alert.detail = "failure ratio crossed threshold — workflow predicted "
                     "to fail";
      {
        const std::scoped_lock lock{mutex_};
        alerts_.push_back(alert);
      }
      if (on_alert_) on_alert_(alert);
    }
  }
  return true;
}

std::uint64_t LiveMonitor::messages_seen() const {
  const std::scoped_lock lock{mutex_};
  return messages_;
}

std::vector<LiveAlert> LiveMonitor::alerts() const {
  const std::scoped_lock lock{mutex_};
  return alerts_;
}

bool LiveMonitor::wait_for_messages(std::uint64_t n, int timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (messages_seen() >= n) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return messages_seen() >= n;
}

}  // namespace stampede::query
