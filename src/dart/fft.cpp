#include "dart/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace stampede::dart {

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<std::complex<double>>& data) {
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<double> magnitude_spectrum(const std::vector<double>& signal) {
  const std::size_t n = next_pow2(signal.size());
  std::vector<std::complex<double>> buf(n, {0.0, 0.0});
  // Hann window suppresses spectral leakage so harmonic peaks stay sharp.
  const std::size_t m = signal.size();
  for (std::size_t i = 0; i < m; ++i) {
    const double w =
        0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                              static_cast<double>(m > 1 ? m - 1 : 1)));
    buf[i] = signal[i] * w;
  }
  fft(buf);
  std::vector<double> mag(n / 2);
  for (std::size_t i = 0; i < n / 2; ++i) mag[i] = std::abs(buf[i]);
  return mag;
}

}  // namespace stampede::dart
