#include "dart/workload.hpp"

#include <algorithm>
#include <cstdio>

#include "common/errors.hpp"
#include "common/string_utils.hpp"

namespace stampede::dart {

using triana::Data;
using triana::FunctionUnit;
using triana::TaskGraph;
using triana::UnitResult;

std::vector<std::string> generate_commands(const DartConfig& config) {
  // 18 harmonic counts × 17 compression factors = 306 sweep points, the
  // cardinality of the paper's input file. Other totals truncate or wrap.
  std::vector<std::string> commands;
  commands.reserve(static_cast<std::size_t>(config.total_executions));
  int produced = 0;
  while (produced < config.total_executions) {
    for (int h = 2; h <= 19 && produced < config.total_executions; ++h) {
      for (int c = 0; c < 17 && produced < config.total_executions; ++c) {
        const double compression = 0.50 + 0.03 * c;
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "java -jar dart.jar -shs -h %d -c %.2f -i input.wav",
                      h, compression);
        commands.emplace_back(buf);
        ++produced;
      }
    }
  }
  return commands;
}

ShsParams parse_command(const std::string& command) {
  ShsParams params;
  const auto tokens = common::split_nonempty(command, ' ');
  bool saw_h = false;
  bool saw_c = false;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i] == "-h") {
      params.harmonics = std::atoi(std::string{tokens[i + 1]}.c_str());
      saw_h = true;
    } else if (tokens[i] == "-c") {
      params.compression = std::atof(std::string{tokens[i + 1]}.c_str());
      saw_c = true;
    }
  }
  if (!saw_h || !saw_c || params.harmonics < 1 || params.compression <= 0) {
    throw common::EngineError("dart: malformed command '" + command + "'");
  }
  return params;
}

int bundle_count(const DartConfig& config) {
  return (config.total_executions + config.tasks_per_bundle - 1) /
         config.tasks_per_bundle;
}

int total_task_count(const DartConfig& config) {
  const int bundles = bundle_count(config);
  return 1 + bundles            // root: splitter + submit tasks
         + config.total_executions  // exec tasks
         + 2 * bundles;         // per bundle: range task + zipper
}

namespace {

/// The exec unit: parses its command, runs the SHS sweep point on the
/// synthetic corpus, reports accuracy on stdout.
std::unique_ptr<FunctionUnit> make_exec_unit(std::string command,
                                             const DartConfig& config,
                                             bool fails) {
  const double mean = config.exec_cpu_mean;
  const double sd = config.exec_cpu_sd;
  const double min = config.exec_cpu_min;
  const int tones = config.tones_per_task;
  const double tolerance = config.tolerance_hz;
  const std::uint64_t corpus_seed = config.seed ^ 0x5441u;
  return std::make_unique<FunctionUnit>(
      "processing",
      [command = std::move(command), tones, tolerance, corpus_seed,
       fails](const Data&) -> UnitResult {
        if (fails) {
          return UnitResult{{}, 1, "",
                            "DART: input audio file truncated (simulated "
                            "worker-local data fault)"};
        }
        const ShsParams params = parse_command(command);
        const SweepPointResult r =
            evaluate_sweep_point(params, tones, tolerance, corpus_seed);
        char out[160];
        std::snprintf(out, sizeof(out),
                      "h=%d c=%.2f accuracy=%.3f mean_abs_err_hz=%.2f",
                      r.params.harmonics, r.params.compression, r.accuracy(),
                      r.mean_abs_error_hz);
        return UnitResult{{std::string{out}}, 0, std::string{out}, ""};
      },
      [mean, sd, min](common::Rng& rng) { return rng.normal(mean, sd, min); });
}

std::unique_ptr<FunctionUnit> make_zipper_unit(double cpu) {
  return std::make_unique<FunctionUnit>(
      "file",
      [](const Data& inputs) -> UnitResult {
        // Collate: pick the best accuracy among this bundle's results.
        std::string best_line;
        double best = -1.0;
        for (const auto& line : inputs) {
          const auto pos = line.find("accuracy=");
          if (pos == std::string::npos) continue;
          const double acc = std::atof(line.c_str() + pos + 9);
          if (acc > best) {
            best = acc;
            best_line = line;
          }
        }
        return UnitResult{{best_line}, 0,
                          "bundle best: " + best_line, ""};
      },
      [cpu](common::Rng&) { return cpu; });
}

}  // namespace

std::unique_ptr<TaskGraph> build_bundle(
    const std::string& name, const std::vector<std::string>& commands,
    int first_index, const DartConfig& config) {
  auto graph = std::make_unique<TaskGraph>(name);
  // The range-named unit task that seeds the bundle with its input lines
  // (the "115-119"-style rows of the paper's tables).
  const std::string range_name =
      std::to_string(first_index) + "-" +
      std::to_string(first_index + static_cast<int>(commands.size()) - 1);
  const auto range_task = graph->add_task(
      range_name,
      std::make_unique<FunctionUnit>(
          "unit",
          [commands](const Data&) {
            return UnitResult{commands, 0, "", ""};
          },
          [cpu = config.aux_cpu](common::Rng&) { return cpu; }));

  common::Rng fail_rng{config.seed ^
                       static_cast<std::uint64_t>(first_index * 2654435761u)};
  const auto zipper = graph->add_task("zipper",
                                      make_zipper_unit(config.aux_cpu));
  for (std::size_t i = 0; i < commands.size(); ++i) {
    const bool fails = config.failure_rate > 0.0 &&
                       fail_rng.chance(config.failure_rate);
    const auto exec = graph->add_task(
        "exec" + std::to_string(i),
        make_exec_unit(commands[i], config, fails));
    graph->connect(range_task, exec);
    graph->connect(exec, zipper);
  }
  return graph;
}

std::unique_ptr<TaskGraph> build_root_workflow(const DartConfig& config) {
  const auto commands = generate_commands(config);
  auto root = std::make_unique<TaskGraph>("DART-root");

  // The input splitter: reads the 306-line input file and partitions it.
  const auto splitter = root->add_task(
      "Output_0",
      std::make_unique<FunctionUnit>(
          "file",
          [commands](const Data&) { return UnitResult{commands, 0, "", ""}; },
          [cpu = config.aux_cpu](common::Rng&) { return cpu; }));

  const int bundles = bundle_count(config);
  for (int b = 0; b < bundles; ++b) {
    const int first = b * config.tasks_per_bundle;
    const int last = std::min<int>(first + config.tasks_per_bundle,
                                   config.total_executions);
    const std::vector<std::string> slice(commands.begin() + first,
                                         commands.begin() + last);
    auto bundle = build_bundle("bundle" + std::to_string(b), slice, first,
                               config);
    const auto submit = root->add_subworkflow(
        std::to_string(first) + "-" + std::to_string(last - 1),
        std::move(bundle),
        std::make_unique<FunctionUnit>(
            "unit", [](const Data& in) { return UnitResult{in, 0, "", ""}; },
            [cpu = config.aux_cpu](common::Rng&) { return cpu * 0.1; }));
    root->connect(splitter, submit);
  }
  return root;
}

std::unique_ptr<TaskGraph> build_meta_workflow(const DartConfig& config) {
  auto meta = std::make_unique<TaskGraph>("DART-meta");
  // The CLI task that writes the parameter-sweep input file.
  const auto prepare = meta->add_task(
      "dart_cli",
      std::make_unique<FunctionUnit>(
          "file",
          [config](const Data&) {
            return UnitResult{generate_commands(config), 0, "", ""};
          },
          [cpu = config.aux_cpu](common::Rng&) { return cpu; }));

  // The generator: builds the whole root workflow at runtime from the
  // input lines it receives — nothing about the root exists before this
  // task fires.
  const auto generator = meta->add_dynamic_subworkflow(
      "workflow_generator",
      [config](const Data& input_lines) -> std::unique_ptr<TaskGraph> {
        if (input_lines.size() !=
            static_cast<std::size_t>(config.total_executions)) {
          throw common::EngineError(
              "meta-workflow generator: expected " +
              std::to_string(config.total_executions) + " input lines, got " +
              std::to_string(input_lines.size()));
        }
        return build_root_workflow(config);
      },
      std::make_unique<FunctionUnit>(
          "unit", [](const Data& in) { return UnitResult{in, 0, "", ""}; },
          [cpu = config.aux_cpu](common::Rng&) { return cpu * 0.2; }));
  meta->connect(prepare, generator);
  return meta;
}

}  // namespace stampede::dart
