#pragma once
// Sub-Harmonic Summation (SHS) pitch detection — the DART science kernel.
//
// The paper's experiment is "a parameter sweep ... to discover the
// optimal parameter settings for the Sub-Harmonic Summation (SHS) pitch
// detection algorithm" (§VI). We implement SHS faithfully (Hermes 1988):
// a pitch candidate f scores the compressed sum of spectral magnitudes at
// its harmonics, Σ_h w^(h−1)·|X(h·f)|, and the best-scoring candidate
// wins. The sweep varies the harmonic count and the compression factor.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace stampede::dart {

struct ShsParams {
  int harmonics = 5;        ///< Number of subharmonic terms summed.
  double compression = 0.8; ///< Per-harmonic weight decay factor.
  double min_pitch_hz = 60.0;
  double max_pitch_hz = 800.0;
  double step_hz = 1.0;     ///< Candidate grid resolution.
};

struct Tone {
  double f0_hz = 0.0;
  std::vector<double> samples;
  double sample_rate = 8000.0;
};

/// Synthesizes a harmonic tone with rolloff + additive noise. The
/// deterministic Rng keeps the whole benchmark corpus reproducible.
[[nodiscard]] Tone synthesize_tone(double f0_hz, double sample_rate,
                                   std::size_t num_samples,
                                   double noise_level, common::Rng& rng);

/// Runs SHS on a signal; returns the estimated pitch in Hz.
[[nodiscard]] double detect_pitch(const std::vector<double>& samples,
                                  double sample_rate, const ShsParams& params);

struct SweepPointResult {
  ShsParams params;
  int tones_evaluated = 0;
  int correct = 0;          ///< Within the tolerance of the true f0.
  double mean_abs_error_hz = 0.0;
  [[nodiscard]] double accuracy() const noexcept {
    return tones_evaluated > 0
               ? static_cast<double>(correct) /
                     static_cast<double>(tones_evaluated)
               : 0.0;
  }
};

/// Evaluates one sweep point over a corpus of synthetic tones —
/// the work one DART "exec" task performs.
[[nodiscard]] SweepPointResult evaluate_sweep_point(
    const ShsParams& params, int num_tones, double tolerance_hz,
    std::uint64_t corpus_seed);

}  // namespace stampede::dart
