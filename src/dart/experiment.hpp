#pragma once
// End-to-end DART experiment driver (paper §VI–VII).
//
// Wires the full pipeline the paper deployed: the root workflow runs in
// Triana on "the user's local machine", spawns 20 bundles onto the
// 8-node TrianaCloud, every engine event is converted by StampedeLog,
// published through the Rabbit appender onto the AMQP bus, and consumed
// in real time by nl_load's stampede_loader into the relational archive
// — while the workflow is still running.

#include <optional>
#include <string>

#include "bus/broker.hpp"
#include "common/uuid.hpp"
#include "dart/workload.hpp"
#include "db/database.hpp"
#include "loader/nl_load.hpp"
#include "netlogger/sink.hpp"
#include "triana/trianacloud.hpp"

namespace stampede::dart {

struct DartRunResult {
  common::Uuid root_uuid;
  std::int64_t root_wf_id = 0;  ///< Archive key of the root workflow.
  int status = 0;               ///< 0 = every bundle succeeded.
  double started_at = 0.0;      ///< Virtual start time (epoch seconds).
  double finished_at = 0.0;
  [[nodiscard]] double wall_seconds() const noexcept {
    return finished_at - started_at;
  }
  loader::LoaderStats loader_stats;
  loader::NlLoadStats pump_stats;
  bus::BrokerStats broker_stats;
  triana::CloudStats cloud_stats;
  double real_seconds = 0.0;  ///< Host wall-clock for the whole pipeline.
};

struct DartExperimentOptions {
  triana::CloudOptions cloud;  ///< Defaults match the paper: 8×(1 core, 4).
  /// Virtual start time of the run; defaults to 2012-06-16T10:00:00Z.
  double start_time = 1339840800.0;
  /// Also retain the plain-text BP log here (paper §VII-A kept both).
  std::string retain_log_path;
  /// Use this broker instead of an internal one — lets the caller attach
  /// additional consumers (live analysis, extra queues) before the run.
  /// The experiment declares its "stampede" queue + bindings on it.
  bus::Broker* external_broker = nullptr;
};

/// Runs the full experiment against `archive` (the Stampede schema is
/// created if absent). `extra_sink` additionally receives every event
/// (tests use a VectorSink here).
DartRunResult run_dart_experiment(const DartConfig& config,
                                  db::Database& archive,
                                  const DartExperimentOptions& options = {},
                                  nl::EventSink* extra_sink = nullptr);

struct DartPublishResult {
  common::Uuid root_uuid;
  int status = 0;          ///< 0 = every bundle succeeded.
  std::uint64_t published = 0;  ///< Events handed to the bus.
  double started_at = 0.0;
  double finished_at = 0.0;
};

/// Publish-only half of the experiment: runs the simulated deployment
/// and pushes every event through the Rabbit appender onto `bus` —
/// which may be a net::BusClient, making this the producer process of a
/// multi-process deployment (stampede_publish_cli). Declares the
/// "stampede" queue and its "stampede.#" binding up front so no event
/// is unroutable even before a consumer attaches. The consumer side is
/// whoever pumps that queue (nl_load_cli --listen / --connect).
DartPublishResult run_dart_publish(const DartConfig& config, bus::IBus& bus,
                                   const DartExperimentOptions& options = {},
                                   nl::EventSink* extra_sink = nullptr);

}  // namespace stampede::dart
