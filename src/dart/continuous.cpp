#include "dart/continuous.hpp"

#include <cstdio>

#include "bus/broker.hpp"
#include "bus/rabbit_appender.hpp"
#include "loader/nl_load.hpp"
#include "orm/stampede_tables.hpp"
#include "triana/scheduler.hpp"
#include "triana/stampede_log.hpp"

namespace stampede::dart {

using triana::Data;
using triana::FunctionUnit;
using triana::UnitResult;

ContinuousResult run_continuous_experiment(const ContinuousConfig& config,
                                           db::Database& archive) {
  if (!archive.has_table("workflow")) {
    orm::create_stampede_schema(archive);
  }

  bus::Broker broker;
  bus::RabbitAppender appender{broker, "monitoring"};
  broker.declare_queue("stampede");
  broker.bind("stampede", "monitoring", "stampede.#");
  loader::StampedeLoader loader{archive};
  loader::QueuePump pump{broker, "stampede", loader};
  pump.start();

  sim::EventLoop loop{config.start_time};
  common::Rng rng{config.seed};
  common::UuidGenerator uuids{config.seed};
  sim::PsNode node{loop, "localhost", 8, 8.0};

  // The streaming pipeline: source → filters… → SHS detector.
  triana::TaskGraph graph{"dart-stream"};
  const double f0 = config.source_f0;
  const std::uint64_t seed = config.seed;

  const auto source = graph.add_task(
      "chunk_source",
      std::make_unique<FunctionUnit>(
          "file",
          [f0, seed, n = 0](const Data&) mutable -> UnitResult {
            // Each firing emits one synthetic audio chunk, encoded as a
            // token the downstream detector re-synthesizes (carrying raw
            // samples through the token stream would work too, but a
            // compact descriptor keeps event payloads realistic).
            char token[64];
            std::snprintf(token, sizeof(token), "chunk:%d:f0=%.1f:seed=%llu",
                          n, f0, static_cast<unsigned long long>(seed));
            ++n;
            return UnitResult{{token}, 0, "", ""};
          },
          [cpu = config.chunk_cpu](common::Rng& r) {
            return r.normal(cpu * 0.5, cpu * 0.1, 0.1);
          }));

  triana::TaskIndex previous = source;
  for (int s = 0; s < config.filter_stages; ++s) {
    const auto stage = graph.add_task(
        "bandpass" + std::to_string(s),
        std::make_unique<FunctionUnit>(
            "processing",
            [](const Data& in) { return UnitResult{in, 0, "", ""}; },
            [cpu = config.chunk_cpu](common::Rng& r) {
              return r.normal(cpu, cpu * 0.2, 0.1);
            }));
    graph.connect(previous, stage);
    previous = stage;
  }

  // The detector does real SHS work per chunk and reports the pitch.
  auto detected = std::make_shared<std::vector<double>>();
  const auto detector = graph.add_task(
      "shs_detector",
      std::make_unique<FunctionUnit>(
          "processing",
          [detected, f0, seed](const Data&) -> UnitResult {
            common::Rng tone_rng{seed ^ (detected->size() + 1)};
            const Tone tone = synthesize_tone(f0, 8000.0, 1024, 0.1,
                                              tone_rng);
            ShsParams params;
            params.harmonics = 7;
            const double pitch =
                detect_pitch(tone.samples, tone.sample_rate, params);
            detected->push_back(pitch);
            char out[64];
            std::snprintf(out, sizeof(out), "pitch=%.1fHz", pitch);
            return UnitResult{{out}, 0, out, ""};
          },
          [cpu = config.chunk_cpu](common::Rng& r) {
            return r.normal(cpu * 1.5, cpu * 0.2, 0.1);
          }));
  graph.connect(previous, detector);

  // Every task fires once per chunk — the data-driven stop condition.
  for (triana::TaskIndex i = 0; i < graph.task_count(); ++i) {
    graph.set_firings(i, config.chunks);
  }

  const common::Uuid xwf_id = uuids.next();
  triana::StampedeLog log{appender, {xwf_id, {}, {}, graph.name()}};
  triana::SchedulerOptions options;
  options.mode = triana::Mode::kContinuous;
  options.site = "local";
  triana::Scheduler scheduler{loop, rng, node, graph, options};
  scheduler.add_listener(log);

  ContinuousResult result;
  result.xwf_id = xwf_id;
  const double started = loop.now();
  scheduler.start([&result, started](sim::SimTime end, int status) {
    result.status = status;
    result.wall_seconds = end - started;
  });
  loop.run();
  pump.wait_until_drained(30'000);
  pump.stop();

  result.loader_stats = loader.stats();
  if (const auto wf = loader.wf_id(xwf_id)) result.wf_id = *wf;
  result.jobs = static_cast<std::int64_t>(graph.task_count());
  result.invocations = static_cast<std::int64_t>(
      archive.row_count("invocation"));
  if (!detected->empty()) {
    double sum = 0.0;
    for (const double p : *detected) sum += p;
    result.mean_detected_pitch = sum / static_cast<double>(detected->size());
  }
  return result;
}

}  // namespace stampede::dart
