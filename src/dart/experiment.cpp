#include "dart/experiment.hpp"

#include <chrono>
#include <memory>

#include "bus/rabbit_appender.hpp"
#include "orm/stampede_tables.hpp"
#include "triana/scheduler.hpp"
#include "triana/stampede_log.hpp"

namespace stampede::dart {

DartRunResult run_dart_experiment(const DartConfig& config,
                                  db::Database& archive,
                                  const DartExperimentOptions& options,
                                  nl::EventSink* extra_sink) {
  const auto real_start = std::chrono::steady_clock::now();
  if (!archive.has_table("workflow")) {
    orm::create_stampede_schema(archive);
  }

  // Transport: engine → Rabbit appender → topic exchange → durable-less
  // queue → nl_load pump → archive. Consumers subscribe to "stampede.#"
  // exactly as §IV-C describes.
  bus::Broker internal_broker;
  bus::Broker& broker = options.external_broker != nullptr
                            ? *options.external_broker
                            : internal_broker;
  bus::RabbitAppender appender{broker, "monitoring"};
  broker.declare_queue("stampede");
  broker.bind("stampede", "monitoring", "stampede.#");

  nl::TeeSink sink;
  sink.add(appender);
  std::unique_ptr<nl::FileSink> file_sink;
  if (!options.retain_log_path.empty()) {
    file_sink = std::make_unique<nl::FileSink>(options.retain_log_path);
    sink.add(*file_sink);
  }
  if (extra_sink != nullptr) sink.add(*extra_sink);

  loader::StampedeLoader loader{archive};
  loader::QueuePump pump{broker, "stampede", loader};
  pump.start();

  // The simulated deployment.
  sim::EventLoop loop{options.start_time};
  common::Rng rng{config.seed};
  common::UuidGenerator uuids{config.seed};
  const common::Uuid root_uuid = uuids.next();

  triana::TrianaCloud cloud{loop, rng, sink, uuids, root_uuid,
                            options.cloud};
  sim::PsNode localhost{loop, "localhost", 256, 256.0};

  auto root_graph = build_root_workflow(config);
  triana::StampedeLog::Identity identity;
  identity.xwf_id = root_uuid;
  identity.root_xwf_id = root_uuid;
  identity.dax_label = root_graph->name();
  triana::StampedeLog log{sink, identity};

  triana::PlanInfo plan;
  plan.user = "dart";
  plan.submit_dir = "/home/dart/runs/shs-sweep";
  triana::SchedulerOptions sched_options;
  sched_options.site = "local";
  triana::Scheduler scheduler{loop, rng, localhost, *root_graph,
                              sched_options};
  scheduler.set_plan_info(plan);
  scheduler.add_listener(log);
  cloud.attach(scheduler, root_uuid);

  DartRunResult result;
  result.root_uuid = root_uuid;
  result.started_at = loop.now();
  scheduler.start([&result](sim::SimTime end, int status) {
    result.finished_at = end;
    result.status = status;
  });
  loop.run();

  // Drain the real-time pipeline, then finalize.
  pump.wait_until_drained(30'000);
  pump.stop();

  result.loader_stats = loader.stats();
  result.pump_stats = pump.stats();
  result.broker_stats = broker.stats();
  result.cloud_stats = cloud.stats();
  if (const auto wf = loader.wf_id(root_uuid)) result.root_wf_id = *wf;
  result.real_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    real_start)
          .count();
  return result;
}

DartPublishResult run_dart_publish(const DartConfig& config, bus::IBus& bus,
                                   const DartExperimentOptions& options,
                                   nl::EventSink* extra_sink) {
  bus::RabbitAppender appender{bus, "monitoring"};
  bus.declare_queue("stampede");
  bus.bind("stampede", "monitoring", "stampede.#");

  nl::TeeSink sink;
  sink.add(appender);
  std::unique_ptr<nl::FileSink> file_sink;
  if (!options.retain_log_path.empty()) {
    file_sink = std::make_unique<nl::FileSink>(options.retain_log_path);
    sink.add(*file_sink);
  }
  if (extra_sink != nullptr) sink.add(*extra_sink);

  sim::EventLoop loop{options.start_time};
  common::Rng rng{config.seed};
  common::UuidGenerator uuids{config.seed};
  const common::Uuid root_uuid = uuids.next();

  triana::TrianaCloud cloud{loop, rng, sink, uuids, root_uuid,
                            options.cloud};
  sim::PsNode localhost{loop, "localhost", 256, 256.0};

  auto root_graph = build_root_workflow(config);
  triana::StampedeLog::Identity identity;
  identity.xwf_id = root_uuid;
  identity.root_xwf_id = root_uuid;
  identity.dax_label = root_graph->name();
  triana::StampedeLog log{sink, identity};

  triana::PlanInfo plan;
  plan.user = "dart";
  plan.submit_dir = "/home/dart/runs/shs-sweep";
  triana::SchedulerOptions sched_options;
  sched_options.site = "local";
  triana::Scheduler scheduler{loop, rng, localhost, *root_graph,
                              sched_options};
  scheduler.set_plan_info(plan);
  scheduler.add_listener(log);
  cloud.attach(scheduler, root_uuid);

  DartPublishResult result;
  result.root_uuid = root_uuid;
  result.started_at = loop.now();
  scheduler.start([&result](sim::SimTime end, int status) {
    result.finished_at = end;
    result.status = status;
  });
  loop.run();

  result.published = appender.publisher().published();
  return result;
}

}  // namespace stampede::dart
