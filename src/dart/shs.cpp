#include "dart/shs.hpp"

#include <cmath>
#include <numbers>

#include "dart/fft.hpp"

namespace stampede::dart {

Tone synthesize_tone(double f0_hz, double sample_rate,
                     std::size_t num_samples, double noise_level,
                     common::Rng& rng) {
  Tone tone;
  tone.f0_hz = f0_hz;
  tone.sample_rate = sample_rate;
  tone.samples.resize(num_samples);
  // Harmonic amplitudes roll off 1/h — a crude but serviceable model of
  // pitched musical material.
  constexpr int kHarmonics = 8;
  for (std::size_t i = 0; i < num_samples; ++i) {
    const double t = static_cast<double>(i) / sample_rate;
    double v = 0.0;
    for (int h = 1; h <= kHarmonics; ++h) {
      const double fh = f0_hz * h;
      if (fh >= sample_rate / 2.0) break;
      v += std::sin(2.0 * std::numbers::pi * fh * t) / h;
    }
    v += noise_level * rng.uniform(-1.0, 1.0);
    tone.samples[i] = v;
  }
  return tone;
}

double detect_pitch(const std::vector<double>& samples, double sample_rate,
                    const ShsParams& params) {
  const auto spectrum = magnitude_spectrum(samples);
  const std::size_t fft_size = spectrum.size() * 2;
  const double bin_hz = sample_rate / static_cast<double>(fft_size);

  auto magnitude_at = [&](double hz) -> double {
    // Linear interpolation between bins.
    const double pos = hz / bin_hz;
    const auto lo = static_cast<std::size_t>(pos);
    if (lo + 1 >= spectrum.size()) return 0.0;
    const double frac = pos - static_cast<double>(lo);
    return spectrum[lo] * (1.0 - frac) + spectrum[lo + 1] * frac;
  };

  double best_f = params.min_pitch_hz;
  double best_score = -1.0;
  for (double f = params.min_pitch_hz; f <= params.max_pitch_hz;
       f += params.step_hz) {
    double score = 0.0;
    double weight = 1.0;
    for (int h = 1; h <= params.harmonics; ++h) {
      score += weight * magnitude_at(f * h);
      weight *= params.compression;
    }
    if (score > best_score) {
      best_score = score;
      best_f = f;
    }
  }
  return best_f;
}

SweepPointResult evaluate_sweep_point(const ShsParams& params, int num_tones,
                                      double tolerance_hz,
                                      std::uint64_t corpus_seed) {
  SweepPointResult result;
  result.params = params;
  common::Rng rng{corpus_seed};
  double error_sum = 0.0;
  for (int i = 0; i < num_tones; ++i) {
    const double f0 = rng.uniform(80.0, 600.0);
    const double noise = rng.uniform(0.05, 0.3);
    const Tone tone = synthesize_tone(f0, 8000.0, 1024, noise, rng);
    const double detected =
        detect_pitch(tone.samples, tone.sample_rate, params);
    const double err = std::abs(detected - f0);
    error_sum += err;
    ++result.tones_evaluated;
    if (err <= tolerance_hz) ++result.correct;
  }
  result.mean_abs_error_hz =
      result.tones_evaluated > 0
          ? error_sum / static_cast<double>(result.tones_evaluated)
          : 0.0;
  return result;
}

}  // namespace stampede::dart
