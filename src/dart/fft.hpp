#pragma once
// Radix-2 FFT for the DART audio analysis kernel.

#include <complex>
#include <vector>

namespace stampede::dart {

/// In-place iterative radix-2 Cooley–Tukey FFT. `data.size()` must be a
/// power of two; throws std::invalid_argument otherwise.
void fft(std::vector<std::complex<double>>& data);

/// Magnitude spectrum of a real signal (Hann-windowed, zero-padded to
/// the next power of two). Returns the first N/2 bins.
[[nodiscard]] std::vector<double> magnitude_spectrum(
    const std::vector<double>& signal);

/// Next power of two ≥ n (n ≥ 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

}  // namespace stampede::dart
