#pragma once
// Continuous-mode (data-driven) DART experiment — the future work the
// paper sketches in §V-A: "In the future, we plan to devise a workflow
// experiment that executes a data driven workflow employing the
// continuous mode of operation of Triana."
//
// A streaming pipeline analyzes a sequence of audio chunks: a source
// unit emits chunks, filter stages process them in flight, and an SHS
// detector estimates the pitch of each chunk. Every chunk transit is one
// *invocation* of the stage's single job instance — exactly the job:1 /
// invocation:N relationship the Stampede data model reserves for
// Triana's continuous mode ("allowing a job to have multiple invocations
// during each execution of the workflow", §V-B).

#include "dart/shs.hpp"
#include "db/database.hpp"
#include "loader/stampede_loader.hpp"

namespace stampede::dart {

struct ContinuousConfig {
  int chunks = 32;          ///< Audio chunks streamed through the pipe.
  int filter_stages = 2;    ///< Pass-band stages before the detector.
  double chunk_cpu = 1.5;   ///< CPU seconds per chunk per stage.
  double source_f0 = 220.0; ///< Pitch of the synthesized stream.
  std::uint64_t seed = 4242;
  double start_time = 1339900000.0;
};

struct ContinuousResult {
  common::Uuid xwf_id;
  std::int64_t wf_id = 0;
  int status = 0;
  double wall_seconds = 0.0;
  std::int64_t jobs = 0;
  std::int64_t invocations = 0;
  /// Mean detected pitch over all chunks (sanity: ≈ source_f0).
  double mean_detected_pitch = 0.0;
  loader::LoaderStats loader_stats;
};

/// Runs the streaming experiment through the full monitoring pipeline
/// (bus → nl_load → archive). Creates the schema in `archive` if absent.
ContinuousResult run_continuous_experiment(const ContinuousConfig& config,
                                           db::Database& archive);

}  // namespace stampede::dart
