#include "dashboard/trace_routes.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "dashboard/json.hpp"

namespace stampede::dash {
namespace {

using telemetry::Span;
using telemetry::SpanSink;
using telemetry::TraceContext;

/// Value of `name` in a raw query string ("a=1&b=2"), or empty.
std::string query_param(const std::string& query, std::string_view name) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    const std::size_t amp = query.find('&', pos);
    const std::string_view pair =
        std::string_view{query}.substr(pos, amp == std::string::npos
                                                ? std::string::npos
                                                : amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == name) {
      return std::string{pair.substr(eq + 1)};
    }
    if (amp == std::string::npos) break;
    pos = amp + 1;
  }
  return {};
}

/// Parses a 32-hex-char trace id into (hi, lo). False on malformed.
bool parse_trace_id(std::string_view text, std::uint64_t* hi,
                    std::uint64_t* lo) {
  if (text.size() != 32) return false;
  std::uint64_t parts[2] = {0, 0};
  for (int half = 0; half < 2; ++half) {
    for (int i = 0; i < 16; ++i) {
      const char c = text[static_cast<std::size_t>(half * 16 + i)];
      std::uint64_t nibble = 0;
      if (c >= '0' && c <= '9') {
        nibble = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nibble = static_cast<std::uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        nibble = static_cast<std::uint64_t>(c - 'A' + 10);
      } else {
        return false;
      }
      parts[half] = (parts[half] << 4) | nibble;
    }
  }
  *hi = parts[0];
  *lo = parts[1];
  return true;
}

void write_span(JsonWriter& w, const Span& span) {
  w.begin_object();
  w.key("name").value(span.name);
  w.key("trace_id").value(span.context.trace_id_hex());
  w.key("span_id").value(span.context.span_id_hex());
  char parent[17];
  std::snprintf(parent, sizeof(parent), "%016llx",
                static_cast<unsigned long long>(span.parent_span_id));
  w.key("parent_span_id").value(parent);
  w.key("start").value(span.start_wall);
  w.key("duration_ms").value(span.duration * 1e3);
  w.key("error").value(span.error);
  w.key("attributes").begin_object();
  for (const auto& [key, value] : span.attributes) {
    w.key(key).value(value);
  }
  w.end_object();
  w.end_object();
}

HttpResponse tracez(const SpanSink& sink, const HttpRequest& request) {
  const std::string view = query_param(request.query, "view");
  const std::string trace = query_param(request.query, "trace");
  std::size_t limit = 100;
  if (const std::string raw = query_param(request.query, "limit");
      !raw.empty()) {
    limit = static_cast<std::size_t>(std::strtoull(raw.c_str(), nullptr, 10));
    if (limit == 0) limit = 100;
  }

  std::vector<Span> spans;
  if (!trace.empty()) {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    if (!parse_trace_id(trace, &hi, &lo)) {
      return HttpResponse{400, "text/plain", "bad trace id"};
    }
    spans = sink.trace(hi, lo);
  } else if (view == "slow") {
    spans = sink.slowest(limit);
  } else if (view == "errors") {
    spans = sink.errors(limit);
  } else {
    spans = sink.recent(limit);
  }

  JsonWriter w;
  w.begin_object();
  w.key("view").value(trace.empty() ? (view.empty() ? "recent" : view)
                                    : "trace");
  w.key("sample_rate").value(telemetry::Tracer::instance().sample_rate());
  w.key("recorded").value(static_cast<std::int64_t>(sink.recorded()));
  w.key("dropped").value(static_cast<std::int64_t>(sink.dropped()));
  w.key("capacity").value(static_cast<std::int64_t>(sink.capacity()));
  w.key("spans").begin_array();
  for (const auto& span : spans) write_span(w, span);
  w.end_array();
  w.end_object();
  return HttpResponse::json(w.str());
}

/// The waterfall page: pure server-rendered HTML; each span becomes a
/// horizontal bar positioned on the trace's shared wall-clock axis.
HttpResponse waterfall(const SpanSink& sink, const HttpRequest& request) {
  const std::string& id = request.params.at(0);
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  if (!parse_trace_id(id, &hi, &lo)) {
    return HttpResponse{400, "text/plain", "bad trace id"};
  }
  const std::vector<Span> spans = sink.trace(hi, lo);
  if (spans.empty()) {
    return HttpResponse::not_found("trace not found (evicted or unsampled)");
  }

  double t0 = spans.front().start_wall;
  double t1 = t0;
  for (const auto& span : spans) {
    t0 = std::min(t0, span.start_wall);
    t1 = std::max(t1, span.start_wall + span.duration);
  }
  const double total = std::max(t1 - t0, 1e-9);

  std::string html;
  html += "<!doctype html><html><head><title>trace " + json_escape(id) +
          "</title><style>"
          "body{font-family:monospace;background:#111;color:#ddd;margin:2em}"
          ".row{display:flex;align-items:center;height:1.6em}"
          ".label{width:14em;overflow:hidden;white-space:nowrap}"
          ".track{position:relative;flex:1;height:1.1em;background:#1c1c1c}"
          ".bar{position:absolute;height:100%;background:#4a90d9;"
          "min-width:2px}"
          ".bar.error{background:#d94a4a}"
          ".ms{margin-left:.6em;color:#888;white-space:nowrap}"
          "</style></head><body>";
  html += "<h2>trace " + json_escape(id) + "</h2>";
  char header[96];
  std::snprintf(header, sizeof(header), "<p>%zu spans, %.3f ms total</p>",
                spans.size(), total * 1e3);
  html += header;
  for (const auto& span : spans) {
    const double left = (span.start_wall - t0) / total * 100.0;
    const double width = std::max(span.duration / total * 100.0, 0.1);
    char bar[192];
    std::snprintf(bar, sizeof(bar),
                  "<div class=\"track\"><div class=\"bar%s\" "
                  "style=\"left:%.2f%%;width:%.2f%%\"></div></div>"
                  "<span class=\"ms\">%.3f ms</span></div>",
                  span.error ? " error" : "", left, width,
                  span.duration * 1e3);
    html += "<div class=\"row\"><span class=\"label\">" +
            json_escape(span.name) + "</span>" + bar;
  }
  html += "</body></html>";
  HttpResponse response = HttpResponse::text(std::move(html));
  response.content_type = "text/html";
  return response;
}

}  // namespace

void register_trace_routes(HttpServer& server, const SpanSink& sink) {
  server.route("/tracez", [&sink](const HttpRequest& request) {
    return tracez(sink, request);
  });
  server.route("/trace/{trace_id}", [&sink](const HttpRequest& request) {
    return waterfall(sink, request);
  });
}

void register_health_routes(HttpServer& server, std::function<bool()> ready) {
  server.route("/healthz", [](const HttpRequest&) {
    return HttpResponse::json(R"({"status":"ok"})");
  });
  server.route("/readyz", [ready = std::move(ready)](const HttpRequest&) {
    if (!ready || ready()) return HttpResponse::json(R"({"ready":true})");
    return HttpResponse{503, "application/json", R"({"ready":false})"};
  });
}

}  // namespace stampede::dash
