#pragma once
// Continuous-view endpoints (DESIGN.md §13) for any embedded HttpServer:
//
//   GET /viewz                  — registered views (id, name, seq, rows)
//   GET /viewz/{id}             — current result snapshot + its seq
//   GET /viewz/{id}/wait?seq=N[&timeout_ms=M]
//       — HTTP long-poll subscription: parks until the view advances
//         past seq (returns the missed updates, or one snapshot-update
//         when N has aged out of the log), or until the timeout
//         (empty update list). Served through route_async, so a parked
//         poll costs the dashboard a buffer, not its serving thread.
//
// The engine must outlive the server (routes capture a reference).

#include "dashboard/http_server.hpp"

namespace stampede::query {
class ContinuousQueryEngine;
}

namespace stampede::dash {

void register_view_routes(HttpServer& server,
                          query::ContinuousQueryEngine& views);

}  // namespace stampede::dash
