#include "dashboard/dashboard.hpp"

#include "dashboard/json.hpp"
#include "dashboard/telemetry_routes.hpp"
#include "dashboard/trace_routes.hpp"
#include "dashboard/view_routes.hpp"

namespace stampede::dash {

Dashboard::Dashboard(const db::Database& database, int port)
    : query_(database), server_(port) {
  install_routes();
}

Dashboard::Dashboard(const db::ShardedDatabase& database, int port)
    : query_(database), server_(port) {
  install_routes();
}

void Dashboard::attach_views(query::ContinuousQueryEngine& views) {
  register_view_routes(server_, views);
}

void Dashboard::install_routes() {
  // The read-only dashboard serves as soon as it binds, so readiness
  // coincides with liveness (register_health_routes' nullptr default).
  register_health_routes(server_);
  register_telemetry_routes(server_);
  register_trace_routes(server_);
  server_.route("/workflows",
                [this](const HttpRequest& r) { return workflows(r); });
  server_.route("/workflow/{uuid}/summary",
                [this](const HttpRequest& r) { return summary(r); });
  server_.route("/workflow/{uuid}/breakdown",
                [this](const HttpRequest& r) { return breakdown(r); });
  server_.route("/workflow/{uuid}/jobs",
                [this](const HttpRequest& r) { return jobs(r); });
  server_.route("/workflow/{uuid}/progress",
                [this](const HttpRequest& r) { return progress(r); });
  server_.route("/workflow/{uuid}/hosts",
                [this](const HttpRequest& r) { return hosts(r); });
  server_.route("/workflow/{uuid}/analyzer",
                [this](const HttpRequest& r) { return analyzer(r); });
}

namespace {

void write_counts(JsonWriter& w, std::string_view key,
                  const query::EntityCounts& c) {
  w.key(key).begin_object();
  w.key("succeeded").value(c.succeeded);
  w.key("failed").value(c.failed);
  w.key("incomplete").value(c.incomplete);
  w.key("total").value(c.total());
  w.key("retries").value(c.retries);
  w.end_object();
}

}  // namespace

HttpResponse Dashboard::workflows(const HttpRequest&) const {
  JsonWriter w;
  w.begin_array();
  for (const auto& info : query_.root_workflows()) {
    w.begin_object();
    w.key("wf_id").value(info.wf_id);
    w.key("wf_uuid").value(info.wf_uuid);
    w.key("label").value(info.dax_label);
    const auto status = query_.final_status(info.wf_id);
    if (status) {
      w.key("status").value(*status);
    } else {
      w.key("status").null();  // Still running — live monitoring.
    }
    w.end_object();
  }
  w.end_array();
  return HttpResponse::json(w.str());
}

HttpResponse Dashboard::summary(const HttpRequest& request) const {
  const auto info = query_.workflow_by_uuid(request.params.at(0));
  if (!info) return HttpResponse::not_found("unknown workflow");
  const query::StampedeStatistics stats{query_};
  const auto s = stats.summary(info->wf_id);
  JsonWriter w;
  w.begin_object();
  w.key("wf_uuid").value(info->wf_uuid);
  write_counts(w, "tasks", s.tasks);
  write_counts(w, "jobs", s.jobs);
  write_counts(w, "sub_workflows", s.sub_workflows);
  w.key("workflow_wall_time").value(s.workflow_wall_time);
  w.key("cumulative_job_wall_time").value(s.cumulative_job_wall_time);
  w.end_object();
  return HttpResponse::json(w.str());
}

HttpResponse Dashboard::breakdown(const HttpRequest& request) const {
  const auto info = query_.workflow_by_uuid(request.params.at(0));
  if (!info) return HttpResponse::not_found("unknown workflow");
  const query::StampedeStatistics stats{query_};
  JsonWriter w;
  w.begin_array();
  for (const auto& row : stats.breakdown(info->wf_id)) {
    w.begin_object();
    w.key("transformation").value(row.transformation);
    w.key("count").value(row.count);
    w.key("succeeded").value(row.succeeded);
    w.key("failed").value(row.failed);
    w.key("min").value(row.min);
    w.key("max").value(row.max);
    w.key("mean").value(row.mean);
    w.key("total").value(row.total);
    w.end_object();
  }
  w.end_array();
  return HttpResponse::json(w.str());
}

HttpResponse Dashboard::jobs(const HttpRequest& request) const {
  const auto info = query_.workflow_by_uuid(request.params.at(0));
  if (!info) return HttpResponse::not_found("unknown workflow");
  const query::StampedeStatistics stats{query_};
  JsonWriter w;
  w.begin_array();
  for (const auto& row : stats.jobs(info->wf_id)) {
    w.begin_object();
    w.key("job").value(row.job_name);
    w.key("try").value(row.try_number);
    w.key("site").value(row.site);
    w.key("invocation_duration").value(row.invocation_duration);
    w.key("queue_time").value(row.queue_time);
    w.key("runtime").value(row.runtime);
    if (row.exitcode) {
      w.key("exitcode").value(*row.exitcode);
    } else {
      w.key("exitcode").null();
    }
    w.key("host").value(row.host);
    w.end_object();
  }
  w.end_array();
  return HttpResponse::json(w.str());
}

HttpResponse Dashboard::progress(const HttpRequest& request) const {
  const auto info = query_.workflow_by_uuid(request.params.at(0));
  if (!info) return HttpResponse::not_found("unknown workflow");
  const query::StampedeStatistics stats{query_};
  JsonWriter w;
  w.begin_array();
  for (const auto& series : stats.progress(info->wf_id)) {
    w.begin_object();
    w.key("wf_id").value(series.wf_id);
    w.key("label").value(series.label);
    w.key("points").begin_array();
    for (const auto& p : series.points) {
      w.begin_array();
      w.value(p.wall_clock);
      w.value(p.cumulative_runtime);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  return HttpResponse::json(w.str());
}

HttpResponse Dashboard::hosts(const HttpRequest& request) const {
  const auto info = query_.workflow_by_uuid(request.params.at(0));
  if (!info) return HttpResponse::not_found("unknown workflow");
  const query::StampedeStatistics stats{query_};
  JsonWriter w;
  w.begin_object();
  w.key("usage").begin_array();
  for (const auto& usage : stats.host_usage(info->wf_id)) {
    w.begin_object();
    w.key("hostname").value(usage.hostname);
    w.key("jobs").value(usage.jobs);
    w.key("total_runtime").value(usage.total_runtime);
    w.end_object();
  }
  w.end_array();
  w.key("timeline").begin_array();
  for (const auto& timeline : stats.host_timeline(info->wf_id)) {
    w.begin_object();
    w.key("hostname").value(timeline.hostname);
    w.key("buckets").begin_array();
    for (const auto& bucket : timeline.buckets) {
      w.begin_array();
      w.value(bucket.bucket_start);
      w.value(bucket.jobs);
      w.value(bucket.runtime);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return HttpResponse::json(w.str());
}

HttpResponse Dashboard::analyzer(const HttpRequest& request) const {
  const auto info = query_.workflow_by_uuid(request.params.at(0));
  if (!info) return HttpResponse::not_found("unknown workflow");
  const query::StampedeAnalyzer tool{query_};
  JsonWriter w;
  w.begin_array();
  for (const auto& level : tool.drill_down(info->wf_id)) {
    w.begin_object();
    w.key("wf_id").value(level.wf_id);
    w.key("wf_uuid").value(level.wf_uuid);
    w.key("label").value(level.dax_label);
    w.key("total_jobs").value(level.total_jobs);
    w.key("succeeded").value(level.succeeded);
    w.key("failed").value(level.failed);
    w.key("unsubmitted").value(level.unsubmitted);
    w.key("failures").begin_array();
    for (const auto& f : level.failures) {
      w.begin_object();
      w.key("job").value(f.job_name);
      w.key("try").value(f.try_number);
      w.key("last_state").value(f.last_state);
      w.key("host").value(f.host);
      if (f.exitcode) {
        w.key("exitcode").value(*f.exitcode);
      } else {
        w.key("exitcode").null();
      }
      w.key("stderr").value(f.stderr_text);
      if (f.subwf_id) {
        w.key("subwf_id").value(*f.subwf_id);
      } else {
        w.key("subwf_id").null();
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  return HttpResponse::json(w.str());
}

}  // namespace stampede::dash
