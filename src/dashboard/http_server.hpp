#pragma once
// Minimal embedded HTTP/1.1 server — the substrate for the "very
// lightweight performance dashboard ... based on an embedded web server"
// (paper §IV-F; theirs was Python, ours is an epoll reactor).
//
// Runs on the same net::EventLoop core as the bus server (DESIGN.md
// §12): one loop thread accepts and serves every connection, so a
// trickling client no longer serializes the whole server — it just
// parks a buffer and a deadline timer.
//
// Hardened against trickle-feed (slowloris-style) clients: a request
// must arrive whole within `read_timeout_ms` and fit in
// `max_request_bytes`, else the server answers 408 / 431 and closes.
// Rejections are counted in stampede_http_rejected_total{reason=...}.

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/socket.hpp"
#include "net/event_loop.hpp"

namespace stampede::net {
class Connection;
}

namespace stampede::dash {

struct HttpRequest {
  std::string method;
  std::string path;                 ///< Path without query string.
  std::string query;                ///< Raw query string (may be empty).
  std::vector<std::string> params;  ///< Captures from route placeholders.
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse json(std::string body) {
    return HttpResponse{200, "application/json", std::move(body)};
  }
  static HttpResponse text(std::string body) {
    return HttpResponse{200, "text/plain", std::move(body)};
  }
  static HttpResponse not_found(std::string why = "not found") {
    return HttpResponse{404, "text/plain", std::move(why)};
  }
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Completion handle for route_async(). Thread-safe and once-only:
/// the first respond() wins, later calls (and calls after the server
/// stopped or the client vanished) are silently dropped. The actual
/// write always happens on the server's loop thread.
class HttpResponder {
 public:
  void respond(HttpResponse response) const;

 private:
  friend class HttpServer;
  struct State;
  std::shared_ptr<State> state_;
};

/// Handler that completes later (long-poll, subscription): it receives
/// the parsed request plus a responder it may hand to another thread.
/// The slowloris deadline is cancelled once the handler takes over —
/// the request has fully arrived; holding the connection open is the
/// point.
using AsyncHttpHandler =
    std::function<void(const HttpRequest&, HttpResponder)>;

struct HttpServerOptions {
  /// A connection that has not delivered a complete request header
  /// block within this window gets 408 Request Timeout.
  int read_timeout_ms = 5000;
  /// A request exceeding this size gets 431 Request Header Fields Too
  /// Large.
  std::size_t max_request_bytes = 64 * 1024;
};

class HttpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = pick an ephemeral port). Throws
  /// std::runtime_error when binding fails.
  explicit HttpServer(int port = 0, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a GET route. Pattern segments of the form "{x}" capture
  /// one path segment into HttpRequest::params, e.g.
  /// "/workflow/{uuid}/summary".
  void route(const std::string& pattern, HttpHandler handler);

  /// Registers a GET route whose handler responds asynchronously via
  /// the provided HttpResponder (same pattern syntax as route()).
  void route_async(const std::string& pattern, AsyncHttpHandler handler);

  /// Starts the event loop and begins accepting.
  void start();

  /// Drops every connection, stops the loop and joins. Idempotent; the
  /// destructor calls it.
  void stop();

  [[nodiscard]] int port() const noexcept { return port_; }

 private:
  friend class HttpResponder;

  struct Route {
    std::vector<std::string> segments;
    HttpHandler handler;
    AsyncHttpHandler async;  ///< Set for route_async registrations.
  };
  /// Per-connection serving state (loop thread only).
  struct Pending {
    std::shared_ptr<net::Connection> conn;
    net::EventLoop::TimerId deadline = 0;
    bool responded = false;
    bool async_in_flight = false;  ///< Awaiting an HttpResponder.
  };
  /// Shared liveness latch between the server and outstanding
  /// responders: stop() nulls `server` so a responder firing from a
  /// foreign thread after shutdown becomes a no-op instead of a
  /// use-after-free.
  struct AsyncGate {
    std::mutex mu;
    HttpServer* server = nullptr;
  };

  void accept_ready();
  /// (Re-)registers the listen fd with the loop; loop thread only.
  bool watch_listen_fd();
  /// Drops the listen-fd watch and retries it on a timer — the escape
  /// hatch when accept fails EMFILE-class while the backlog keeps the
  /// level-triggered fd readable (an immediate retry would spin).
  void pause_accepting();
  /// Consumes buffered request bytes; returns bytes eaten.
  std::size_t on_data(const std::shared_ptr<Pending>& pending,
                      std::string_view data);
  void respond(const std::shared_ptr<Pending>& pending,
               const HttpResponse& response);
  [[nodiscard]] const Route* match_route(
      const std::string& path, std::vector<std::string>* params) const;

  HttpServerOptions options_;
  common::SocketFd listen_fd_;
  int port_ = 0;
  std::vector<Route> routes_;
  net::EventLoop loop_;
  std::atomic<bool> running_{false};
  std::shared_ptr<AsyncGate> gate_ = std::make_shared<AsyncGate>();
  /// Live connections (loop thread only); drained by stop().
  std::map<const net::Connection*, std::shared_ptr<Pending>> conns_;
};

/// One-shot HTTP GET against 127.0.0.1 (test/client helper). Returns the
/// response body; `status_out` receives the status code. Throws
/// std::runtime_error on connection failure.
[[nodiscard]] std::string http_get(int port, const std::string& path,
                                   int* status_out = nullptr);

}  // namespace stampede::dash
