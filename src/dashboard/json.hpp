#pragma once
// Minimal JSON writer for the dashboard endpoints.

#include <cstdint>
#include <string>
#include <vector>

namespace stampede::dash {

/// Escapes a string for inclusion inside JSON quotes.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Streaming JSON writer with explicit begin/end calls. Keeps a small
/// state stack so commas land where they belong.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object (must be followed by a value or container).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view{text}); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(bool boolean);
  JsonWriter& null();

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void comma_if_needed();
  std::string out_;
  std::vector<bool> need_comma_;  ///< Per open container.
};

}  // namespace stampede::dash
