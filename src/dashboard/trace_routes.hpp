#pragma once
// Tracing + health endpoints for any embedded HttpServer (DESIGN.md §11):
//
//   GET /tracez              — JSON views over the span ring buffer:
//                              ?view=recent|slow|errors (default recent),
//                              ?trace=<32 hex> narrows to one trace,
//                              ?limit=N caps the span count (default 100)
//   GET /trace/{trace_id}    — HTML latency-waterfall page for one trace
//                              (publish → enqueue → spool → dequeue →
//                              commit stages on a shared time axis)
//   GET /healthz             — liveness probe, always 200
//   GET /readyz              — readiness probe: 200 when the supplied
//                              callback says yes, 503 otherwise
//
// The Dashboard mounts all of them; standalone tools (nl_load_cli's
// metrics server) mount them on a bare HttpServer.

#include <functional>

#include "dashboard/http_server.hpp"
#include "telemetry/tracer.hpp"

namespace stampede::dash {

void register_trace_routes(HttpServer& server,
                           const telemetry::SpanSink& sink =
                               telemetry::Tracer::instance().sink());

/// `ready` is polled per request; nullptr means always ready (liveness
/// and readiness coincide, as on the read-only Dashboard).
void register_health_routes(HttpServer& server,
                            std::function<bool()> ready = nullptr);

}  // namespace stampede::dash
