#include "dashboard/view_routes.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dashboard/json.hpp"
#include "query/continuous_views.hpp"

namespace stampede::dash {

namespace {

void write_value(JsonWriter& w, const db::Value& v) {
  if (v.is_null()) {
    w.null();
  } else if (v.is_int()) {
    w.value(v.as_int());
  } else if (v.is_text()) {
    w.value(v.as_text());
  } else {
    // JsonWriter renders doubles with round-trip precision; NaN and
    // infinities have no JSON spelling, so they degrade to strings.
    const double d = v.as_real();
    if (d != d) {
      w.value("NaN");
    } else if (d == HUGE_VAL) {
      w.value("Infinity");
    } else if (d == -HUGE_VAL) {
      w.value("-Infinity");
    } else {
      w.value(d);
    }
  }
}

void write_row(JsonWriter& w, const db::Row& row) {
  w.begin_array();
  for (const auto& cell : row) write_value(w, cell);
  w.end_array();
}

void write_update(JsonWriter& w, const query::ViewUpdate& update) {
  w.begin_object();
  w.key("seq").value(static_cast<std::int64_t>(update.seq));
  w.key("snapshot").value(update.snapshot);
  w.key("changes").begin_array();
  for (const auto& change : update.changes) {
    w.begin_object();
    w.key("op").value(change.op == query::ViewChange::Op::kDelete
                          ? "delete"
                          : "upsert");
    w.key("key").value(change.key);
    if (change.op == query::ViewChange::Op::kUpsert) {
      w.key("row");
      write_row(w, change.row);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

/// Parses the {id} capture; returns false on anything but a bare
/// decimal number.
bool parse_view_id(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long id = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(id);
  return true;
}

/// Pulls `name` out of a raw "a=1&b=2" query string.
std::optional<std::uint64_t> query_u64(std::string_view query,
                                       std::string_view name) {
  while (!query.empty()) {
    const auto amp = query.find('&');
    const auto pair = query.substr(0, amp);
    const auto eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == name) {
      const std::string text{pair.substr(eq + 1)};
      char* end = nullptr;
      const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
      if (end != nullptr && *end == '\0' && !text.empty()) {
        return static_cast<std::uint64_t>(v);
      }
      return std::nullopt;
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return std::nullopt;
}

}  // namespace

void register_view_routes(HttpServer& server,
                          query::ContinuousQueryEngine& views) {
  server.route("/viewz", [&views](const HttpRequest&) {
    JsonWriter w;
    w.begin_array();
    for (const auto& info : views.list()) {
      w.begin_object();
      w.key("id").value(static_cast<std::int64_t>(info.id));
      w.key("name").value(info.name);
      w.key("table").value(info.table);
      w.key("seq").value(static_cast<std::int64_t>(info.seq));
      w.key("rows").value(static_cast<std::int64_t>(info.rows));
      w.end_object();
    }
    w.end_array();
    return HttpResponse::json(w.str());
  });

  server.route("/viewz/{id}", [&views](const HttpRequest& request) {
    std::uint64_t id = 0;
    if (!parse_view_id(request.params.at(0), &id)) {
      return HttpResponse{400, "text/plain", "bad view id"};
    }
    const auto info = views.info(id);
    if (!info) {
      return HttpResponse::not_found("no view " + request.params.at(0));
    }
    std::uint64_t seq = 0;
    const auto result = views.snapshot(id, &seq);
    JsonWriter w;
    w.begin_object();
    w.key("id").value(static_cast<std::int64_t>(id));
    w.key("name").value(info->name);
    w.key("seq").value(static_cast<std::int64_t>(seq));
    w.key("columns").begin_array();
    for (const auto& column : result.columns) w.value(column);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : result.rows) write_row(w, row);
    w.end_array();
    w.end_object();
    return HttpResponse::json(w.str());
  });

  server.route_async(
      "/viewz/{id}/wait",
      [&views](const HttpRequest& request, HttpResponder responder) {
        std::uint64_t id = 0;
        if (!parse_view_id(request.params.at(0), &id)) {
          responder.respond({400, "text/plain", "bad view id"});
          return;
        }
        if (!views.info(id)) {
          responder.respond(HttpResponse::not_found(
              "no view " + request.params.at(0)));
          return;
        }
        const std::uint64_t after =
            query_u64(request.query, "seq").value_or(0);
        const std::uint64_t timeout = std::min<std::uint64_t>(
            query_u64(request.query, "timeout_ms").value_or(30000), 60000);
        views.async_wait(
            id, after, static_cast<int>(timeout),
            [responder, id](std::vector<query::ViewUpdate> updates) {
              JsonWriter w;
              w.begin_object();
              w.key("view").value(static_cast<std::int64_t>(id));
              std::uint64_t last = 0;
              for (const auto& u : updates) last = std::max(last, u.seq);
              w.key("seq").value(static_cast<std::int64_t>(last));
              w.key("updates").begin_array();
              for (const auto& u : updates) write_update(w, u);
              w.end_array();
              w.end_object();
              responder.respond(HttpResponse::json(w.str()));
            });
      });
}

}  // namespace stampede::dash
