#include "dashboard/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/string_utils.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::dash {

namespace {

struct HttpTelemetry {
  telemetry::Counter& requests =
      telemetry::registry().counter("stampede_http_requests_total");
  telemetry::Counter& errors =
      telemetry::registry().counter("stampede_http_errors_total");
  telemetry::Histogram& latency = telemetry::registry().histogram(
      "stampede_http_request_latency_seconds");
};

HttpTelemetry& http_telemetry() {
  static HttpTelemetry instance;
  return instance;
}

std::string status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpServer::HttpServer(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("HttpServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    throw std::runtime_error("HttpServer: bind() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("HttpServer: listen() failed");
  }
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& pattern, HttpHandler handler) {
  Route r;
  for (const auto seg : common::split_nonempty(pattern, '/')) {
    r.segments.emplace_back(seg);
  }
  r.handler = std::move(handler);
  routes_.push_back(std::move(r));
}

void HttpServer::start() {
  if (running_.exchange(true)) return;
  acceptor_ = std::jthread([this](std::stop_token stop) {
    while (!stop.stop_requested()) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 50);
      if (ready <= 0) continue;
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client >= 0) {
        serve(client);
        ::close(client);
      }
    }
  });
}

void HttpServer::stop() {
  if (acceptor_.joinable()) {
    acceptor_.request_stop();
    acceptor_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
}

void HttpServer::serve(int client_fd) {
  // Read until the end of the request headers (we only support GET, so
  // no body).
  std::string raw;
  char buf[2048];
  while (raw.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
    if (raw.size() > 64 * 1024) break;  // Refuse absurd requests.
  }
  auto& tele = http_telemetry();
  const double serve_start = telemetry::trace_now();
  tele.requests.inc();
  const auto line_end = raw.find("\r\n");
  if (line_end == std::string::npos) return;
  const auto parts =
      common::split_nonempty(std::string_view{raw}.substr(0, line_end), ' ');
  HttpResponse response;
  if (parts.size() < 2) {
    response = HttpResponse{400, "text/plain", "bad request"};
  } else {
    HttpRequest request;
    request.method = std::string{parts[0]};
    std::string_view target = parts[1];
    const auto qpos = target.find('?');
    if (qpos != std::string_view::npos) {
      request.query = std::string{target.substr(qpos + 1)};
      target = target.substr(0, qpos);
    }
    request.path = std::string{target};
    response = dispatch(request);
  }
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  send_all(client_fd, out);
  if (response.status >= 400) tele.errors.inc();
  if (serve_start > 0.0) {
    tele.latency.observe(telemetry::now() - serve_start);
  }
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) const {
  if (request.method != "GET") {
    return HttpResponse{400, "text/plain", "only GET is supported"};
  }
  const auto segments = common::split_nonempty(request.path, '/');
  for (const auto& route : routes_) {
    if (route.segments.size() != segments.size()) continue;
    std::vector<std::string> params;
    bool match = true;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const std::string& pat = route.segments[i];
      if (pat.size() >= 2 && pat.front() == '{' && pat.back() == '}') {
        params.emplace_back(segments[i]);
      } else if (pat != segments[i]) {
        match = false;
        break;
      }
    }
    if (match) {
      HttpRequest enriched = request;
      enriched.params = std::move(params);
      try {
        return route.handler(enriched);
      } catch (const std::exception& e) {
        return HttpResponse{500, "text/plain", e.what()};
      }
    }
  }
  return HttpResponse::not_found("no route for " + request.path);
}

std::string http_get(int port, const std::string& path, int* status_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http_get: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw std::runtime_error("http_get: connect() failed");
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  send_all(fd, request);
  std::string raw;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    throw std::runtime_error("http_get: malformed response");
  }
  if (status_out != nullptr) {
    *status_out = std::atoi(raw.c_str() + 9);  // After "HTTP/1.1 ".
  }
  return raw.substr(header_end + 4);
}

}  // namespace stampede::dash
