#include "dashboard/http_server.hpp"

#include <chrono>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <utility>

#include "common/string_utils.hpp"
#include "net/connection.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::dash {

namespace {

struct HttpTelemetry {
  telemetry::Counter& requests =
      telemetry::registry().counter("stampede_http_requests_total");
  telemetry::Counter& errors =
      telemetry::registry().counter("stampede_http_errors_total");
  telemetry::Counter& rejected_slow = telemetry::registry().counter(
      telemetry::labeled("stampede_http_rejected_total", "reason", "timeout"));
  telemetry::Counter& rejected_oversize = telemetry::registry().counter(
      telemetry::labeled("stampede_http_rejected_total", "reason",
                         "oversize"));
  telemetry::Histogram& latency = telemetry::registry().histogram(
      "stampede_http_request_latency_seconds");
  telemetry::Gauge& connections =
      telemetry::registry().gauge("stampede_http_connections_active");
};

HttpTelemetry& http_telemetry() {
  static HttpTelemetry instance;
  return instance;
}

std::string status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 408:
      return "Request Timeout";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

std::string render_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace

struct HttpResponder::State {
  std::shared_ptr<HttpServer::AsyncGate> gate;
  std::shared_ptr<HttpServer::Pending> pending;
  std::atomic<bool> done{false};
};

void HttpResponder::respond(HttpResponse response) const {
  const auto state = state_;
  if (!state || state->done.exchange(true)) return;
  const std::lock_guard<std::mutex> lock{state->gate->mu};
  HttpServer* server = state->gate->server;
  if (server == nullptr) return;  // Server stopped; drop silently.
  server->loop_.defer(
      [server, state, response = std::move(response)]() mutable {
        const auto& pending = state->pending;
        if (pending->responded || pending->conn->closed()) return;
        if (response.status >= 400) http_telemetry().errors.inc();
        server->respond(pending, response);
      });
}

HttpServer::HttpServer(int port, HttpServerOptions options)
    : options_(options) {
  listen_fd_ = common::listen_tcp("127.0.0.1", port, /*backlog=*/64, &port_);
  gate_->server = this;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& pattern, HttpHandler handler) {
  Route r;
  for (const auto seg : common::split_nonempty(pattern, '/')) {
    r.segments.emplace_back(seg);
  }
  r.handler = std::move(handler);
  routes_.push_back(std::move(r));
}

void HttpServer::route_async(const std::string& pattern,
                             AsyncHttpHandler handler) {
  Route r;
  for (const auto seg : common::split_nonempty(pattern, '/')) {
    r.segments.emplace_back(seg);
  }
  r.async = std::move(handler);
  routes_.push_back(std::move(r));
}

void HttpServer::start() {
  if (running_.exchange(true)) return;
  (void)common::set_nonblocking(listen_fd_.get());
  loop_.start();
  loop_.defer([this] {
    if (!watch_listen_fd()) pause_accepting();
  });
}

bool HttpServer::watch_listen_fd() {
  return loop_.watch(listen_fd_.get(), net::EventLoop::kReadable,
                     [this](std::uint32_t) { accept_ready(); });
}

void HttpServer::pause_accepting() {
  loop_.unwatch(listen_fd_.get());
  (void)loop_.schedule(std::chrono::milliseconds(100), [this] {
    if (!running_.load()) return;
    // Existing connections had 100 ms to close and release fds; if the
    // re-registration itself fails we are still out of resources — keep
    // backing off on the same cadence.
    if (!watch_listen_fd()) pause_accepting();
  });
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  {
    // Outstanding HttpResponders become no-ops from here on.
    const std::lock_guard<std::mutex> lock{gate_->mu};
    gate_->server = nullptr;
  }
  // Drop everything on the loop thread (watch/timer state lives there),
  // then stop the loop.
  std::promise<void> drained;
  loop_.defer([this, &drained] {
    loop_.unwatch(listen_fd_.get());
    auto snapshot = conns_;
    for (const auto& [_, pending] : snapshot) pending->conn->close();
    drained.set_value();
  });
  drained.get_future().wait();
  loop_.stop();
  listen_fd_.reset();
}

void HttpServer::accept_ready() {
  for (;;) {
    int accept_err = 0;
    auto client = common::accept_nonblocking(listen_fd_.get(), &accept_err);
    if (!client.valid()) {
      // EMFILE-class failure leaves the pending connection queued and
      // the fd readable: without the pause the loop would wake and
      // re-fail accept in a tight spin. EAGAIN just means drained.
      if (accept_err != 0) pause_accepting();
      return;
    }
    auto pending = std::make_shared<Pending>();
    net::Connection::Options copts;
    copts.read_chunk = 4096;
    pending->conn = std::make_shared<net::Connection>(
        loop_, std::move(client), copts);
    conns_[pending->conn.get()] = pending;
    http_telemetry().connections.set(
        static_cast<std::int64_t>(conns_.size()));
    pending->conn->start(
        [this, pending](std::string_view data) {
          return on_data(pending, data);
        },
        [this, pending] {
          if (pending->deadline != 0) {
            loop_.cancel(pending->deadline);
            pending->deadline = 0;
          }
          conns_.erase(pending->conn.get());
          http_telemetry().connections.set(
              static_cast<std::int64_t>(conns_.size()));
        });
    // The slowloris guard: a connection that has not produced a full
    // header block when this fires gets 408 and the door.
    pending->deadline = loop_.schedule(
        std::chrono::milliseconds(options_.read_timeout_ms),
        [this, pending] {
          pending->deadline = 0;
          if (pending->responded || pending->conn->closed()) return;
          auto& tele = http_telemetry();
          tele.rejected_slow.inc();
          tele.errors.inc();
          respond(pending,
                  HttpResponse{408, "text/plain", "request timeout"});
        });
  }
}

std::size_t HttpServer::on_data(const std::shared_ptr<Pending>& pending,
                                std::string_view data) {
  if (pending->responded || pending->async_in_flight) {
    return data.size();  // Draining until close / response.
  }
  auto& tele = http_telemetry();
  if (data.size() > options_.max_request_bytes) {
    tele.rejected_oversize.inc();
    tele.errors.inc();
    respond(pending, HttpResponse{431, "text/plain", "request too large"});
    return data.size();
  }
  // We only support GET (no body): a request is complete at the end of
  // its header block. Anything less stays buffered in the connection.
  const auto header_end = data.find("\r\n\r\n");
  if (header_end == std::string_view::npos) return 0;

  const double serve_start = telemetry::trace_now();
  tele.requests.inc();
  const auto line_end = data.find("\r\n");
  const auto parts =
      common::split_nonempty(data.substr(0, line_end), ' ');
  HttpResponse response;
  if (parts.size() < 2) {
    response = HttpResponse{400, "text/plain", "bad request"};
  } else {
    HttpRequest request;
    request.method = std::string{parts[0]};
    std::string_view target = parts[1];
    const auto qpos = target.find('?');
    if (qpos != std::string_view::npos) {
      request.query = std::string{target.substr(qpos + 1)};
      target = target.substr(0, qpos);
    }
    request.path = std::string{target};
    if (request.method != "GET") {
      response = HttpResponse{400, "text/plain", "only GET is supported"};
    } else {
      std::vector<std::string> params;
      const Route* route = match_route(request.path, &params);
      if (route == nullptr) {
        response = HttpResponse::not_found("no route for " + request.path);
      } else {
        request.params = std::move(params);
        if (route->async) {
          // The request is complete — the slowloris guard has done its
          // job; a long-poll may now park as long as it likes.
          if (pending->deadline != 0) {
            loop_.cancel(pending->deadline);
            pending->deadline = 0;
          }
          pending->async_in_flight = true;
          HttpResponder responder;
          responder.state_ = std::make_shared<HttpResponder::State>();
          responder.state_->gate = gate_;
          responder.state_->pending = pending;
          try {
            route->async(request, responder);
          } catch (const std::exception& e) {
            responder.respond(HttpResponse{500, "text/plain", e.what()});
          }
          return data.size();
        }
        try {
          response = route->handler(request);
        } catch (const std::exception& e) {
          response = HttpResponse{500, "text/plain", e.what()};
        }
      }
    }
  }
  if (response.status >= 400) tele.errors.inc();
  respond(pending, response);
  if (serve_start > 0.0) {
    tele.latency.observe(telemetry::now() - serve_start);
  }
  return data.size();
}

void HttpServer::respond(const std::shared_ptr<Pending>& pending,
                         const HttpResponse& response) {
  pending->responded = true;
  if (pending->deadline != 0) {
    loop_.cancel(pending->deadline);
    pending->deadline = 0;
  }
  (void)pending->conn->send(render_response(response));
  pending->conn->close_after_flush();
}

const HttpServer::Route* HttpServer::match_route(
    const std::string& path, std::vector<std::string>* params) const {
  const auto segments = common::split_nonempty(path, '/');
  for (const auto& route : routes_) {
    if (route.segments.size() != segments.size()) continue;
    std::vector<std::string> captured;
    bool match = true;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const std::string& pat = route.segments[i];
      if (pat.size() >= 2 && pat.front() == '{' && pat.back() == '}') {
        captured.emplace_back(segments[i]);
      } else if (pat != segments[i]) {
        match = false;
        break;
      }
    }
    if (match) {
      *params = std::move(captured);
      return &route;
    }
  }
  return nullptr;
}

std::string http_get(int port, const std::string& path, int* status_out) {
  auto fd = common::connect_tcp("127.0.0.1", port);
  if (!fd.valid()) throw std::runtime_error("http_get: connect() failed");
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  if (!common::send_all(fd.get(), request.data(), request.size())) {
    throw std::runtime_error("http_get: send() failed");
  }
  std::string raw;
  char buf[4096];
  while (true) {
    std::size_t received = 0;
    const auto status =
        common::recv_some(fd.get(), buf, sizeof(buf), 10000, &received);
    if (status != common::RecvStatus::kData) break;
    raw.append(buf, received);
  }
  const auto header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    throw std::runtime_error("http_get: malformed response");
  }
  if (status_out != nullptr) {
    *status_out = std::atoi(raw.c_str() + 9);  // After "HTTP/1.1 ".
  }
  return raw.substr(header_end + 4);
}

}  // namespace stampede::dash
