#include "dashboard/http_server.hpp"

#include <chrono>
#include <cstdlib>
#include <stdexcept>

#include "common/string_utils.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::dash {

namespace {

struct HttpTelemetry {
  telemetry::Counter& requests =
      telemetry::registry().counter("stampede_http_requests_total");
  telemetry::Counter& errors =
      telemetry::registry().counter("stampede_http_errors_total");
  telemetry::Counter& rejected_slow = telemetry::registry().counter(
      telemetry::labeled("stampede_http_rejected_total", "reason", "timeout"));
  telemetry::Counter& rejected_oversize = telemetry::registry().counter(
      telemetry::labeled("stampede_http_rejected_total", "reason",
                         "oversize"));
  telemetry::Histogram& latency = telemetry::registry().histogram(
      "stampede_http_request_latency_seconds");
};

HttpTelemetry& http_telemetry() {
  static HttpTelemetry instance;
  return instance;
}

std::string status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 408:
      return "Request Timeout";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

void send_response(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  (void)common::send_all(fd, out.data(), out.size());
}

}  // namespace

HttpServer::HttpServer(int port, HttpServerOptions options)
    : options_(options) {
  listen_fd_ = common::listen_tcp("127.0.0.1", port, /*backlog=*/16, &port_);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& pattern, HttpHandler handler) {
  Route r;
  for (const auto seg : common::split_nonempty(pattern, '/')) {
    r.segments.emplace_back(seg);
  }
  r.handler = std::move(handler);
  routes_.push_back(std::move(r));
}

void HttpServer::start() {
  if (running_.exchange(true)) return;
  acceptor_ = std::jthread([this](std::stop_token stop) {
    while (!stop.stop_requested()) {
      auto client = common::accept_client(listen_fd_.get(), 50);
      if (client.valid()) serve(client.get());
    }
  });
}

void HttpServer::stop() {
  if (acceptor_.joinable()) {
    acceptor_.request_stop();
    acceptor_.join();
  }
  listen_fd_.reset();
  running_.store(false);
}

void HttpServer::serve(int client_fd) {
  auto& tele = http_telemetry();
  // Read until the end of the request headers (we only support GET, so
  // no body) — but never wait on a trickling client beyond the deadline
  // and never buffer past the size cap.
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.read_timeout_ms);
  std::string raw;
  char buf[2048];
  bool closed_early = false;
  while (raw.find("\r\n\r\n") == std::string::npos) {
    if (raw.size() > options_.max_request_bytes) {
      tele.rejected_oversize.inc();
      tele.errors.inc();
      send_response(client_fd, HttpResponse{431, "text/plain",
                                            "request too large"});
      return;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) {
      tele.rejected_slow.inc();
      tele.errors.inc();
      send_response(client_fd,
                    HttpResponse{408, "text/plain", "request timeout"});
      return;
    }
    std::size_t received = 0;
    const auto status = common::recv_some(
        client_fd, buf, sizeof(buf),
        static_cast<int>(std::min<std::int64_t>(remaining.count(), 100)),
        &received);
    if (status == common::RecvStatus::kClosed ||
        status == common::RecvStatus::kError) {
      closed_early = true;
      break;
    }
    if (status == common::RecvStatus::kData) {
      raw.append(buf, received);
    }
  }
  const double serve_start = telemetry::trace_now();
  tele.requests.inc();
  const auto line_end = raw.find("\r\n");
  if (closed_early || line_end == std::string::npos) return;
  const auto parts =
      common::split_nonempty(std::string_view{raw}.substr(0, line_end), ' ');
  HttpResponse response;
  if (parts.size() < 2) {
    response = HttpResponse{400, "text/plain", "bad request"};
  } else {
    HttpRequest request;
    request.method = std::string{parts[0]};
    std::string_view target = parts[1];
    const auto qpos = target.find('?');
    if (qpos != std::string_view::npos) {
      request.query = std::string{target.substr(qpos + 1)};
      target = target.substr(0, qpos);
    }
    request.path = std::string{target};
    response = dispatch(request);
  }
  send_response(client_fd, response);
  if (response.status >= 400) tele.errors.inc();
  if (serve_start > 0.0) {
    tele.latency.observe(telemetry::now() - serve_start);
  }
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) const {
  if (request.method != "GET") {
    return HttpResponse{400, "text/plain", "only GET is supported"};
  }
  const auto segments = common::split_nonempty(request.path, '/');
  for (const auto& route : routes_) {
    if (route.segments.size() != segments.size()) continue;
    std::vector<std::string> params;
    bool match = true;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const std::string& pat = route.segments[i];
      if (pat.size() >= 2 && pat.front() == '{' && pat.back() == '}') {
        params.emplace_back(segments[i]);
      } else if (pat != segments[i]) {
        match = false;
        break;
      }
    }
    if (match) {
      HttpRequest enriched = request;
      enriched.params = std::move(params);
      try {
        return route.handler(enriched);
      } catch (const std::exception& e) {
        return HttpResponse{500, "text/plain", e.what()};
      }
    }
  }
  return HttpResponse::not_found("no route for " + request.path);
}

std::string http_get(int port, const std::string& path, int* status_out) {
  auto fd = common::connect_tcp("127.0.0.1", port);
  if (!fd.valid()) throw std::runtime_error("http_get: connect() failed");
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  if (!common::send_all(fd.get(), request.data(), request.size())) {
    throw std::runtime_error("http_get: send() failed");
  }
  std::string raw;
  char buf[4096];
  while (true) {
    std::size_t received = 0;
    const auto status =
        common::recv_some(fd.get(), buf, sizeof(buf), 10000, &received);
    if (status != common::RecvStatus::kData) break;
    raw.append(buf, received);
  }
  const auto header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    throw std::runtime_error("http_get: malformed response");
  }
  if (status_out != nullptr) {
    *status_out = std::atoi(raw.c_str() + 9);  // After "HTTP/1.1 ".
  }
  return raw.substr(header_end + 4);
}

}  // namespace stampede::dash
