#include "dashboard/json.hpp"

#include <charconv>
#include <cstdio>

namespace stampede::dash {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_.push_back(',');
    need_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_.push_back('{');
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_.push_back('}');
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_.push_back('[');
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_.push_back(']');
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_if_needed();
  out_.push_back('"');
  out_ += json_escape(name);
  out_ += "\":";
  // The value that follows must not emit a separating comma itself; the
  // next sibling (key or element) will, because that value call re-arms
  // the flag.
  if (!need_comma_.empty()) need_comma_.back() = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma_if_needed();
  out_.push_back('"');
  out_ += json_escape(text);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  comma_if_needed();
  // Shortest representation that round-trips the exact double: %g-style
  // fixed precision truncates epoch-second timestamps (~1.8e9) to
  // minute granularity, which would destroy span ordering in /tracez.
  char buf[40];
  const auto result = std::to_chars(buf, buf + sizeof(buf), number);
  out_.append(buf, result.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma_if_needed();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool boolean) {
  comma_if_needed();
  out_ += boolean ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
  return *this;
}

}  // namespace stampede::dash
