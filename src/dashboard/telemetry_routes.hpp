#pragma once
// Self-telemetry exposition endpoints for any embedded HttpServer:
//
//   GET /metrics — Prometheus text format (telemetry::to_prometheus)
//   GET /selfz   — the same registry as one JSON document
//
// The Dashboard registers these on its own server; standalone tools
// (nl_load_cli --metrics-port) mount them on a bare HttpServer without
// pulling in the query stack.

#include "dashboard/http_server.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::dash {

void register_telemetry_routes(HttpServer& server,
                               const telemetry::Registry& registry =
                                   telemetry::registry());

}  // namespace stampede::dash
