#include "dashboard/telemetry_routes.hpp"

#include "telemetry/exposition.hpp"

namespace stampede::dash {

void register_telemetry_routes(HttpServer& server,
                               const telemetry::Registry& registry) {
  server.route("/metrics", [&registry](const HttpRequest&) {
    HttpResponse response = HttpResponse::text(telemetry::to_prometheus(registry));
    response.content_type = "text/plain; version=0.0.4";
    return response;
  });
  server.route("/selfz", [&registry](const HttpRequest&) {
    return HttpResponse::json(telemetry::to_json(registry));
  });
}

}  // namespace stampede::dash
