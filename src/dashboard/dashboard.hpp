#pragma once
// The Stampede performance dashboard (paper §IV-F): "a very lightweight
// performance dashboard that enables easy monitoring and online
// exploration of workflows based on an embedded web server".
//
// Endpoints (all JSON):
//   GET /healthz                      — liveness probe
//   GET /workflows                    — top-level runs with status
//   GET /workflow/{uuid}/summary      — Table-I style counts + wall times
//   GET /workflow/{uuid}/breakdown    — per-transformation statistics
//   GET /workflow/{uuid}/jobs         — jobs.txt rows
//   GET /workflow/{uuid}/progress     — Fig.-7 per-bundle series
//   GET /workflow/{uuid}/hosts        — per-host activity over time
//   GET /workflow/{uuid}/analyzer     — failure drill-down (all levels)
//
// Self-telemetry (dashboard/telemetry_routes.hpp):
//   GET /metrics                      — Prometheus text exposition
//   GET /selfz                        — registry snapshot as JSON
//
// Continuous views (dashboard/view_routes.hpp, after attach_views):
//   GET /viewz                        — registered continuous views
//   GET /viewz/{id}                   — view snapshot + seq
//   GET /viewz/{id}/wait              — long-poll for updates past seq

#include "dashboard/http_server.hpp"
#include "query/analyzer.hpp"
#include "query/statistics.hpp"

namespace stampede::query {
class ContinuousQueryEngine;
}

namespace stampede::dash {

class Dashboard {
 public:
  /// Serves live data from `database` (the loader may still be writing —
  /// "users should not need to wait for a workflow to finish").
  explicit Dashboard(const db::Database& database, int port = 0);

  /// Same, over a sharded archive: queries scatter-gather across shards.
  explicit Dashboard(const db::ShardedDatabase& database, int port = 0);

  /// Mounts the /viewz endpoints for `views` (dashboard/view_routes.hpp).
  /// The engine must outlive this dashboard. Call before start().
  void attach_views(query::ContinuousQueryEngine& views);

  void start() { server_.start(); }
  void stop() { server_.stop(); }
  [[nodiscard]] int port() const noexcept { return server_.port(); }

 private:
  void install_routes();

  HttpResponse workflows(const HttpRequest& request) const;
  HttpResponse summary(const HttpRequest& request) const;
  HttpResponse breakdown(const HttpRequest& request) const;
  HttpResponse jobs(const HttpRequest& request) const;
  HttpResponse progress(const HttpRequest& request) const;
  HttpResponse hosts(const HttpRequest& request) const;
  HttpResponse analyzer(const HttpRequest& request) const;

  query::QueryInterface query_;
  HttpServer server_;
};

}  // namespace stampede::dash
