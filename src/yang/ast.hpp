#pragma once
// AST for the YANG subset used by the Stampede log-message schema.
//
// The paper models every log event as a YANG `container` that `uses` a
// shared `base-event` grouping and adds event-specific `leaf` nodes with
// types and mandatory flags (§IV-B). We implement the subset of RFC 6020
// needed to express that schema: module, typedef, grouping, uses,
// container, leaf, type, mandatory, description, enumeration.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace stampede::yang {

/// Built-in leaf types after typedef resolution.
enum class BaseType {
  kString,
  kUint32,
  kUint64,
  kInt32,
  kInt64,
  kDecimal64,
  kBoolean,
  kEnumeration,
  kNlTs,  ///< NetLogger timestamp: ISO8601 or epoch seconds.
  kUuid,
};

[[nodiscard]] std::string_view base_type_name(BaseType type) noexcept;

/// A resolved leaf definition inside a container or grouping.
struct Leaf {
  std::string name;
  BaseType type = BaseType::kString;
  std::vector<std::string> enum_values;  ///< For kEnumeration.
  bool mandatory = false;
  std::string description;
};

/// A named reusable group of leaves.
struct Grouping {
  std::string name;
  std::string description;
  std::vector<Leaf> leaves;
  std::vector<std::string> uses;  ///< Nested grouping references.
};

/// One event container; its name is the event string (e.g.
/// "stampede.xwf.start").
struct Container {
  std::string name;
  std::string description;
  std::vector<Leaf> leaves;       ///< Own leaves, in declaration order.
  std::vector<std::string> uses;  ///< Grouping references.
};

/// A user typedef mapping a new name to a base type.
struct Typedef {
  std::string name;
  BaseType type = BaseType::kString;
  std::string description;
};

/// A parsed (but not yet flattened) module.
struct Module {
  std::string name;
  std::string ns;      ///< `namespace` statement argument, if any.
  std::string prefix;  ///< `prefix` statement argument, if any.
  std::map<std::string, Typedef> typedefs;
  std::map<std::string, Grouping> groupings;
  std::vector<Container> containers;
};

/// Fully resolved event schema: groupings inlined into each container.
struct EventSchema {
  std::string event;  ///< Container name.
  std::string description;
  std::vector<Leaf> leaves;  ///< base-event leaves first, then own.

  /// Lookup by leaf name; nullptr if unknown.
  [[nodiscard]] const Leaf* find_leaf(std::string_view name) const noexcept {
    for (const auto& leaf : leaves) {
      if (leaf.name == name) return &leaf;
    }
    return nullptr;
  }
};

}  // namespace stampede::yang
