#include "yang/validator.hpp"

namespace stampede::yang {

// The Stampede log-message schema, following the structure shown in paper
// §IV-B (base-event grouping + one container per event). This is the
// machine-processable contract between workflow-system integrations and
// the loader; the snippets quoted in the paper (stampede.xwf.start,
// base-event) appear verbatim below.
std::string_view stampede_schema_source() noexcept {
  static constexpr std::string_view kSource = R"yang(
module stampede {
  namespace "http://stampede-project.org/ns/schema";
  prefix "stmp";

  typedef nl_ts {
    type string;
    description "Timestamp, ISO8601 or seconds since 1/1/1970";
  }

  typedef uuid_t {
    type uuid;
    description "RFC 4122 UUID in canonical textual form";
  }

  grouping base-event {
    description "Common components in all events";
    leaf ts {
      type nl_ts;
      mandatory "true";
      description
        "Timestamp, ISO8601 or seconds since 1/1/1970";
    }
    leaf event {
      type string;
      mandatory "true";
      description "Hierarchical dotted event name";
    }
    leaf level {
      type string;
      description "NetLogger severity level";
    }
    leaf xwf.id {
      type uuid;
      description "Executable workflow id";
    }
  }

  grouping job-inst-event {
    description "Common components of job-instance lifecycle events";
    uses base-event;
    leaf job_inst.id {
      type int32;
      mandatory "true";
      description "Job instance sequence number within the workflow";
    }
    leaf job.id {
      type string;
      mandatory "true";
      description "Identifier of the job in the executable workflow";
    }
  }

  container stampede.wf.plan {
    description "Plan produced: describes the workflow and its planner";
    uses base-event;
    leaf submit.dir {
      type string;
      description "Directory the workflow was planned/submitted from";
    }
    leaf planner.version {
      type string;
      description "Version of the planner/engine that produced the EW";
    }
    leaf user {
      type string;
      description "User who submitted the workflow";
    }
    leaf dax.label {
      type string;
      description "Label of the abstract workflow";
    }
    leaf parent.xwf.id {
      type uuid;
      description "Executable workflow id of the parent (sub-workflows)";
    }
    leaf root.xwf.id {
      type uuid;
      description "Executable workflow id of the root of the hierarchy";
    }
  }

  container stampede.xwf.start {
    uses base-event;
    leaf restart_count {
      type uint32;
      mandatory "true";
      description "Number of times workflow was
            restarted (due to failures)";
    }
  }

  container stampede.xwf.end {
    uses base-event;
    leaf restart_count {
      type uint32;
      mandatory "true";
      description "Number of times workflow was restarted";
    }
    leaf status {
      type int32;
      mandatory "true";
      description "Workflow exit status; 0 is success, -1 failure";
    }
  }

  container stampede.task.info {
    description "One task of the abstract workflow";
    uses base-event;
    leaf task.id {
      type string;
      mandatory "true";
      description "Identifier of the task in the abstract workflow";
    }
    leaf type {
      type string;
      description "Task type (compute, dax, dag, ...)";
    }
    leaf type_desc {
      type string;
      description "Human-readable task type";
    }
    leaf transformation {
      type string;
      mandatory "true";
      description "Logical name of the executable the task runs";
    }
    leaf argv {
      type string;
      description "Command-line arguments of the task";
    }
  }

  container stampede.task.edge {
    description "One dependency edge of the abstract workflow";
    uses base-event;
    leaf parent.task.id {
      type string;
      mandatory "true";
      description "Task id of the dependency's source";
    }
    leaf child.task.id {
      type string;
      mandatory "true";
      description "Task id of the dependency's target";
    }
  }

  container stampede.job.info {
    description "One job of the executable workflow";
    uses base-event;
    leaf job.id {
      type string;
      mandatory "true";
      description "Identifier of the job in the executable workflow";
    }
    leaf type {
      type string;
      description "Job type (compute, stage-in, stage-out, ...)";
    }
    leaf type_desc {
      type string;
      description "Human-readable job type";
    }
    leaf transformation {
      type string;
      description "Logical name of the main executable";
    }
    leaf executable {
      type string;
      description "Path of the submit-script / executable";
    }
    leaf argv {
      type string;
      description "Command-line arguments";
    }
    leaf task_count {
      type uint32;
      description "Number of abstract tasks clustered into this job";
    }
  }

  container stampede.job.edge {
    description "One dependency edge of the executable workflow";
    uses base-event;
    leaf parent.job.id {
      type string;
      mandatory "true";
      description "Job id of the dependency's source";
    }
    leaf child.job.id {
      type string;
      mandatory "true";
      description "Job id of the dependency's target";
    }
  }

  container stampede.wf.map.task_job {
    description "Many-to-many mapping from AW tasks to EW jobs";
    uses base-event;
    leaf task.id {
      type string;
      mandatory "true";
      description "Task id in the abstract workflow";
    }
    leaf job.id {
      type string;
      mandatory "true";
      description "Job id in the executable workflow";
    }
  }

  container stampede.xwf.map.subwf_job {
    description "Associates a sub-workflow with the job that runs it";
    uses base-event;
    leaf subwf.id {
      type uuid;
      mandatory "true";
      description "Executable workflow id of the sub-workflow";
    }
    leaf job.id {
      type string;
      mandatory "true";
      description "Job id in the parent workflow that spawned it";
    }
    leaf job_inst.id {
      type int32;
      description "Job instance sequence number in the parent";
    }
  }

  container stampede.job_inst.pre.start {
    description "Pre-script of a job instance started";
    uses job-inst-event;
  }

  container stampede.job_inst.pre.term {
    description "Pre-script received termination signal";
    uses job-inst-event;
    leaf status { type int32; }
  }

  container stampede.job_inst.pre.end {
    description "Pre-script of a job instance finished";
    uses job-inst-event;
    leaf exitcode {
      type int32;
      mandatory "true";
    }
  }

  container stampede.job_inst.submit.start {
    description "Job instance is being submitted to the scheduler";
    uses job-inst-event;
    leaf sched.id {
      type string;
      description "Identifier assigned by the underlying scheduler";
    }
  }

  container stampede.job_inst.submit.end {
    description "Submission of the job instance completed";
    uses job-inst-event;
    leaf status {
      type int32;
      mandatory "true";
      description "Submission status; 0 accepted, -1 rejected";
    }
  }

  container stampede.job_inst.held.start {
    description "Job instance was held/paused";
    uses job-inst-event;
    leaf reason { type string; }
  }

  container stampede.job_inst.held.end {
    description "Job instance was released from hold";
    uses job-inst-event;
    leaf status { type int32; }
  }

  container stampede.job_inst.main.start {
    description "Main part of the job instance started executing";
    uses job-inst-event;
    leaf stdout.file { type string; }
    leaf site {
      type string;
      description "Logical site/resource where the job runs";
    }
  }

  container stampede.job_inst.main.term {
    description "Main part of the job instance terminated";
    uses job-inst-event;
    leaf status {
      type int32;
      mandatory "true";
      description "Termination status; 0 normal, -1 abnormal";
    }
  }

  container stampede.job_inst.main.end {
    description "Main part of the job instance finished";
    uses job-inst-event;
    leaf exitcode {
      type int32;
      mandatory "true";
      description "Exit code of the job's main executable";
    }
    leaf stdout.text { type string; }
    leaf stderr.text { type string; }
    leaf site { type string; }
    leaf multiplier_factor {
      type decimal64;
      description "Factor applied to runtimes for this resource";
    }
  }

  container stampede.job_inst.post.start {
    description "Post-script of a job instance started";
    uses job-inst-event;
  }

  container stampede.job_inst.post.term {
    description "Post-script received termination signal";
    uses job-inst-event;
    leaf status { type int32; }
  }

  container stampede.job_inst.post.end {
    description "Post-script of a job instance finished";
    uses job-inst-event;
    leaf exitcode {
      type int32;
      mandatory "true";
    }
  }

  container stampede.job_inst.host.info {
    description "Host the job instance landed on";
    uses job-inst-event;
    leaf hostname {
      type string;
      mandatory "true";
      description "Hostname of the execution host";
    }
    leaf ip { type string; }
    leaf site { type string; }
    leaf total_memory {
      type uint64;
      description "Total memory of the host in bytes";
    }
    leaf uname { type string; }
  }

  container stampede.job_inst.image.info {
    description "Memory image statistics of the running job instance";
    uses job-inst-event;
    leaf size {
      type uint64;
      description "Image size in bytes";
    }
  }

  container stampede.inv.start {
    description "Invocation of an executable on a remote node started";
    uses base-event;
    leaf job_inst.id {
      type int32;
      mandatory "true";
    }
    leaf job.id {
      type string;
      mandatory "true";
    }
    leaf inv.id {
      type int32;
      mandatory "true";
      description "Invocation sequence number within the job instance";
    }
  }

  container stampede.inv.end {
    description "Invocation of an executable on a remote node finished";
    uses base-event;
    leaf job_inst.id {
      type int32;
      mandatory "true";
    }
    leaf job.id {
      type string;
      mandatory "true";
    }
    leaf inv.id {
      type int32;
      mandatory "true";
    }
    leaf task.id {
      type string;
      description "Task in the AW this invocation instantiates; absent
                   for jobs the planner added (stage-in and friends)";
    }
    leaf start_time {
      type nl_ts;
      description "Start of the invocation on the remote host";
    }
    leaf dur {
      type decimal64;
      mandatory "true";
      description "Duration of the invocation in seconds";
    }
    leaf remote_cpu_time {
      type decimal64;
      description "CPU seconds consumed on the remote host";
    }
    leaf exitcode {
      type int32;
      mandatory "true";
    }
    leaf transformation { type string; }
    leaf executable { type string; }
    leaf argv { type string; }
    leaf site { type string; }
    leaf hostname { type string; }
  }
}
)yang";
  return kSource;
}

}  // namespace stampede::yang
