#pragma once
// Event validator — the pyang-equivalent described in paper §IV-B.
//
// A SchemaRegistry flattens a parsed Module into per-event EventSchemas
// (inlining `uses base-event;` etc.) and validates LogRecords against
// them: mandatory attributes present, values well-typed, enum values
// legal. The loader runs every incoming message through this before any
// database work so that producers (engine integrations) get immediate,
// structured feedback when their mapping drifts from the data model.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "netlogger/record.hpp"
#include "yang/ast.hpp"

namespace stampede::yang {

enum class Severity { kError, kWarning };

struct ValidationIssue {
  Severity severity = Severity::kError;
  std::string event;      ///< Event name of the record being validated.
  std::string attribute;  ///< Offending attribute (may be empty).
  std::string message;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;

  [[nodiscard]] bool ok() const noexcept {
    for (const auto& issue : issues) {
      if (issue.severity == Severity::kError) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t error_count() const noexcept {
    std::size_t n = 0;
    for (const auto& issue : issues) {
      if (issue.severity == Severity::kError) ++n;
    }
    return n;
  }
};

/// Checks a single value against a leaf type. Returns empty string on
/// success, else a human-readable reason.
[[nodiscard]] std::string check_value(const Leaf& leaf, std::string_view value);

class SchemaRegistry {
 public:
  /// Flattens a module. Throws common::SchemaError on unresolvable `uses`
  /// or duplicate leaf names within one event.
  explicit SchemaRegistry(const Module& module);

  /// Schema for an event name; nullptr if the event is not in the model.
  [[nodiscard]] const EventSchema* find(std::string_view event) const noexcept;

  /// Validates one record. Unknown events are errors; unknown attributes
  /// on known events are warnings (forward compatibility, as pyang's
  /// default lax mode allows).
  [[nodiscard]] ValidationReport validate(const nl::LogRecord& record) const;

  [[nodiscard]] std::size_t event_count() const noexcept {
    return schemas_.size();
  }

  /// All event names, sorted.
  [[nodiscard]] std::vector<std::string> event_names() const;

 private:
  std::map<std::string, EventSchema, std::less<>> schemas_;
};

/// The embedded Stampede schema source (DESIGN.md §5 event catalogue).
[[nodiscard]] std::string_view stampede_schema_source() noexcept;

/// Parses + flattens the embedded schema. Built once, reused everywhere.
[[nodiscard]] const SchemaRegistry& stampede_schema();

}  // namespace stampede::yang
