#include "yang/parser.hpp"

#include <cctype>

#include "common/errors.hpp"

namespace stampede::yang {
namespace {

using common::SchemaError;

/// Token stream over YANG source. YANG tokens are: `{`, `}`, `;`,
/// double/single-quoted strings (with `+` concatenation), and unquoted
/// words. Comments are `//` to end of line and `/* ... */`.
class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  struct Token {
    enum class Kind { kWord, kString, kLBrace, kRBrace, kSemi, kEnd };
    Kind kind = Kind::kEnd;
    std::string text;
    std::size_t line = 0;
  };

  Token next() {
    skip_trivia();
    Token tok;
    tok.line = line_;
    if (pos_ >= src_.size()) {
      tok.kind = Token::Kind::kEnd;
      return tok;
    }
    const char c = src_[pos_];
    if (c == '{') {
      ++pos_;
      tok.kind = Token::Kind::kLBrace;
      return tok;
    }
    if (c == '}') {
      ++pos_;
      tok.kind = Token::Kind::kRBrace;
      return tok;
    }
    if (c == ';') {
      ++pos_;
      tok.kind = Token::Kind::kSemi;
      return tok;
    }
    if (c == '"' || c == '\'') {
      tok.kind = Token::Kind::kString;
      tok.text = read_string();
      // Handle `"a" + "b"` concatenation.
      while (true) {
        const std::size_t save = pos_;
        const std::size_t save_line = line_;
        skip_trivia();
        if (pos_ < src_.size() && src_[pos_] == '+') {
          ++pos_;
          skip_trivia();
          if (pos_ < src_.size() && (src_[pos_] == '"' || src_[pos_] == '\'')) {
            tok.text += read_string();
            continue;
          }
          throw SchemaError("yang: '+' not followed by string at line " +
                            std::to_string(line_));
        }
        pos_ = save;
        line_ = save_line;
        break;
      }
      return tok;
    }
    // Unquoted word: up to whitespace or structural char.
    tok.kind = Token::Kind::kWord;
    const std::size_t start = pos_;
    while (pos_ < src_.size()) {
      const char w = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(w)) || w == '{' ||
          w == '}' || w == ';' || w == '"' || w == '\'') {
        break;
      }
      ++pos_;
    }
    tok.text.assign(src_.substr(start, pos_ - start));
    return tok;
  }

 private:
  void skip_trivia() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        if (pos_ + 1 >= src_.size()) {
          throw SchemaError("yang: unterminated comment");
        }
        pos_ += 2;
      } else {
        return;
      }
    }
  }

  std::string read_string() {
    const char quote = src_[pos_];
    ++pos_;
    std::string out;
    while (pos_ < src_.size() && src_[pos_] != quote) {
      char c = src_[pos_];
      if (c == '\\' && quote == '"' && pos_ + 1 < src_.size()) {
        const char e = src_[pos_ + 1];
        if (e == 'n') {
          out.push_back('\n');
        } else if (e == 't') {
          out.push_back('\t');
        } else {
          out.push_back(e);
        }
        pos_ += 2;
        continue;
      }
      if (c == '\n') ++line_;
      out.push_back(c);
      ++pos_;
    }
    if (pos_ >= src_.size()) {
      throw SchemaError("yang: unterminated string at line " +
                        std::to_string(line_));
    }
    ++pos_;  // closing quote
    return out;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : lexer_(src) { advance(); }

  Statement parse_top() {
    Statement stmt = parse_statement();
    if (tok_.kind != Lexer::Token::Kind::kEnd) {
      throw SchemaError("yang: trailing content after module at line " +
                        std::to_string(tok_.line));
    }
    return stmt;
  }

 private:
  Statement parse_statement() {
    if (tok_.kind != Lexer::Token::Kind::kWord) {
      throw SchemaError("yang: expected statement keyword at line " +
                        std::to_string(tok_.line));
    }
    Statement stmt;
    stmt.keyword = tok_.text;
    stmt.line = tok_.line;
    advance();
    if (tok_.kind == Lexer::Token::Kind::kWord ||
        tok_.kind == Lexer::Token::Kind::kString) {
      stmt.argument = tok_.text;
      advance();
    }
    if (tok_.kind == Lexer::Token::Kind::kSemi) {
      advance();
      return stmt;
    }
    if (tok_.kind == Lexer::Token::Kind::kLBrace) {
      advance();
      while (tok_.kind != Lexer::Token::Kind::kRBrace) {
        if (tok_.kind == Lexer::Token::Kind::kEnd) {
          throw SchemaError("yang: unexpected end of input in block opened");
        }
        stmt.children.push_back(parse_statement());
      }
      advance();  // consume '}'
      return stmt;
    }
    throw SchemaError("yang: expected ';' or '{' after statement '" +
                      stmt.keyword + "' at line " + std::to_string(tok_.line));
  }

  void advance() { tok_ = lexer_.next(); }

  Lexer lexer_;
  Lexer::Token tok_;
};

BaseType builtin_type(std::string_view name, const Module& module,
                      std::size_t line) {
  if (name == "string") return BaseType::kString;
  if (name == "uint32") return BaseType::kUint32;
  if (name == "uint64") return BaseType::kUint64;
  if (name == "int32") return BaseType::kInt32;
  if (name == "int64") return BaseType::kInt64;
  if (name == "decimal64") return BaseType::kDecimal64;
  if (name == "boolean") return BaseType::kBoolean;
  if (name == "enumeration") return BaseType::kEnumeration;
  if (name == "nl_ts") return BaseType::kNlTs;
  if (name == "uuid") return BaseType::kUuid;
  const auto it = module.typedefs.find(std::string{name});
  if (it != module.typedefs.end()) return it->second.type;
  throw SchemaError("yang: unknown type '" + std::string{name} +
                    "' at line " + std::to_string(line));
}

Leaf compile_leaf(const Statement& stmt, const Module& module) {
  Leaf leaf;
  leaf.name = stmt.argument;
  if (leaf.name.empty()) {
    throw SchemaError("yang: leaf without a name at line " +
                      std::to_string(stmt.line));
  }
  for (const auto& sub : stmt.children) {
    if (sub.keyword == "type") {
      leaf.type = builtin_type(sub.argument, module, sub.line);
      if (leaf.type == BaseType::kEnumeration) {
        for (const auto& e : sub.children) {
          if (e.keyword == "enum") leaf.enum_values.push_back(e.argument);
        }
        if (leaf.enum_values.empty()) {
          throw SchemaError("yang: enumeration with no enum values at line " +
                            std::to_string(sub.line));
        }
      }
    } else if (sub.keyword == "mandatory") {
      leaf.mandatory = sub.argument == "true";
    } else if (sub.keyword == "description") {
      leaf.description = sub.argument;
    }
  }
  return leaf;
}

}  // namespace

const Statement* Statement::child(std::string_view kw) const noexcept {
  for (const auto& c : children) {
    if (c.keyword == kw) return &c;
  }
  return nullptr;
}

Statement parse_statements(std::string_view source) {
  Parser parser{source};
  return parser.parse_top();
}

Module compile_module(const Statement& root) {
  if (root.keyword != "module") {
    throw SchemaError("yang: top-level statement must be 'module', got '" +
                      root.keyword + "'");
  }
  Module module;
  module.name = root.argument;

  // Two passes so typedefs can be referenced from anywhere in the module.
  for (const auto& stmt : root.children) {
    if (stmt.keyword == "typedef") {
      Typedef td;
      td.name = stmt.argument;
      if (const auto* type = stmt.child("type")) {
        // Typedefs may only reference builtins (no chained typedefs).
        Module empty;
        td.type = builtin_type(type->argument, empty, type->line);
      }
      if (const auto* desc = stmt.child("description")) {
        td.description = desc->argument;
      }
      if (!module.typedefs.emplace(td.name, td).second) {
        throw SchemaError("yang: duplicate typedef '" + td.name + "'");
      }
    } else if (stmt.keyword == "namespace") {
      module.ns = stmt.argument;
    } else if (stmt.keyword == "prefix") {
      module.prefix = stmt.argument;
    }
  }

  for (const auto& stmt : root.children) {
    if (stmt.keyword == "grouping") {
      Grouping grp;
      grp.name = stmt.argument;
      for (const auto& sub : stmt.children) {
        if (sub.keyword == "leaf") {
          grp.leaves.push_back(compile_leaf(sub, module));
        } else if (sub.keyword == "uses") {
          grp.uses.push_back(sub.argument);
        } else if (sub.keyword == "description") {
          grp.description = sub.argument;
        }
      }
      if (!module.groupings.emplace(grp.name, grp).second) {
        throw SchemaError("yang: duplicate grouping '" + grp.name + "'");
      }
    } else if (stmt.keyword == "container") {
      Container container;
      container.name = stmt.argument;
      for (const auto& sub : stmt.children) {
        if (sub.keyword == "leaf") {
          container.leaves.push_back(compile_leaf(sub, module));
        } else if (sub.keyword == "uses") {
          container.uses.push_back(sub.argument);
        } else if (sub.keyword == "description") {
          container.description = sub.argument;
        }
      }
      module.containers.push_back(std::move(container));
    }
  }
  return module;
}

Module parse_module(std::string_view source) {
  return compile_module(parse_statements(source));
}

std::string_view base_type_name(BaseType type) noexcept {
  switch (type) {
    case BaseType::kString:
      return "string";
    case BaseType::kUint32:
      return "uint32";
    case BaseType::kUint64:
      return "uint64";
    case BaseType::kInt32:
      return "int32";
    case BaseType::kInt64:
      return "int64";
    case BaseType::kDecimal64:
      return "decimal64";
    case BaseType::kBoolean:
      return "boolean";
    case BaseType::kEnumeration:
      return "enumeration";
    case BaseType::kNlTs:
      return "nl_ts";
    case BaseType::kUuid:
      return "uuid";
  }
  return "?";
}

}  // namespace stampede::yang
