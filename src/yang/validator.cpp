#include "yang/validator.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/errors.hpp"
#include "common/time_utils.hpp"
#include "common/uuid.hpp"
#include "yang/parser.hpp"

namespace stampede::yang {
namespace {

using common::SchemaError;

bool parse_whole_ll(std::string_view text, long long& out) {
  if (text.empty()) return false;
  const std::string owned{text};
  char* end = nullptr;
  out = std::strtoll(owned.c_str(), &end, 10);
  return end == owned.c_str() + owned.size();
}

void append_grouping(const Module& module, const std::string& name,
                     std::vector<Leaf>& leaves,
                     std::vector<std::string>& stack) {
  if (std::find(stack.begin(), stack.end(), name) != stack.end()) {
    throw SchemaError("yang: grouping cycle through '" + name + "'");
  }
  const auto it = module.groupings.find(name);
  if (it == module.groupings.end()) {
    throw SchemaError("yang: uses of unknown grouping '" + name + "'");
  }
  stack.push_back(name);
  for (const auto& nested : it->second.uses) {
    append_grouping(module, nested, leaves, stack);
  }
  for (const auto& leaf : it->second.leaves) {
    leaves.push_back(leaf);
  }
  stack.pop_back();
}

}  // namespace

std::string check_value(const Leaf& leaf, std::string_view value) {
  switch (leaf.type) {
    case BaseType::kString:
      return "";
    case BaseType::kUint32:
    case BaseType::kUint64: {
      long long v = 0;
      if (!parse_whole_ll(value, v) || v < 0) {
        return "expected unsigned integer, got '" + std::string{value} + "'";
      }
      if (leaf.type == BaseType::kUint32 && v > 0xffffffffLL) {
        return "value out of uint32 range";
      }
      return "";
    }
    case BaseType::kInt32:
    case BaseType::kInt64: {
      long long v = 0;
      if (!parse_whole_ll(value, v)) {
        return "expected integer, got '" + std::string{value} + "'";
      }
      if (leaf.type == BaseType::kInt32 &&
          (v < -2147483648LL || v > 2147483647LL)) {
        return "value out of int32 range";
      }
      return "";
    }
    case BaseType::kDecimal64: {
      const std::string owned{value};
      char* end = nullptr;
      std::strtod(owned.c_str(), &end);
      if (owned.empty() || end != owned.c_str() + owned.size()) {
        return "expected decimal, got '" + std::string{value} + "'";
      }
      return "";
    }
    case BaseType::kBoolean:
      if (value == "true" || value == "false") return "";
      return "expected 'true' or 'false', got '" + std::string{value} + "'";
    case BaseType::kEnumeration: {
      for (const auto& allowed : leaf.enum_values) {
        if (allowed == value) return "";
      }
      return "value '" + std::string{value} + "' not in enumeration";
    }
    case BaseType::kNlTs:
      if (common::parse_timestamp(value)) return "";
      return "expected ISO8601 or epoch-seconds timestamp";
    case BaseType::kUuid:
      if (common::Uuid::parse(value)) return "";
      return "expected UUID, got '" + std::string{value} + "'";
  }
  return "unhandled type";
}

SchemaRegistry::SchemaRegistry(const Module& module) {
  for (const auto& container : module.containers) {
    EventSchema schema;
    schema.event = container.name;
    schema.description = container.description;
    std::vector<std::string> stack;
    for (const auto& uses : container.uses) {
      append_grouping(module, uses, schema.leaves, stack);
    }
    for (const auto& leaf : container.leaves) {
      schema.leaves.push_back(leaf);
    }
    // Reject duplicate leaves — they make validation ambiguous.
    for (std::size_t i = 0; i < schema.leaves.size(); ++i) {
      for (std::size_t j = i + 1; j < schema.leaves.size(); ++j) {
        if (schema.leaves[i].name == schema.leaves[j].name) {
          throw SchemaError("yang: duplicate leaf '" + schema.leaves[i].name +
                            "' in container '" + container.name + "'");
        }
      }
    }
    if (!schemas_.emplace(schema.event, std::move(schema)).second) {
      throw SchemaError("yang: duplicate container '" + container.name + "'");
    }
  }
}

const EventSchema* SchemaRegistry::find(std::string_view event) const noexcept {
  const auto it = schemas_.find(event);
  return it == schemas_.end() ? nullptr : &it->second;
}

std::vector<std::string> SchemaRegistry::event_names() const {
  std::vector<std::string> names;
  names.reserve(schemas_.size());
  for (const auto& [name, schema] : schemas_) names.push_back(name);
  return names;
}

ValidationReport SchemaRegistry::validate(const nl::LogRecord& record) const {
  ValidationReport report;
  const EventSchema* schema = find(record.event());
  if (schema == nullptr) {
    report.issues.push_back({Severity::kError, record.event(), "",
                             "event not defined in the Stampede schema"});
    return report;
  }
  for (const auto& leaf : schema->leaves) {
    // ts / event / level live in dedicated LogRecord fields, always set.
    if (leaf.name == "ts" || leaf.name == "event" || leaf.name == "level") {
      continue;
    }
    const auto value = record.get(leaf.name);
    if (!value) {
      if (leaf.mandatory) {
        report.issues.push_back({Severity::kError, record.event(), leaf.name,
                                 "mandatory attribute missing"});
      }
      continue;
    }
    std::string why = check_value(leaf, *value);
    if (!why.empty()) {
      report.issues.push_back(
          {Severity::kError, record.event(), leaf.name, std::move(why)});
    }
  }
  for (const auto& [key, value] : record.attributes()) {
    if (schema->find_leaf(key) == nullptr) {
      report.issues.push_back({Severity::kWarning, record.event(), key,
                               "attribute not in schema (ignored)"});
    }
  }
  return report;
}

const SchemaRegistry& stampede_schema() {
  static const SchemaRegistry registry{parse_module(stampede_schema_source())};
  return registry;
}

}  // namespace stampede::yang
