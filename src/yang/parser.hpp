#pragma once
// Parser for the YANG subset (RFC 6020 grammar core: every statement is
// `keyword [argument] (";" | "{" substatements "}")`).

#include <string>
#include <string_view>
#include <vector>

#include "yang/ast.hpp"

namespace stampede::yang {

/// Generic statement tree, the direct parse result.
struct Statement {
  std::string keyword;
  std::string argument;  ///< Unquoted/concatenated argument text.
  std::vector<Statement> children;
  std::size_t line = 0;

  /// First child with the given keyword, or nullptr.
  [[nodiscard]] const Statement* child(std::string_view keyword) const noexcept;
};

/// Parses YANG source into a statement tree rooted at the `module`
/// statement. Throws common::SchemaError with line info on syntax errors.
[[nodiscard]] Statement parse_statements(std::string_view source);

/// Compiles a statement tree into a Module (typedefs, groupings,
/// containers). Throws common::SchemaError on semantic errors (unknown
/// type, duplicate names).
[[nodiscard]] Module compile_module(const Statement& root);

/// Convenience: parse + compile.
[[nodiscard]] Module parse_module(std::string_view source);

}  // namespace stampede::yang
