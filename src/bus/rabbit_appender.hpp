#pragma once
// The Rabbit Appender (paper §V-C): an EventSink that publishes each
// Stampede event to the AMQP bus so it is "received on the AMQP queue in
// real time, and can be listened for via any connected consumers".

#include "bus/bp_publisher.hpp"
#include "netlogger/sink.hpp"

namespace stampede::bus {

class RabbitAppender final : public nl::EventSink {
 public:
  RabbitAppender(IBus& bus, std::string exchange, bool persistent = false)
      : publisher_(bus, std::move(exchange), persistent) {}

  void emit(const nl::LogRecord& record) override {
    publisher_.publish(record);
  }

  [[nodiscard]] const BpPublisher& publisher() const noexcept {
    return publisher_;
  }

 private:
  BpPublisher publisher_;
};

}  // namespace stampede::bus
