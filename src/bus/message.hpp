#pragma once
// Message types for the AMQP-style bus (paper §IV-C).
//
// In Stampede the message body is one NetLogger BP line and the routing
// key is the hierarchical `event` field, so consumers can subscribe to
// "stampede.job.#" or just "stampede.job_inst.main.*".

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/time_utils.hpp"
#include "telemetry/span.hpp"

namespace stampede::bus {

struct Message {
  std::string routing_key;
  std::string body;
  std::map<std::string, std::string> headers;
  common::Timestamp published_at = 0.0;
  bool persistent = false;  ///< Spooled to disk when queued on a durable queue.

  // Broker-internal delivery bookkeeping (at-least-once semantics).
  std::uint64_t spool_seq = 0;     ///< Durable spool sequence; 0 = not spooled.
  std::uint32_t redeliveries = 0;  ///< Times requeued after a failed delivery.
  bool replayed = false;  ///< Recovered from the spool (may have been
                          ///< delivered before the crash).

  // Telemetry trace stamps (telemetry/trace.hpp): steady-clock seconds
  // recorded as the message crossed each stage; 0 = stage not traced.
  // These live on the message, not in the BP body, so the payload stays
  // byte-identical to a file replay.
  double trace_published = 0.0;  ///< BpPublisher::publish.
  double trace_enqueued = 0.0;   ///< Broker::publish routing.

  // Distributed-tracing context (DESIGN.md §11), set by the publisher
  // when the trace was head-sampled; invalid (all-zero) otherwise. The
  // wall stamps are anchored epoch seconds (Tracer::wall_at) for the
  // same instants as the steady stamps above — comparable across
  // processes. The context also rides as a `traceparent` header so it
  // survives peers that predate the TRACE wire field.
  telemetry::TraceContext trace_ctx;
  double trace_published_wall = 0.0;  ///< BpPublisher::publish.
  double trace_enqueued_wall = 0.0;   ///< Broker::publish routing.
  double trace_spooled_wall = 0.0;    ///< Durable-spool append (0 = not spooled).
};

class BrokerQueue;

/// A message handed to a consumer; carries the tag used to acknowledge.
/// The payload is shared with the broker's unacked ledger — stored once,
/// copied only if the broker actually requeues it.
class Delivery {
 public:
  std::uint64_t delivery_tag = 0;
  std::string consumer_tag;
  std::string exchange;
  bool redelivered = false;

  [[nodiscard]] const Message& message() const noexcept { return *payload_; }

  /// Assembles a delivery outside the broker — for transports
  /// (net::BusClient) that reconstruct deliveries from wire frames.
  [[nodiscard]] static Delivery make(std::uint64_t delivery_tag,
                                     std::string consumer_tag,
                                     std::string exchange, bool redelivered,
                                     Message message) {
    Delivery d;
    d.delivery_tag = delivery_tag;
    d.consumer_tag = std::move(consumer_tag);
    d.exchange = std::move(exchange);
    d.redelivered = redelivered;
    d.payload_ = std::make_shared<const Message>(std::move(message));
    return d;
  }

 private:
  friend class BrokerQueue;
  std::shared_ptr<const Message> payload_;
};

}  // namespace stampede::bus
