#pragma once
// Broker-side queue with acknowledgment tracking.
//
// Semantics follow AMQP 0-9-1 basic.{get,consume,ack,nack}: a delivered
// message stays "unacked" until the consumer acks it; nack(requeue=true)
// or consumer cancellation puts it back at the head with the redelivered
// flag set. Producers never block (paper §IV-C: the bus "avoids blocking
// the producers"): when a bounded queue is full the oldest ready message
// is dropped and counted, mirroring RabbitMQ's drop-head overflow policy.
//
// At-least-once additions: every message carries its durable spool
// sequence (0 = not spooled) so the broker can log acks; nack-requeues
// count redeliveries and, past QueueOptions::max_redeliveries, hand the
// message back for dead-lettering instead of requeueing it forever.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "bus/message.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::bus {

struct QueueOptions {
  bool durable = false;      ///< Persistent messages spool to disk.
  bool auto_delete = false;  ///< Deleted when the last consumer departs.
  std::size_t max_length = 0;  ///< 0 = unbounded.
  /// Nack-requeues a message survives before it is dead-lettered
  /// (0 = unlimited, the pre-DLQ behaviour).
  std::size_t max_redeliveries = 0;
  /// Queue that receives messages exhausting max_redeliveries; messages
  /// are dropped (counted) when empty or the queue does not exist.
  std::string dead_letter_queue;
  /// Acked spool records tolerated before the broker compacts the
  /// spool file (rewrites it with only live messages).
  std::size_t spool_compact_threshold = 1024;
};

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t delivered = 0;
  std::uint64_t acked = 0;
  std::uint64_t requeued = 0;
  std::uint64_t redelivered = 0;     ///< Deliveries with the flag set.
  std::uint64_t dead_lettered = 0;   ///< Exhausted max_redeliveries.
  std::uint64_t dropped_overflow = 0;
  std::size_t depth = 0;     ///< Ready messages.
  std::size_t unacked = 0;   ///< Delivered but not yet acked.
};

/// Outcome of an enqueue; a drop-head overflow of a spooled message
/// surfaces the victim's spool sequence so the broker can log its ack.
struct EnqueueResult {
  bool accepted = false;
  std::uint64_t dropped_spool_seq = 0;  ///< 0 = nothing spooled dropped.
};

/// Outcome of a nack. At most one of `requeued` / `dead_letter` /
/// `discarded_spool_seq` describes what happened to the message.
struct NackResult {
  bool ok = false;        ///< Tag was known.
  bool requeued = false;  ///< Back at the queue head.
  /// Set when the message exhausted max_redeliveries: the caller (the
  /// broker) routes it to the dead-letter queue.
  std::optional<Message> dead_letter;
  /// Spool sequence of a message that permanently left this queue
  /// (nack without requeue, or dead-lettered); 0 = none.
  std::uint64_t removed_spool_seq = 0;
};

/// Thread-safe broker queue. Consumer blocking/wakeup is handled one
/// level up (Broker) via its condition variable; this class only guards
/// its own state.
class BrokerQueue {
 public:
  // Telemetry instruments are resolved once here (one registry lookup
  // per queue lifetime); the enqueue/deliver hot path then only touches
  // relaxed atomics.
  BrokerQueue(std::string name, QueueOptions options)
      : name_(std::move(name)),
        options_(options),
        depth_gauge_(&telemetry::registry().gauge(telemetry::labeled(
            "stampede_bus_queue_depth", "queue", name_))),
        enqueued_counter_(&telemetry::registry().counter(telemetry::labeled(
            "stampede_bus_queue_enqueued_total", "queue", name_))),
        dropped_counter_(&telemetry::registry().counter(telemetry::labeled(
            "stampede_bus_queue_dropped_total", "queue", name_))) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const QueueOptions& options() const noexcept {
    return options_;
  }

  /// Enqueues; never blocks. On drop-head overflow the dropped spooled
  /// message's sequence is reported so its spool ack can be logged.
  EnqueueResult enqueue(Message message);

  /// Pops the next ready message as an unacked delivery; nullopt if empty.
  [[nodiscard]] std::optional<Delivery> deliver(
      const std::string& consumer_tag, const std::string& exchange);

  /// Acknowledges a previously delivered message. nullopt for an unknown
  /// tag (double-ack or foreign tag); otherwise the acked message's
  /// spool sequence (0 when it was never spooled).
  std::optional<std::uint64_t> ack(std::uint64_t delivery_tag);

  /// Negative-acknowledges; optionally requeues at the head, counting
  /// the redelivery and dead-lettering past max_redeliveries.
  NackResult nack(std::uint64_t delivery_tag, bool requeue);

  /// Requeues every unacked delivery of a departing consumer (sets the
  /// redelivered flag but never dead-letters — cancellation is not a
  /// delivery failure).
  void requeue_consumer(const std::string& consumer_tag);

  /// Every message currently on this queue (ready or unacked) carrying a
  /// spool sequence, ascending by sequence — the live set a spool
  /// compaction must preserve.
  [[nodiscard]] std::vector<Message> spooled_messages() const;

  [[nodiscard]] QueueStats stats() const;
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] bool empty() const { return depth() == 0; }

 private:
  struct Unacked {
    std::string consumer_tag;
    std::shared_ptr<const Message> message;  ///< Shared with the Delivery.
  };

  mutable std::mutex mutex_;
  std::string name_;
  QueueOptions options_;
  telemetry::Gauge* depth_gauge_;
  telemetry::Counter* enqueued_counter_;
  telemetry::Counter* dropped_counter_;
  std::deque<Message> ready_;
  std::map<std::uint64_t, Unacked> unacked_;
  std::uint64_t next_tag_ = 1;
  QueueStats stats_;
};

}  // namespace stampede::bus
