#pragma once
// Broker-side queue with acknowledgment tracking.
//
// Semantics follow AMQP 0-9-1 basic.{get,consume,ack,nack}: a delivered
// message stays "unacked" until the consumer acks it; nack(requeue=true)
// or consumer cancellation puts it back at the head with the redelivered
// flag set. Producers never block (paper §IV-C: the bus "avoids blocking
// the producers"): when a bounded queue is full the oldest ready message
// is dropped and counted, mirroring RabbitMQ's drop-head overflow policy.

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "bus/message.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::bus {

struct QueueOptions {
  bool durable = false;      ///< Persistent messages spool to disk.
  bool auto_delete = false;  ///< Deleted when the last consumer departs.
  std::size_t max_length = 0;  ///< 0 = unbounded.
};

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t delivered = 0;
  std::uint64_t acked = 0;
  std::uint64_t requeued = 0;
  std::uint64_t dropped_overflow = 0;
  std::size_t depth = 0;     ///< Ready messages.
  std::size_t unacked = 0;   ///< Delivered but not yet acked.
};

/// Thread-safe broker queue. Consumer blocking/wakeup is handled one
/// level up (Broker) via its condition variable; this class only guards
/// its own state.
class BrokerQueue {
 public:
  // Telemetry instruments are resolved once here (one registry lookup
  // per queue lifetime); the enqueue/deliver hot path then only touches
  // relaxed atomics.
  BrokerQueue(std::string name, QueueOptions options)
      : name_(std::move(name)),
        options_(options),
        depth_gauge_(&telemetry::registry().gauge(telemetry::labeled(
            "stampede_bus_queue_depth", "queue", name_))),
        enqueued_counter_(&telemetry::registry().counter(telemetry::labeled(
            "stampede_bus_queue_enqueued_total", "queue", name_))),
        dropped_counter_(&telemetry::registry().counter(telemetry::labeled(
            "stampede_bus_queue_dropped_total", "queue", name_))) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const QueueOptions& options() const noexcept {
    return options_;
  }

  /// Enqueues; returns false when the message was dropped (queue full and
  /// drop-head could not make room — only possible with max_length==0
  /// edge cases). Never blocks.
  bool enqueue(Message message);

  /// Pops the next ready message as an unacked delivery; nullopt if empty.
  [[nodiscard]] std::optional<Delivery> deliver(
      const std::string& consumer_tag, const std::string& exchange);

  /// Acknowledges a previously delivered message. Returns false for an
  /// unknown tag (double-ack or foreign tag).
  bool ack(std::uint64_t delivery_tag);

  /// Negative-acknowledges; optionally requeues at the head. Returns
  /// false for an unknown tag.
  bool nack(std::uint64_t delivery_tag, bool requeue);

  /// Requeues every unacked delivery of a departing consumer.
  void requeue_consumer(const std::string& consumer_tag);

  [[nodiscard]] QueueStats stats() const;
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] bool empty() const { return depth() == 0; }

 private:
  struct Unacked {
    std::string consumer_tag;
    Message message;
  };

  mutable std::mutex mutex_;
  std::string name_;
  QueueOptions options_;
  telemetry::Gauge* depth_gauge_;
  telemetry::Counter* enqueued_counter_;
  telemetry::Counter* dropped_counter_;
  std::deque<Message> ready_;
  std::map<std::uint64_t, Unacked> unacked_;
  std::uint64_t next_tag_ = 1;
  QueueStats stats_;
};

}  // namespace stampede::bus
