#include "bus/queue.hpp"

#include <algorithm>
#include <vector>

namespace stampede::bus {

EnqueueResult BrokerQueue::enqueue(Message message) {
  const std::scoped_lock lock{mutex_};
  EnqueueResult result;
  if (options_.max_length != 0 && ready_.size() >= options_.max_length) {
    // Drop-head: discard the oldest ready message to admit the new one.
    result.dropped_spool_seq = ready_.front().spool_seq;
    ready_.pop_front();
    ++stats_.dropped_overflow;
    dropped_counter_->inc();
  }
  ready_.push_back(std::move(message));
  ++stats_.enqueued;
  enqueued_counter_->inc();
  depth_gauge_->set(static_cast<std::int64_t>(ready_.size()));
  result.accepted = true;
  return result;
}

std::optional<Delivery> BrokerQueue::deliver(const std::string& consumer_tag,
                                             const std::string& exchange) {
  const std::scoped_lock lock{mutex_};
  if (ready_.empty()) return std::nullopt;
  Delivery delivery;
  delivery.delivery_tag = next_tag_++;
  delivery.consumer_tag = consumer_tag;
  delivery.exchange = exchange;
  // A replayed message may have been delivered (even processed) before
  // the crash that spooled it back, so it counts as redelivered too.
  delivery.redelivered =
      ready_.front().redeliveries > 0 || ready_.front().replayed;
  delivery.payload_ =
      std::make_shared<const Message>(std::move(ready_.front()));
  ready_.pop_front();
  unacked_.emplace(delivery.delivery_tag,
                   Unacked{consumer_tag, delivery.payload_});
  ++stats_.delivered;
  if (delivery.redelivered) ++stats_.redelivered;
  depth_gauge_->set(static_cast<std::int64_t>(ready_.size()));
  return delivery;
}

std::optional<std::uint64_t> BrokerQueue::ack(std::uint64_t delivery_tag) {
  const std::scoped_lock lock{mutex_};
  const auto it = unacked_.find(delivery_tag);
  if (it == unacked_.end()) return std::nullopt;
  const std::uint64_t spool_seq = it->second.message->spool_seq;
  unacked_.erase(it);
  ++stats_.acked;
  return spool_seq;
}

NackResult BrokerQueue::nack(std::uint64_t delivery_tag, bool requeue) {
  const std::scoped_lock lock{mutex_};
  NackResult result;
  const auto it = unacked_.find(delivery_tag);
  if (it == unacked_.end()) return result;
  result.ok = true;
  const Message& held = *it->second.message;
  if (requeue) {
    if (options_.max_redeliveries != 0 &&
        held.redeliveries >= options_.max_redeliveries) {
      // Exhausted: hand the message back for dead-lettering.
      result.dead_letter = held;
      result.removed_spool_seq = held.spool_seq;
      ++stats_.dead_lettered;
    } else {
      // The shared payload may still be referenced by the consumer's
      // Delivery, so requeue copies; this is the only copy a message
      // pays after the one-time store in deliver().
      Message copy = held;
      ++copy.redeliveries;
      ready_.push_front(std::move(copy));
      ++stats_.requeued;
      result.requeued = true;
      depth_gauge_->set(static_cast<std::int64_t>(ready_.size()));
    }
  } else {
    result.removed_spool_seq = held.spool_seq;
  }
  unacked_.erase(it);
  return result;
}

void BrokerQueue::requeue_consumer(const std::string& consumer_tag) {
  const std::scoped_lock lock{mutex_};
  // Requeued messages keep arrival order as closely as possible: walk in
  // ascending tag order, push_front in reverse.
  std::vector<std::uint64_t> tags;
  for (const auto& [tag, entry] : unacked_) {
    if (entry.consumer_tag == consumer_tag) tags.push_back(tag);
  }
  for (auto it = tags.rbegin(); it != tags.rend(); ++it) {
    auto node = unacked_.extract(*it);
    // Cancellation is not a delivery failure: the flag is set (the
    // consumer may have seen the message) but redeliveries is not
    // advanced toward max_redeliveries.
    Message copy = *node.mapped().message;
    copy.replayed = true;
    ready_.push_front(std::move(copy));
    ++stats_.requeued;
  }
  depth_gauge_->set(static_cast<std::int64_t>(ready_.size()));
}

std::vector<Message> BrokerQueue::spooled_messages() const {
  const std::scoped_lock lock{mutex_};
  std::vector<Message> out;
  for (const auto& msg : ready_) {
    if (msg.spool_seq != 0) out.push_back(msg);
  }
  for (const auto& [tag, entry] : unacked_) {
    if (entry.message->spool_seq != 0) out.push_back(*entry.message);
  }
  std::sort(out.begin(), out.end(), [](const Message& a, const Message& b) {
    return a.spool_seq < b.spool_seq;
  });
  return out;
}

QueueStats BrokerQueue::stats() const {
  const std::scoped_lock lock{mutex_};
  QueueStats s = stats_;
  s.depth = ready_.size();
  s.unacked = unacked_.size();
  return s;
}

std::size_t BrokerQueue::depth() const {
  const std::scoped_lock lock{mutex_};
  return ready_.size();
}

}  // namespace stampede::bus
