#include "bus/queue.hpp"

#include <vector>

namespace stampede::bus {

bool BrokerQueue::enqueue(Message message) {
  const std::scoped_lock lock{mutex_};
  if (options_.max_length != 0 && ready_.size() >= options_.max_length) {
    // Drop-head: discard the oldest ready message to admit the new one.
    ready_.pop_front();
    ++stats_.dropped_overflow;
    dropped_counter_->inc();
  }
  ready_.push_back(std::move(message));
  ++stats_.enqueued;
  enqueued_counter_->inc();
  depth_gauge_->set(static_cast<std::int64_t>(ready_.size()));
  return true;
}

std::optional<Delivery> BrokerQueue::deliver(const std::string& consumer_tag,
                                             const std::string& exchange) {
  const std::scoped_lock lock{mutex_};
  if (ready_.empty()) return std::nullopt;
  Delivery delivery;
  delivery.delivery_tag = next_tag_++;
  delivery.consumer_tag = consumer_tag;
  delivery.exchange = exchange;
  delivery.message = std::move(ready_.front());
  ready_.pop_front();
  unacked_.emplace(delivery.delivery_tag,
                   Unacked{consumer_tag, delivery.message});
  ++stats_.delivered;
  depth_gauge_->set(static_cast<std::int64_t>(ready_.size()));
  return delivery;
}

bool BrokerQueue::ack(std::uint64_t delivery_tag) {
  const std::scoped_lock lock{mutex_};
  const auto it = unacked_.find(delivery_tag);
  if (it == unacked_.end()) return false;
  unacked_.erase(it);
  ++stats_.acked;
  return true;
}

bool BrokerQueue::nack(std::uint64_t delivery_tag, bool requeue) {
  const std::scoped_lock lock{mutex_};
  const auto it = unacked_.find(delivery_tag);
  if (it == unacked_.end()) return false;
  if (requeue) {
    ready_.push_front(std::move(it->second.message));
    ++stats_.requeued;
    depth_gauge_->set(static_cast<std::int64_t>(ready_.size()));
  }
  unacked_.erase(it);
  return true;
}

void BrokerQueue::requeue_consumer(const std::string& consumer_tag) {
  const std::scoped_lock lock{mutex_};
  // Requeued messages keep arrival order as closely as possible: walk in
  // ascending tag order, push_front in reverse.
  std::vector<std::uint64_t> tags;
  for (const auto& [tag, entry] : unacked_) {
    if (entry.consumer_tag == consumer_tag) tags.push_back(tag);
  }
  for (auto it = tags.rbegin(); it != tags.rend(); ++it) {
    auto node = unacked_.extract(*it);
    ready_.push_front(std::move(node.mapped().message));
    ++stats_.requeued;
  }
  depth_gauge_->set(static_cast<std::int64_t>(ready_.size()));
}

QueueStats BrokerQueue::stats() const {
  const std::scoped_lock lock{mutex_};
  QueueStats s = stats_;
  s.depth = ready_.size();
  s.unacked = unacked_.size();
  return s;
}

std::size_t BrokerQueue::depth() const {
  const std::scoped_lock lock{mutex_};
  return ready_.size();
}

}  // namespace stampede::bus
