#pragma once
// In-process AMQP-style broker (the RabbitMQ substitute, DESIGN.md §2).
//
// Provides the AMQP 0-9-1 surface Stampede uses: exchange declaration
// (direct / fanout / topic), queue declaration (durable, auto-delete,
// bounded), bindings with wildcard keys, non-blocking publish, blocking
// consume with acknowledgments, and RAII push-mode subscriptions running
// on their own threads.
//
// Durable queues spool persistent messages to an append-only file
// (bus/spool.hpp format v2) so a new broker instance can recover them —
// the `durable=true auto_delete=false` flags from the paper's nl_load
// invocation. Acks are logged to the same file and the broker compacts
// it once the dead prefix passes QueueOptions::spool_compact_threshold,
// so recovery replays only unacked messages and the spool stays bounded
// under sustained traffic (at-least-once, DESIGN.md "Delivery
// guarantees"). Messages nack-requeued more than
// QueueOptions::max_redeliveries times are routed to the queue's
// declared dead-letter queue instead of hot-looping at the head.
//
// Locking discipline (lock order top to bottom; never reversed):
//   1. `mutex_` guards topology (exchanges_, queues_), stats_, and
//      closed_, and is the condition-variable mutex: `message_ready_`
//      is ONLY notified while `mutex_` is held (publish, nack-requeue,
//      close). A consumer that rechecks its queue under `mutex_` before
//      waiting therefore cannot miss a wakeup — either the publish's
//      enqueue happened before the recheck, or its notify happens after
//      the consumer is parked on the condition variable.
//   2. `QueueEntry::spool_mutex` guards one queue's spool file, open
//      stream, and sequence counter. publish holds it across
//      append+enqueue so a concurrent compaction cannot snapshot the
//      queue between the two steps and drop a spooled-but-not-enqueued
//      message. Never held together with `mutex_`.
//   3. `BrokerQueue`'s internal mutex is innermost: taken while holding
//      `mutex_` (basic_get recheck) or `spool_mutex` (publish,
//      compaction snapshot), and BrokerQueue never calls back into the
//      broker, so no cycle is possible.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bus/ibus.hpp"
#include "bus/message.hpp"
#include "bus/queue.hpp"
#include "bus/topic_matcher.hpp"

namespace stampede::bus {

struct BrokerStats {
  std::uint64_t published = 0;
  std::uint64_t routed = 0;    ///< Queue placements (one publish may fan out).
  std::uint64_t unroutable = 0;
};

class Broker;

/// RAII push-mode consumer. Runs the callback on an internal thread for
/// every delivery; when the callback returns true the message is acked,
/// otherwise nacked-and-requeued with exponential backoff (bounded by
/// the queue's max_redeliveries / dead-letter policy). Destroying the
/// subscription stops the thread and requeues anything unacked.
class Subscription {
 public:
  using Handler = std::function<bool(const Delivery&)>;

  Subscription();
  Subscription(Subscription&&) noexcept;
  Subscription& operator=(Subscription&&) noexcept;
  ~Subscription();

  /// Stops consuming (idempotent); joins the delivery thread.
  void cancel();

  [[nodiscard]] bool active() const noexcept { return impl_ != nullptr; }

 private:
  friend class Broker;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class Broker : public IBus {
 public:
  /// `spool_dir`: where durable queues keep their spool files; empty
  /// disables persistence entirely.
  explicit Broker(std::string spool_dir = {});
  ~Broker() override;

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // -- topology -------------------------------------------------------------

  /// Declares (or re-declares, idempotently) an exchange. Redeclaring
  /// with a different type throws common::BusError.
  void declare_exchange(const std::string& name, ExchangeType type) override;

  /// Declares a queue; also binds it to the default ("") direct exchange
  /// under its own name, per AMQP. Recovers spooled messages for durable
  /// queues (replaying only those without a logged ack) and compacts the
  /// spool in passing. Redeclaring with different options throws
  /// common::BusError.
  void declare_queue(const std::string& name,
                     QueueOptions options = {}) override;

  /// Removes a queue, its bindings, and its spool file. Unknown names
  /// are ignored.
  void delete_queue(const std::string& name);

  /// Binds `queue` to `exchange` with a (possibly wildcarded) key.
  /// Throws common::BusError if either does not exist.
  void bind(const std::string& queue, const std::string& exchange,
            const std::string& binding_key) override;

  [[nodiscard]] bool has_queue(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> queue_names() const;

  // -- publish --------------------------------------------------------------

  /// Routes a message through `exchange`. Returns the number of queues
  /// that accepted it (0 = unroutable). Never blocks the caller.
  std::size_t publish(const std::string& exchange, Message message) override;

  // -- consume --------------------------------------------------------------

  /// Pull-mode get. Blocks up to `timeout_ms` (0 = poll) for a ready
  /// message. nullopt on timeout or unknown queue after shutdown.
  [[nodiscard]] std::optional<Delivery> basic_get(
      const std::string& queue, const std::string& consumer_tag,
      int timeout_ms = 0) override;

  bool ack(const std::string& queue, std::uint64_t delivery_tag) override;
  bool nack(const std::string& queue, std::uint64_t delivery_tag,
            bool requeue) override;

  /// Push-mode consume on a dedicated thread.
  [[nodiscard]] Subscription subscribe(const std::string& queue,
                                       Subscription::Handler handler,
                                       const std::string& consumer_tag = "");

  // -- introspection ----------------------------------------------------------

  [[nodiscard]] QueueStats queue_stats(
      const std::string& queue) const override;
  [[nodiscard]] BrokerStats stats() const;

  /// Wakes all blocked consumers and rejects further publishes; used for
  /// orderly shutdown before destruction.
  void close();

 private:
  struct Exchange {
    ExchangeType type = ExchangeType::kDirect;
    struct Binding {
      std::string queue;
      TopicPattern pattern;
    };
    std::vector<Binding> bindings;
  };

  struct QueueEntry {
    explicit QueueEntry(std::string name, QueueOptions options)
        : queue(std::move(name), options) {}
    BrokerQueue queue;
    std::string spool_path;  ///< Empty when not durable / no spool dir.

    // Spool state, guarded by spool_mutex (lock order: see file header).
    std::mutex spool_mutex;
    std::ofstream spool_out;        ///< Kept open in append mode.
    std::uint64_t next_seq = 1;     ///< Next spool sequence to assign.
    std::uint64_t dead_records = 0;  ///< Ack records since last compaction.
  };

  std::shared_ptr<QueueEntry> find_queue(const std::string& name) const;
  /// Spools (if persistent + durable) then enqueues; handles the spool
  /// ack for a message dropped by drop-head overflow.
  void spool_publish(QueueEntry& entry, Message message);
  /// Logs an ack record for `spool_seq` (no-op for 0 / non-durable) and
  /// compacts once the dead prefix passes the queue's threshold.
  void spool_ack(QueueEntry& entry, std::uint64_t spool_seq);
  void spool_ack_locked(QueueEntry& entry, std::uint64_t spool_seq);
  void compact_locked(QueueEntry& entry);
  void spool_recover(QueueEntry& entry);
  /// Routes a message that exhausted max_redeliveries to its queue's
  /// declared dead-letter queue (counted drop when none exists).
  void dead_letter(QueueEntry& source, Message message);

  mutable std::mutex mutex_;
  std::condition_variable message_ready_;
  std::map<std::string, Exchange> exchanges_;
  std::map<std::string, std::shared_ptr<QueueEntry>> queues_;
  std::string spool_dir_;
  BrokerStats stats_;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> consumer_seq_{0};
};

}  // namespace stampede::bus
