#include "bus/topic_matcher.hpp"

#include "common/string_utils.hpp"

namespace stampede::bus {

TopicPattern::TopicPattern(std::string_view pattern) : pattern_(pattern) {
  for (const auto word : common::split(pattern, '.')) {
    words_.emplace_back(word);
    if (word == "*" || word == "#") literal_ = false;
  }
}

namespace {

// Recursive match over word arrays with '#' backtracking. Word counts are
// tiny (event names have ≤6 segments), so recursion depth is bounded.
bool match_words(const std::vector<std::string>& pat, std::size_t pi,
                 const std::vector<std::string_view>& key, std::size_t ki) {
  while (pi < pat.size()) {
    const std::string& w = pat[pi];
    if (w == "#") {
      // '#' absorbs zero or more words; try every split point.
      if (pi + 1 == pat.size()) return true;
      for (std::size_t skip = ki; skip <= key.size(); ++skip) {
        if (match_words(pat, pi + 1, key, skip)) return true;
      }
      return false;
    }
    if (ki >= key.size()) return false;
    if (w != "*" && w != key[ki]) return false;
    ++pi;
    ++ki;
  }
  return ki == key.size();
}

}  // namespace

bool TopicPattern::matches(std::string_view routing_key) const {
  if (literal_) return routing_key == pattern_;
  const auto key_words = common::split(routing_key, '.');
  return match_words(words_, 0, key_words, 0);
}

bool topic_matches(std::string_view pattern, std::string_view routing_key) {
  return TopicPattern{pattern}.matches(routing_key);
}

}  // namespace stampede::bus
