#include "bus/spool.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/errors.hpp"

namespace stampede::bus::spool {

namespace {

bool parse_seq(std::string_view text, std::uint64_t& seq) {
  if (text.empty()) return false;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, seq);
  return ec == std::errc{} && ptr == end;
}

/// Takes the next space-delimited token (no quoting) off `rest`.
std::string_view take_token(std::string_view& rest) {
  const std::size_t space = rest.find(' ');
  std::string_view token = rest.substr(0, space);
  rest.remove_prefix(space == std::string_view::npos ? rest.size()
                                                     : space + 1);
  return token;
}

}  // namespace

std::string encode_field(std::string_view value) {
  bool needs_quotes = value.empty();
  for (const char c : value) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0 || c == '=' ||
        c == '"' || c == '\\') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string{value};
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"':
      case '\\':
        out.push_back('\\');
        out.push_back(c);
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string decode_field(std::string_view& rest, bool& ok) {
  ok = true;
  std::string out;
  if (rest.empty()) return out;
  if (rest.front() == '"') {
    rest.remove_prefix(1);
    bool closed = false;
    while (!rest.empty()) {
      const char c = rest.front();
      rest.remove_prefix(1);
      if (c == '"') {
        closed = true;
        break;
      }
      if (c == '\\' && !rest.empty()) {
        const char e = rest.front();
        rest.remove_prefix(1);
        if (e == 'n') {
          out.push_back('\n');
        } else if (e == 'r') {
          out.push_back('\r');
        } else {
          out.push_back(e);
        }
      } else {
        out.push_back(c);
      }
    }
    ok = closed;  // An unterminated quote is a torn record.
  } else {
    while (!rest.empty() && rest.front() != ' ') {
      out.push_back(rest.front());
      rest.remove_prefix(1);
    }
  }
  if (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  return out;
}

std::string encode_message(std::uint64_t seq, std::string_view routing_key,
                           std::string_view body, std::string_view traceparent,
                           double published_wall) {
  std::string out = "M ";
  out += std::to_string(seq);
  out.push_back(' ');
  out += encode_field(routing_key);
  out.push_back(' ');
  out += encode_field(body);
  if (!traceparent.empty()) {
    out.push_back(' ');
    out += encode_field(traceparent);
    out.push_back(' ');
    char wall[32];
    std::snprintf(wall, sizeof wall, "%.6f", published_wall);
    out += wall;
  }
  return out;
}

std::string encode_ack(std::uint64_t seq) {
  return "A " + std::to_string(seq);
}

Record decode_record(std::string_view line) {
  std::string_view rest{line};
  const std::string_view marker = take_token(rest);
  if (marker == "A") {
    AckRecord ack;
    if (!parse_seq(take_token(rest), ack.seq)) {
      return RecordError{"bad ack sequence"};
    }
    return ack;
  }
  if (marker == "M") {
    MessageRecord msg;
    if (!parse_seq(take_token(rest), msg.seq)) {
      return RecordError{"bad message sequence"};
    }
    if (rest.empty()) return RecordError{"missing routing key"};
    bool ok = true;
    msg.routing_key = decode_field(rest, ok);
    if (!ok) return RecordError{"torn routing key"};
    msg.body = decode_field(rest, ok);
    if (!ok) return RecordError{"torn body"};
    if (!rest.empty()) {
      // Optional trace fields (traced publishes only).
      msg.traceparent = decode_field(rest, ok);
      if (!ok) return RecordError{"torn traceparent"};
      const std::string_view wall = take_token(rest);
      char* end = nullptr;
      std::string wall_text{wall};
      msg.published_wall = std::strtod(wall_text.c_str(), &end);
      if (end == wall_text.c_str() || *end != '\0') {
        return RecordError{"bad publish wall time"};
      }
    }
    return msg;
  }
  return RecordError{"unknown record marker"};
}

RecoverResult recover_file(const std::string& path) {
  RecoverResult result;
  std::ifstream in{path};
  if (!in) return result;

  std::string line;
  if (!std::getline(in, line)) return result;

  // Map rather than sorted vector: acks arrive in ack order, not
  // publish order, and compaction means seqs are sparse.
  std::vector<MessageRecord> live;
  auto erase_seq = [&live](std::uint64_t seq) {
    for (auto it = live.begin(); it != live.end(); ++it) {
      if (it->seq == seq) {
        live.erase(it);
        return;
      }
    }
  };

  if (line != kHeader) {
    // Legacy v1: every line is `<key> <body>`, all live, no acks.
    result.legacy = true;
    do {
      if (line.empty()) continue;
      std::string_view rest{line};
      bool ok = true;
      MessageRecord msg;
      msg.routing_key = decode_field(rest, ok);
      if (ok) msg.body = decode_field(rest, ok);
      if (!ok || msg.routing_key.empty()) {
        ++result.truncated;  // v1 had no recovery test; tolerate the tail.
        continue;
      }
      msg.seq = result.next_seq++;
      ++result.messages;
      live.push_back(std::move(msg));
    } while (std::getline(in, line));
    result.live = std::move(live);
    return result;
  }

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Record record = decode_record(line);
    if (auto* err = std::get_if<RecordError>(&record)) {
      // Torn trailing record (crash mid-append) is tolerated; anything
      // followed by a valid record is real corruption.
      bool more = false;
      std::string next;
      while (std::getline(in, next)) {
        if (!next.empty()) {
          more = true;
          break;
        }
      }
      if (more) {
        throw common::BusError("spool " + path + ": corrupt record (" +
                               err->reason + ") before end of file");
      }
      ++result.truncated;
      std::fprintf(stderr,
                   "stampede-bus: spool %s: discarded truncated trailing "
                   "record (%s)\n",
                   path.c_str(), err->reason.c_str());
      break;
    }
    if (auto* msg = std::get_if<MessageRecord>(&record)) {
      ++result.messages;
      if (msg->seq >= result.next_seq) result.next_seq = msg->seq + 1;
      live.push_back(std::move(*msg));
    } else {
      const auto& ack = std::get<AckRecord>(record);
      ++result.acks;
      if (ack.seq >= result.next_seq) result.next_seq = ack.seq + 1;
      erase_seq(ack.seq);
    }
  }
  result.live = std::move(live);
  return result;
}

void rewrite_file(const std::string& path,
                  const std::vector<MessageRecord>& live) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc};
    if (!out) return;  // Spool loss degrades durability, not availability.
    out << kHeader << '\n';
    for (const auto& msg : live) {
      out << encode_message(msg.seq, msg.routing_key, msg.body,
                            msg.traceparent, msg.published_wall)
          << '\n';
    }
    out.flush();
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
}

}  // namespace stampede::bus::spool
