#pragma once
// Durable-queue spool format v2 (DESIGN.md "Delivery guarantees").
//
// A spool is an append-only text file, one record per line:
//
//   stampede-spool v2          -- header, first line
//   M <seq> <key> <body>       -- a persistent message, fields escaped
//   M <seq> <key> <body> <traceparent> <wall>
//                              -- same, from a traced publish: the
//                                 message's trace context and anchored
//                                 publish wall time, so redeliveries
//                                 after a broker restart keep their
//                                 trace (DESIGN.md §11)
//   A <seq>                    -- acknowledgment of message <seq>
//
// Sequence numbers are per-queue, strictly increasing and never reused,
// so recovery replays exactly the M records without a matching A — the
// unacked suffix of the queue's history, not the whole history. The
// broker compacts the file (rewrites it with only live messages) when
// the acked prefix grows past QueueOptions::spool_compact_threshold.
//
// Field escaping is nl::escape_value's quoting extended with \n / \r
// escapes so bodies containing newlines stay one physical line; for
// newline-free values the encoding is byte-identical to
// nl::escape_value (test_properties holds that equivalence).
//
// Legacy v1 files (no header; lines of `<key> <body>`) are recovered as
// all-live messages and rewritten as v2 on the spot.

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace stampede::bus::spool {

inline constexpr std::string_view kHeader = "stampede-spool v2";

struct MessageRecord {
  std::uint64_t seq = 0;
  std::string routing_key;
  std::string body;
  // Optional trailing trace fields; empty/zero on untraced messages and
  // on records written before distributed tracing existed.
  std::string traceparent;
  double published_wall = 0.0;
};

struct AckRecord {
  std::uint64_t seq = 0;
};

struct RecordError {
  std::string reason;
};

using Record = std::variant<MessageRecord, AckRecord, RecordError>;

/// Escapes one field for a spool record: nl::escape_value quoting plus
/// \n / \r escapes (line-safe for any input).
[[nodiscard]] std::string encode_field(std::string_view value);

/// Inverse of encode_field over one field of `rest`; consumes the field
/// and its trailing separator space. Sets `ok` false on an unterminated
/// quote (a torn record).
[[nodiscard]] std::string decode_field(std::string_view& rest, bool& ok);

/// The trace fields are appended only when `traceparent` is non-empty,
/// so untraced messages encode byte-identically to earlier releases.
[[nodiscard]] std::string encode_message(std::uint64_t seq,
                                         std::string_view routing_key,
                                         std::string_view body,
                                         std::string_view traceparent = {},
                                         double published_wall = 0.0);
[[nodiscard]] std::string encode_ack(std::uint64_t seq);

/// Decodes one spool line. RecordError for anything malformed (unknown
/// marker, bad sequence number, unterminated quote, missing fields).
[[nodiscard]] Record decode_record(std::string_view line);

struct RecoverResult {
  std::vector<MessageRecord> live;  ///< Unacked messages, ascending seq.
  std::uint64_t next_seq = 1;       ///< First unused sequence number.
  std::uint64_t messages = 0;       ///< M records read.
  std::uint64_t acks = 0;           ///< A records read.
  std::uint64_t truncated = 0;      ///< Torn trailing records discarded.
  bool legacy = false;              ///< v1 file (caller should rewrite).
};

/// Reads a spool file. A malformed *final* record — the torn line a
/// crash mid-append leaves behind — is discarded and counted, mirroring
/// WAL recovery; a malformed record followed by valid ones throws
/// common::BusError. A missing file recovers as empty.
[[nodiscard]] RecoverResult recover_file(const std::string& path);

/// Atomically rewrites `path` as a v2 spool holding exactly `live`
/// (write to `<path>.tmp`, then rename over).
void rewrite_file(const std::string& path,
                  const std::vector<MessageRecord>& live);

}  // namespace stampede::bus::spool
