#pragma once
// Bridges NetLogger records onto the message bus.
//
// This is the transport half of the "Rabbit Appender" from paper §V-C:
// each LogRecord is formatted as a BP line and published to an exchange
// with the event name as the routing key, so consumers can topic-filter
// ("stampede.job.#"). Engines own one of these per run.

#include <string>

#include "bus/ibus.hpp"
#include "netlogger/formatter.hpp"
#include "netlogger/record.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace stampede::bus {

/// Routing-key prefix of the tracer's own span events (DESIGN.md §11).
/// Messages under it are never traced — the self-amplification guard
/// that keeps span re-publication from spawning spans about spans.
inline constexpr std::string_view kTraceEventPrefix = "stampede.trace.";

[[nodiscard]] inline bool is_trace_event(std::string_view routing_key) {
  return routing_key.substr(0, kTraceEventPrefix.size()) == kTraceEventPrefix;
}

class BpPublisher {
 public:
  /// Publishes to `exchange` on `bus` (a topic exchange is declared if
  /// absent) — any IBus transport: the in-process Broker or a
  /// net::BusClient. `persistent` marks messages for durable-queue
  /// spooling.
  BpPublisher(IBus& bus, std::string exchange, bool persistent = false)
      : broker_(&bus),
        exchange_(std::move(exchange)),
        persistent_(persistent) {
    broker_->declare_exchange(exchange_, ExchangeType::kTopic);
  }

  /// Formats and publishes one record; returns queues reached. The
  /// publish-side trace stamp starts the end-to-end latency clock, and —
  /// when the head-sampling decision says yes — a new trace roots here:
  /// the context rides on the message (and as a `traceparent` header for
  /// peers without the TRACE wire field), and a local "bus.publish" span
  /// measures the publish call itself.
  std::size_t publish(const nl::LogRecord& record) {
    Message message;
    message.routing_key = record.event();
    message.body = nl::format_record(record);
    message.published_at = record.ts();
    message.persistent = persistent_;
    message.trace_published = telemetry::trace_now();
    ++published_;
    if (!is_trace_event(message.routing_key)) {
      auto& tracer = telemetry::Tracer::instance();
      message.trace_ctx = tracer.start_trace();
      if (message.trace_ctx.valid()) {
        message.trace_published_wall =
            tracer.wall_at(message.trace_published);
        message.headers["traceparent"] = message.trace_ctx.to_traceparent();
        telemetry::SpanGuard span{"bus.publish", message.trace_ctx};
        span.attr("routing_key", message.routing_key);
        return broker_->publish(exchange_, std::move(message));
      }
    }
    return broker_->publish(exchange_, std::move(message));
  }

  [[nodiscard]] std::uint64_t published() const noexcept { return published_; }
  [[nodiscard]] const std::string& exchange() const noexcept {
    return exchange_;
  }

 private:
  IBus* broker_;
  std::string exchange_;
  bool persistent_;
  std::uint64_t published_ = 0;
};

}  // namespace stampede::bus
