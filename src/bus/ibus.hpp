#pragma once
// Transport-agnostic bus surface (DESIGN.md "Network substrate").
//
// The AMQP operations Stampede's producers and consumers actually use,
// abstracted from the transport: bus::Broker implements it in-process,
// net::BusClient implements it over the TCP wire protocol. BpPublisher,
// QueuePump and the loaders program against this interface, so the same
// pipeline runs single-process or distributed across machines without
// code changes — the paper's deployment shape (§IV-C), where producers
// on remote worker nodes publish to a central broker and nl_load
// consumes over the network.
//
// Not part of the interface: push-mode subscribe (Subscription owns a
// broker-side thread; remote consumers get pipelined deliveries through
// basic_get's prefetch instead), queue deletion and topology listing
// (administrative, broker-local).

#include <cstdint>
#include <optional>
#include <string>

#include "bus/message.hpp"
#include "bus/queue.hpp"

namespace stampede::bus {

enum class ExchangeType { kDirect, kFanout, kTopic };

class IBus {
 public:
  virtual ~IBus() = default;

  /// Declares (or re-declares, idempotently) an exchange. Redeclaring
  /// with a different type throws common::BusError.
  virtual void declare_exchange(const std::string& name,
                                ExchangeType type) = 0;

  /// Declares a queue (idempotent); redeclaring with different options
  /// throws common::BusError.
  virtual void declare_queue(const std::string& name,
                             QueueOptions options = {}) = 0;

  /// Binds `queue` to `exchange` with a (possibly wildcarded) key.
  virtual void bind(const std::string& queue, const std::string& exchange,
                    const std::string& binding_key) = 0;

  /// Routes a message through `exchange`. Returns the number of queues
  /// that accepted it; a networked implementation may not know the
  /// routed count and reports 1 for "handed to the transport".
  virtual std::size_t publish(const std::string& exchange,
                              Message message) = 0;

  /// Pull-mode get. Blocks up to `timeout_ms` (0 = poll) for a ready
  /// message; nullopt on timeout.
  [[nodiscard]] virtual std::optional<Delivery> basic_get(
      const std::string& queue, const std::string& consumer_tag,
      int timeout_ms = 0) = 0;

  virtual bool ack(const std::string& queue, std::uint64_t delivery_tag) = 0;
  virtual bool nack(const std::string& queue, std::uint64_t delivery_tag,
                    bool requeue) = 0;

  [[nodiscard]] virtual QueueStats queue_stats(
      const std::string& queue) const = 0;
};

}  // namespace stampede::bus
