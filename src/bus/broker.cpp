#include "bus/broker.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>

#include "common/errors.hpp"
#include "netlogger/parser.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::bus {

using common::BusError;

namespace {

/// Broker-wide instruments, resolved once per process (the broker is a
/// hot path: one publish per monitoring event in the whole system).
struct BusTelemetry {
  telemetry::Counter& published =
      telemetry::registry().counter("stampede_bus_published_total");
  telemetry::Counter& routed =
      telemetry::registry().counter("stampede_bus_routed_total");
  telemetry::Counter& unroutable =
      telemetry::registry().counter("stampede_bus_unroutable_total");
  telemetry::Histogram& routing_latency = telemetry::registry().histogram(
      "stampede_bus_routing_latency_seconds", {1e-7, 2.0, 32});
};

BusTelemetry& bus_telemetry() {
  static BusTelemetry instance;
  return instance;
}

}  // namespace

// ---------------------------------------------------------------------------
// Subscription

struct Subscription::Impl {
  std::jthread worker;
};

Subscription::Subscription() = default;
Subscription::Subscription(Subscription&&) noexcept = default;

Subscription& Subscription::operator=(Subscription&& other) noexcept {
  if (this != &other) {
    cancel();
    impl_ = std::move(other.impl_);
  }
  return *this;
}

Subscription::~Subscription() { cancel(); }

void Subscription::cancel() {
  if (impl_ && impl_->worker.joinable()) {
    impl_->worker.request_stop();
    impl_->worker.join();
  }
  impl_.reset();
}

// ---------------------------------------------------------------------------
// Broker

Broker::Broker(std::string spool_dir) : spool_dir_(std::move(spool_dir)) {
  // The AMQP default exchange: direct, routes by queue name.
  exchanges_.emplace("", Exchange{ExchangeType::kDirect, {}});
  if (!spool_dir_.empty()) {
    std::filesystem::create_directories(spool_dir_);
  }
}

Broker::~Broker() { close(); }

void Broker::close() {
  closed_.store(true);
  message_ready_.notify_all();
}

void Broker::declare_exchange(const std::string& name, ExchangeType type) {
  const std::scoped_lock lock{mutex_};
  const auto it = exchanges_.find(name);
  if (it != exchanges_.end()) {
    if (it->second.type != type) {
      throw BusError("exchange '" + name + "' redeclared with another type");
    }
    return;
  }
  exchanges_.emplace(name, Exchange{type, {}});
}

void Broker::declare_queue(const std::string& name, QueueOptions options) {
  std::shared_ptr<QueueEntry> entry;
  {
    const std::scoped_lock lock{mutex_};
    const auto it = queues_.find(name);
    if (it != queues_.end()) {
      const QueueOptions& existing = it->second->queue.options();
      if (existing.durable != options.durable ||
          existing.auto_delete != options.auto_delete ||
          existing.max_length != options.max_length) {
        throw BusError("queue '" + name + "' redeclared with other options");
      }
      return;
    }
    entry = std::make_shared<QueueEntry>(name, options);
    if (options.durable && !spool_dir_.empty()) {
      entry->spool_path = spool_dir_ + "/" + name + ".spool";
    }
    queues_.emplace(name, entry);
    // Default-exchange binding under the queue's own name.
    exchanges_[""].bindings.push_back({name, TopicPattern{name}});
  }
  if (!entry->spool_path.empty()) {
    spool_recover(*entry);
  }
}

void Broker::delete_queue(const std::string& name) {
  const std::scoped_lock lock{mutex_};
  queues_.erase(name);
  for (auto& [ename, exchange] : exchanges_) {
    auto& b = exchange.bindings;
    std::erase_if(b, [&](const auto& binding) { return binding.queue == name; });
  }
}

void Broker::bind(const std::string& queue, const std::string& exchange,
                  const std::string& binding_key) {
  const std::scoped_lock lock{mutex_};
  if (queues_.find(queue) == queues_.end()) {
    throw BusError("bind: unknown queue '" + queue + "'");
  }
  const auto it = exchanges_.find(exchange);
  if (it == exchanges_.end()) {
    throw BusError("bind: unknown exchange '" + exchange + "'");
  }
  it->second.bindings.push_back({queue, TopicPattern{binding_key}});
}

bool Broker::has_queue(const std::string& name) const {
  const std::scoped_lock lock{mutex_};
  return queues_.find(name) != queues_.end();
}

std::vector<std::string> Broker::queue_names() const {
  const std::scoped_lock lock{mutex_};
  std::vector<std::string> names;
  names.reserve(queues_.size());
  for (const auto& [name, entry] : queues_) names.push_back(name);
  return names;
}

std::size_t Broker::publish(const std::string& exchange, Message message) {
  if (closed_.load()) return 0;
  auto& tele = bus_telemetry();
  const double route_start = telemetry::trace_now();
  std::vector<std::shared_ptr<QueueEntry>> targets;
  {
    const std::scoped_lock lock{mutex_};
    const auto it = exchanges_.find(exchange);
    if (it == exchanges_.end()) {
      throw BusError("publish: unknown exchange '" + exchange + "'");
    }
    ++stats_.published;
    tele.published.inc();
    for (const auto& binding : it->second.bindings) {
      const bool hit = it->second.type == ExchangeType::kFanout ||
                       (it->second.type == ExchangeType::kDirect
                            ? binding.pattern.pattern() == message.routing_key
                            : binding.pattern.matches(message.routing_key));
      if (!hit) continue;
      const auto qit = queues_.find(binding.queue);
      if (qit != queues_.end()) targets.push_back(qit->second);
    }
    if (targets.empty()) {
      ++stats_.unroutable;
      tele.unroutable.inc();
    } else {
      stats_.routed += targets.size();
      tele.routed.inc(targets.size());
    }
  }
  // Enqueue outside the broker lock: BrokerQueue has its own mutex and
  // spooling does file I/O (CP.43 — keep critical sections small).
  message.trace_enqueued = route_start > 0.0 ? telemetry::now() : 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    auto& entry = *targets[i];
    const bool last = i + 1 == targets.size();
    if (message.persistent && !entry.spool_path.empty()) {
      spool_append(entry, message);
    }
    entry.queue.enqueue(last ? std::move(message) : message);
  }
  if (route_start > 0.0) {
    tele.routing_latency.observe(telemetry::now() - route_start);
  }
  if (!targets.empty()) {
    message_ready_.notify_all();
  }
  return targets.size();
}

std::shared_ptr<Broker::QueueEntry> Broker::find_queue(
    const std::string& name) const {
  const std::scoped_lock lock{mutex_};
  const auto it = queues_.find(name);
  return it == queues_.end() ? nullptr : it->second;
}

std::optional<Delivery> Broker::basic_get(const std::string& queue,
                                          const std::string& consumer_tag,
                                          int timeout_ms) {
  const auto entry = find_queue(queue);
  if (!entry) return std::nullopt;
  if (auto delivery = entry->queue.deliver(consumer_tag, "")) return delivery;
  if (timeout_ms <= 0) return std::nullopt;

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::unique_lock lock{mutex_};
  while (!closed_.load()) {
    if (message_ready_.wait_until(lock, deadline) ==
        std::cv_status::timeout) {
      break;
    }
    lock.unlock();
    if (auto delivery = entry->queue.deliver(consumer_tag, "")) {
      return delivery;
    }
    lock.lock();
    if (std::chrono::steady_clock::now() >= deadline) break;
  }
  lock.unlock();
  return entry->queue.deliver(consumer_tag, "");
}

bool Broker::ack(const std::string& queue, std::uint64_t delivery_tag) {
  const auto entry = find_queue(queue);
  return entry && entry->queue.ack(delivery_tag);
}

bool Broker::nack(const std::string& queue, std::uint64_t delivery_tag,
                  bool requeue) {
  const auto entry = find_queue(queue);
  if (!entry) return false;
  const bool ok = entry->queue.nack(delivery_tag, requeue);
  if (ok && requeue) message_ready_.notify_all();
  return ok;
}

Subscription Broker::subscribe(const std::string& queue,
                               Subscription::Handler handler,
                               const std::string& consumer_tag) {
  const std::string tag =
      consumer_tag.empty()
          ? "ctag-" + std::to_string(consumer_seq_.fetch_add(1) + 1)
          : consumer_tag;
  Subscription subscription;
  subscription.impl_ = std::make_unique<Subscription::Impl>();
  subscription.impl_->worker = std::jthread(
      [this, queue, tag, handler = std::move(handler)](std::stop_token stop) {
        while (!stop.stop_requested()) {
          auto delivery = basic_get(queue, tag, /*timeout_ms=*/50);
          if (!delivery) continue;
          bool ok = false;
          try {
            ok = handler(*delivery);
          } catch (...) {
            ok = false;  // A throwing handler must not kill the pump.
          }
          if (ok) {
            ack(queue, delivery->delivery_tag);
          } else {
            nack(queue, delivery->delivery_tag, /*requeue=*/true);
          }
        }
        const auto entry = find_queue(queue);
        if (entry) entry->queue.requeue_consumer(tag);
      });
  return subscription;
}

QueueStats Broker::queue_stats(const std::string& queue) const {
  const auto entry = find_queue(queue);
  if (!entry) throw BusError("queue_stats: unknown queue '" + queue + "'");
  return entry->queue.stats();
}

BrokerStats Broker::stats() const {
  const std::scoped_lock lock{mutex_};
  return stats_;
}

void Broker::spool_append(QueueEntry& entry, const Message& message) {
  // One line per message: routing_key then the body, BP-escaped so the
  // line is unambiguous to split on recovery.
  std::ofstream out{entry.spool_path, std::ios::app};
  if (!out) return;  // Spool loss degrades durability, not availability.
  out << nl::escape_value(message.routing_key) << ' '
      << nl::escape_value(message.body) << '\n';
}

void Broker::spool_recover(QueueEntry& entry) {
  std::ifstream in{entry.spool_path};
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    // Reuse the BP tokenizer by parsing "k=v"-shaped synthetic pairs is
    // overkill; the two fields are escape_value-encoded, so split on the
    // first unquoted space.
    std::string_view rest{line};
    auto take_field = [&rest]() -> std::string {
      std::string out;
      if (rest.empty()) return out;
      if (rest.front() == '"') {
        rest.remove_prefix(1);
        while (!rest.empty() && rest.front() != '"') {
          if (rest.front() == '\\' && rest.size() > 1) rest.remove_prefix(1);
          out.push_back(rest.front());
          rest.remove_prefix(1);
        }
        if (!rest.empty()) rest.remove_prefix(1);  // closing quote
      } else {
        while (!rest.empty() && rest.front() != ' ') {
          out.push_back(rest.front());
          rest.remove_prefix(1);
        }
      }
      if (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
      return out;
    };
    Message message;
    message.routing_key = take_field();
    message.body = take_field();
    message.persistent = true;
    if (!message.routing_key.empty()) {
      entry.queue.enqueue(std::move(message));
    }
  }
}

}  // namespace stampede::bus
