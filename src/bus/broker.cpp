#include "bus/broker.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "bus/spool.hpp"
#include "common/errors.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace stampede::bus {

using common::BusError;

namespace {

/// Broker-wide instruments, resolved once per process (the broker is a
/// hot path: one publish per monitoring event in the whole system).
struct BusTelemetry {
  telemetry::Counter& published =
      telemetry::registry().counter("stampede_bus_published_total");
  telemetry::Counter& routed =
      telemetry::registry().counter("stampede_bus_routed_total");
  telemetry::Counter& unroutable =
      telemetry::registry().counter("stampede_bus_unroutable_total");
  telemetry::Counter& spool_compactions =
      telemetry::registry().counter("stampede_bus_spool_compactions_total");
  telemetry::Counter& dead_lettered =
      telemetry::registry().counter("stampede_bus_dead_lettered_total");
  telemetry::Counter& spool_truncated = telemetry::registry().counter(
      "stampede_bus_spool_truncated_records_total");
  telemetry::Histogram& routing_latency = telemetry::registry().histogram(
      "stampede_bus_routing_latency_seconds", {1e-7, 2.0, 32});
};

BusTelemetry& bus_telemetry() {
  static BusTelemetry instance;
  return instance;
}

// Subscribe-pump retry backoff: doubles per redelivery from the base,
// capped, so a poison message retries at a falling rate instead of the
// raw 20 Hz basic_get loop until it dead-letters.
constexpr std::chrono::milliseconds kRetryBackoffBase{10};
constexpr std::chrono::milliseconds kRetryBackoffMax{500};

/// The spool record for a live message, trace fields included so
/// compaction/recovery rewrites keep redeliveries on their trace.
spool::MessageRecord spool_record(const Message& msg) {
  spool::MessageRecord rec;
  rec.seq = msg.spool_seq;
  rec.routing_key = msg.routing_key;
  rec.body = msg.body;
  if (msg.trace_ctx.valid()) {
    rec.traceparent = msg.trace_ctx.to_traceparent();
    rec.published_wall = msg.trace_published_wall;
  }
  return rec;
}

}  // namespace

// ---------------------------------------------------------------------------
// Subscription

struct Subscription::Impl {
  std::jthread worker;
};

Subscription::Subscription() = default;
Subscription::Subscription(Subscription&&) noexcept = default;

Subscription& Subscription::operator=(Subscription&& other) noexcept {
  if (this != &other) {
    cancel();
    impl_ = std::move(other.impl_);
  }
  return *this;
}

Subscription::~Subscription() { cancel(); }

void Subscription::cancel() {
  if (impl_ && impl_->worker.joinable()) {
    impl_->worker.request_stop();
    impl_->worker.join();
  }
  impl_.reset();
}

// ---------------------------------------------------------------------------
// Broker

Broker::Broker(std::string spool_dir) : spool_dir_(std::move(spool_dir)) {
  // The AMQP default exchange: direct, routes by queue name.
  exchanges_.emplace("", Exchange{ExchangeType::kDirect, {}});
  if (!spool_dir_.empty()) {
    std::filesystem::create_directories(spool_dir_);
  }
}

Broker::~Broker() { close(); }

void Broker::close() {
  // closed_ is set and the wakeup broadcast under mutex_ so a consumer
  // that saw closed_ == false under the lock is already parked on the
  // condition variable when the notify lands (see locking discipline in
  // broker.hpp).
  const std::scoped_lock lock{mutex_};
  closed_.store(true);
  message_ready_.notify_all();
}

void Broker::declare_exchange(const std::string& name, ExchangeType type) {
  const std::scoped_lock lock{mutex_};
  const auto it = exchanges_.find(name);
  if (it != exchanges_.end()) {
    if (it->second.type != type) {
      throw BusError("exchange '" + name + "' redeclared with another type");
    }
    return;
  }
  exchanges_.emplace(name, Exchange{type, {}});
}

void Broker::declare_queue(const std::string& name, QueueOptions options) {
  std::shared_ptr<QueueEntry> entry;
  {
    const std::scoped_lock lock{mutex_};
    const auto it = queues_.find(name);
    if (it != queues_.end()) {
      const QueueOptions& existing = it->second->queue.options();
      if (existing.durable != options.durable ||
          existing.auto_delete != options.auto_delete ||
          existing.max_length != options.max_length ||
          existing.max_redeliveries != options.max_redeliveries ||
          existing.dead_letter_queue != options.dead_letter_queue ||
          existing.spool_compact_threshold != options.spool_compact_threshold) {
        throw BusError("queue '" + name + "' redeclared with other options");
      }
      return;
    }
    entry = std::make_shared<QueueEntry>(name, options);
    if (options.durable && !spool_dir_.empty()) {
      entry->spool_path = spool_dir_ + "/" + name + ".spool";
    }
    queues_.emplace(name, entry);
    // Default-exchange binding under the queue's own name.
    exchanges_[""].bindings.push_back({name, TopicPattern{name}});
  }
  if (!entry->spool_path.empty()) {
    spool_recover(*entry);
    if (!entry->queue.empty()) {
      const std::scoped_lock lock{mutex_};
      message_ready_.notify_all();
    }
  }
}

void Broker::delete_queue(const std::string& name) {
  std::shared_ptr<QueueEntry> entry;
  {
    const std::scoped_lock lock{mutex_};
    const auto it = queues_.find(name);
    if (it != queues_.end()) {
      entry = it->second;
      queues_.erase(it);
    }
    for (auto& [ename, exchange] : exchanges_) {
      auto& b = exchange.bindings;
      std::erase_if(b,
                    [&](const auto& binding) { return binding.queue == name; });
    }
  }
  if (entry && !entry->spool_path.empty()) {
    const std::scoped_lock slock{entry->spool_mutex};
    entry->spool_out.close();
    std::error_code ec;
    std::filesystem::remove(entry->spool_path, ec);
  }
}

void Broker::bind(const std::string& queue, const std::string& exchange,
                  const std::string& binding_key) {
  const std::scoped_lock lock{mutex_};
  if (queues_.find(queue) == queues_.end()) {
    throw BusError("bind: unknown queue '" + queue + "'");
  }
  const auto it = exchanges_.find(exchange);
  if (it == exchanges_.end()) {
    throw BusError("bind: unknown exchange '" + exchange + "'");
  }
  // Identical bindings are idempotent (AMQP queue.bind semantics) —
  // producer and consumer processes can both assert the topology
  // without doubling every delivery.
  for (const auto& binding : it->second.bindings) {
    if (binding.queue == queue && binding.pattern.pattern() == binding_key) {
      return;
    }
  }
  it->second.bindings.push_back({queue, TopicPattern{binding_key}});
}

bool Broker::has_queue(const std::string& name) const {
  const std::scoped_lock lock{mutex_};
  return queues_.find(name) != queues_.end();
}

std::vector<std::string> Broker::queue_names() const {
  const std::scoped_lock lock{mutex_};
  std::vector<std::string> names;
  names.reserve(queues_.size());
  for (const auto& [name, entry] : queues_) names.push_back(name);
  return names;
}

std::size_t Broker::publish(const std::string& exchange, Message message) {
  if (closed_.load()) return 0;
  // A message from a peer without the TRACE wire field still carries its
  // context as a `traceparent` header — restore it so spool records and
  // downstream spans keep the trace.
  if (!message.trace_ctx.valid() && !message.headers.empty()) {
    const auto tp = message.headers.find("traceparent");
    if (tp != message.headers.end()) {
      (void)telemetry::TraceContext::from_traceparent(tp->second,
                                                      &message.trace_ctx);
    }
  }
  auto& tele = bus_telemetry();
  const double route_start = telemetry::trace_now();
  std::vector<std::shared_ptr<QueueEntry>> targets;
  {
    const std::scoped_lock lock{mutex_};
    const auto it = exchanges_.find(exchange);
    if (it == exchanges_.end()) {
      throw BusError("publish: unknown exchange '" + exchange + "'");
    }
    ++stats_.published;
    tele.published.inc();
    for (const auto& binding : it->second.bindings) {
      const bool hit = it->second.type == ExchangeType::kFanout ||
                       (it->second.type == ExchangeType::kDirect
                            ? binding.pattern.pattern() == message.routing_key
                            : binding.pattern.matches(message.routing_key));
      if (!hit) continue;
      const auto qit = queues_.find(binding.queue);
      if (qit != queues_.end()) targets.push_back(qit->second);
    }
    if (targets.empty()) {
      ++stats_.unroutable;
      tele.unroutable.inc();
    } else {
      stats_.routed += targets.size();
      tele.routed.inc(targets.size());
    }
  }
  // Enqueue outside the broker lock: BrokerQueue has its own mutex and
  // spooling does file I/O (CP.43 — keep critical sections small).
  message.trace_enqueued = route_start > 0.0 ? telemetry::now() : 0.0;
  if (message.trace_ctx.valid() && message.trace_enqueued > 0.0) {
    message.trace_enqueued_wall =
        telemetry::Tracer::instance().wall_at(message.trace_enqueued);
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const bool last = i + 1 == targets.size();
    spool_publish(*targets[i], last ? std::move(message) : message);
  }
  if (route_start > 0.0) {
    tele.routing_latency.observe(telemetry::now() - route_start);
  }
  if (!targets.empty()) {
    const std::scoped_lock lock{mutex_};
    message_ready_.notify_all();
  }
  return targets.size();
}

std::shared_ptr<Broker::QueueEntry> Broker::find_queue(
    const std::string& name) const {
  const std::scoped_lock lock{mutex_};
  const auto it = queues_.find(name);
  return it == queues_.end() ? nullptr : it->second;
}

std::optional<Delivery> Broker::basic_get(const std::string& queue,
                                          const std::string& consumer_tag,
                                          int timeout_ms) {
  const auto entry = find_queue(queue);
  if (!entry) return std::nullopt;
  // Optimistic lock-free try first: the common case under load is a
  // non-empty queue, which never needs mutex_ at all.
  if (auto delivery = entry->queue.deliver(consumer_tag, "")) return delivery;
  if (timeout_ms <= 0) return std::nullopt;

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::unique_lock lock{mutex_};
  while (true) {
    // Recheck under mutex_ before every wait (including the first): a
    // publish that landed between the optimistic miss above and this
    // lock either enqueued before this deliver() or will notify after
    // we park — notify_all is only called with mutex_ held.
    if (auto delivery = entry->queue.deliver(consumer_tag, "")) {
      return delivery;
    }
    if (closed_.load()) return std::nullopt;
    if (message_ready_.wait_until(lock, deadline) ==
        std::cv_status::timeout) {
      break;
    }
  }
  lock.unlock();
  return entry->queue.deliver(consumer_tag, "");
}

bool Broker::ack(const std::string& queue, std::uint64_t delivery_tag) {
  const auto entry = find_queue(queue);
  if (!entry) return false;
  const auto spool_seq = entry->queue.ack(delivery_tag);
  if (!spool_seq) return false;
  if (*spool_seq != 0) spool_ack(*entry, *spool_seq);
  return true;
}

bool Broker::nack(const std::string& queue, std::uint64_t delivery_tag,
                  bool requeue) {
  const auto entry = find_queue(queue);
  if (!entry) return false;
  NackResult result = entry->queue.nack(delivery_tag, requeue);
  if (!result.ok) return false;
  // A message that permanently left this queue (discarded or about to
  // be dead-lettered) is acked in the spool so it cannot resurrect on
  // recovery.
  if (result.removed_spool_seq != 0) {
    spool_ack(*entry, result.removed_spool_seq);
  }
  if (result.dead_letter) {
    dead_letter(*entry, std::move(*result.dead_letter));
  }
  if (result.requeued) {
    const std::scoped_lock lock{mutex_};
    message_ready_.notify_all();
  }
  return true;
}

void Broker::dead_letter(QueueEntry& source, Message message) {
  bus_telemetry().dead_lettered.inc();
  message.headers["x-death-queue"] = source.queue.name();
  message.headers["x-death-reason"] = "max_redeliveries";
  message.headers["x-death-count"] = std::to_string(message.redeliveries + 1);
  // The message starts a fresh life on the dead-letter queue.
  message.spool_seq = 0;
  message.redeliveries = 0;
  message.replayed = false;
  const std::string& dlq = source.queue.options().dead_letter_queue;
  const auto target = dlq.empty() ? nullptr : find_queue(dlq);
  if (!target) return;  // No DLQ declared: counted drop, not a crash.
  spool_publish(*target, std::move(message));
  const std::scoped_lock lock{mutex_};
  message_ready_.notify_all();
}

Subscription Broker::subscribe(const std::string& queue,
                               Subscription::Handler handler,
                               const std::string& consumer_tag) {
  const std::string tag =
      consumer_tag.empty()
          ? "ctag-" + std::to_string(consumer_seq_.fetch_add(1) + 1)
          : consumer_tag;
  Subscription subscription;
  subscription.impl_ = std::make_unique<Subscription::Impl>();
  subscription.impl_->worker = std::jthread(
      [this, queue, tag, handler = std::move(handler)](std::stop_token stop) {
        using std::chrono::milliseconds;
        using std::chrono::steady_clock;
        const auto stop_aware_sleep = [&stop](milliseconds total) {
          const auto deadline = steady_clock::now() + total;
          while (!stop.stop_requested() &&
                 steady_clock::now() < deadline) {
            std::this_thread::sleep_for(milliseconds{2});
          }
        };
        while (!stop.stop_requested()) {
          auto delivery = basic_get(queue, tag, /*timeout_ms=*/50);
          if (!delivery) continue;
          bool ok = false;
          try {
            ok = handler(*delivery);
          } catch (...) {
            ok = false;  // A throwing handler must not kill the pump.
          }
          if (ok) {
            ack(queue, delivery->delivery_tag);
          } else {
            const std::uint32_t attempt = delivery->message().redeliveries;
            nack(queue, delivery->delivery_tag, /*requeue=*/true);
            // The nack puts the message back at the head, so without a
            // pause this loop would retry a poison message at full
            // basic_get speed until it dead-letters.
            const auto factor = std::uint64_t{1} << std::min(attempt, 16u);
            stop_aware_sleep(std::min<milliseconds>(
                kRetryBackoffMax, kRetryBackoffBase * factor));
          }
        }
        const auto entry = find_queue(queue);
        if (entry) entry->queue.requeue_consumer(tag);
      });
  return subscription;
}

QueueStats Broker::queue_stats(const std::string& queue) const {
  const auto entry = find_queue(queue);
  if (!entry) throw BusError("queue_stats: unknown queue '" + queue + "'");
  return entry->queue.stats();
}

BrokerStats Broker::stats() const {
  const std::scoped_lock lock{mutex_};
  return stats_;
}

// ---------------------------------------------------------------------------
// Spool (format: bus/spool.hpp)

void Broker::spool_publish(QueueEntry& entry, Message message) {
  if (!message.persistent || entry.spool_path.empty()) {
    const auto result = entry.queue.enqueue(std::move(message));
    if (result.dropped_spool_seq != 0) {
      spool_ack(entry, result.dropped_spool_seq);
    }
    return;
  }
  // spool_mutex spans append+enqueue so a concurrent compaction cannot
  // snapshot the queue in between and rewrite the file without this
  // message (see locking discipline in broker.hpp).
  const std::scoped_lock slock{entry.spool_mutex};
  message.spool_seq = entry.next_seq++;
  if (entry.spool_out) {
    const std::string traceparent = message.trace_ctx.valid()
                                        ? message.trace_ctx.to_traceparent()
                                        : std::string{};
    entry.spool_out << spool::encode_message(
                           message.spool_seq, message.routing_key,
                           message.body, traceparent,
                           message.trace_published_wall)
                    << '\n';
    entry.spool_out.flush();
    if (message.trace_ctx.valid()) {
      message.trace_spooled_wall = telemetry::Tracer::instance().wall_now();
    }
  }
  const auto result = entry.queue.enqueue(std::move(message));
  if (result.dropped_spool_seq != 0) {
    spool_ack_locked(entry, result.dropped_spool_seq);
  }
}

void Broker::spool_ack(QueueEntry& entry, std::uint64_t spool_seq) {
  if (entry.spool_path.empty()) return;
  const std::scoped_lock slock{entry.spool_mutex};
  spool_ack_locked(entry, spool_seq);
}

void Broker::spool_ack_locked(QueueEntry& entry, std::uint64_t spool_seq) {
  if (spool_seq == 0 || !entry.spool_out) return;
  entry.spool_out << spool::encode_ack(spool_seq) << '\n';
  entry.spool_out.flush();
  ++entry.dead_records;
  // Each ack kills one message record, so the dead prefix is roughly
  // 2 * dead_records lines; the threshold bounds the spool under
  // sustained publish/ack traffic.
  if (entry.dead_records >= entry.queue.options().spool_compact_threshold) {
    compact_locked(entry);
  }
}

void Broker::compact_locked(QueueEntry& entry) {
  const std::vector<Message> live = entry.queue.spooled_messages();
  std::vector<spool::MessageRecord> records;
  records.reserve(live.size());
  for (const auto& msg : live) {
    records.push_back(spool_record(msg));
  }
  entry.spool_out.close();
  spool::rewrite_file(entry.spool_path, records);
  entry.spool_out.open(entry.spool_path, std::ios::app);
  entry.dead_records = 0;
  bus_telemetry().spool_compactions.inc();
}

void Broker::spool_recover(QueueEntry& entry) {
  const std::scoped_lock slock{entry.spool_mutex};
  spool::RecoverResult recovered = spool::recover_file(entry.spool_path);
  entry.next_seq = recovered.next_seq;
  if (recovered.truncated > 0) {
    bus_telemetry().spool_truncated.inc(recovered.truncated);
  }
  // Replay only the unacked suffix. Replayed messages may have been
  // delivered (even fully processed) before the crash, so they carry
  // the flag that makes their next delivery `redelivered` — consumers
  // dedup from there (at-least-once).
  for (auto& rec : recovered.live) {
    Message message;
    message.routing_key = std::move(rec.routing_key);
    message.body = std::move(rec.body);
    message.persistent = true;
    message.spool_seq = rec.seq;
    message.replayed = true;
    // A traced message keeps its trace across the crash: redeliveries
    // after restart belong to the same causal tree (DESIGN.md §11).
    if (!rec.traceparent.empty() &&
        telemetry::TraceContext::from_traceparent(rec.traceparent,
                                                  &message.trace_ctx)) {
      message.trace_published_wall = rec.published_wall;
      message.headers["traceparent"] = std::move(rec.traceparent);
    }
    entry.queue.enqueue(std::move(message));
  }
  // Recovery always rewrites the file down to the live set — the one
  // point where compaction is free — so an ack-everything-then-restart
  // cycle leaves a near-empty spool no matter the threshold. Drop-head
  // overflow during the re-enqueue above is reflected by snapshotting
  // the queue, not the recovered list.
  const std::vector<Message> live = entry.queue.spooled_messages();
  std::vector<spool::MessageRecord> records;
  records.reserve(live.size());
  for (const auto& msg : live) {
    records.push_back(spool_record(msg));
  }
  spool::rewrite_file(entry.spool_path, records);
  if (recovered.acks > 0 || recovered.legacy ||
      records.size() != recovered.messages) {
    bus_telemetry().spool_compactions.inc();
  }
  entry.spool_out.open(entry.spool_path, std::ios::app);
  entry.dead_records = 0;
}

}  // namespace stampede::bus
