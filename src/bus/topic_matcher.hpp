#pragma once
// AMQP topic-exchange routing-key matching.
//
// Binding keys are dot-separated words where `*` matches exactly one word
// and `#` matches zero or more words — the semantics RabbitMQ implements
// and the paper relies on to let analysis components subscribe to message
// subsets ("all stampede.job messages", §IV-C).

#include <string>
#include <string_view>
#include <vector>

namespace stampede::bus {

/// A compiled binding pattern. Compile once per binding; match per message.
class TopicPattern {
 public:
  explicit TopicPattern(std::string_view pattern);

  [[nodiscard]] bool matches(std::string_view routing_key) const;

  [[nodiscard]] const std::string& pattern() const noexcept {
    return pattern_;
  }

  /// True when the pattern contains no wildcards (enables exact-match
  /// routing table lookups).
  [[nodiscard]] bool is_literal() const noexcept { return literal_; }

 private:
  std::string pattern_;
  std::vector<std::string> words_;
  bool literal_ = true;
};

/// One-shot convenience match.
[[nodiscard]] bool topic_matches(std::string_view pattern,
                                 std::string_view routing_key);

}  // namespace stampede::bus
