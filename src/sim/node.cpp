#include "sim/node.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace stampede::sim {

namespace {
// Work below this threshold counts as done. Chosen well above the double
// ulp at epoch-scale time bases (~5e-7 s at t≈1e9) so completion events
// always land at a strictly later representable instant.
constexpr double kEpsilon = 1e-6;
}

PsNode::PsNode(EventLoop& loop, std::string name, int slots, double cores)
    : loop_(&loop),
      name_(std::move(name)),
      slots_(slots),
      cores_(cores),
      last_update_(loop.now()) {}

double PsNode::rate() const noexcept {
  if (running_.empty()) return 0.0;
  const double share = cores_ / static_cast<double>(running_.size());
  return std::min(1.0, share);
}

PsNode::TaskId PsNode::submit(double cpu_seconds,
                              std::function<void(SimTime)> on_start,
                              std::function<void(SimTime)> on_done) {
  const TaskId id = next_id_++;
  ++stats_.submitted;
  waiting_.push_back(
      {id, std::max(cpu_seconds, kEpsilon), std::move(on_start),
       std::move(on_done)});
  stats_.peak_queue = std::max(stats_.peak_queue, waiting_.size());
  // Admission happens as a scheduled event so that a submit() made from
  // inside a completion callback sees a consistent node state.
  loop_->schedule_in(0, [this] {
    advance_work();
    admit_from_queue();
    reschedule_completion();
  });
  return id;
}

void PsNode::advance_work() {
  const SimTime now = loop_->now();
  const double elapsed = now - last_update_;
  if (elapsed > 0 && !running_.empty()) {
    const double done = elapsed * rate();
    for (auto& [id, task] : running_) {
      const double work = std::min(done, task.remaining);
      task.remaining -= work;
      stats_.busy_cpu_seconds += work;
    }
  }
  last_update_ = now;
}

void PsNode::admit_from_queue() {
  while (!waiting_.empty() &&
         running_.size() < static_cast<std::size_t>(slots_)) {
    Waiting next = std::move(waiting_.front());
    waiting_.pop_front();
    running_.emplace(next.id, Running{next.cpu_seconds,
                                      std::move(next.on_done)});
    stats_.peak_running = std::max(stats_.peak_running, running_.size());
    if (next.on_start) next.on_start(loop_->now());
  }
}

void PsNode::reschedule_completion() {
  // Invalidate any previously scheduled completion: generation check.
  const std::uint64_t generation = ++completion_generation_;
  if (running_.empty()) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, task] : running_) {
    min_remaining = std::min(min_remaining, task.remaining);
  }
  const double dt = min_remaining / rate();
  // Guarantee the event lands at a strictly later representable time:
  // at large epoch bases a tiny dt would otherwise be absorbed and the
  // node would respin at the same instant forever.
  const SimTime now = loop_->now();
  SimTime target = now + dt;
  if (!(target > now)) {
    target = std::nextafter(now, std::numeric_limits<double>::infinity());
  }
  loop_->schedule_at(target, [this, generation] {
    on_completion_event(generation);
  });
}

void PsNode::on_completion_event(std::uint64_t generation) {
  if (generation != completion_generation_) return;  // Stale.
  advance_work();
  // Complete every task whose work is (numerically) done.
  std::vector<std::function<void(SimTime)>> callbacks;
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->second.remaining <= kEpsilon) {
      callbacks.push_back(std::move(it->second.on_done));
      it = running_.erase(it);
      ++stats_.completed;
    } else {
      ++it;
    }
  }
  admit_from_queue();
  reschedule_completion();
  const SimTime now = loop_->now();
  for (auto& cb : callbacks) {
    if (cb) cb(now);
  }
}

}  // namespace stampede::sim
