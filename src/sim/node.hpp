#pragma once
// Processor-sharing compute node.
//
// Models the paper's TrianaCloud workers: "2GB RAM, 1 core per instance"
// running 16-task bundles "4 at a time" (§VI). With s slots and c cores,
// up to s tasks are admitted concurrently (the rest wait in a FIFO queue
// — the source of the "queue time" column in Table IV), and the admitted
// tasks share the c cores equally, so each runs at rate min(1, c/n).
// That dilation is why the paper's Table II/III exec runtimes (~74 s
// wall) exceed their per-invocation CPU demand and why cumulative job
// wall time can exceed slot-count × makespan.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "sim/event_loop.hpp"

namespace stampede::sim {

struct NodeStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  double busy_cpu_seconds = 0.0;  ///< Total CPU work performed.
  std::size_t peak_queue = 0;
  std::size_t peak_running = 0;
};

class PsNode {
 public:
  /// `slots`: admission limit; `cores`: CPU capacity shared by admitted
  /// tasks.
  PsNode(EventLoop& loop, std::string name, int slots, double cores = 1.0);

  PsNode(const PsNode&) = delete;
  PsNode& operator=(const PsNode&) = delete;

  using TaskId = std::uint64_t;
  /// `on_start(start_time)` fires when the task is admitted to a slot;
  /// `on_done(end_time)` when its CPU demand completes.
  TaskId submit(double cpu_seconds, std::function<void(SimTime)> on_start,
                std::function<void(SimTime)> on_done);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t running() const noexcept {
    return running_.size();
  }
  [[nodiscard]] std::size_t queued() const noexcept { return waiting_.size(); }
  [[nodiscard]] const NodeStats& stats() const noexcept { return stats_; }

 private:
  struct Waiting {
    TaskId id;
    double cpu_seconds;
    std::function<void(SimTime)> on_start;
    std::function<void(SimTime)> on_done;
  };
  struct Running {
    double remaining;  ///< CPU seconds of work left.
    std::function<void(SimTime)> on_done;
  };

  void admit_from_queue();
  void advance_work();        ///< Apply progress since last_update_.
  void reschedule_completion();
  void on_completion_event(std::uint64_t generation);
  [[nodiscard]] double rate() const noexcept;

  EventLoop* loop_;
  std::string name_;
  int slots_;
  double cores_;
  TaskId next_id_ = 1;
  std::deque<Waiting> waiting_;
  std::map<TaskId, Running> running_;
  SimTime last_update_ = 0.0;
  std::uint64_t completion_generation_ = 0;
  NodeStats stats_;
};

}  // namespace stampede::sim
