#include "sim/event_loop.hpp"

namespace stampede::sim {

EventLoop::Handle EventLoop::schedule_at(SimTime t, std::function<void()> fn) {
  const Handle handle = next_handle_++;
  queue_.push(Entry{t < now_ ? now_ : t, handle, std::move(fn)});
  return handle;
}

bool EventLoop::cancel(Handle handle) {
  if (handle == 0 || handle >= next_handle_) return false;
  return cancelled_.insert(handle).second;
}

bool EventLoop::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; take a copy of the small parts and
    // move the callable out via const_cast-free re-push avoidance: we pop
    // first into a local.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    const auto it = cancelled_.find(entry.handle);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = entry.time;
    ++fired_;
    entry.fn();
    return true;
  }
  return false;
}

void EventLoop::run() {
  while (step()) {
  }
}

void EventLoop::run_until(SimTime t) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (cancelled_.count(top.handle) != 0) {
      cancelled_.erase(top.handle);
      queue_.pop();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace stampede::sim
