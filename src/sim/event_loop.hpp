#pragma once
// Deterministic discrete-event simulation core.
//
// The workflow engines and the TrianaCloud substrate run on virtual time:
// every run is exactly reproducible from its seed, which the bench
// harness depends on to regenerate the paper's tables. Events at equal
// timestamps fire in scheduling order (a strict total order), so there is
// no tie-breaking nondeterminism.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time_utils.hpp"

namespace stampede::sim {

/// Virtual time: absolute epoch seconds, same unit as BP timestamps so
/// simulated engines can stamp log records directly.
using SimTime = common::Timestamp;

class EventLoop {
 public:
  using Handle = std::uint64_t;

  explicit EventLoop(SimTime start_time = 0.0) : now_(start_time) {}

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to now for past times).
  Handle schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after a delay.
  Handle schedule_in(common::Duration dt, std::function<void()> fn) {
    return schedule_at(now_ + (dt > 0 ? dt : 0), std::move(fn));
  }

  /// Cancels a pending event; false when already fired or cancelled.
  bool cancel(Handle handle);

  /// Fires the next event; false when the queue is empty.
  bool step();

  /// Runs until no events remain.
  void run();

  /// Runs events with time ≤ t, then advances the clock to exactly t.
  void run_until(SimTime t);

  [[nodiscard]] std::size_t pending() const noexcept {
    return queue_.size() - cancelled_.size();
  }
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

 private:
  struct Entry {
    SimTime time;
    Handle handle;
    std::function<void()> fn;
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.handle > b.handle;  // FIFO among simultaneous events.
    }
  };

  SimTime now_;
  Handle next_handle_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<Handle> cancelled_;
};

}  // namespace stampede::sim
