#pragma once
// Triana units: the Java "Unit" class with its process() method (§V).
//
// A unit is the computation inside a task. In this headless engine the
// data flowing along cables is a vector of opaque string tokens, and each
// unit additionally declares a CPU-cost model used by the simulator to
// advance virtual time (the real process() work — e.g. the DART SHS
// kernel — executes instantly in wall-clock terms but contributes its
// modeled CPU seconds to the virtual timeline).

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace stampede::triana {

using Data = std::vector<std::string>;

struct UnitResult {
  Data outputs;
  int exitcode = 0;
  std::string stdout_text;
  std::string stderr_text;
};

class Unit {
 public:
  virtual ~Unit() = default;

  /// Unit type used for the job breakdown in stampede-statistics
  /// ("processing", "file", "unit", ...).
  [[nodiscard]] virtual std::string type() const = 0;

  /// The process() method of the Triana Unit class. Throwing is treated
  /// as the unit erroring out: "the Terminate and End events have return
  /// codes of -1" (§V-B).
  virtual UnitResult process(const Data& inputs) = 0;

  /// CPU seconds this execution demands from the hosting node.
  [[nodiscard]] virtual double cpu_seconds(common::Rng& rng) = 0;
};

/// A unit built from lambdas — the common case in tests and workload
/// generators.
class FunctionUnit final : public Unit {
 public:
  using ProcessFn = std::function<UnitResult(const Data&)>;
  using CostFn = std::function<double(common::Rng&)>;

  FunctionUnit(std::string type, ProcessFn process, CostFn cost)
      : type_(std::move(type)),
        process_(std::move(process)),
        cost_(std::move(cost)) {}

  /// Pass-through unit with a fixed CPU cost.
  static std::unique_ptr<FunctionUnit> passthrough(std::string type,
                                                   double cpu_seconds) {
    return std::make_unique<FunctionUnit>(
        std::move(type),
        [](const Data& in) { return UnitResult{in, 0, "", ""}; },
        [cpu_seconds](common::Rng&) { return cpu_seconds; });
  }

  [[nodiscard]] std::string type() const override { return type_; }
  UnitResult process(const Data& inputs) override { return process_(inputs); }
  double cpu_seconds(common::Rng& rng) override { return cost_(rng); }

 private:
  std::string type_;
  ProcessFn process_;
  CostFn cost_;
};

}  // namespace stampede::triana
