#include "triana/trianacloud.hpp"

namespace stampede::triana {

TrianaCloud::TrianaCloud(sim::EventLoop& loop, common::Rng& rng,
                         nl::EventSink& sink, common::UuidGenerator& uuids,
                         common::Uuid root_xwf_id, CloudOptions options)
    : loop_(&loop),
      rng_(&rng),
      sink_(&sink),
      uuids_(&uuids),
      root_(root_xwf_id),
      options_(options) {
  workers_.reserve(static_cast<std::size_t>(options_.nodes));
  for (int i = 0; i < options_.nodes; ++i) {
    workers_.push_back(std::make_unique<sim::PsNode>(
        loop, options_.node_prefix + std::to_string(i),
        options_.slots_per_node, options_.cores_per_node));
  }
  active_bundles_.assign(workers_.size(), 0);
}

std::size_t TrianaCloud::free_worker() const {
  // Least-active worker with spare capacity; ties broken round-robin so
  // equally idle nodes share the first wave of bundles.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t best = kNone;
  int best_active = options_.bundles_per_node;
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    const std::size_t i = (round_robin_ + k) % workers_.size();
    if (active_bundles_[i] < best_active) {
      best = i;
      best_active = active_bundles_[i];
    }
  }
  return best;
}

common::Uuid TrianaCloud::submit_bundle(
    TaskGraph& child, common::Uuid parent_uuid, SchedulerOptions options,
    std::function<void(sim::SimTime, int)> done) {
  ++stats_.bundles_submitted;
  const common::Uuid child_uuid = uuids_->next();

  StampedeLog::Identity identity;
  identity.xwf_id = child_uuid;
  identity.parent_xwf_id = parent_uuid;
  identity.root_xwf_id = root_;
  identity.dax_label = child.name();
  logs_.push_back(std::make_unique<StampedeLog>(*sink_, identity));

  PendingBundle bundle;
  bundle.child = &child;
  bundle.log = logs_.back().get();
  bundle.options = options;
  bundle.options.site = options_.site;
  bundle.done = std::move(done);
  bundle.uuid = child_uuid;

  // The HTTP POST + SHIWA bundle transfer, then broker placement: the
  // bundle starts as soon as a worker has capacity, or waits in the
  // broker's queue.
  const double dispatch =
      rng_->uniform(options_.dispatch_lo, options_.dispatch_hi);
  loop_->schedule_in(dispatch, [this, bundle = std::move(bundle)]() mutable {
    const std::size_t worker = free_worker();
    if (worker == static_cast<std::size_t>(-1)) {
      pending_.push_back(std::move(bundle));
    } else {
      launch(worker, std::move(bundle));
    }
  });
  return child_uuid;
}

void TrianaCloud::launch(std::size_t worker, PendingBundle bundle) {
  ++active_bundles_[worker];
  ++round_robin_;
  auto scheduler = std::make_unique<Scheduler>(
      *loop_, *rng_, *workers_[worker], *bundle.child, bundle.options);
  scheduler->add_listener(*bundle.log);
  Scheduler* raw = scheduler.get();
  bundles_.push_back(std::move(scheduler));

  // Nested sub-workflows of a bundle are dispatched back through the
  // broker (each may land on a different worker).
  const common::Uuid child_uuid = bundle.uuid;
  const SchedulerOptions child_options = bundle.options;
  raw->set_subworkflow_handler(
      [this, child_uuid, child_options](
          TaskIndex, TaskGraph& grandchild, Data,
          std::function<void(sim::SimTime, int)> d) {
        return submit_bundle(grandchild, child_uuid, child_options,
                             std::move(d));
      });

  raw->start([this, worker, done = std::move(bundle.done)](sim::SimTime end,
                                                           int status) {
    if (status == 0) {
      ++stats_.bundles_completed;
    } else {
      ++stats_.bundles_failed;
    }
    on_bundle_finished(worker);
    done(end, status);
  });
}

void TrianaCloud::on_bundle_finished(std::size_t worker) {
  --active_bundles_[worker];
  if (pending_.empty()) return;
  PendingBundle next = std::move(pending_.front());
  pending_.pop_front();
  // The freed worker is by construction free now; prefer it unless an
  // idler one exists.
  std::size_t target = free_worker();
  if (target == static_cast<std::size_t>(-1)) target = worker;
  // Launch from a fresh event so the completing scheduler fully unwinds.
  loop_->schedule_in(0, [this, target, next = std::move(next)]() mutable {
    launch(target, std::move(next));
  });
}

void TrianaCloud::attach(Scheduler& parent, common::Uuid parent_uuid,
                         SchedulerOptions bundle_options) {
  parent.set_subworkflow_handler(
      [this, parent_uuid, bundle_options](
          TaskIndex, TaskGraph& child, Data,
          std::function<void(sim::SimTime, int)> done) {
        return submit_bundle(child, parent_uuid, bundle_options,
                             std::move(done));
      });
}

}  // namespace stampede::triana
