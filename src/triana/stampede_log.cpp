#include "triana/stampede_log.hpp"

#include "netlogger/events.hpp"

namespace stampede::triana {

namespace ev = nl::events;
namespace attr = nl::events::attr;

std::string StampedeLog::job_id_for(const TaskGraph& graph, TaskIndex task) {
  const Task& t = graph.task(task);
  const std::string type = t.unit ? t.unit->type() : "unit";
  if (type == "unit") return "unit:" + t.name;
  return type + "." + t.name;
}

nl::LogRecord StampedeLog::base(sim::SimTime t, std::string_view event) const {
  nl::LogRecord r{t, std::string{event}};
  r.set(attr::kXwfId, identity_.xwf_id);
  return r;
}

nl::LogRecord StampedeLog::job_inst(sim::SimTime t, std::string_view event,
                                    const TaskGraph& graph,
                                    TaskIndex task) const {
  nl::LogRecord r = base(t, event);
  r.set(attr::kJobInstId, kSubmitSeq);
  r.set(attr::kJobId, job_id_for(graph, task));
  return r;
}

void StampedeLog::on_plan(const TaskGraph& graph, const PlanInfo& info,
                          sim::SimTime t) {
  nl::LogRecord plan = base(t, ev::kWfPlan);
  if (!info.submit_dir.empty()) plan.set(attr::kSubmitDir, info.submit_dir);
  plan.set(attr::kPlanner, info.planner_version);
  if (!info.user.empty()) plan.set(attr::kUser, info.user);
  if (!identity_.dax_label.empty()) {
    plan.set(attr::kDaxLabel, identity_.dax_label);
  }
  if (identity_.parent_xwf_id) {
    plan.set(attr::kParentXwfId, *identity_.parent_xwf_id);
  }
  if (identity_.root_xwf_id) {
    plan.set(attr::kRootXwfId, *identity_.root_xwf_id);
  }
  sink_->emit(plan);

  // Abstract workflow: one stampede task per Triana task.
  for (TaskIndex i = 0; i < graph.task_count(); ++i) {
    const Task& task = graph.task(i);
    nl::LogRecord ti = base(t, ev::kTaskInfo);
    ti.set(attr::kTaskId, task.name);
    ti.set(attr::kTransformation, task.name);
    ti.set(attr::kType, task.unit ? task.unit->type() : "unit");
    ti.set(attr::kTypeDesc, task.subgraph ? "sub-workflow" : "unit");
    sink_->emit(ti);
  }
  for (const Cable& cable : graph.cables()) {
    nl::LogRecord te = base(t, ev::kTaskEdge);
    te.set(attr::kParentTaskId, graph.task(cable.from).name);
    te.set(attr::kChildTaskId, graph.task(cable.to).name);
    sink_->emit(te);
  }

  // Executable workflow: 1:1 with the abstract one ("there is a one-to-
  // one mapping between a Stampede task and a Stampede job entity", §V).
  for (TaskIndex i = 0; i < graph.task_count(); ++i) {
    const Task& task = graph.task(i);
    nl::LogRecord ji = base(t, ev::kJobInfo);
    ji.set(attr::kJobId, job_id_for(graph, i));
    ji.set(attr::kType, task.unit ? task.unit->type() : "unit");
    ji.set(attr::kTypeDesc, task.subgraph ? "sub-workflow" : "unit");
    ji.set(attr::kTransformation, task.name);
    ji.set("task_count", std::int64_t{1});
    sink_->emit(ji);

    nl::LogRecord map = base(t, ev::kMapTaskJob);
    map.set(attr::kTaskId, task.name);
    map.set(attr::kJobId, job_id_for(graph, i));
    sink_->emit(map);
  }
  for (const Cable& cable : graph.cables()) {
    nl::LogRecord je = base(t, ev::kJobEdge);
    je.set(attr::kParentJobId, job_id_for(graph, cable.from));
    je.set(attr::kChildJobId, job_id_for(graph, cable.to));
    sink_->emit(je);
  }
}

void StampedeLog::on_workflow_start(sim::SimTime t) {
  nl::LogRecord r = base(t, ev::kXwfStart);
  r.set(attr::kRestartCount, std::int64_t{0});
  sink_->emit(r);
}

void StampedeLog::on_workflow_end(sim::SimTime t, int status) {
  nl::LogRecord r = base(t, ev::kXwfEnd);
  r.set(attr::kRestartCount, std::int64_t{0});
  r.set(attr::kStatus, static_cast<std::int64_t>(status));
  sink_->emit(r);
}

void StampedeLog::on_execution_event(const TaskGraph& graph,
                                     const ExecutionEvent& event,
                                     TaskIndex task) {
  const sim::SimTime t = event.time;
  switch (event.new_state) {
    case TaskState::kScheduled: {
      // "each task is WOKEN, their Job Submit Start event is recorded".
      sink_->emit(job_inst(t, ev::kJobInstSubmitStart, graph, task));
      nl::LogRecord end = job_inst(t, ev::kJobInstSubmitEnd, graph, task);
      end.set(attr::kStatus, std::int64_t{0});
      sink_->emit(end);
      break;
    }
    case TaskState::kRunning: {
      if (event.old_state == TaskState::kPaused) {
        // "RUNNING ... previous state was PAUSED ... held.end".
        nl::LogRecord r = job_inst(t, ev::kJobInstHeldEnd, graph, task);
        r.set(attr::kStatus, std::int64_t{0});
        sink_->emit(r);
      } else {
        sink_->emit(job_inst(t, ev::kJobInstMainStart, graph, task));
      }
      break;
    }
    case TaskState::kPaused:
      // "PAUSED in Triana mapping directly to held.start".
      sink_->emit(job_inst(t, ev::kJobInstHeldStart, graph, task));
      break;
    case TaskState::kComplete: {
      nl::LogRecord term = job_inst(t, ev::kJobInstMainTerm, graph, task);
      term.set(attr::kStatus, std::int64_t{0});
      sink_->emit(term);
      nl::LogRecord end = job_inst(t, ev::kJobInstMainEnd, graph, task);
      const auto it = exitcodes_.find(task);
      end.set(attr::kExitcode,
              static_cast<std::int64_t>(it == exitcodes_.end() ? 0
                                                               : it->second));
      attach_std_streams(end, task);
      sink_->emit(end);
      break;
    }
    case TaskState::kError: {
      // "the Terminate and End events have return codes of -1".
      nl::LogRecord term = job_inst(t, ev::kJobInstMainTerm, graph, task);
      term.set(attr::kStatus, std::int64_t{-1});
      sink_->emit(term);
      nl::LogRecord end = job_inst(t, ev::kJobInstMainEnd, graph, task);
      // A task can reach ERROR even though its own invocation returned 0
      // (e.g. the sub-workflow it spawned failed); the job-level exit
      // code must still be nonzero.
      const auto it = exitcodes_.find(task);
      const int code =
          (it == exitcodes_.end() || it->second == 0) ? -1 : it->second;
      end.set(attr::kExitcode, static_cast<std::int64_t>(code));
      end.set_level(nl::Level::kError);
      attach_std_streams(end, task);
      sink_->emit(end);
      break;
    }
    default:
      break;  // Other Triana states have no Stampede counterpart.
  }
}

void StampedeLog::on_invocation_start(const TaskGraph& graph,
                                      const InvocationInfo& info) {
  nl::LogRecord r = base(info.start, ev::kInvStart);
  r.set(attr::kJobInstId, kSubmitSeq);
  r.set(attr::kJobId, job_id_for(graph, info.task));
  r.set(attr::kInvId, static_cast<std::int64_t>(info.inv_seq));
  sink_->emit(r);
}

void StampedeLog::attach_std_streams(nl::LogRecord& record,
                                     TaskIndex task) const {
  const auto out = stdout_.find(task);
  if (out != stdout_.end() && !out->second.empty()) {
    record.set(attr::kStdOut, out->second);
  }
  const auto err = stderr_.find(task);
  if (err != stderr_.end() && !err->second.empty()) {
    record.set(attr::kStdErr, err->second);
  }
}

void StampedeLog::on_invocation_end(const TaskGraph& graph,
                                    const InvocationInfo& info) {
  exitcodes_[info.task] = info.exitcode;
  if (!info.stdout_text.empty()) stdout_[info.task] = info.stdout_text;
  if (!info.stderr_text.empty()) stderr_[info.task] = info.stderr_text;
  nl::LogRecord r = base(info.end, ev::kInvEnd);
  r.set(attr::kJobInstId, kSubmitSeq);
  r.set(attr::kJobId, job_id_for(graph, info.task));
  r.set(attr::kInvId, static_cast<std::int64_t>(info.inv_seq));
  r.set(attr::kTaskId, graph.task(info.task).name);
  r.set("start_time", info.start);
  r.set(attr::kDur, info.end - info.start);
  r.set(attr::kRemoteCpuTime, info.cpu_seconds);
  r.set(attr::kExitcode, static_cast<std::int64_t>(info.exitcode));
  r.set(attr::kTransformation, graph.task(info.task).name);
  if (info.exitcode != 0) r.set_level(nl::Level::kError);
  sink_->emit(r);
}

void StampedeLog::on_host(const TaskGraph& graph, TaskIndex task,
                          const std::string& hostname, const std::string& site,
                          sim::SimTime t) {
  nl::LogRecord r = job_inst(t, ev::kJobInstHostInfo, graph, task);
  r.set(attr::kHostname, hostname);
  if (!site.empty()) r.set(attr::kSite, site);
  sink_->emit(r);
}

void StampedeLog::on_subworkflow(const TaskGraph& graph, TaskIndex task,
                                 const common::Uuid& child_uuid,
                                 sim::SimTime t) {
  nl::LogRecord r = base(t, ev::kMapSubwfJob);
  r.set(attr::kSubwfId, child_uuid);
  r.set(attr::kJobId, job_id_for(graph, task));
  r.set(attr::kJobInstId, kSubmitSeq);
  sink_->emit(r);
}

}  // namespace stampede::triana
