#include "triana/scheduler.hpp"

#include <algorithm>

namespace stampede::triana {

using common::EngineError;

Scheduler::Scheduler(sim::EventLoop& loop, common::Rng& rng,
                     sim::PsNode& node, TaskGraph& graph,
                     SchedulerOptions options)
    : loop_(&loop),
      rng_(&rng),
      node_(&node),
      graph_(&graph),
      options_(options) {}

void Scheduler::emit_event(TaskIndex task, TaskState old_state,
                           TaskState new_state) {
  const ExecutionEvent event{loop_->now(), graph_->task(task).name, old_state,
                             new_state};
  for (auto* listener : listeners_) {
    listener->on_execution_event(*graph_, event, task);
  }
}

void Scheduler::set_state(TaskIndex task, TaskState next) {
  Task& t = graph_->task(task);
  const TaskState old_state = t.state;
  if (old_state == next) return;
  t.state = next;
  emit_event(task, old_state, next);
}

void Scheduler::start(CompletionFn on_complete) {
  if (started_) throw EngineError("Scheduler: start() called twice");
  started_ = true;
  on_complete_ = std::move(on_complete);

  if (options_.mode == Mode::kSingleStep && graph_->has_cycle()) {
    throw EngineError("taskgraph " + graph_->name() +
                      ": cyclic graphs require continuous mode");
  }

  // Build the per-task runtime state.
  runtime_.resize(graph_->task_count());
  for (TaskIndex i = 0; i < graph_->task_count(); ++i) {
    TaskRuntime& rt = runtime_[i];
    rt.input_tasks = graph_->inputs_of(i);
    rt.input_queues.assign(rt.input_tasks.size(), {});
    rt.remaining_firings = options_.mode == Mode::kContinuous
                               ? graph_->task(i).firings
                               : 1;
  }

  // "Immediately before the scheduler sets the task graph's state to
  // RUNNING, the logging object records the workflow planning events".
  const sim::SimTime now = loop_->now();
  for (auto* listener : listeners_) {
    listener->on_plan(*graph_, plan_info_, now);
  }
  for (auto* listener : listeners_) listener->on_workflow_start(now);

  // All tasks wake to SCHEDULED and wait for input (§V-B).
  for (TaskIndex i = 0; i < graph_->task_count(); ++i) {
    set_state(i, TaskState::kScheduled);
  }
  pump_ready();
  check_done();
}

bool Scheduler::can_fire(TaskIndex task) const {
  const TaskRuntime& rt = runtime_[task];
  const TaskState state = graph_->task(task).state;
  if (paused_ || rt.in_flight || rt.remaining_firings <= 0) return false;
  if (state != TaskState::kScheduled && state != TaskState::kRunning) {
    return false;
  }
  // Every input cable must hold a data chunk.
  return std::all_of(rt.input_queues.begin(), rt.input_queues.end(),
                     [](const std::deque<Data>& q) { return !q.empty(); });
}

void Scheduler::pump_ready() {
  for (TaskIndex i = 0; i < graph_->task_count(); ++i) {
    try_fire(i);
  }
}

void Scheduler::try_fire(TaskIndex task) {
  if (!can_fire(task)) return;
  fire(task);
}

void Scheduler::fire(TaskIndex task) {
  TaskRuntime& rt = runtime_[task];
  rt.in_flight = true;
  --rt.remaining_firings;
  ++rt.fired;
  ++outstanding_;

  // Consume one chunk from every input cable.
  Data inputs;
  for (auto& queue : rt.input_queues) {
    const Data& chunk = queue.front();
    inputs.insert(inputs.end(), chunk.begin(), chunk.end());
    queue.pop_front();
  }

  const double cpu = graph_->task(task).unit->cpu_seconds(*rng_);
  const double overhead =
      rng_->uniform(options_.overhead_lo, options_.overhead_hi);
  loop_->schedule_in(overhead, [this, task, cpu,
                                inputs = std::move(inputs)]() mutable {
    node_->submit(
        cpu,
        /*on_start=*/
        [this, task](sim::SimTime t) {
          TaskRuntime& rt = runtime_[task];
          if (!rt.started) {
            rt.started = true;
            set_state(task, TaskState::kRunning);
            for (auto* listener : listeners_) {
              listener->on_host(*graph_, task, node_->name(), options_.site,
                                t);
            }
          }
          InvocationInfo info;
          info.task = task;
          info.inv_seq = rt.fired;
          info.start = t;
          for (auto* listener : listeners_) {
            listener->on_invocation_start(*graph_, info);
          }
          rt.inv_start = t;
        },
        /*on_done=*/
        [this, task, cpu, inputs = std::move(inputs)](sim::SimTime t) mutable {
          complete_firing(task, runtime_[task].inv_start, t, cpu,
                          std::move(inputs));
        });
  });
}

void Scheduler::complete_firing(TaskIndex task, sim::SimTime start,
                                sim::SimTime end, double cpu, Data inputs) {
  TaskRuntime& rt = runtime_[task];
  Task& t = graph_->task(task);

  UnitResult result;
  try {
    result = t.unit->process(inputs);
  } catch (const std::exception& e) {
    result.exitcode = -1;
    result.stderr_text = e.what();
  } catch (...) {
    result.exitcode = -1;
    result.stderr_text = "unit threw a non-standard exception";
  }

  InvocationInfo info;
  info.task = task;
  info.inv_seq = rt.fired;
  info.start = start;
  info.end = end;
  info.cpu_seconds = cpu;
  info.exitcode = result.exitcode;
  info.stdout_text = result.stdout_text;
  info.stderr_text = result.stderr_text;
  for (auto* listener : listeners_) {
    listener->on_invocation_end(*graph_, info);
  }

  if (result.exitcode != 0) {
    rt.in_flight = false;
    --outstanding_;
    finish_task(task, /*ok=*/false);
    check_done();
    return;
  }

  // Runtime workflow generation: build the child from this firing's
  // inputs (§V-D — "the creation and execution of a workflow during the
  // run of a parent workflow").
  if (t.subgraph_factory && !t.subgraph) {
    try {
      t.subgraph = t.subgraph_factory(inputs);
    } catch (const std::exception&) {
      rt.in_flight = false;
      --outstanding_;
      finish_task(task, /*ok=*/false);
      check_done();
      return;
    }
  }

  // Sub-workflow tasks hand their child graph to the handler and stay
  // RUNNING until it reports back (§V-D meta-workflows).
  if (t.subgraph) {
    if (!subworkflow_handler_) {
      rt.in_flight = false;
      --outstanding_;
      finish_task(task, /*ok=*/false);
      check_done();
      return;
    }
    const common::Uuid child_uuid = subworkflow_handler_(
        task, *t.subgraph, result.outputs,
        [this, task, outputs = result.outputs](sim::SimTime child_end,
                                               int child_status) {
          TaskRuntime& rt2 = runtime_[task];
          rt2.in_flight = false;
          --outstanding_;
          (void)child_end;
          if (child_status == 0) {
            deliver_outputs(task, outputs);
            if (rt2.remaining_firings == 0) finish_task(task, true);
            pump_ready();
          } else {
            finish_task(task, false);
          }
          check_done();
        });
    for (auto* listener : listeners_) {
      listener->on_subworkflow(*graph_, task, child_uuid, loop_->now());
    }
    return;
  }

  rt.in_flight = false;
  --outstanding_;
  deliver_outputs(task, result.outputs);
  if (rt.remaining_firings == 0) {
    finish_task(task, /*ok=*/true);
  } else {
    try_fire(task);  // Continuous mode: next chunk may already be waiting.
  }
  pump_ready();
  check_done();
}

void Scheduler::deliver_outputs(TaskIndex task, const Data& outputs) {
  for (TaskIndex i = 0; i < graph_->task_count(); ++i) {
    TaskRuntime& rt = runtime_[i];
    for (std::size_t c = 0; c < rt.input_tasks.size(); ++c) {
      if (rt.input_tasks[c] == task) {
        rt.input_queues[c].push_back(outputs);
      }
    }
  }
}

void Scheduler::finish_task(TaskIndex task, bool ok) {
  set_state(task, ok ? TaskState::kComplete : TaskState::kError);
}

void Scheduler::check_done() {
  if (finished_ || outstanding_ > 0 || paused_) return;
  // Can anything still fire?
  for (TaskIndex i = 0; i < graph_->task_count(); ++i) {
    if (can_fire(i)) return;
  }
  // Nothing in flight, nothing ready: the run is over.
  bool all_complete = true;
  for (TaskIndex i = 0; i < graph_->task_count(); ++i) {
    if (graph_->task(i).state != TaskState::kComplete) {
      all_complete = false;
      break;
    }
  }
  finished_ = true;
  status_ = all_complete ? 0 : -1;
  const sim::SimTime now = loop_->now();
  for (auto* listener : listeners_) listener->on_workflow_end(now, status_);
  if (on_complete_) on_complete_(now, status_);
}

void Scheduler::request_pause() {
  if (paused_ || finished_) return;
  paused_ = true;
  // "This sends a message to the local task graph to pause the execution
  // of each component" — components that have not begun are held.
  for (TaskIndex i = 0; i < graph_->task_count(); ++i) {
    if (graph_->task(i).state == TaskState::kScheduled &&
        !runtime_[i].in_flight) {
      set_state(i, TaskState::kPaused);
    }
  }
}

void Scheduler::request_resume() {
  if (!paused_) return;
  paused_ = false;
  for (TaskIndex i = 0; i < graph_->task_count(); ++i) {
    if (graph_->task(i).state == TaskState::kPaused) {
      // held.end: RUNNING with previous state PAUSED (§V-B mapping).
      set_state(i, TaskState::kRunning);
      runtime_[i].started = true;
    }
  }
  pump_ready();
  check_done();
}

// ---------------------------------------------------------------------------
// InlineSubworkflowRunner

common::Uuid InlineSubworkflowRunner::run_child(
    TaskGraph& child, common::Uuid parent_uuid, SchedulerOptions options,
    std::function<void(sim::SimTime, int)> done) {
  const common::Uuid child_uuid = uuids_->next();
  StampedeLog::Identity identity;
  identity.xwf_id = child_uuid;
  identity.parent_xwf_id = parent_uuid;
  identity.root_xwf_id = root_;
  identity.dax_label = child.name();
  logs_.push_back(std::make_unique<StampedeLog>(*sink_, identity));
  auto scheduler =
      std::make_unique<Scheduler>(*loop_, *rng_, *node_, child, options);
  scheduler->add_listener(*logs_.back());
  Scheduler* raw = scheduler.get();
  children_.push_back(std::move(scheduler));
  // Grandchildren spawn recursively through this same runner, parented
  // to the child we just created ("a sub-workflow, which can contain a
  // sub-workflow, and so on", §V).
  raw->set_subworkflow_handler(
      [this, child_uuid, options](TaskIndex, TaskGraph& grandchild, Data,
                                  std::function<void(sim::SimTime, int)> d) {
        return run_child(grandchild, child_uuid, options, std::move(d));
      });
  loop_->schedule_in(0, [raw, done = std::move(done)]() mutable {
    raw->start([done = std::move(done)](sim::SimTime end, int status) {
      done(end, status);
    });
  });
  return child_uuid;
}

void InlineSubworkflowRunner::attach(Scheduler& parent,
                                     common::Uuid parent_uuid,
                                     SchedulerOptions child_options) {
  parent.set_subworkflow_handler(
      [this, parent_uuid, child_options](
          TaskIndex, TaskGraph& child, Data,
          std::function<void(sim::SimTime, int)> done) {
        return run_child(child, parent_uuid, child_options, std::move(done));
      });
}

}  // namespace stampede::triana
