#include "triana/state.hpp"

namespace stampede::triana {

std::string_view task_state_name(TaskState state) noexcept {
  switch (state) {
    case TaskState::kNotInitialized:
      return "NOT_INITIALIZED";
    case TaskState::kNotExecutable:
      return "NOT_EXECUTABLE";
    case TaskState::kScheduled:
      return "SCHEDULED";
    case TaskState::kRunning:
      return "RUNNING";
    case TaskState::kPaused:
      return "PAUSED";
    case TaskState::kComplete:
      return "COMPLETE";
    case TaskState::kResetting:
      return "RESETTING";
    case TaskState::kReset:
      return "RESET";
    case TaskState::kError:
      return "ERROR";
    case TaskState::kSuspended:
      return "SUSPENDED";
    case TaskState::kUnknown:
      return "UNKNOWN";
    case TaskState::kLock:
      return "LOCK";
  }
  return "?";
}

}  // namespace stampede::triana
