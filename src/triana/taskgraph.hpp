#pragma once
// Triana task graphs: tasks connected by cables, possibly nested.
//
// "A task graph contains tasks, which may be another task graph (i.e. a
// sub-workflow, which can contain a sub-workflow, and so on)" (§V). Here
// a sub-workflow is represented by a task whose unit, when processed,
// asks the runtime (scheduler / TrianaCloud) to execute a child graph —
// the meta-workflow pattern of §V-D builds on this.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/errors.hpp"
#include "triana/state.hpp"
#include "triana/unit.hpp"

namespace stampede::triana {

using TaskIndex = std::size_t;

struct Cable {
  TaskIndex from = 0;
  TaskIndex to = 0;
};

class TaskGraph;

struct Task {
  std::string name;
  std::unique_ptr<Unit> unit;
  TaskState state = TaskState::kNotInitialized;
  /// Set when this task wraps a sub-workflow (owned by the graph).
  std::unique_ptr<TaskGraph> subgraph;
  /// Runtime workflow generation (§V-D: "the creation and execution of a
  /// workflow during the run of a parent workflow"): invoked with the
  /// task's input data when it fires; the produced graph becomes the
  /// task's sub-workflow.
  std::function<std::unique_ptr<TaskGraph>(const Data&)> subgraph_factory;
  /// Continuous mode: how many firings this task performs per run
  /// (single-step mode always fires exactly once).
  int firings = 1;
};

class TaskGraph {
 public:
  explicit TaskGraph(std::string name) : name_(std::move(name)) {}

  TaskGraph(TaskGraph&&) = default;
  TaskGraph& operator=(TaskGraph&&) = default;

  /// Adds a task; returns its index.
  TaskIndex add_task(std::string name, std::unique_ptr<Unit> unit);

  /// Adds a task that runs a nested sub-workflow. The wrapping unit's
  /// cost is charged on the hosting node before the child is launched.
  TaskIndex add_subworkflow(std::string name,
                            std::unique_ptr<TaskGraph> subgraph,
                            std::unique_ptr<Unit> wrapper);

  /// Adds a task whose sub-workflow is *generated at runtime* from its
  /// input data — the meta-workflow pattern of §V-D/§VI.
  TaskIndex add_dynamic_subworkflow(
      std::string name,
      std::function<std::unique_ptr<TaskGraph>(const Data&)> factory,
      std::unique_ptr<Unit> wrapper);

  /// Connects a data cable from `from`'s output to `to`'s input.
  /// Throws common::EngineError on out-of-range indices or self-loops.
  void connect(TaskIndex from, TaskIndex to);

  /// Sets continuous-mode firing count for a task (≥1).
  void set_firings(TaskIndex task, int firings);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t task_count() const noexcept {
    return tasks_.size();
  }
  [[nodiscard]] Task& task(TaskIndex i) { return tasks_.at(i); }
  [[nodiscard]] const Task& task(TaskIndex i) const { return tasks_.at(i); }
  [[nodiscard]] const std::vector<Cable>& cables() const noexcept {
    return cables_;
  }

  /// Indexes of tasks feeding `task` / fed by `task`.
  [[nodiscard]] std::vector<TaskIndex> inputs_of(TaskIndex task) const;
  [[nodiscard]] std::vector<TaskIndex> outputs_of(TaskIndex task) const;

  /// Topological order; throws common::EngineError when the graph has a
  /// cycle (only legal in continuous mode, which does not call this).
  [[nodiscard]] std::vector<TaskIndex> topological_order() const;

  /// True when any cable participates in a cycle.
  [[nodiscard]] bool has_cycle() const;

 private:
  std::string name_;
  std::vector<Task> tasks_;
  std::vector<Cable> cables_;
};

}  // namespace stampede::triana
