#pragma once
// The Triana scheduler (paper §V, Fig. 5): controls the start/stop/reset
// of a task graph lifecycle, runs Runnable Instances, and feeds Execution
// Events to listeners (among them the StampedeLog).
//
// One Scheduler executes one task graph once ("If the workflow is re-run,
// this is considered to be a new workflow", §V-B). Tasks execute on a
// processor-sharing node — "localhost" for desktop runs, a TrianaCloud
// worker for distributed bundles.
//
// Modes (§V-A): single-step (each component scheduled to execute once,
// like a DAG) and continuous (components fire repeatedly as data chunks
// stream through; every firing is one invocation of the job instance).

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/uuid.hpp"
#include "sim/node.hpp"
#include "triana/listener.hpp"
#include "triana/stampede_log.hpp"
#include "triana/taskgraph.hpp"

namespace stampede::triana {

enum class Mode { kSingleStep, kContinuous };

struct SchedulerOptions {
  Mode mode = Mode::kSingleStep;
  /// Scheduling overhead between readiness and node submission, drawn
  /// uniformly — the sub-100ms "queue time" of the paper's Table IV.
  double overhead_lo = 0.02;
  double overhead_hi = 0.10;
  std::string site;  ///< Site label for host.info events.
};

class Scheduler {
 public:
  using CompletionFn = std::function<void(sim::SimTime end, int status)>;
  /// Invoked when a sub-workflow task fires. The handler must arrange
  /// execution of `child` and call `done(end, status)` when finished; it
  /// returns the UUID it assigned to the child run (logged through
  /// on_subworkflow / xwf.map.subwf_job).
  using SubworkflowHandler = std::function<common::Uuid(
      TaskIndex, TaskGraph& child, Data inputs,
      std::function<void(sim::SimTime, int)> done)>;

  Scheduler(sim::EventLoop& loop, common::Rng& rng, sim::PsNode& node,
            TaskGraph& graph, SchedulerOptions options = {});

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void add_listener(RunListener& listener) { listeners_.push_back(&listener); }
  void set_plan_info(PlanInfo info) { plan_info_ = std::move(info); }
  void set_subworkflow_handler(SubworkflowHandler handler) {
    subworkflow_handler_ = std::move(handler);
  }

  /// Begins execution (emits plan + xwf.start, schedules source tasks).
  /// Throws common::EngineError for a cyclic graph in single-step mode.
  void start(CompletionFn on_complete);

  /// Interactive pause (the GUI stop button, §V-A): tasks not yet
  /// running are held; running tasks finish their current invocation.
  void request_pause();

  /// Releases held tasks.
  void request_resume();

  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] int status() const noexcept { return status_; }
  [[nodiscard]] const TaskGraph& graph() const noexcept { return *graph_; }

 private:
  struct TaskRuntime {
    int remaining_firings = 1;
    int fired = 0;
    std::vector<std::deque<Data>> input_queues;  ///< One per input cable.
    std::vector<TaskIndex> input_tasks;
    bool in_flight = false;  ///< Currently queued/running on the node.
    bool started = false;    ///< main.start already emitted.
    sim::SimTime inv_start = 0.0;  ///< Start of the current invocation.
  };

  void set_state(TaskIndex task, TaskState next);
  void emit_event(TaskIndex task, TaskState old_state, TaskState new_state);
  [[nodiscard]] bool can_fire(TaskIndex task) const;
  void try_fire(TaskIndex task);
  void fire(TaskIndex task);
  void complete_firing(TaskIndex task, sim::SimTime start, sim::SimTime end,
                       double cpu, Data inputs);
  void deliver_outputs(TaskIndex task, const Data& outputs);
  void finish_task(TaskIndex task, bool ok);
  void check_done();
  void pump_ready();

  sim::EventLoop* loop_;
  common::Rng* rng_;
  sim::PsNode* node_;
  TaskGraph* graph_;
  SchedulerOptions options_;
  PlanInfo plan_info_;
  std::vector<RunListener*> listeners_;
  SubworkflowHandler subworkflow_handler_;
  CompletionFn on_complete_;

  std::vector<TaskRuntime> runtime_;
  std::size_t outstanding_ = 0;  ///< Firings + sub-workflows in flight.
  bool paused_ = false;
  bool finished_ = false;
  bool started_ = false;
  int status_ = 0;
};

/// Default sub-workflow handler: runs the child inline on the same node
/// with its own Scheduler and StampedeLog writing to `sink`.
/// `uuid_seed` controls child UUID assignment deterministically.
class InlineSubworkflowRunner {
 public:
  InlineSubworkflowRunner(sim::EventLoop& loop, common::Rng& rng,
                          sim::PsNode& node, nl::EventSink& sink,
                          common::UuidGenerator& uuids,
                          common::Uuid root_xwf_id)
      : loop_(&loop),
        rng_(&rng),
        node_(&node),
        sink_(&sink),
        uuids_(&uuids),
        root_(root_xwf_id) {}

  /// Binds this runner as the handler of `parent`, parenting children to
  /// `parent_uuid`.
  void attach(Scheduler& parent, common::Uuid parent_uuid,
              SchedulerOptions child_options = {});

  /// Runs `child` (recursively wiring grandchildren) and returns its
  /// assigned UUID. `done` fires at child workflow end.
  common::Uuid run_child(TaskGraph& child, common::Uuid parent_uuid,
                         SchedulerOptions options,
                         std::function<void(sim::SimTime, int)> done);

 private:
  sim::EventLoop* loop_;
  common::Rng* rng_;
  sim::PsNode* node_;
  nl::EventSink* sink_;
  common::UuidGenerator* uuids_;
  common::Uuid root_;
  // Children kept alive until the loop drains.
  std::vector<std::unique_ptr<Scheduler>> children_;
  std::vector<std::unique_ptr<StampedeLog>> logs_;
};

}  // namespace stampede::triana
