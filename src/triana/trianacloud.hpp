#pragma once
// TrianaCloud: the broker + worker-node substrate of the DART experiment.
//
// "A final task in the workflow sends each of these bundles to the
// TrianaCloud Broker via an HTTP POST. The Broker is then responsible for
// each sub-workflow's execution" (§VI). The deployment modeled here is
// the paper's: 8 cloud nodes, 1 core per instance, with sub-workflow
// tasks running "4 at a time on the compute node" (§VI-A).

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/uuid.hpp"
#include "netlogger/sink.hpp"
#include "sim/node.hpp"
#include "triana/scheduler.hpp"

namespace stampede::triana {

struct CloudOptions {
  int nodes = 8;
  int slots_per_node = 4;      ///< Concurrent tasks per node.
  double cores_per_node = 1.0; ///< "1 core per instance".
  /// Bundles a worker executes at once. The DART deployment ran one
  /// bundle per node at a time (its 16 tasks "4 at a time"); excess
  /// bundles wait at the broker.
  int bundles_per_node = 1;
  std::string site = "trianacloud";
  std::string node_prefix = "trianaworker";
  /// Bundle transfer + broker dispatch latency (the HTTP POST and SHIWA
  /// bundle unpacking), drawn uniformly per bundle.
  double dispatch_lo = 0.5;
  double dispatch_hi = 2.0;
};

struct CloudStats {
  std::uint64_t bundles_submitted = 0;
  std::uint64_t bundles_completed = 0;
  std::uint64_t bundles_failed = 0;
};

class TrianaCloud {
 public:
  TrianaCloud(sim::EventLoop& loop, common::Rng& rng, nl::EventSink& sink,
              common::UuidGenerator& uuids, common::Uuid root_xwf_id,
              CloudOptions options = {});

  TrianaCloud(const TrianaCloud&) = delete;
  TrianaCloud& operator=(const TrianaCloud&) = delete;

  /// Makes `parent`'s sub-workflow tasks submit their child graphs as
  /// bundles to this cloud.
  void attach(Scheduler& parent, common::Uuid parent_uuid,
              SchedulerOptions bundle_options = {});

  /// Dispatches one bundle: picks the least-loaded worker, charges the
  /// dispatch latency, then runs the child graph there with its own
  /// Scheduler + StampedeLog. Returns the child run's UUID.
  common::Uuid submit_bundle(TaskGraph& child, common::Uuid parent_uuid,
                             SchedulerOptions options,
                             std::function<void(sim::SimTime, int)> done);

  [[nodiscard]] const std::vector<std::unique_ptr<sim::PsNode>>& workers()
      const noexcept {
    return workers_;
  }
  [[nodiscard]] const CloudStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CloudOptions& options() const noexcept {
    return options_;
  }

  /// Bundles waiting at the broker for a free worker.
  [[nodiscard]] std::size_t pending_bundles() const noexcept {
    return pending_.size();
  }

 private:
  struct PendingBundle {
    TaskGraph* child = nullptr;
    StampedeLog* log = nullptr;
    SchedulerOptions options;
    std::function<void(sim::SimTime, int)> done;
    common::Uuid uuid;
  };

  /// Index of a worker with spare bundle capacity, or npos.
  [[nodiscard]] std::size_t free_worker() const;
  void launch(std::size_t worker, PendingBundle bundle);
  void on_bundle_finished(std::size_t worker);

  sim::EventLoop* loop_;
  common::Rng* rng_;
  nl::EventSink* sink_;
  common::UuidGenerator* uuids_;
  common::Uuid root_;
  CloudOptions options_;
  std::vector<std::unique_ptr<sim::PsNode>> workers_;
  std::vector<int> active_bundles_;  ///< Per worker.
  std::deque<PendingBundle> pending_;
  std::size_t round_robin_ = 0;
  CloudStats stats_;
  std::vector<std::unique_ptr<Scheduler>> bundles_;
  std::vector<std::unique_ptr<StampedeLog>> logs_;
};

}  // namespace stampede::triana
