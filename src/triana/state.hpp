#pragma once
// Triana task states and execution events (paper §V-B).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sim/event_loop.hpp"

namespace stampede::triana {

/// The states natively recognised by Triana's workflow and task listener
/// interfaces (paper §V-B, verbatim list).
enum class TaskState : std::uint8_t {
  kNotInitialized,
  kNotExecutable,
  kScheduled,
  kRunning,
  kPaused,
  kComplete,
  kResetting,
  kReset,
  kError,
  kSuspended,
  kUnknown,
  kLock,
};

[[nodiscard]] std::string_view task_state_name(TaskState state) noexcept;

/// A state transition of one task, carrying the previous state "giving
/// some context as to the flow of the workflow" (§V-B).
struct ExecutionEvent {
  sim::SimTime time = 0.0;
  std::string task_name;
  TaskState old_state = TaskState::kNotInitialized;
  TaskState new_state = TaskState::kNotInitialized;
};

}  // namespace stampede::triana
