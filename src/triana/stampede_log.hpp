#pragma once
// StampedeLog: converts Triana execution events to Stampede events (§V-B).
//
// Held by the Scheduler exactly as in Fig. 5; the produced LogRecords go
// to an EventSink (file, AMQP appender, or both).
//
// Mapping implemented (from §V-B):
//   * plan time  → stampede.wf.plan, task.info/.edge, job.info/.edge,
//                  wf.map.task_job (tasks↔jobs are 1:1 in Triana)
//   * graph RUNNING → stampede.xwf.start
//   * task SCHEDULED ("WOKEN") → job_inst.submit.start + submit.end
//   * RUNNING (prev SCHEDULED)  → job_inst.main.start
//   * RUNNING (prev PAUSED)     → job_inst.held.end
//   * PAUSED                    → job_inst.held.start
//   * data received / processed → inv.start / inv.end
//   * COMPLETE                  → main.term(0) + main.end(exitcode)
//   * ERROR                     → main.term(-1) + main.end(-1)
//   * graph done → stampede.xwf.end (status 0 or -1)

#include <map>
#include <optional>
#include <string>

#include "common/uuid.hpp"
#include "netlogger/sink.hpp"
#include "triana/listener.hpp"

namespace stampede::triana {

class StampedeLog final : public RunListener {
 public:
  struct Identity {
    common::Uuid xwf_id;
    std::optional<common::Uuid> parent_xwf_id;
    std::optional<common::Uuid> root_xwf_id;
    std::string dax_label;
  };

  StampedeLog(nl::EventSink& sink, Identity identity)
      : sink_(&sink), identity_(std::move(identity)) {}

  /// Job identifier written to stampede.job.info: Triana job names are
  /// type-qualified, e.g. "processing.exec0", "file.zipper" (Table III).
  [[nodiscard]] static std::string job_id_for(const TaskGraph& graph,
                                              TaskIndex task);

  // RunListener --------------------------------------------------------------
  void on_plan(const TaskGraph& graph, const PlanInfo& info,
               sim::SimTime t) override;
  void on_workflow_start(sim::SimTime t) override;
  void on_workflow_end(sim::SimTime t, int status) override;
  void on_execution_event(const TaskGraph& graph, const ExecutionEvent& event,
                          TaskIndex task) override;
  void on_invocation_start(const TaskGraph& graph,
                           const InvocationInfo& info) override;
  void on_invocation_end(const TaskGraph& graph,
                         const InvocationInfo& info) override;
  void on_host(const TaskGraph& graph, TaskIndex task,
               const std::string& hostname, const std::string& site,
               sim::SimTime t) override;
  void on_subworkflow(const TaskGraph& graph, TaskIndex task,
                      const common::Uuid& child_uuid, sim::SimTime t) override;

  [[nodiscard]] const Identity& identity() const noexcept {
    return identity_;
  }

 private:
  nl::LogRecord base(sim::SimTime t, std::string_view event) const;
  nl::LogRecord job_inst(sim::SimTime t, std::string_view event,
                         const TaskGraph& graph, TaskIndex task) const;
  void attach_std_streams(nl::LogRecord& record, TaskIndex task) const;

  nl::EventSink* sink_;
  Identity identity_;
  /// Triana has no retries: every task's single job instance is seq 1.
  static constexpr std::int64_t kSubmitSeq = 1;
  std::map<TaskIndex, int> exitcodes_;  ///< Last invocation exit per task.
  std::map<TaskIndex, std::string> stdout_;  ///< Captured unit stdout.
  std::map<TaskIndex, std::string> stderr_;  ///< Captured unit stderr.
};

}  // namespace stampede::triana
