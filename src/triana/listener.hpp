#pragma once
// Listener interface between the Triana scheduler and monitoring code.
//
// Most callbacks correspond 1:1 to Triana Execution Events (§V-B); the
// rest carry "the events required for the schema compliance, but ... not
// directly related to Triana events" (Fig. 5) — plan-time structure,
// invocation records, host placement and sub-workflow parentage.

#include <string>

#include "triana/state.hpp"
#include "triana/taskgraph.hpp"

namespace stampede::triana {

struct PlanInfo {
  std::string user;
  std::string planner_version = "stampede-cpp/triana-1.0";
  std::string submit_dir;
};

struct InvocationInfo {
  TaskIndex task = 0;
  int inv_seq = 1;           ///< Invocation number within the job instance.
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;    ///< Only meaningful on invocation end.
  double cpu_seconds = 0.0;  ///< Modeled CPU demand of this firing.
  int exitcode = 0;
  std::string stdout_text;
  std::string stderr_text;
};

class RunListener {
 public:
  virtual ~RunListener() = default;

  /// Fired immediately before the task graph's state is set to RUNNING:
  /// "the logging object records the workflow planning events, including
  /// the Task, Edge, and Job descriptions" (§V-B).
  virtual void on_plan(const TaskGraph& graph, const PlanInfo& info,
                       sim::SimTime t) = 0;

  virtual void on_workflow_start(sim::SimTime t) = 0;
  virtual void on_workflow_end(sim::SimTime t, int status) = 0;

  /// Raw Triana state transition.
  virtual void on_execution_event(const TaskGraph& graph,
                                  const ExecutionEvent& event,
                                  TaskIndex task) = 0;

  /// The task's unit began / finished processing one chunk of data.
  virtual void on_invocation_start(const TaskGraph& graph,
                                   const InvocationInfo& info) = 0;
  virtual void on_invocation_end(const TaskGraph& graph,
                                 const InvocationInfo& info) = 0;

  /// The task was placed on a concrete host.
  virtual void on_host(const TaskGraph& graph, TaskIndex task,
                       const std::string& hostname, const std::string& site,
                       sim::SimTime t) = 0;

  /// A sub-workflow was created for `task`; `child_uuid` identifies it.
  virtual void on_subworkflow(const TaskGraph& graph, TaskIndex task,
                              const common::Uuid& child_uuid,
                              sim::SimTime t) = 0;
};

/// No-op base for listeners interested in a subset of callbacks.
class RunListenerBase : public RunListener {
 public:
  void on_plan(const TaskGraph&, const PlanInfo&, sim::SimTime) override {}
  void on_workflow_start(sim::SimTime) override {}
  void on_workflow_end(sim::SimTime, int) override {}
  void on_execution_event(const TaskGraph&, const ExecutionEvent&,
                          TaskIndex) override {}
  void on_invocation_start(const TaskGraph&, const InvocationInfo&) override {}
  void on_invocation_end(const TaskGraph&, const InvocationInfo&) override {}
  void on_host(const TaskGraph&, TaskIndex, const std::string&,
               const std::string&, sim::SimTime) override {}
  void on_subworkflow(const TaskGraph&, TaskIndex, const common::Uuid&,
                      sim::SimTime) override {}
};

}  // namespace stampede::triana
