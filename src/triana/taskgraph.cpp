#include "triana/taskgraph.hpp"

#include <algorithm>
#include <deque>

namespace stampede::triana {

using common::EngineError;

TaskIndex TaskGraph::add_task(std::string name, std::unique_ptr<Unit> unit) {
  Task task;
  task.name = std::move(name);
  task.unit = std::move(unit);
  tasks_.push_back(std::move(task));
  return tasks_.size() - 1;
}

TaskIndex TaskGraph::add_subworkflow(std::string name,
                                     std::unique_ptr<TaskGraph> subgraph,
                                     std::unique_ptr<Unit> wrapper) {
  const TaskIndex index = add_task(std::move(name), std::move(wrapper));
  tasks_[index].subgraph = std::move(subgraph);
  return index;
}

TaskIndex TaskGraph::add_dynamic_subworkflow(
    std::string name,
    std::function<std::unique_ptr<TaskGraph>(const Data&)> factory,
    std::unique_ptr<Unit> wrapper) {
  const TaskIndex index = add_task(std::move(name), std::move(wrapper));
  tasks_[index].subgraph_factory = std::move(factory);
  return index;
}

void TaskGraph::connect(TaskIndex from, TaskIndex to) {
  if (from >= tasks_.size() || to >= tasks_.size()) {
    throw EngineError("taskgraph " + name_ + ": cable endpoint out of range");
  }
  if (from == to) {
    throw EngineError("taskgraph " + name_ + ": self-loop cable on task '" +
                      tasks_[from].name + "'");
  }
  cables_.push_back({from, to});
}

void TaskGraph::set_firings(TaskIndex task, int firings) {
  if (task >= tasks_.size() || firings < 1) {
    throw EngineError("taskgraph " + name_ + ": bad set_firings call");
  }
  tasks_[task].firings = firings;
}

std::vector<TaskIndex> TaskGraph::inputs_of(TaskIndex task) const {
  std::vector<TaskIndex> in;
  for (const auto& cable : cables_) {
    if (cable.to == task) in.push_back(cable.from);
  }
  return in;
}

std::vector<TaskIndex> TaskGraph::outputs_of(TaskIndex task) const {
  std::vector<TaskIndex> out;
  for (const auto& cable : cables_) {
    if (cable.from == task) out.push_back(cable.to);
  }
  return out;
}

std::vector<TaskIndex> TaskGraph::topological_order() const {
  std::vector<std::size_t> indegree(tasks_.size(), 0);
  for (const auto& cable : cables_) ++indegree[cable.to];
  std::deque<TaskIndex> ready;
  for (TaskIndex i = 0; i < tasks_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<TaskIndex> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskIndex next = ready.front();
    ready.pop_front();
    order.push_back(next);
    for (const auto& cable : cables_) {
      if (cable.from == next && --indegree[cable.to] == 0) {
        ready.push_back(cable.to);
      }
    }
  }
  if (order.size() != tasks_.size()) {
    throw EngineError("taskgraph " + name_ +
                      ": cycle detected (single-step mode requires a DAG)");
  }
  return order;
}

bool TaskGraph::has_cycle() const {
  try {
    (void)topological_order();
    return false;
  } catch (const EngineError&) {
    return true;
  }
}

}  // namespace stampede::triana
