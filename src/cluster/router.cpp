#include "cluster/router.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/hash.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::cluster {
namespace {

using namespace std::chrono_literals;

struct RouterTelemetry {
  telemetry::Counter& events_routed =
      telemetry::registry().counter("stampede_cluster_events_routed_total");
  telemetry::Counter& apply_batches =
      telemetry::registry().counter("stampede_cluster_apply_batches_total");
  telemetry::Counter& acks =
      telemetry::registry().counter("stampede_cluster_acks_total");
  telemetry::Counter& remote_queries =
      telemetry::registry().counter("stampede_cluster_remote_queries_total");
  telemetry::Counter& failovers =
      telemetry::registry().counter("stampede_cluster_failovers_total");
  telemetry::Gauge& inflight =
      telemetry::registry().gauge("stampede_cluster_inflight");
};

RouterTelemetry& router_telemetry() {
  static RouterTelemetry tele;
  return tele;
}

}  // namespace

Router::Router(ShardMap map, RouterOptions options)
    : map_(std::move(map)), options_(options) {
  peers_.reserve(map_.placements().size());
  for (const Placement& placement : map_.placements()) {
    auto peer = std::make_unique<Peer>();
    peer->placement = placement;
    connect_peer(*peer, placement.primary);
    peers_.push_back(std::move(peer));
  }
}

Router::~Router() {
  for (auto& peer : peers_) {
    if (peer->link) peer->link->close();
  }
  // Join reader threads here, not in ~peers_: a reader observing the
  // close fires the down handler, which broadcasts inflight_cv_ — a
  // member declared after peers_ and therefore destroyed first.
  for (auto& peer : peers_) peer->link.reset();
}

void Router::connect_peer(Peer& peer, const HostAddr& addr) {
  peer.link = std::make_unique<Link>(addr, options_.link);
  peer.link->start(
      [this](const net::Frame& frame) {
        if (frame.type == net::FrameType::kClusterAck) on_ack_frame(frame);
      },
      [this] {
        // Wake blocked producers/drainers; they drive the failover.
        inflight_cv_.notify_all();
      });
}

void Router::on_ack_frame(const net::Frame& frame) {
  std::vector<std::uint64_t> tags;
  if (!parse_cluster_ack(frame, &tags)) return;
  std::vector<std::uint64_t> bus_tags;
  {
    const std::scoped_lock lock{inflight_mutex_};
    for (const std::uint64_t tag : tags) {
      const auto it = inflight_.find(tag);
      if (it == inflight_.end()) continue;  // Duplicate ack after failover.
      if (it->second.bus_tag != 0) bus_tags.push_back(it->second.bus_tag);
      inflight_.erase(it);
    }
    router_telemetry().inflight.set(
        static_cast<std::int64_t>(inflight_.size()));
  }
  router_telemetry().acks.inc(tags.size());
  inflight_cv_.notify_all();
  if (!bus_tags.empty()) {
    std::function<void(std::uint64_t)> cb;
    {
      const std::scoped_lock lock{ack_cb_mutex_};
      cb = ack_cb_;
    }
    if (cb) {
      for (const std::uint64_t bus_tag : bus_tags) cb(bus_tag);
    }
  }
}

void Router::set_ack_callback(std::function<void(std::uint64_t)> cb) {
  const std::scoped_lock lock{ack_cb_mutex_};
  ack_cb_ = std::move(cb);
}

bool Router::process(const nl::LogRecord& record,
                     const telemetry::TraceStamps* trace, bool redelivered,
                     std::uint64_t ack_tag) {
  (void)trace;  // Cross-process stage latencies are the hosts' own.
  if (finished_) return false;
  const std::size_t shard = route_map_.route(
      record, [this](std::string_view key) {
        return static_cast<std::size_t>(common::fnv1a64(key) %
                                        map_.total_shards());
      });

  // In-flight window: block while full, driving failover if a dead
  // host is what keeps the window from draining.
  for (;;) {
    {
      std::unique_lock lock{inflight_mutex_};
      if (inflight_.size() < options_.max_inflight) break;
      inflight_cv_.wait_for(lock, 200ms);
      if (inflight_.size() < options_.max_inflight) break;
    }
    for (auto& peer : peers_) ensure_alive(*peer);
  }

  std::uint64_t tag = 0;
  {
    const std::scoped_lock lock{inflight_mutex_};
    tag = next_tag_++;
    inflight_.emplace(tag, InFlight{record, redelivered, shard, ack_tag});
    router_telemetry().inflight.set(
        static_cast<std::int64_t>(inflight_.size()));
  }
  bool full = false;
  {
    const std::scoped_lock lock{batches_mutex_};
    auto& batch = batches_[shard];
    batch.push_back(ApplyItem{record, redelivered, tag});
    full = batch.size() >= options_.apply_batch_max;
  }
  router_telemetry().events_routed.inc();
  if (full) flush_shard(shard);
  return true;
}

void Router::flush_shard(std::size_t shard) {
  // Liveness check BEFORE taking the batch out: if this drives a
  // failover, do_failover replays the still-pending items from the
  // in-flight map with redelivered=true (and clears the batch), so the
  // hosts' archive probes dedup them. Swapping first would double-send
  // the batch — once via the replay, once here without the redelivered
  // mark.
  Peer& peer = *peers_[map_.placement_of(shard)];
  ensure_alive(peer);
  std::vector<ApplyItem> batch;
  {
    const std::scoped_lock lock{batches_mutex_};
    auto& pending = batches_[shard];
    if (pending.empty()) return;
    batch.swap(pending);
  }
  if (!peer.link->send(encode_cluster_apply(
          0, static_cast<std::uint32_t>(shard), batch))) {
    // Link died under us. Every item is registered in-flight, so the
    // failover replay re-sends them; nothing to salvage here.
    ensure_alive(peer);
    return;
  }
  router_telemetry().apply_batches.inc();
}

void Router::flush_hint() {
  if (finished_) return;
  for (std::size_t shard = 0; shard < map_.total_shards(); ++shard) {
    flush_shard(shard);
  }
  send_flush_hints();
}

void Router::send_flush_hints() {
  const std::vector<ApplyItem> empty;
  for (std::size_t shard = 0; shard < map_.total_shards(); ++shard) {
    Peer& peer = *peers_[map_.placement_of(shard)];
    if (peer.link) {
      (void)peer.link->send(
          encode_cluster_apply(0, static_cast<std::uint32_t>(shard), empty));
    }
  }
}

void Router::finish() {
  if (finished_) return;
  finished_ = true;
  for (std::size_t shard = 0; shard < map_.total_shards(); ++shard) {
    flush_shard(shard);
  }
  send_flush_hints();

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  auto next_hint = std::chrono::steady_clock::now() + 500ms;
  for (;;) {
    {
      std::unique_lock lock{inflight_mutex_};
      if (inflight_.empty()) return;
      inflight_cv_.wait_for(lock, 100ms);
      if (inflight_.empty()) return;
    }
    for (auto& peer : peers_) ensure_alive(*peer);
    const auto now = std::chrono::steady_clock::now();
    if (now >= next_hint) {
      // Re-nudge: a freshly promoted follower has its own batch state.
      send_flush_hints();
      next_hint = now + 500ms;
    }
    if (now >= deadline) {
      std::size_t left = 0;
      {
        const std::scoped_lock lock{inflight_mutex_};
        left = inflight_.size();
      }
      throw ClusterError{"cluster: drain timed out with " +
                         std::to_string(left) + " events in flight"};
    }
  }
}

void Router::ensure_alive(Peer& peer) {
  if (peer.link && peer.link->alive()) return;
  do_failover(peer);
}

void Router::do_failover(Peer& peer) {
  const std::scoped_lock lock{peer.failover_mutex};
  if (peer.link && peer.link->alive()) return;  // Raced; already recovered.
  if (peer.failed_over || !peer.placement.follower) {
    throw ClusterError{"cluster: placement " +
                       (peer.failed_over && peer.placement.follower
                            ? peer.placement.follower->to_string()
                            : peer.placement.primary.to_string()) +
                       " lost with no failover path"};
  }

  auto link = std::make_unique<Link>(*peer.placement.follower, options_.link);
  link->start(
      [this](const net::Frame& frame) {
        if (frame.type == net::FrameType::kClusterAck) on_ack_frame(frame);
      },
      [this] { inflight_cv_.notify_all(); });

  // Promote: the follower recovers the replicated WALs (tolerating a
  // torn trailing record) and starts serving these shards.
  std::vector<std::uint32_t> shards;
  shards.reserve(peer.placement.shards.size());
  for (const std::size_t shard : peer.placement.shards) {
    shards.push_back(static_cast<std::uint32_t>(shard));
  }
  const std::uint32_t channel = link->next_channel();
  const net::Frame reply =
      link->request(channel, encode_cluster_promote(channel, shards));
  std::vector<PromoteResult> results;
  if (reply.type != net::FrameType::kOk ||
      !parse_cluster_promote_ok(reply, &results)) {
    throw ClusterError{"cluster: promote of " +
                       peer.placement.follower->to_string() + " failed"};
  }

  peer.link = std::move(link);
  peer.failed_over = true;
  router_telemetry().failovers.inc();

  // Replay every un-acked event for these shards in original dispatch
  // order (std::map iterates in wire-tag order) with redelivered=true;
  // the loaders' archive probe dedups anything the dead primary had
  // already committed and replicated. Unsent batch remnants are
  // dropped — their events are in the in-flight map too.
  {
    const std::scoped_lock batches_lock{batches_mutex_};
    for (const std::size_t shard : peer.placement.shards) {
      batches_[shard].clear();
    }
  }
  std::map<std::size_t, std::vector<ApplyItem>> replay;
  {
    const std::scoped_lock inflight_lock{inflight_mutex_};
    for (auto& [tag, entry] : inflight_) {
      if (map_.placement_of(entry.shard) != map_.placement_of(
              peer.placement.shards.front())) {
        continue;
      }
      entry.redelivered = true;
      replay[entry.shard].push_back(ApplyItem{entry.record, true, tag});
    }
  }
  for (auto& [shard, items] : replay) {
    for (std::size_t start = 0; start < items.size();
         start += options_.apply_batch_max) {
      const std::size_t count =
          std::min(options_.apply_batch_max, items.size() - start);
      const std::vector<ApplyItem> chunk{
          items.begin() + static_cast<std::ptrdiff_t>(start),
          items.begin() + static_cast<std::ptrdiff_t>(start + count)};
      if (!peer.link->send(encode_cluster_apply(
              0, static_cast<std::uint32_t>(shard), chunk))) {
        throw ClusterError{"cluster: replay to promoted follower " +
                           peer.placement.follower->to_string() + " failed"};
      }
      router_telemetry().apply_batches.inc();
    }
  }
  (void)peer.link->send(encode_cluster_apply(
      0, static_cast<std::uint32_t>(peer.placement.shards.front()),
      std::vector<ApplyItem>{}));
}

net::Frame Router::request_on(
    std::size_t shard,
    const std::function<std::string(std::uint32_t channel)>& build) {
  Peer& peer = *peers_[map_.placement_of(shard)];
  for (int attempt = 0;; ++attempt) {
    ensure_alive(peer);
    const std::uint32_t channel = peer.link->next_channel();
    try {
      return peer.link->request(channel, build(channel));
    } catch (const ClusterError&) {
      // Retry exactly once, and only when the link itself died (the
      // failover path); a live link rejecting the request is final.
      if (attempt > 0 || peer.link->alive()) throw;
    }
  }
}

std::size_t Router::RemoteBackend::shard_count() const {
  return router_->map_.total_shards();
}

db::ResultSet Router::RemoteBackend::execute_on(
    std::size_t shard, const db::Select& select) const {
  router_telemetry().remote_queries.inc();
  const net::Frame reply = router_->request_on(shard, [&](std::uint32_t ch) {
    return encode_cluster_query(ch, static_cast<std::uint32_t>(shard), select);
  });
  db::ResultSet rs;
  if (reply.type != net::FrameType::kClusterResult ||
      !parse_cluster_result(reply, &rs)) {
    throw ClusterError{"cluster: malformed query result for shard " +
                       std::to_string(shard)};
  }
  return rs;
}

std::vector<std::uint64_t> Router::RemoteBackend::table_versions(
    const std::vector<std::string>& names) const {
  std::vector<std::uint64_t> all;
  all.reserve(names.size() * router_->map_.total_shards());
  for (std::size_t shard = 0; shard < router_->map_.total_shards(); ++shard) {
    const net::Frame reply =
        router_->request_on(shard, [&](std::uint32_t ch) {
          return encode_cluster_versions(
              ch, static_cast<std::uint32_t>(shard), names);
        });
    std::vector<std::uint64_t> versions;
    if (reply.type != net::FrameType::kClusterVersionsOk ||
        !parse_cluster_versions_ok(reply, &versions)) {
      throw ClusterError{"cluster: malformed version stamp for shard " +
                         std::to_string(shard)};
    }
    all.insert(all.end(), versions.begin(), versions.end());
  }
  return all;
}

HostShardStats Router::remote_stats(std::size_t shard) {
  const net::Frame reply = request_on(shard, [&](std::uint32_t ch) {
    return encode_cluster_stats(ch, static_cast<std::uint32_t>(shard));
  });
  HostShardStats stats;
  if (reply.type != net::FrameType::kClusterStatsOk ||
      !parse_cluster_stats_ok(reply, &stats)) {
    throw ClusterError{"cluster: malformed stats for shard " +
                       std::to_string(shard)};
  }
  return stats;
}

std::vector<Router::PlacementStatus> Router::status() const {
  std::vector<PlacementStatus> out;
  out.reserve(peers_.size());
  for (const auto& peer : peers_) {
    const std::scoped_lock lock{peer->failover_mutex};
    PlacementStatus status;
    status.shards = peer->placement.shards;
    status.failed_over = peer->failed_over;
    status.addr = peer->failed_over && peer->placement.follower
                      ? *peer->placement.follower
                      : peer->placement.primary;
    status.connected = peer->link && peer->link->alive();
    out.push_back(std::move(status));
  }
  return out;
}

bool Router::all_connected() const {
  for (const auto& peer : peers_) {
    const std::scoped_lock lock{peer->failover_mutex};
    if (!peer->link || !peer->link->alive()) return false;
  }
  return true;
}

std::size_t Router::inflight() const {
  const std::scoped_lock lock{inflight_mutex_};
  return inflight_.size();
}

}  // namespace stampede::cluster
