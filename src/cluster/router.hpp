#pragma once
// cluster::Router — the client-side brain of the distributed archive
// (DESIGN.md §14).
//
// Owns the shard map and one Link per placement. Two faces:
//
//   Ingest (loader::EventSink): the dispatcher thread routes each BP
//   event with the SAME WorkflowRouteMap + FNV-1a hash a local
//   ShardedLoader uses (so a fleet archive is byte-identical to the
//   local one), batches per shard into kClusterApply frames, and
//   tracks every in-flight event until the shard host acks its commit.
//   Bus ack-tags release only then — ack-after-remote-commit. The
//   in-flight window is bounded; process() blocks at the cap.
//
//   Query (query::ShardBackend via backend()): QueryExecutor's
//   scatter-gather machinery runs unchanged — partials execute
//   remotely via kClusterQuery, the merge/tail runs here, and the
//   version-keyed QueryCache stamps come from kClusterVersions.
//
// Failover: when a placement's link dies and the placement has a
// follower, the router connects to the follower, sends kClusterPromote
// (the follower recovers the replicated WALs), then re-sends every
// un-acked event for those shards in original order with
// redelivered=true — the loader's archive-probing dedup makes the
// replay idempotent. One failover per placement; losing the promoted
// follower too is fatal.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/link.hpp"
#include "cluster/shard_map.hpp"
#include "cluster/wire.hpp"
#include "loader/event_sink.hpp"
#include "loader/route_map.hpp"
#include "query/shard_backend.hpp"

namespace stampede::cluster {

struct RouterOptions {
  /// Events routed but not yet acked by a shard host before process()
  /// blocks (the end-to-end backpressure bound).
  std::size_t max_inflight = 8192;
  /// Most events packed into one kClusterApply frame per shard.
  std::size_t apply_batch_max = 64;
  /// finish() waits this long for the fleet to drain before giving up.
  int drain_timeout_ms = 60000;
  Link::Options link;
};

class Router : public loader::EventSink {
 public:
  /// Connects to every placement's primary (bounded jittered retries
  /// per Link). Throws ClusterError when any host stays unreachable.
  explicit Router(ShardMap map, RouterOptions options = {});
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // -- loader::EventSink (ONE dispatcher thread) ---------------------------

  bool process(const nl::LogRecord& record,
               const telemetry::TraceStamps* trace = nullptr,
               bool redelivered = false, std::uint64_t ack_tag = 0) override;
  void set_ack_callback(std::function<void(std::uint64_t)> cb) override;
  void flush_hint() override;
  /// Flushes, nudges the hosts, and blocks until every in-flight event
  /// is acked (driving failover if a host dies meanwhile). Throws
  /// ClusterError when the fleet cannot drain within the timeout.
  void finish() override;

  // -- query face (any thread) ---------------------------------------------

  /// ShardBackend over the fleet; hand to query::QueryInterface /
  /// QueryExecutor. Valid for the router's lifetime.
  [[nodiscard]] const query::ShardBackend& backend() const noexcept {
    return backend_;
  }

  /// Remote loader statistics of one shard (kClusterStats).
  [[nodiscard]] HostShardStats remote_stats(std::size_t shard);

  // -- health --------------------------------------------------------------

  struct PlacementStatus {
    HostAddr addr;             ///< Current primary (follower after failover).
    std::vector<std::size_t> shards;
    bool connected = false;
    bool failed_over = false;
  };
  [[nodiscard]] std::vector<PlacementStatus> status() const;
  /// Every placement link alive — the /readyz condition.
  [[nodiscard]] bool all_connected() const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return map_.total_shards();
  }
  [[nodiscard]] std::size_t inflight() const;

 private:
  struct Peer {
    Placement placement;
    std::unique_ptr<Link> link;
    bool failed_over = false;
    std::mutex failover_mutex;  ///< Serializes do_failover per peer.
  };

  struct InFlight {
    nl::LogRecord record;
    bool redelivered = false;
    std::size_t shard = 0;
    std::uint64_t bus_tag = 0;
  };

  class RemoteBackend : public query::ShardBackend {
   public:
    explicit RemoteBackend(Router& router) : router_(&router) {}
    [[nodiscard]] std::size_t shard_count() const override;
    [[nodiscard]] db::ResultSet execute_on(std::size_t shard,
                                           const db::Select& select)
        const override;
    [[nodiscard]] std::vector<std::uint64_t> table_versions(
        const std::vector<std::string>& names) const override;

   private:
    Router* router_;
  };

  void connect_peer(Peer& peer, const HostAddr& addr);
  void on_ack_frame(const net::Frame& frame);
  /// Dead link → promote the follower and replay un-acked events.
  /// Throws ClusterError when no failover path remains.
  void ensure_alive(Peer& peer);
  void do_failover(Peer& peer);
  void flush_shard(std::size_t shard);
  void send_flush_hints();
  [[nodiscard]] net::Frame request_on(std::size_t shard,
                                      const std::function<std::string(
                                          std::uint32_t channel)>& build);

  ShardMap map_;
  RouterOptions options_;
  std::vector<std::unique_ptr<Peer>> peers_;
  RemoteBackend backend_{*this};

  // Dispatcher-thread-only routing state.
  loader::WorkflowRouteMap route_map_;
  bool finished_ = false;

  /// Per-shard pending apply batches. Mutex-guarded (not dispatcher-
  /// only) because a failover triggered from a query thread drains the
  /// affected shards' unsent batches into its replay.
  std::mutex batches_mutex_;
  std::unordered_map<std::size_t, std::vector<ApplyItem>> batches_;

  // Shared in-flight window. std::map: iteration order == wire-tag
  // order == original dispatch order, which is what failover replays.
  mutable std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::map<std::uint64_t, InFlight> inflight_;
  std::uint64_t next_tag_ = 1;

  std::mutex ack_cb_mutex_;
  std::function<void(std::uint64_t)> ack_cb_;
};

}  // namespace stampede::cluster
