#pragma once
// HTTP visibility for the cluster router (DESIGN.md §14): /clusterz
// reports the shard map, per-placement connectivity and failover
// state; /readyz (registered via the shared health routes) answers 503
// until every shard-host link is alive — so an orchestrator only sends
// traffic to a router that can actually reach its fleet.

#include "dashboard/http_server.hpp"

namespace stampede::cluster {

class Router;

/// Registers /clusterz plus /healthz and /readyz (readiness =
/// Router::all_connected). `router` must outlive the server.
void register_cluster_routes(dash::HttpServer& server, Router& router);

}  // namespace stampede::cluster
