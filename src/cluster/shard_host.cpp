#include "cluster/shard_host.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

#include "db/sharded_database.hpp"
#include "orm/stampede_tables.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::cluster {
namespace {

using namespace std::chrono_literals;

struct HostTelemetry {
  telemetry::Counter& apply_frames =
      telemetry::registry().counter("stampede_cluster_host_apply_frames_total");
  telemetry::Counter& queries =
      telemetry::registry().counter("stampede_cluster_host_queries_total");
  telemetry::Counter& promotions =
      telemetry::registry().counter("stampede_cluster_host_promotions_total");
  telemetry::Counter& replication_bytes = telemetry::registry().counter(
      "stampede_cluster_replication_bytes_total");
  telemetry::Counter& replication_stalls = telemetry::registry().counter(
      "stampede_cluster_replication_stalls_total");
};

HostTelemetry& host_telemetry() {
  static HostTelemetry tele;
  return tele;
}

std::uint64_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

}  // namespace

ShardHost::ShardHost(ShardHostOptions options)
    : options_(std::move(options)) {}

ShardHost::~ShardHost() {
  if (abandoned_.load()) return;  // kill() already tore everything down.
  stop();
}

void ShardHost::open_shard(std::size_t index) {
  auto hosted = std::make_unique<Hosted>();
  hosted->index = index;
  const std::string path = db::ShardedDatabase::shard_wal_path(
      options_.wal_base, index, options_.total_shards);
  hosted->db = std::make_unique<db::Database>(path);
  // Strided PKs: ids allocated here interleave exactly like shard
  // `index` of a local N-shard archive — byte-identical WALs depend
  // on it, and shard_index_for_id() stays the owner inverse.
  hosted->db->set_pk_allocation(static_cast<std::int64_t>(index),
                                static_cast<std::int64_t>(
                                    options_.total_shards));
  orm::create_stampede_tables(*hosted->db);
  hosted->recovered_ops = hosted->db->recover();
  if (hosted->db->row_count("schema_info") == 0) {
    hosted->db->insert("schema_info",
                       {{"version", db::Value{orm::kSchemaVersion}}});
  }
  hosted->wal_offset.store(file_size_or_zero(path));
  hosted->loader =
      std::make_unique<loader::StampedeLoader>(*hosted->db, options_.loader);
  Hosted* h = hosted.get();
  hosted->loader->set_ack_callback([h](std::uint64_t tag) {
    // Fires on the lane thread (inside process/flush); flushed to the
    // origin connection by flush_acks() right after.
    h->pending_acks.push_back(tag);
  });
  const std::scoped_lock lock{hosted_mutex_};
  hosted_.emplace(index, std::move(hosted));
}

void ShardHost::start() {
  if (running_.exchange(true)) return;
  listen_fd_ = common::listen_tcp(options_.host, options_.port, 64, &port_);
  for (const std::size_t index : options_.shards) open_shard(index);
  start_replication();
  {
    const std::scoped_lock lock{hosted_mutex_};
    for (auto& [index, hosted] : hosted_) {
      Hosted* h = hosted.get();
      h->lane = std::thread([this, h] { run_lane(*h); });
    }
  }
  loop_.start();
  for (std::size_t i = 0; i < std::max<std::size_t>(1, options_.query_threads);
       ++i) {
    pool_.emplace_back([this] { pool_worker(); });
  }
  start_compactor();
  acceptor_ = std::thread([this] { accept_loop(); });
}

void ShardHost::start_compactor() {
  if (options_.compact_interval_ms == 0) return;
  std::vector<db::StorageShard*> shards;
  {
    const std::scoped_lock lock{hosted_mutex_};
    for (auto& [index, hosted] : hosted_) shards.push_back(hosted->db.get());
  }
  if (shards.empty()) return;
  db::CompactorOptions copts;
  copts.seal = options_.seal;
  copts.interval_ms = options_.compact_interval_ms;
  const std::scoped_lock lock{compactor_mutex_};
  compactor_.reset();  // Join the old sweep before re-targeting shards.
  compactor_ = std::make_unique<db::Compactor>(std::move(shards), copts);
}

void ShardHost::start_replication() {
  if (!options_.follower_addr) return;
  repl_link_ = std::make_unique<Link>(*options_.follower_addr);
  repl_link_->start(
      [this](const net::Frame& frame) {
        if (frame.type != net::FrameType::kClusterReplicateAck) return;
        std::uint32_t shard = 0;
        std::uint64_t offset = 0;
        if (!parse_cluster_replicate_ack(frame, &shard, &offset)) return;
        const std::scoped_lock lock{hosted_mutex_};
        const auto it = hosted_.find(shard);
        if (it == hosted_.end()) return;
        Hosted& h = *it->second;
        {
          const std::scoped_lock repl_lock{h.repl_mutex};
          if (offset > h.follower_acked.load()) h.follower_acked.store(offset);
        }
        h.repl_cv.notify_all();
      },
      [this] {
        repl_down_.store(true);
        // Wake every lane parked on a replication ack; they stop
        // gating (and count stalls) once the link is gone.
        const std::scoped_lock lock{hosted_mutex_};
        for (auto& [index, hosted] : hosted_) hosted->repl_cv.notify_all();
      });

  // Bootstrap: ship each shard's whole WAL from offset 0 (the follower
  // truncates and resyncs), then install the sink so every commit's
  // bytes stream incrementally. No writes can interleave here — lanes
  // and the acceptor have not started yet.
  const std::scoped_lock lock{hosted_mutex_};
  for (auto& [index, hosted] : hosted_) {
    const std::string path = db::ShardedDatabase::shard_wal_path(
        options_.wal_base, index, options_.total_shards);
    std::string content;
    if (std::ifstream in{path, std::ios::binary}; in) {
      content.assign(std::istreambuf_iterator<char>{in},
                     std::istreambuf_iterator<char>{});
    }
    if (!repl_link_->send(encode_cluster_replicate(
            static_cast<std::uint32_t>(index), 0, content))) {
      throw ClusterError{"cluster: replication bootstrap to " +
                         options_.follower_addr->to_string() + " failed"};
    }
    host_telemetry().replication_bytes.inc(content.size());
    Hosted* h = hosted.get();
    const auto shard_u32 = static_cast<std::uint32_t>(index);
    hosted->db->set_wal_sink([this, h, shard_u32](std::string_view bytes) {
      // Under the shard's exclusive lock: offsets are assigned in
      // exactly file order, and sends are serialized with commits.
      const std::uint64_t offset = h->wal_offset.fetch_add(bytes.size());
      if (repl_down_.load()) return;
      if (!repl_link_->send(
              encode_cluster_replicate(shard_u32, offset, bytes))) {
        repl_down_.store(true);
        return;
      }
      host_telemetry().replication_bytes.inc(bytes.size());
    });
  }
}

void ShardHost::run_lane(Hosted& hosted) {
  auto lane_poll = std::chrono::milliseconds(50);
  if (options_.loader.flush_deadline_ms != 0) {
    lane_poll = std::chrono::milliseconds(std::clamp<std::size_t>(
        options_.loader.flush_deadline_ms / 2, 1, 100));
  }
  for (;;) {
    auto item = hosted.queue.pop_for(lane_poll);
    if (abandoned_.load()) return;  // Crash simulation: no final flush.
    if (!item) {
      if (hosted.queue.closed() && hosted.queue.size() == 0) break;
      {
        const std::scoped_lock lock{hosted.loader_mutex};
        hosted.loader->maybe_deadline_flush();
      }
      flush_acks(hosted);
      continue;
    }
    {
      const std::scoped_lock lock{hosted.loader_mutex};
      if (item->flush_marker) {
        if (hosted.queue.size() == 0) hosted.loader->idle_flush();
      } else {
        hosted.loader->process(item->apply.record, nullptr,
                               item->apply.redelivered, item->apply.ack_tag);
        hosted.loader->maybe_deadline_flush();
      }
    }
    flush_acks(hosted);
  }
  {
    const std::scoped_lock lock{hosted.loader_mutex};
    hosted.loader->finish();
  }
  flush_acks(hosted);
}

void ShardHost::flush_acks(Hosted& hosted) {
  if (hosted.pending_acks.empty()) return;
  // Semi-synchronous gate: an ack leaves this host only once the
  // follower has made the WAL bytes of the releasing commit durable.
  // A dead replication link stops gating (availability over the extra
  // copy); a slow one is bounded by the timeout and counted.
  if (repl_link_ && !repl_down_.load()) {
    const std::uint64_t target = hosted.wal_offset.load();
    std::unique_lock lock{hosted.repl_mutex};
    const bool acked = hosted.repl_cv.wait_for(
        lock, std::chrono::milliseconds(options_.replication_ack_timeout_ms),
        [&] {
          return hosted.follower_acked.load() >= target || repl_down_.load() ||
                 abandoned_.load();
        });
    if (!acked || (hosted.follower_acked.load() < target && !repl_down_.load()
                   && !abandoned_.load())) {
      host_telemetry().replication_stalls.inc();
    }
  }
  std::shared_ptr<net::Connection> origin;
  {
    const std::scoped_lock lock{hosted.origin_mutex};
    origin = hosted.origin.lock();
  }
  if (!origin) return;  // Keep tags until a router is attached again.
  if (origin->send(encode_cluster_ack(hosted.pending_acks))) {
    hosted.pending_acks.clear();
  }
}

void ShardHost::accept_loop() {
  while (running_.load()) {
    int accept_err = 0;
    auto client = common::accept_client(listen_fd_.get(), 50, &accept_err);
    if (!client.valid()) {
      if (accept_err != 0) std::this_thread::sleep_for(50ms);
      continue;
    }
    attach(std::move(client));
  }
}

void ShardHost::attach(common::SocketFd fd) {
  auto hconn = std::make_shared<HostConn>();
  hconn->conn = std::make_shared<net::Connection>(
      loop_, std::move(fd), net::Connection::Options{});
  {
    const std::scoped_lock lock{conns_mutex_};
    conns_[hconn.get()] = hconn;
  }
  loop_.defer([this, hconn] {
    hconn->conn->start(
        [this, hconn](std::string_view data) { return on_data(hconn, data); },
        [this, hconn] {
          const std::scoped_lock lock{conns_mutex_};
          conns_.erase(hconn.get());
        });
  });
}

std::size_t ShardHost::on_data(const std::shared_ptr<HostConn>& hconn,
                               std::string_view data) {
  if (hconn->dying) return data.size();
  std::size_t eaten = 0;
  while (!hconn->conn->closed()) {
    net::Frame frame;
    std::size_t consumed = 0;
    const auto status = net::decode_frame(data.substr(eaten), consumed, frame);
    if (status == net::DecodeStatus::kNeedMore) break;
    if (status == net::DecodeStatus::kError) {
      hconn->dying = true;
      hconn->conn->close();
      return data.size();
    }
    eaten += consumed;
    if (!handle_frame(hconn, frame)) {
      hconn->dying = true;
      hconn->conn->close_after_flush();
      eaten = data.size();
      break;
    }
  }
  return eaten;
}

bool ShardHost::handle_frame(const std::shared_ptr<HostConn>& hconn,
                             const net::Frame& frame) {
  using net::FrameType;
  if (!hconn->hello_done) {
    std::uint16_t version = 0;
    std::uint32_t requested = 0;
    if (frame.type != FrameType::kHello ||
        !net::parse_hello(frame, &version, &requested) ||
        version != net::kProtocolVersion) {
      hconn->conn->send(net::encode_error(frame.channel, "expected hello"));
      return false;
    }
    hconn->hello_done = true;
    hconn->conn->send(net::encode_hello_ok(
        frame.channel, requested & net::kSupportedFeatures));
    return true;
  }
  switch (frame.type) {
    case FrameType::kHeartbeat:
      return true;
    case FrameType::kClusterApply:
      handle_apply(hconn, frame);
      return true;
    case FrameType::kClusterQuery: {
      std::uint32_t shard = 0;
      auto select = std::make_shared<db::Select>(std::string{});
      if (!parse_cluster_query(frame, &shard, select.get())) {
        hconn->conn->send(net::encode_error(frame.channel, "bad query"));
        return true;
      }
      Hosted* hosted = nullptr;
      {
        const std::scoped_lock lock{hosted_mutex_};
        const auto it = hosted_.find(shard);
        if (it != hosted_.end()) hosted = it->second.get();
      }
      if (hosted == nullptr) {
        hconn->conn->send(net::encode_error(
            frame.channel, "shard " + std::to_string(shard) + " not hosted"));
        return true;
      }
      auto conn = hconn->conn;
      const std::uint32_t channel = frame.channel;
      pool_jobs_.push([hosted, select, conn, channel] {
        host_telemetry().queries.inc();
        try {
          const db::ResultSet rs = hosted->db->execute(*select);
          conn->send(encode_cluster_result(channel, rs));
        } catch (const std::exception& e) {
          conn->send(net::encode_error(channel, e.what()));
        }
      });
      return true;
    }
    case FrameType::kClusterVersions: {
      std::uint32_t shard = 0;
      auto tables = std::make_shared<std::vector<std::string>>();
      if (!parse_cluster_versions(frame, &shard, tables.get())) {
        hconn->conn->send(net::encode_error(frame.channel, "bad versions"));
        return true;
      }
      Hosted* hosted = nullptr;
      {
        const std::scoped_lock lock{hosted_mutex_};
        const auto it = hosted_.find(shard);
        if (it != hosted_.end()) hosted = it->second.get();
      }
      if (hosted == nullptr) {
        hconn->conn->send(net::encode_error(
            frame.channel, "shard " + std::to_string(shard) + " not hosted"));
        return true;
      }
      auto conn = hconn->conn;
      const std::uint32_t channel = frame.channel;
      pool_jobs_.push([hosted, tables, conn, channel] {
        try {
          conn->send(encode_cluster_versions_ok(
              channel, hosted->db->table_versions(*tables)));
        } catch (const std::exception& e) {
          conn->send(net::encode_error(channel, e.what()));
        }
      });
      return true;
    }
    case FrameType::kClusterStats: {
      std::uint32_t shard = 0;
      if (!parse_cluster_stats(frame, &shard)) {
        hconn->conn->send(net::encode_error(frame.channel, "bad stats"));
        return true;
      }
      Hosted* hosted = nullptr;
      {
        const std::scoped_lock lock{hosted_mutex_};
        const auto it = hosted_.find(shard);
        if (it != hosted_.end()) hosted = it->second.get();
      }
      if (hosted == nullptr) {
        hconn->conn->send(net::encode_error(
            frame.channel, "shard " + std::to_string(shard) + " not hosted"));
        return true;
      }
      auto conn = hconn->conn;
      const std::uint32_t channel = frame.channel;
      pool_jobs_.push([hosted, conn, channel] {
        HostShardStats stats;
        {
          const std::scoped_lock lock{hosted->loader_mutex};
          stats.loader = hosted->loader->stats();
        }
        stats.wal_truncated = hosted->db->wal_truncated_records();
        conn->send(encode_cluster_stats_ok(channel, stats));
      });
      return true;
    }
    case FrameType::kClusterReplicate:
      handle_replicate(hconn, frame);
      return true;
    case FrameType::kClusterPromote:
      handle_promote(hconn, frame);
      return true;
    default:
      hconn->conn->send(
          net::encode_error(frame.channel, "unexpected frame type"));
      return false;
  }
}

void ShardHost::handle_apply(const std::shared_ptr<HostConn>& hconn,
                             const net::Frame& frame) {
  std::uint32_t shard = 0;
  std::vector<ApplyItem> items;
  if (!parse_cluster_apply(frame, &shard, &items)) {
    hconn->conn->send(net::encode_error(frame.channel, "bad apply"));
    return;
  }
  Hosted* hosted = nullptr;
  {
    const std::scoped_lock lock{hosted_mutex_};
    const auto it = hosted_.find(shard);
    if (it != hosted_.end()) hosted = it->second.get();
  }
  if (hosted == nullptr) {
    hconn->conn->send(net::encode_error(
        frame.channel, "shard " + std::to_string(shard) + " not hosted"));
    return;
  }
  host_telemetry().apply_frames.inc();
  {
    const std::scoped_lock lock{hosted->origin_mutex};
    hosted->origin = hconn->conn;
  }
  if (items.empty()) {
    LaneItem marker;
    marker.flush_marker = true;
    hosted->queue.try_push(std::move(marker));
    return;
  }
  for (auto& item : items) {
    LaneItem lane_item;
    lane_item.apply = std::move(item);
    hosted->queue.push(std::move(lane_item));
  }
}

void ShardHost::handle_replicate(const std::shared_ptr<HostConn>& hconn,
                                 const net::Frame& frame) {
  std::uint32_t shard = 0;
  std::uint64_t offset = 0;
  std::string bytes;
  if (!parse_cluster_replicate(frame, &shard, &offset, &bytes)) {
    hconn->conn->send(net::encode_error(frame.channel, "bad replicate"));
    return;
  }
  const std::scoped_lock lock{replicas_mutex_};
  Replica& replica = replicas_[shard];
  if (replica.path.empty()) {
    replica.path = db::ShardedDatabase::shard_wal_path(
        options_.wal_base, shard, options_.total_shards);
  }
  if (offset == 0) {
    // Resync from scratch (the primary's bootstrap on link connect).
    if (replica.out.is_open()) replica.out.close();
    replica.out.open(replica.path, std::ios::binary | std::ios::trunc);
    replica.size = 0;
  } else if (!replica.out.is_open()) {
    replica.size = file_size_or_zero(replica.path);
    replica.out.open(replica.path, std::ios::binary | std::ios::app);
  }
  if (offset <= replica.size) {
    // Skip the prefix we already hold (idempotent overlap), append the
    // rest. A gap (offset > size) cannot be filled — ack what we have
    // and let the primary's stream continue; v1 never reorders.
    const std::uint64_t skip = replica.size - offset;
    if (skip < bytes.size()) {
      replica.out.write(bytes.data() + skip,
                        static_cast<std::streamsize>(bytes.size() - skip));
      replica.out.flush();
      replica.size += bytes.size() - skip;
    }
  }
  hconn->conn->send(encode_cluster_replicate_ack(shard, replica.size));
}

void ShardHost::handle_promote(const std::shared_ptr<HostConn>& hconn,
                               const net::Frame& frame) {
  std::vector<std::uint32_t> shards;
  if (!parse_cluster_promote(frame, &shards)) {
    hconn->conn->send(net::encode_error(frame.channel, "bad promote"));
    return;
  }
  auto conn = hconn->conn;
  const std::uint32_t channel = frame.channel;
  pool_jobs_.push([this, shards, conn, channel] {
    try {
      std::vector<PromoteResult> results;
      for (const std::uint32_t shard : shards) {
        {
          // Stop appending replicated bytes; the file is now an archive.
          const std::scoped_lock lock{replicas_mutex_};
          const auto it = replicas_.find(shard);
          if (it != replicas_.end() && it->second.out.is_open()) {
            it->second.out.close();
          }
        }
        // Opens + recovers the replicated WAL: a torn trailing record
        // (primary died mid-append) is tolerated and counted, exactly
        // like a local restart; anything torn mid-file throws and the
        // promotion is refused.
        open_shard(shard);
        Hosted* hosted = nullptr;
        {
          const std::scoped_lock lock{hosted_mutex_};
          hosted = hosted_.at(shard).get();
        }
        hosted->lane = std::thread([this, hosted] { run_lane(*hosted); });
        PromoteResult result;
        result.shard = shard;
        result.recovered_ops = hosted->recovered_ops;
        result.truncated_records = hosted->db->wal_truncated_records();
        results.push_back(result);
      }
      promoted_.store(true);
      start_compactor();  // The promoted shards now take live writes.
      host_telemetry().promotions.inc();
      conn->send(encode_cluster_promote_ok(channel, results));
    } catch (const std::exception& e) {
      conn->send(net::encode_error(channel, e.what()));
    }
  });
}

void ShardHost::pool_worker() {
  while (auto job = pool_jobs_.pop()) {
    (*job)();
  }
}

void ShardHost::stop() {
  const bool was_running = running_.exchange(false);
  {
    // Stop sweeping before the shards it targets start tearing down.
    const std::scoped_lock lock{compactor_mutex_};
    compactor_.reset();
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    // Close connections first: a lane blocked in an ack send unblocks.
    const std::scoped_lock lock{conns_mutex_};
    for (auto& [ptr, hconn] : conns_) hconn->conn->close();
  }
  if (repl_link_) repl_link_->close();
  {
    const std::scoped_lock lock{hosted_mutex_};
    for (auto& [index, hosted] : hosted_) hosted->queue.close();
  }
  std::vector<Hosted*> lanes;
  {
    const std::scoped_lock lock{hosted_mutex_};
    for (auto& [index, hosted] : hosted_) lanes.push_back(hosted.get());
  }
  for (Hosted* hosted : lanes) {
    if (hosted->lane.joinable()) hosted->lane.join();
  }
  pool_jobs_.close();
  for (auto& worker : pool_) {
    if (worker.joinable()) worker.join();
  }
  pool_.clear();
  if (was_running) loop_.stop();
}

void ShardHost::kill() {
  abandoned_.store(true);
  stop();
  // Simulate the crash: the loaders' buffered-but-uncommitted batches
  // must NOT flush, so their destructors never run. The leak is
  // deliberate and test-only.
  const std::scoped_lock lock{hosted_mutex_};
  for (auto& [index, hosted] : hosted_) {
    hosted->loader.release();  // NOLINT(bugprone-unused-return-value)
  }
}

}  // namespace stampede::cluster
