#include "cluster/cluster_routes.hpp"

#include "cluster/router.hpp"
#include "dashboard/json.hpp"
#include "dashboard/trace_routes.hpp"

namespace stampede::cluster {

void register_cluster_routes(dash::HttpServer& server, Router& router) {
  dash::register_health_routes(server,
                               [&router] { return router.all_connected(); });
  server.route("/clusterz", [&router](const dash::HttpRequest&) {
    dash::JsonWriter json;
    json.begin_object();
    json.key("total_shards")
        .value(static_cast<std::int64_t>(router.shard_count()));
    json.key("inflight").value(static_cast<std::int64_t>(router.inflight()));
    json.key("placements").begin_array();
    for (const auto& placement : router.status()) {
      json.begin_object();
      json.key("addr").value(placement.addr.to_string());
      json.key("connected").value(placement.connected);
      json.key("failed_over").value(placement.failed_over);
      json.key("shards").begin_array();
      for (const std::size_t shard : placement.shards) {
        json.value(static_cast<std::int64_t>(shard));
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
    return dash::HttpResponse::json(json.str());
  });
}

}  // namespace stampede::cluster
