#pragma once
// The router's static view of where shards live (DESIGN.md §14).
//
// A cluster spec names every shard exactly once, grouped into
// placements — one shard-host process per placement, optionally backed
// by a follower replica:
//
//   "0,1@127.0.0.1:7401/127.0.0.1:7411;2,3@127.0.0.1:7402"
//
// placement := shard[,shard...]@host:port[/follower_host:follower_port]
// spec      := placement[;placement...]
//
// The map is fixed for the life of the router (no rebalancing): shard
// ownership must agree with the FNV-1a routing hash and the per-shard
// WAL files, so moving a shard means replaying its WAL elsewhere —
// which is exactly what failover to the follower does.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/errors.hpp"

namespace stampede::cluster {

/// Errors raised by cluster components (spec parsing, connect retry
/// exhaustion, protocol violations).
class ClusterError : public common::StampedeError {
 public:
  using common::StampedeError::StampedeError;
};

struct HostAddr {
  std::string host;
  int port = 0;

  [[nodiscard]] std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
  friend bool operator==(const HostAddr&, const HostAddr&) = default;
};

/// Parses "host:port" (as used in cluster specs and --follower-addr).
/// Throws ClusterError on malformed input.
[[nodiscard]] HostAddr parse_addr(const std::string& text);

struct Placement {
  std::vector<std::size_t> shards;    ///< Global shard indexes served.
  HostAddr primary;
  std::optional<HostAddr> follower;   ///< Replica to promote on failure.
};

class ShardMap {
 public:
  /// Parses a cluster spec. Throws ClusterError unless every shard in
  /// [0, total) appears exactly once across the placements, where
  /// `total` is the highest shard index named plus one.
  [[nodiscard]] static ShardMap parse(const std::string& spec);

  [[nodiscard]] std::size_t total_shards() const noexcept { return total_; }
  [[nodiscard]] const std::vector<Placement>& placements() const noexcept {
    return placements_;
  }
  /// Index into placements() owning `shard`.
  [[nodiscard]] std::size_t placement_of(std::size_t shard) const {
    return owner_.at(shard);
  }

 private:
  std::vector<Placement> placements_;
  std::vector<std::size_t> owner_;  ///< shard -> placement index.
  std::size_t total_ = 0;
};

}  // namespace stampede::cluster
