#pragma once
// cluster::ShardHost — one process serving a subset of the archive's
// StorageShards over the cluster wire protocol (DESIGN.md §14).
//
// Two modes, one process shape:
//
//   Active: each hosted shard opens its WAL (the same
//   `<base>.<index>` file a local ShardedDatabase would use, with the
//   same strided PK allocation), runs a StampedeLoader on a dedicated
//   lane thread, and answers kClusterApply / kClusterQuery /
//   kClusterVersions / kClusterStats. Apply acks are released only
//   after the shard's commit — and, when a follower is attached, only
//   after the follower acknowledged the WAL bytes of that commit
//   (semi-synchronous replication), so an acked event survives losing
//   the primary.
//
//   Follower: a passive replica. It appends kClusterReplicate WAL
//   bytes to its own copy of each shard's WAL file and acks the
//   durable size. On kClusterPromote it opens the replicated WALs
//   (recover() tolerates a torn trailing record, exactly like a local
//   restart; mid-file corruption refuses the promotion), starts lanes
//   and serves as the new primary for those shards.
//
// Threading mirrors the bus server: a blocking acceptor feeds one
// epoll EventLoop that owns all connection state; queries run on a
// small pool so a scan never stalls the loop; each shard's lane thread
// owns its loader. APPLY frames enqueue to the lane (the router's
// in-flight cap bounds the queue); acks flow back from the lane.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/link.hpp"
#include "cluster/shard_map.hpp"
#include "cluster/wire.hpp"
#include "common/concurrent_queue.hpp"
#include "common/socket.hpp"
#include "db/compactor.hpp"
#include "db/database.hpp"
#include "loader/stampede_loader.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"

namespace stampede::cluster {

struct ShardHostOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read back with port().
  /// Base WAL path; hosted shard i uses
  /// db::ShardedDatabase::shard_wal_path(wal_base, i, total_shards).
  std::string wal_base;
  /// Global shard indexes this host serves (active mode). Empty +
  /// follower=true starts a pure replica that learns its shards from
  /// the replication stream.
  std::vector<std::size_t> shards;
  /// Fleet-wide shard count (PK striding + WAL naming must match the
  /// equivalent local ShardedDatabase run).
  std::size_t total_shards = 1;
  /// Start as a passive replica (kClusterReplicate/kClusterPromote).
  bool follower = false;
  /// Stream each hosted shard's WAL to this replica (active mode).
  std::optional<HostAddr> follower_addr;
  loader::LoaderOptions loader;
  /// How long an apply ack may wait on the follower's replication ack
  /// before it is released anyway (counted as a stall).
  int replication_ack_timeout_ms = 5000;
  std::size_t query_threads = 2;
  /// Background columnar compaction sweep period for hosted shards
  /// (db::Compactor, DESIGN.md §15). 0 disables compaction.
  std::uint64_t compact_interval_ms = 0;
  /// Seal tuning for the compactor (ignored when disabled).
  db::SealOptions seal;
};

class ShardHost {
 public:
  explicit ShardHost(ShardHostOptions options);
  ~ShardHost();

  ShardHost(const ShardHost&) = delete;
  ShardHost& operator=(const ShardHost&) = delete;

  /// Opens the hosted shards (active mode), connects the replication
  /// link, then begins accepting. Throws on WAL corruption or an
  /// unreachable follower.
  void start();

  /// Graceful: drains lanes (final flush), closes connections, joins
  /// everything. Idempotent; the destructor calls it.
  void stop();

  /// Crash simulation for failover tests: abandons the lanes without
  /// flushing (buffered-but-uncommitted batches are lost, like a real
  /// crash) and drops every connection so peers see EOF. The process
  /// object stays destructible.
  void kill();

  [[nodiscard]] int port() const noexcept { return port_; }
  /// True once a follower received a promote (diagnostics).
  [[nodiscard]] bool promoted() const noexcept { return promoted_.load(); }

 private:
  struct LaneItem {
    ApplyItem apply;
    bool flush_marker = false;
  };

  /// One hosted (active) shard: archive + loader lane + replication
  /// bookkeeping.
  struct Hosted {
    std::size_t index = 0;
    std::unique_ptr<db::Database> db;
    std::unique_ptr<loader::StampedeLoader> loader;
    /// Serializes lane loader calls with pool-thread stats reads.
    std::mutex loader_mutex;
    std::uint64_t recovered_ops = 0;  ///< WAL ops replayed at open.
    common::ConcurrentQueue<LaneItem> queue{0};  ///< Unbounded; router caps.
    std::thread lane;

    /// WAL byte offsets: size of the file (next append position) and
    /// the highest offset the follower has made durable.
    std::atomic<std::uint64_t> wal_offset{0};
    std::atomic<std::uint64_t> follower_acked{0};
    std::mutex repl_mutex;
    std::condition_variable repl_cv;

    /// Router connection to send acks to (last one that applied).
    std::mutex origin_mutex;
    std::weak_ptr<net::Connection> origin;

    /// Ack tags committed but not yet sent (filled by the loader's ack
    /// callback on the lane thread).
    std::vector<std::uint64_t> pending_acks;
  };

  /// One replicated (follower-mode) shard file.
  struct Replica {
    std::ofstream out;
    std::uint64_t size = 0;
    std::string path;
  };

  struct HostConn {
    std::shared_ptr<net::Connection> conn;
    bool hello_done = false;
    bool dying = false;
  };

  void open_shard(std::size_t index);
  void accept_loop();
  void attach(common::SocketFd fd);
  std::size_t on_data(const std::shared_ptr<HostConn>& hconn,
                      std::string_view data);
  bool handle_frame(const std::shared_ptr<HostConn>& hconn,
                    const net::Frame& frame);
  void handle_apply(const std::shared_ptr<HostConn>& hconn,
                    const net::Frame& frame);
  void handle_replicate(const std::shared_ptr<HostConn>& hconn,
                        const net::Frame& frame);
  void handle_promote(const std::shared_ptr<HostConn>& hconn,
                      const net::Frame& frame);
  void run_lane(Hosted& hosted);
  void flush_acks(Hosted& hosted);
  void start_replication();
  void start_compactor();
  void pool_worker();

  ShardHostOptions options_;
  common::SocketFd listen_fd_;
  int port_ = 0;

  net::EventLoop loop_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> abandoned_{false};
  std::atomic<bool> promoted_{false};

  std::unordered_map<std::size_t, std::unique_ptr<Hosted>> hosted_;
  std::mutex hosted_mutex_;  ///< Guards the map shape (promote adds).

  std::unordered_map<std::size_t, Replica> replicas_;
  std::mutex replicas_mutex_;  ///< Loop appends vs. pool-thread promote.

  std::unique_ptr<Link> repl_link_;
  std::atomic<bool> repl_down_{false};

  /// Sweeps hosted shards into columnar segments; rebuilt on promote.
  std::unique_ptr<db::Compactor> compactor_;
  std::mutex compactor_mutex_;

  common::ConcurrentQueue<std::function<void()>> pool_jobs_{0};
  std::vector<std::thread> pool_;

  std::mutex conns_mutex_;
  std::unordered_map<HostConn*, std::shared_ptr<HostConn>> conns_;
};

}  // namespace stampede::cluster
