#pragma once
// Payload codecs for the distributed-archive frames (DESIGN.md §14).
//
// The net layer reserves FrameType::kCluster* and negotiates
// kFeatureCluster; everything archive-specific — db::Value, db::Select
// expression trees, db::ResultSet, nl::LogRecord, loader stats — is
// encoded here so the bus wire protocol never learns about the archive.
//
// Layout reuses the frame primitives (big-endian ints, u32-length
// strings). Values are tag-prefixed (null/int/real/text); doubles
// travel as raw IEEE-754 bit patterns so a timestamp round-trips
// bit-exactly — the byte-identity guarantee for distributed vs local
// renders depends on this. Expression trees nest; the decoder carries a
// depth guard so a hostile payload cannot blow the stack.

#include <cstdint>
#include <string>
#include <vector>

#include "db/query.hpp"
#include "loader/stampede_loader.hpp"
#include "net/frame.hpp"
#include "netlogger/record.hpp"

namespace stampede::cluster {

// ---------------------------------------------------------------------------
// Scalar / tree codecs (shared building blocks)

void encode_value(std::string& out, const db::Value& value);
[[nodiscard]] bool decode_value(net::PayloadReader& reader, db::Value* out);

void encode_expr(std::string& out, const db::Expr& expr);
/// Fails on malformed payloads and on trees nested deeper than 64.
[[nodiscard]] bool decode_expr(net::PayloadReader& reader, db::ExprPtr* out,
                               int depth = 0);

void encode_select(std::string& out, const db::Select& select);
[[nodiscard]] bool decode_select(net::PayloadReader& reader, db::Select* out);

void encode_result_set(std::string& out, const db::ResultSet& rs);
[[nodiscard]] bool decode_result_set(net::PayloadReader& reader,
                                     db::ResultSet* out);

void encode_record(std::string& out, const nl::LogRecord& record);
[[nodiscard]] bool decode_record(net::PayloadReader& reader,
                                 nl::LogRecord* out);

// ---------------------------------------------------------------------------
// kClusterApply / kClusterAck — the ingest path

/// One routed BP event. `ack_tag` is the router's wire tag (unique per
/// router connection); the host echoes it in kClusterAck once the
/// event's rows are durably committed on the shard.
struct ApplyItem {
  nl::LogRecord record;
  bool redelivered = false;
  std::uint64_t ack_tag = 0;
};

/// count == 0 is a flush hint: commit pending batches, release acks.
[[nodiscard]] std::string encode_cluster_apply(
    std::uint32_t channel, std::uint32_t shard,
    const std::vector<ApplyItem>& items);
[[nodiscard]] bool parse_cluster_apply(const net::Frame& frame,
                                       std::uint32_t* shard,
                                       std::vector<ApplyItem>* items);

[[nodiscard]] std::string encode_cluster_ack(
    const std::vector<std::uint64_t>& tags);
[[nodiscard]] bool parse_cluster_ack(const net::Frame& frame,
                                     std::vector<std::uint64_t>* tags);

// ---------------------------------------------------------------------------
// kClusterQuery / kClusterResult — the scatter-gather read path

[[nodiscard]] std::string encode_cluster_query(std::uint32_t channel,
                                               std::uint32_t shard,
                                               const db::Select& select);
[[nodiscard]] bool parse_cluster_query(const net::Frame& frame,
                                       std::uint32_t* shard,
                                       db::Select* select);

[[nodiscard]] std::string encode_cluster_result(std::uint32_t channel,
                                                const db::ResultSet& rs);
[[nodiscard]] bool parse_cluster_result(const net::Frame& frame,
                                        db::ResultSet* rs);

// ---------------------------------------------------------------------------
// kClusterVersions / kClusterVersionsOk — cache stamps for QueryCache

[[nodiscard]] std::string encode_cluster_versions(
    std::uint32_t channel, std::uint32_t shard,
    const std::vector<std::string>& tables);
[[nodiscard]] bool parse_cluster_versions(const net::Frame& frame,
                                          std::uint32_t* shard,
                                          std::vector<std::string>* tables);

[[nodiscard]] std::string encode_cluster_versions_ok(
    std::uint32_t channel, const std::vector<std::uint64_t>& versions);
[[nodiscard]] bool parse_cluster_versions_ok(
    const net::Frame& frame, std::vector<std::uint64_t>* versions);

// ---------------------------------------------------------------------------
// kClusterReplicate / kClusterReplicateAck — WAL streaming

/// `offset` is the byte position in the shard's WAL file where `bytes`
/// begins. offset == 0 means "resync from scratch" (the follower
/// truncates). The follower acks with the file size it has made
/// durable, which doubles as the next expected offset.
[[nodiscard]] std::string encode_cluster_replicate(std::uint32_t shard,
                                                   std::uint64_t offset,
                                                   std::string_view bytes);
[[nodiscard]] bool parse_cluster_replicate(const net::Frame& frame,
                                           std::uint32_t* shard,
                                           std::uint64_t* offset,
                                           std::string* bytes);

[[nodiscard]] std::string encode_cluster_replicate_ack(std::uint32_t shard,
                                                       std::uint64_t offset);
[[nodiscard]] bool parse_cluster_replicate_ack(const net::Frame& frame,
                                               std::uint32_t* shard,
                                               std::uint64_t* offset);

// ---------------------------------------------------------------------------
// kClusterPromote — failover: follower opens its replica WALs and serves

[[nodiscard]] std::string encode_cluster_promote(
    std::uint32_t channel, const std::vector<std::uint32_t>& shards);
[[nodiscard]] bool parse_cluster_promote(const net::Frame& frame,
                                         std::vector<std::uint32_t>* shards);

/// Per-shard recovery outcome, carried in the kOk reply.
struct PromoteResult {
  std::uint32_t shard = 0;
  std::uint64_t recovered_ops = 0;
  std::uint64_t truncated_records = 0;  ///< Torn trailing records dropped.
};

[[nodiscard]] std::string encode_cluster_promote_ok(
    std::uint32_t channel, const std::vector<PromoteResult>& results);
[[nodiscard]] bool parse_cluster_promote_ok(
    const net::Frame& frame, std::vector<PromoteResult>* results);

// ---------------------------------------------------------------------------
// kClusterStats / kClusterStatsOk — remote loader statistics

[[nodiscard]] std::string encode_cluster_stats(std::uint32_t channel,
                                               std::uint32_t shard);
[[nodiscard]] bool parse_cluster_stats(const net::Frame& frame,
                                       std::uint32_t* shard);

struct HostShardStats {
  loader::LoaderStats loader;
  std::uint64_t wal_truncated = 0;
};

[[nodiscard]] std::string encode_cluster_stats_ok(std::uint32_t channel,
                                                  const HostShardStats& stats);
[[nodiscard]] bool parse_cluster_stats_ok(const net::Frame& frame,
                                          HostShardStats* stats);

}  // namespace stampede::cluster
