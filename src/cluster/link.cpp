#include "cluster/link.hpp"

#include <chrono>
#include <random>
#include <utility>

#include "common/rng.hpp"
#include "telemetry/metrics.hpp"

namespace stampede::cluster {
namespace {

using namespace std::chrono_literals;

telemetry::Counter& connect_retries_counter() {
  static telemetry::Counter& counter =
      telemetry::registry().counter("stampede_cluster_connect_retries_total");
  return counter;
}

/// Blocks until one whole frame arrives (pre-reader handshake phase).
bool read_frame_blocking(int fd, std::string& carry, net::Frame* out,
                         int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  char chunk[4096];
  for (;;) {
    std::size_t consumed = 0;
    switch (net::decode_frame(carry, consumed, *out)) {
      case net::DecodeStatus::kFrame:
        carry.erase(0, consumed);
        return true;
      case net::DecodeStatus::kError:
        return false;
      case net::DecodeStatus::kNeedMore:
        break;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::size_t received = 0;
    switch (common::recv_some(fd, chunk, sizeof chunk, 100, &received)) {
      case common::RecvStatus::kData:
        carry.append(chunk, received);
        break;
      case common::RecvStatus::kTimeout:
        break;
      case common::RecvStatus::kClosed:
      case common::RecvStatus::kError:
        return false;
    }
  }
}

}  // namespace

Link::Link(HostAddr addr, Options options)
    : addr_(std::move(addr)), options_(options) {
  common::Rng jitter{options_.jitter_seed != 0 ? options_.jitter_seed
                                               : std::random_device{}()};
  int backoff_ms = options_.backoff_ms;
  for (int attempt = 1;; ++attempt) {
    fd_ = common::connect_tcp(addr_.host, addr_.port);
    if (fd_.valid()) break;
    if (attempt >= options_.connect_attempts) {
      throw ClusterError{"cluster: cannot reach " + addr_.to_string() +
                         " after " + std::to_string(attempt) + " attempts"};
    }
    connect_retries_counter().inc();
    const auto delay = std::chrono::milliseconds(static_cast<std::int64_t>(
        static_cast<double>(backoff_ms) * jitter.uniform(0.8, 1.2)));
    std::this_thread::sleep_for(delay);
    backoff_ms = std::min(backoff_ms * 2, options_.max_backoff_ms);
  }

  // Versioned handshake; the cluster frames only exist on connections
  // where both sides advertised kFeatureCluster.
  const std::string hello = net::encode_hello(1, net::kSupportedFeatures);
  if (!common::send_all(fd_.get(), hello.data(), hello.size())) {
    throw ClusterError{"cluster: handshake send to " + addr_.to_string() +
                       " failed"};
  }
  std::string carry;
  net::Frame reply;
  if (!read_frame_blocking(fd_.get(), carry, &reply,
                           options_.request_timeout_ms)) {
    throw ClusterError{"cluster: no handshake reply from " +
                       addr_.to_string()};
  }
  std::uint16_t version = 0;
  std::uint32_t features = 0;
  if (reply.type != net::FrameType::kHelloOk ||
      !net::parse_hello_ok(reply, &version, &features) ||
      (features & net::kFeatureCluster) == 0) {
    throw ClusterError{"cluster: peer " + addr_.to_string() +
                       " does not speak the cluster protocol"};
  }
  // Any frames the peer pushed right behind HELLO_OK are re-presented
  // to the reader thread.
  carry_ = std::move(carry);
}

Link::~Link() {
  close();
  if (reader_thread_.joinable()) reader_thread_.join();
}

void Link::start(FrameHandler on_unsolicited, DownHandler on_down) {
  on_unsolicited_ = std::move(on_unsolicited);
  on_down_ = std::move(on_down);
  reader_thread_ = std::thread([this] { reader(); });
}

bool Link::send(std::string_view bytes) {
  const std::scoped_lock lock{send_mutex_};
  if (down_.load()) return false;
  if (!common::send_all(fd_.get(), bytes.data(), bytes.size())) {
    down_.store(true);
    return false;
  }
  return true;
}

std::uint32_t Link::next_channel() {
  const std::scoped_lock lock{pending_mutex_};
  // Channel 0 is reserved for unsolicited frames; skip it on wrap.
  if (++next_channel_ == 0) ++next_channel_;
  return next_channel_;
}

net::Frame Link::request(std::uint32_t channel, std::string_view bytes) {
  {
    const std::scoped_lock lock{pending_mutex_};
    pending_.emplace(channel, Pending{});
  }
  if (!send(bytes)) {
    const std::scoped_lock lock{pending_mutex_};
    pending_.erase(channel);
    throw ClusterError{"cluster: " + addr_.to_string() + " is down"};
  }
  std::unique_lock lock{pending_mutex_};
  const bool done = pending_cv_.wait_for(
      lock, std::chrono::milliseconds(options_.request_timeout_ms),
      [&] { return pending_[channel].done || down_.load(); });
  net::Frame reply = std::move(pending_[channel].reply);
  const bool completed = pending_[channel].done;
  pending_.erase(channel);
  lock.unlock();
  if (!done || !completed) {
    throw ClusterError{"cluster: request to " + addr_.to_string() +
                       (down_.load() ? " failed (link down)" : " timed out")};
  }
  if (reply.type == net::FrameType::kError) {
    net::PayloadReader reader{reply.payload};
    throw ClusterError{"cluster: " + addr_.to_string() +
                       " rejected request: " + reader.str()};
  }
  return reply;
}

void Link::close() {
  down_.store(true);
  fd_.shutdown_both();
  pending_cv_.notify_all();
}

void Link::mark_down() {
  down_.store(true);
  pending_cv_.notify_all();
  if (!down_fired_.exchange(true) && on_down_) on_down_();
}

void Link::dispatch(const net::Frame& frame) {
  if (frame.channel != 0) {
    const std::scoped_lock lock{pending_mutex_};
    const auto it = pending_.find(frame.channel);
    if (it != pending_.end()) {
      it->second.reply = frame;
      it->second.done = true;
      pending_cv_.notify_all();
    }
    return;
  }
  if (frame.type == net::FrameType::kHeartbeat) return;
  if (on_unsolicited_) on_unsolicited_(frame);
}

void Link::reader() {
  std::string buffer = std::move(carry_);
  char chunk[64 * 1024];
  while (!down_.load()) {
    // Drain every complete frame already buffered.
    for (;;) {
      std::size_t consumed = 0;
      net::Frame frame;
      const auto status = net::decode_frame(buffer, consumed, frame);
      if (status == net::DecodeStatus::kFrame) {
        buffer.erase(0, consumed);
        dispatch(frame);
        continue;
      }
      if (status == net::DecodeStatus::kError) {
        mark_down();
        return;
      }
      break;  // kNeedMore
    }
    std::size_t received = 0;
    switch (common::recv_some(fd_.get(), chunk, sizeof chunk, 100, &received)) {
      case common::RecvStatus::kData:
        buffer.append(chunk, received);
        break;
      case common::RecvStatus::kTimeout:
        break;
      case common::RecvStatus::kClosed:
      case common::RecvStatus::kError:
        mark_down();
        return;
    }
  }
  mark_down();
}

}  // namespace stampede::cluster
