#include "cluster/shard_map.hpp"

#include <algorithm>
#include <charconv>
#include <string_view>

namespace stampede::cluster {
namespace {

[[noreturn]] void fail(const std::string& spec, const std::string& why) {
  throw ClusterError{"cluster spec '" + spec + "': " + why};
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

bool parse_number(std::string_view text, std::size_t* out) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return false;
  *out = value;
  return true;
}

HostAddr parse_addr(const std::string& spec, std::string_view text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == text.size()) {
    fail(spec, "bad address '" + std::string{text} + "' (want host:port)");
  }
  std::size_t port = 0;
  if (!parse_number(text.substr(colon + 1), &port) || port == 0 ||
      port > 65535) {
    fail(spec, "bad port in '" + std::string{text} + "'");
  }
  return HostAddr{std::string{text.substr(0, colon)}, static_cast<int>(port)};
}

}  // namespace

HostAddr parse_addr(const std::string& text) {
  return parse_addr(text, text);
}

ShardMap ShardMap::parse(const std::string& spec) {
  ShardMap map;
  if (spec.empty()) fail(spec, "empty");
  for (const std::string_view part : split(spec, ';')) {
    if (part.empty()) fail(spec, "empty placement");
    const std::size_t at = part.find('@');
    if (at == std::string_view::npos) {
      fail(spec, "placement '" + std::string{part} + "' missing '@'");
    }
    Placement placement;
    for (const std::string_view shard_text : split(part.substr(0, at), ',')) {
      std::size_t shard = 0;
      if (!parse_number(shard_text, &shard)) {
        fail(spec, "bad shard index '" + std::string{shard_text} + "'");
      }
      placement.shards.push_back(shard);
    }
    if (placement.shards.empty()) fail(spec, "placement without shards");
    const std::string_view addrs = part.substr(at + 1);
    const std::size_t slash = addrs.find('/');
    placement.primary = parse_addr(spec, slash == std::string_view::npos
                                             ? addrs
                                             : addrs.substr(0, slash));
    if (slash != std::string_view::npos) {
      placement.follower = parse_addr(spec, addrs.substr(slash + 1));
    }
    map.placements_.push_back(std::move(placement));
  }

  // Coverage: every shard in [0, max+1) exactly once.
  std::size_t max_shard = 0;
  std::size_t named = 0;
  for (const auto& placement : map.placements_) {
    for (const std::size_t shard : placement.shards) {
      max_shard = std::max(max_shard, shard);
      ++named;
    }
  }
  map.total_ = max_shard + 1;
  if (named != map.total_) {
    fail(spec, "shards must cover 0.." + std::to_string(max_shard) +
                   " exactly once");
  }
  map.owner_.assign(map.total_, static_cast<std::size_t>(-1));
  for (std::size_t p = 0; p < map.placements_.size(); ++p) {
    for (const std::size_t shard : map.placements_[p].shards) {
      if (map.owner_[shard] != static_cast<std::size_t>(-1)) {
        fail(spec, "shard " + std::to_string(shard) + " named twice");
      }
      map.owner_[shard] = p;
    }
  }
  return map;
}

}  // namespace stampede::cluster
