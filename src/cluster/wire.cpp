#include "cluster/wire.hpp"

#include <bit>
#include <utility>

namespace stampede::cluster {
namespace {

using net::Frame;
using net::FrameType;
using net::PayloadReader;

// Expression trees come off the wire; past this nesting depth the
// decoder declares the payload hostile rather than recursing further.
constexpr int kMaxExprDepth = 64;

// Value tags. Ints travel as their two's-complement bit pattern in a
// u64; reals as raw IEEE-754 bits (bit-exact, NaN included).
constexpr std::uint8_t kValNull = 0;
constexpr std::uint8_t kValInt = 1;
constexpr std::uint8_t kValReal = 2;
constexpr std::uint8_t kValText = 3;

}  // namespace

// ---------------------------------------------------------------------------
// Scalars and trees

void encode_value(std::string& out, const db::Value& value) {
  if (value.is_null()) {
    net::put_u8(out, kValNull);
  } else if (value.is_int()) {
    net::put_u8(out, kValInt);
    net::put_u64(out, static_cast<std::uint64_t>(value.as_int()));
  } else if (value.is_real()) {
    net::put_u8(out, kValReal);
    net::put_f64(out, value.as_real());
  } else {
    net::put_u8(out, kValText);
    net::put_string(out, value.as_text());
  }
}

bool decode_value(PayloadReader& reader, db::Value* out) {
  switch (reader.u8()) {
    case kValNull:
      *out = db::Value::null();
      break;
    case kValInt:
      *out = db::Value{static_cast<std::int64_t>(reader.u64())};
      break;
    case kValReal:
      *out = db::Value{reader.f64()};
      break;
    case kValText:
      *out = db::Value{reader.str()};
      break;
    default:
      return false;
  }
  return reader.ok();
}

void encode_expr(std::string& out, const db::Expr& expr) {
  net::put_u8(out, static_cast<std::uint8_t>(expr.kind));
  net::put_u8(out, static_cast<std::uint8_t>(expr.op));
  net::put_string(out, expr.column);
  net::put_string(out, expr.column_rhs);
  encode_value(out, expr.literal);
  net::put_string(out, expr.pattern);
  net::put_u32(out, static_cast<std::uint32_t>(expr.in_values.size()));
  for (const auto& v : expr.in_values) encode_value(out, v);
  net::put_u32(out, static_cast<std::uint32_t>(expr.children.size()));
  for (const auto& child : expr.children) encode_expr(out, *child);
}

bool decode_expr(PayloadReader& reader, db::ExprPtr* out, int depth) {
  if (depth > kMaxExprDepth) return false;
  auto expr = std::make_shared<db::Expr>();
  const std::uint8_t kind = reader.u8();
  const std::uint8_t op = reader.u8();
  if (kind > static_cast<std::uint8_t>(db::Expr::Kind::kIn) ||
      op > static_cast<std::uint8_t>(db::CompareOp::kGe)) {
    return false;
  }
  expr->kind = static_cast<db::Expr::Kind>(kind);
  expr->op = static_cast<db::CompareOp>(op);
  expr->column = reader.str();
  expr->column_rhs = reader.str();
  if (!decode_value(reader, &expr->literal)) return false;
  expr->pattern = reader.str();
  const std::uint32_t n_in = reader.u32();
  if (!reader.ok()) return false;
  expr->in_values.reserve(n_in);
  for (std::uint32_t i = 0; i < n_in; ++i) {
    db::Value v;
    if (!decode_value(reader, &v)) return false;
    expr->in_values.push_back(std::move(v));
  }
  const std::uint32_t n_children = reader.u32();
  if (!reader.ok()) return false;
  expr->children.reserve(n_children);
  for (std::uint32_t i = 0; i < n_children; ++i) {
    db::ExprPtr child;
    if (!decode_expr(reader, &child, depth + 1)) return false;
    expr->children.push_back(std::move(child));
  }
  *out = std::move(expr);
  return reader.ok();
}

void encode_select(std::string& out, const db::Select& select) {
  net::put_string(out, select.table());
  net::put_string(out, select.alias());
  net::put_u32(out, static_cast<std::uint32_t>(select.selected().size()));
  for (const auto& col : select.selected()) net::put_string(out, col);
  net::put_u32(out, static_cast<std::uint32_t>(select.joins().size()));
  for (const auto& join : select.joins()) {
    net::put_string(out, join.table);
    net::put_string(out, join.alias);
    net::put_string(out, join.left_col);
    net::put_string(out, join.right_col);
    net::put_u8(out, join.left_outer ? 1 : 0);
  }
  net::put_u8(out, select.predicate() ? 1 : 0);
  if (select.predicate()) encode_expr(out, *select.predicate());
  net::put_u32(out, static_cast<std::uint32_t>(select.groups().size()));
  for (const auto& col : select.groups()) net::put_string(out, col);
  net::put_u32(out, static_cast<std::uint32_t>(select.aggs().size()));
  for (const auto& agg : select.aggs()) {
    net::put_u8(out, static_cast<std::uint8_t>(agg.fn));
    net::put_string(out, agg.column);
    net::put_string(out, agg.alias);
  }
  net::put_u32(out, static_cast<std::uint32_t>(select.orders().size()));
  for (const auto& order : select.orders()) {
    net::put_string(out, order.column);
    net::put_u8(out, order.descending ? 1 : 0);
  }
  net::put_u8(out, select.row_limit() ? 1 : 0);
  if (select.row_limit()) {
    net::put_u64(out, static_cast<std::uint64_t>(*select.row_limit()));
  }
  net::put_u8(out, select.is_distinct() ? 1 : 0);
}

bool decode_select(PayloadReader& reader, db::Select* out) {
  const std::string table = reader.str();
  const std::string alias = reader.str();
  if (!reader.ok()) return false;
  db::Select select{table, alias};
  const std::uint32_t n_cols = reader.u32();
  if (!reader.ok()) return false;
  std::vector<std::string> cols;
  cols.reserve(n_cols);
  for (std::uint32_t i = 0; i < n_cols && reader.ok(); ++i) {
    cols.push_back(reader.str());
  }
  if (!cols.empty()) select.columns(std::move(cols));
  const std::uint32_t n_joins = reader.u32();
  for (std::uint32_t i = 0; i < n_joins && reader.ok(); ++i) {
    const std::string jt = reader.str();
    const std::string ja = reader.str();
    const std::string left = reader.str();
    const std::string right = reader.str();
    const bool outer = reader.u8() != 0;
    if (outer) {
      select.left_join(jt, left, right, ja);
    } else {
      select.join(jt, left, right, ja);
    }
  }
  if (reader.u8() != 0) {
    db::ExprPtr predicate;
    if (!decode_expr(reader, &predicate)) return false;
    select.where(std::move(predicate));
  }
  const std::uint32_t n_groups = reader.u32();
  if (!reader.ok()) return false;
  std::vector<std::string> groups;
  groups.reserve(n_groups);
  for (std::uint32_t i = 0; i < n_groups && reader.ok(); ++i) {
    groups.push_back(reader.str());
  }
  if (!groups.empty()) select.group_by(std::move(groups));
  const std::uint32_t n_aggs = reader.u32();
  for (std::uint32_t i = 0; i < n_aggs && reader.ok(); ++i) {
    const std::uint8_t fn = reader.u8();
    const std::string column = reader.str();
    const std::string agg_alias = reader.str();
    if (fn > static_cast<std::uint8_t>(db::AggFn::kAvg)) return false;
    if (column.empty() && static_cast<db::AggFn>(fn) == db::AggFn::kCount) {
      select.count_all(agg_alias);
    } else {
      select.agg(static_cast<db::AggFn>(fn), column, agg_alias);
    }
  }
  const std::uint32_t n_orders = reader.u32();
  for (std::uint32_t i = 0; i < n_orders && reader.ok(); ++i) {
    const std::string column = reader.str();
    const bool desc = reader.u8() != 0;
    select.order_by(column, desc);
  }
  if (reader.u8() != 0) {
    select.limit(static_cast<std::size_t>(reader.u64()));
  }
  if (reader.u8() != 0) select.distinct();
  if (!reader.ok()) return false;
  *out = std::move(select);
  return true;
}

void encode_result_set(std::string& out, const db::ResultSet& rs) {
  net::put_u32(out, static_cast<std::uint32_t>(rs.columns.size()));
  for (const auto& col : rs.columns) net::put_string(out, col);
  net::put_u32(out, static_cast<std::uint32_t>(rs.rows.size()));
  for (const auto& row : rs.rows) {
    net::put_u32(out, static_cast<std::uint32_t>(row.size()));
    for (const auto& value : row) encode_value(out, value);
  }
}

bool decode_result_set(PayloadReader& reader, db::ResultSet* out) {
  db::ResultSet rs;
  const std::uint32_t n_cols = reader.u32();
  if (!reader.ok()) return false;
  rs.columns.reserve(n_cols);
  for (std::uint32_t i = 0; i < n_cols && reader.ok(); ++i) {
    rs.columns.push_back(reader.str());
  }
  const std::uint32_t n_rows = reader.u32();
  if (!reader.ok()) return false;
  rs.rows.reserve(n_rows);
  for (std::uint32_t r = 0; r < n_rows; ++r) {
    const std::uint32_t n_vals = reader.u32();
    if (!reader.ok()) return false;
    db::Row row;
    row.reserve(n_vals);
    for (std::uint32_t v = 0; v < n_vals; ++v) {
      db::Value value;
      if (!decode_value(reader, &value)) return false;
      row.push_back(std::move(value));
    }
    rs.rows.push_back(std::move(row));
  }
  *out = std::move(rs);
  return true;
}

void encode_record(std::string& out, const nl::LogRecord& record) {
  net::put_f64(out, record.ts());
  net::put_u8(out, static_cast<std::uint8_t>(record.level()));
  net::put_string(out, record.event());
  net::put_u32(out, static_cast<std::uint32_t>(record.attributes().size()));
  for (const auto& [key, value] : record.attributes()) {
    net::put_string(out, key);
    net::put_string(out, value);
  }
}

bool decode_record(PayloadReader& reader, nl::LogRecord* out) {
  const double ts = reader.f64();
  const std::uint8_t level = reader.u8();
  const std::string event = reader.str();
  if (!reader.ok() || level > static_cast<std::uint8_t>(nl::Level::kTrace)) {
    return false;
  }
  nl::LogRecord record{ts, event, static_cast<nl::Level>(level)};
  const std::uint32_t n_attrs = reader.u32();
  if (!reader.ok()) return false;
  for (std::uint32_t i = 0; i < n_attrs; ++i) {
    const std::string key = reader.str();
    std::string value = reader.str();
    if (!reader.ok()) return false;
    record.set(key, std::move(value));
  }
  *out = std::move(record);
  return true;
}

// ---------------------------------------------------------------------------
// Apply / ack

std::string encode_cluster_apply(std::uint32_t channel, std::uint32_t shard,
                                 const std::vector<ApplyItem>& items) {
  Frame frame;
  frame.type = FrameType::kClusterApply;
  frame.channel = channel;
  net::put_u32(frame.payload, shard);
  net::put_u32(frame.payload, static_cast<std::uint32_t>(items.size()));
  for (const auto& item : items) {
    encode_record(frame.payload, item.record);
    net::put_u8(frame.payload, item.redelivered ? 1 : 0);
    net::put_u64(frame.payload, item.ack_tag);
  }
  return encode_frame(frame);
}

bool parse_cluster_apply(const Frame& frame, std::uint32_t* shard,
                         std::vector<ApplyItem>* items) {
  PayloadReader reader{frame.payload};
  *shard = reader.u32();
  const std::uint32_t count = reader.u32();
  if (!reader.ok()) return false;
  items->clear();
  items->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ApplyItem item;
    if (!decode_record(reader, &item.record)) return false;
    item.redelivered = reader.u8() != 0;
    item.ack_tag = reader.u64();
    items->push_back(std::move(item));
  }
  return reader.complete();
}

std::string encode_cluster_ack(const std::vector<std::uint64_t>& tags) {
  Frame frame;
  frame.type = FrameType::kClusterAck;
  net::put_u32(frame.payload, static_cast<std::uint32_t>(tags.size()));
  for (const std::uint64_t tag : tags) net::put_u64(frame.payload, tag);
  return encode_frame(frame);
}

bool parse_cluster_ack(const Frame& frame, std::vector<std::uint64_t>* tags) {
  PayloadReader reader{frame.payload};
  const std::uint32_t count = reader.u32();
  if (!reader.ok()) return false;
  tags->clear();
  tags->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) tags->push_back(reader.u64());
  return reader.complete();
}

// ---------------------------------------------------------------------------
// Query / result

std::string encode_cluster_query(std::uint32_t channel, std::uint32_t shard,
                                 const db::Select& select) {
  Frame frame;
  frame.type = FrameType::kClusterQuery;
  frame.channel = channel;
  net::put_u32(frame.payload, shard);
  encode_select(frame.payload, select);
  return encode_frame(frame);
}

bool parse_cluster_query(const Frame& frame, std::uint32_t* shard,
                         db::Select* select) {
  PayloadReader reader{frame.payload};
  *shard = reader.u32();
  if (!reader.ok()) return false;
  if (!decode_select(reader, select)) return false;
  return reader.complete();
}

std::string encode_cluster_result(std::uint32_t channel,
                                  const db::ResultSet& rs) {
  Frame frame;
  frame.type = FrameType::kClusterResult;
  frame.channel = channel;
  encode_result_set(frame.payload, rs);
  return encode_frame(frame);
}

bool parse_cluster_result(const Frame& frame, db::ResultSet* rs) {
  PayloadReader reader{frame.payload};
  if (!decode_result_set(reader, rs)) return false;
  return reader.complete();
}

// ---------------------------------------------------------------------------
// Versions

std::string encode_cluster_versions(std::uint32_t channel, std::uint32_t shard,
                                    const std::vector<std::string>& tables) {
  Frame frame;
  frame.type = FrameType::kClusterVersions;
  frame.channel = channel;
  net::put_u32(frame.payload, shard);
  net::put_u32(frame.payload, static_cast<std::uint32_t>(tables.size()));
  for (const auto& table : tables) net::put_string(frame.payload, table);
  return encode_frame(frame);
}

bool parse_cluster_versions(const Frame& frame, std::uint32_t* shard,
                            std::vector<std::string>* tables) {
  PayloadReader reader{frame.payload};
  *shard = reader.u32();
  const std::uint32_t count = reader.u32();
  if (!reader.ok()) return false;
  tables->clear();
  tables->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) tables->push_back(reader.str());
  return reader.complete();
}

std::string encode_cluster_versions_ok(
    std::uint32_t channel, const std::vector<std::uint64_t>& versions) {
  Frame frame;
  frame.type = FrameType::kClusterVersionsOk;
  frame.channel = channel;
  net::put_u32(frame.payload, static_cast<std::uint32_t>(versions.size()));
  for (const std::uint64_t v : versions) net::put_u64(frame.payload, v);
  return encode_frame(frame);
}

bool parse_cluster_versions_ok(const Frame& frame,
                               std::vector<std::uint64_t>* versions) {
  PayloadReader reader{frame.payload};
  const std::uint32_t count = reader.u32();
  if (!reader.ok()) return false;
  versions->clear();
  versions->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) versions->push_back(reader.u64());
  return reader.complete();
}

// ---------------------------------------------------------------------------
// Replication

std::string encode_cluster_replicate(std::uint32_t shard, std::uint64_t offset,
                                     std::string_view bytes) {
  Frame frame;
  frame.type = FrameType::kClusterReplicate;
  net::put_u32(frame.payload, shard);
  net::put_u64(frame.payload, offset);
  net::put_string(frame.payload, bytes);
  return encode_frame(frame);
}

bool parse_cluster_replicate(const Frame& frame, std::uint32_t* shard,
                             std::uint64_t* offset, std::string* bytes) {
  PayloadReader reader{frame.payload};
  *shard = reader.u32();
  *offset = reader.u64();
  *bytes = reader.str();
  return reader.complete();
}

std::string encode_cluster_replicate_ack(std::uint32_t shard,
                                         std::uint64_t offset) {
  Frame frame;
  frame.type = FrameType::kClusterReplicateAck;
  net::put_u32(frame.payload, shard);
  net::put_u64(frame.payload, offset);
  return encode_frame(frame);
}

bool parse_cluster_replicate_ack(const Frame& frame, std::uint32_t* shard,
                                 std::uint64_t* offset) {
  PayloadReader reader{frame.payload};
  *shard = reader.u32();
  *offset = reader.u64();
  return reader.complete();
}

// ---------------------------------------------------------------------------
// Promote

std::string encode_cluster_promote(std::uint32_t channel,
                                   const std::vector<std::uint32_t>& shards) {
  Frame frame;
  frame.type = FrameType::kClusterPromote;
  frame.channel = channel;
  net::put_u32(frame.payload, static_cast<std::uint32_t>(shards.size()));
  for (const std::uint32_t shard : shards) net::put_u32(frame.payload, shard);
  return encode_frame(frame);
}

bool parse_cluster_promote(const Frame& frame,
                           std::vector<std::uint32_t>* shards) {
  PayloadReader reader{frame.payload};
  const std::uint32_t count = reader.u32();
  if (!reader.ok()) return false;
  shards->clear();
  shards->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) shards->push_back(reader.u32());
  return reader.complete();
}

std::string encode_cluster_promote_ok(
    std::uint32_t channel, const std::vector<PromoteResult>& results) {
  Frame frame;
  frame.type = FrameType::kOk;
  frame.channel = channel;
  net::put_u32(frame.payload, static_cast<std::uint32_t>(results.size()));
  for (const auto& result : results) {
    net::put_u32(frame.payload, result.shard);
    net::put_u64(frame.payload, result.recovered_ops);
    net::put_u64(frame.payload, result.truncated_records);
  }
  return encode_frame(frame);
}

bool parse_cluster_promote_ok(const Frame& frame,
                              std::vector<PromoteResult>* results) {
  PayloadReader reader{frame.payload};
  const std::uint32_t count = reader.u32();
  if (!reader.ok()) return false;
  results->clear();
  results->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PromoteResult result;
    result.shard = reader.u32();
    result.recovered_ops = reader.u64();
    result.truncated_records = reader.u64();
    results->push_back(result);
  }
  return reader.complete();
}

// ---------------------------------------------------------------------------
// Stats

std::string encode_cluster_stats(std::uint32_t channel, std::uint32_t shard) {
  Frame frame;
  frame.type = FrameType::kClusterStats;
  frame.channel = channel;
  net::put_u32(frame.payload, shard);
  return encode_frame(frame);
}

bool parse_cluster_stats(const Frame& frame, std::uint32_t* shard) {
  PayloadReader reader{frame.payload};
  *shard = reader.u32();
  return reader.complete();
}

std::string encode_cluster_stats_ok(std::uint32_t channel,
                                    const HostShardStats& stats) {
  Frame frame;
  frame.type = FrameType::kClusterStatsOk;
  frame.channel = channel;
  const auto& l = stats.loader;
  net::put_u64(frame.payload, l.events_seen);
  net::put_u64(frame.payload, l.events_loaded);
  net::put_u64(frame.payload, l.events_invalid);
  net::put_u64(frame.payload, l.events_unknown);
  net::put_u64(frame.payload, l.events_dropped);
  net::put_u64(frame.payload, l.events_deferred);
  net::put_u64(frame.payload, l.deferred_evicted);
  net::put_u64(frame.payload, l.replay_deduped);
  net::put_u32(frame.payload, static_cast<std::uint32_t>(l.by_event.size()));
  for (const auto& [event, count] : l.by_event) {
    net::put_string(frame.payload, event);
    net::put_u64(frame.payload, count);
  }
  net::put_u64(frame.payload, stats.wal_truncated);
  return encode_frame(frame);
}

bool parse_cluster_stats_ok(const Frame& frame, HostShardStats* stats) {
  PayloadReader reader{frame.payload};
  auto& l = stats->loader;
  l = loader::LoaderStats{};
  l.events_seen = reader.u64();
  l.events_loaded = reader.u64();
  l.events_invalid = reader.u64();
  l.events_unknown = reader.u64();
  l.events_dropped = reader.u64();
  l.events_deferred = reader.u64();
  l.deferred_evicted = reader.u64();
  l.replay_deduped = reader.u64();
  const std::uint32_t count = reader.u32();
  if (!reader.ok()) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string event = reader.str();
    const std::uint64_t n = reader.u64();
    if (!reader.ok()) return false;
    l.by_event[event] = n;
  }
  stats->wal_truncated = reader.u64();
  return reader.complete();
}

}  // namespace stampede::cluster
