#pragma once
// cluster::Link — one outbound cluster connection (router→shard-host,
// primary→follower), living exactly as long as the TCP connection.
//
// Connecting is blocking with bounded, jittered retries (the BusClient
// backoff discipline: exponential with ±20% jitter so a restarting
// fleet does not reconnect in lockstep) — but unlike the bus client a
// Link does NOT reconnect transparently: cluster peers hold routed
// state (in-flight applies, replication offsets), so a dead link is
// surfaced to the owner via on_down and the owner decides (fail over,
// resync, or give up). Exhausting the attempts throws ClusterError
// instead of hanging.
//
// After start(), a reader thread decodes frames off the socket:
// nonzero channels complete pending request() calls; channel-0 frames
// (acks, replication traffic) go to the owner's handler; heartbeats
// are swallowed. request() is thread-safe and may overlap — replies
// correlate by channel.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "cluster/shard_map.hpp"
#include "common/socket.hpp"
#include "net/frame.hpp"

namespace stampede::cluster {

struct LinkOptions {
  int connect_attempts = 5;
  int backoff_ms = 50;        ///< First retry delay; doubles per attempt.
  int max_backoff_ms = 2000;
  int request_timeout_ms = 30000;
  std::uint64_t jitter_seed = 0;  ///< 0 = seed from std::random_device.
};

class Link {
 public:
  using Options = LinkOptions;

  /// Channel-0 frames (unsolicited pushes) — called on the reader
  /// thread. Heartbeats are filtered out before this fires.
  using FrameHandler = std::function<void(const net::Frame&)>;
  /// Fires exactly once, on the reader thread, when the peer goes away.
  using DownHandler = std::function<void()>;

  /// Connects (bounded retries) and runs the HELLO handshake requiring
  /// kFeatureCluster. Throws ClusterError on exhaustion or a peer that
  /// lacks the feature.
  explicit Link(HostAddr addr, Options options = {});
  ~Link();

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Spawns the reader thread. Call once, before any request()/send().
  void start(FrameHandler on_unsolicited, DownHandler on_down);

  /// Fire-and-forget frame (already encoded). False once the link died.
  bool send(std::string_view bytes);

  /// Allocates a fresh nonzero channel for a request frame.
  [[nodiscard]] std::uint32_t next_channel();

  /// Sends `bytes` (a frame carrying `channel`) and blocks for the
  /// reply on that channel. Throws ClusterError on timeout, link death,
  /// or a kError reply (whose reason is included).
  [[nodiscard]] net::Frame request(std::uint32_t channel,
                                   std::string_view bytes);

  [[nodiscard]] bool alive() const noexcept { return !down_.load(); }
  [[nodiscard]] const HostAddr& addr() const noexcept { return addr_; }

  /// Tears the connection down (idempotent; wakes the reader + waiters).
  void close();

 private:
  void reader();
  void mark_down();
  void dispatch(const net::Frame& frame);

  HostAddr addr_;
  Options options_;
  common::SocketFd fd_;
  std::string carry_;  ///< Bytes read past HELLO_OK during the handshake.
  std::thread reader_thread_;

  std::mutex send_mutex_;
  std::atomic<bool> down_{false};
  std::atomic<bool> down_fired_{false};

  FrameHandler on_unsolicited_;
  DownHandler on_down_;

  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::uint32_t next_channel_ = 1;
  struct Pending {
    bool done = false;
    net::Frame reply;
  };
  std::map<std::uint32_t, Pending> pending_;
};

}  // namespace stampede::cluster
