#pragma once
// The Pegasus planner: maps an abstract workflow onto resources,
// producing the executable workflow (paper §III-A, §IV-A).
//
// Two restructurings make the AW→EW task↔job mapping many-to-many:
//   * horizontal clustering — up to `cluster_factor` same-transformation
//     tasks at the same topological level fuse into one clustered job;
//   * auxiliary jobs — stage-in before the entry tasks and stage-out
//     after the exit tasks, "jobs added by the workflow system to manage
//     the workflow that were not present in the AW" (§IV-A).

#include <optional>
#include <string>
#include <vector>

#include "pegasus/abstract_workflow.hpp"

namespace stampede::pegasus {

using JobId = std::size_t;

enum class JobType { kCompute, kClustered, kStageIn, kStageOut, kSubDag };

[[nodiscard]] std::string_view job_type_name(JobType type) noexcept;

struct ExecutableJob {
  std::string id;  ///< e.g. "merge_findrange_0", "stage_in_j0".
  JobType type = JobType::kCompute;
  std::string transformation;
  std::vector<TaskId> tasks;  ///< AW tasks fused into this job (may be
                              ///< empty for auxiliary jobs).
  /// For kSubDag jobs: the child-workflow index from the AW task.
  std::optional<std::size_t> subworkflow;
  double cpu_seconds = 0.0;   ///< Total work (sum over fused tasks).
  int max_retries = 0;
};

struct PlannerOptions {
  /// Max same-transformation tasks merged into one clustered job; 1
  /// disables clustering.
  int cluster_factor = 1;
  bool add_stage_jobs = true;
  double stage_cpu_seconds = 0.5;
  int max_retries = 2;  ///< DAGMan retries per job on failure.
  std::string site = "condor_pool";
};

class ExecutableWorkflow {
 public:
  explicit ExecutableWorkflow(std::string label) : label_(std::move(label)) {}

  JobId add_job(ExecutableJob job);
  void add_edge(JobId parent, JobId child);

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] std::size_t job_count() const noexcept { return jobs_.size(); }
  [[nodiscard]] const ExecutableJob& job(JobId id) const {
    return jobs_.at(id);
  }
  [[nodiscard]] const std::vector<std::pair<JobId, JobId>>& edges()
      const noexcept {
    return edges_;
  }
  [[nodiscard]] std::vector<JobId> parents_of(JobId id) const;
  [[nodiscard]] std::vector<JobId> children_of(JobId id) const;

 private:
  std::string label_;
  std::vector<ExecutableJob> jobs_;
  std::vector<std::pair<JobId, JobId>> edges_;
};

/// Plans the AW into an EW. Deterministic: same AW + options → same EW.
[[nodiscard]] ExecutableWorkflow plan(const AbstractWorkflow& aw,
                                      const PlannerOptions& options);

}  // namespace stampede::pegasus
