#include "pegasus/abstract_workflow.hpp"

#include <algorithm>
#include <deque>

namespace stampede::pegasus {

using common::EngineError;

TaskId AbstractWorkflow::add_task(AbstractTask task) {
  tasks_.push_back(std::move(task));
  return tasks_.size() - 1;
}

void AbstractWorkflow::add_dependency(TaskId parent, TaskId child) {
  if (parent >= tasks_.size() || child >= tasks_.size()) {
    throw EngineError("AW " + label_ + ": dependency endpoint out of range");
  }
  if (parent == child) {
    throw EngineError("AW " + label_ + ": self-dependency on task '" +
                      tasks_[parent].id + "'");
  }
  edges_.emplace_back(parent, child);
}

std::vector<TaskId> AbstractWorkflow::parents_of(TaskId id) const {
  std::vector<TaskId> out;
  for (const auto& [p, c] : edges_) {
    if (c == id) out.push_back(p);
  }
  return out;
}

std::vector<TaskId> AbstractWorkflow::children_of(TaskId id) const {
  std::vector<TaskId> out;
  for (const auto& [p, c] : edges_) {
    if (p == id) out.push_back(c);
  }
  return out;
}

std::vector<TaskId> AbstractWorkflow::topological_order() const {
  std::vector<std::size_t> indegree(tasks_.size(), 0);
  for (const auto& [p, c] : edges_) ++indegree[c];
  std::deque<TaskId> ready;
  for (TaskId i = 0; i < tasks_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId next = ready.front();
    ready.pop_front();
    order.push_back(next);
    for (const auto& [p, c] : edges_) {
      if (p == next && --indegree[c] == 0) ready.push_back(c);
    }
  }
  if (order.size() != tasks_.size()) {
    throw EngineError("AW " + label_ + ": cycle detected");
  }
  return order;
}

std::vector<int> AbstractWorkflow::levels() const {
  std::vector<int> level(tasks_.size(), 0);
  for (const TaskId id : topological_order()) {
    for (const TaskId child : children_of(id)) {
      level[child] = std::max(level[child], level[id] + 1);
    }
  }
  return level;
}

AbstractWorkflow make_diamond(double cpu_seconds) {
  AbstractWorkflow aw{"diamond"};
  const auto pre = aw.add_task(
      {"preprocess_j1", "preprocess", "-a top -T60", cpu_seconds, 0.0});
  const auto left = aw.add_task(
      {"findrange_j2", "findrange", "-a left", cpu_seconds, 0.0});
  const auto right = aw.add_task(
      {"findrange_j3", "findrange", "-a right", cpu_seconds, 0.0});
  const auto analyze =
      aw.add_task({"analyze_j4", "analyze", "-a bottom", cpu_seconds, 0.0});
  aw.add_dependency(pre, left);
  aw.add_dependency(pre, right);
  aw.add_dependency(left, analyze);
  aw.add_dependency(right, analyze);
  return aw;
}

AbstractWorkflow make_montage_like(int width, double cpu_seconds,
                                   double failure_probability) {
  AbstractWorkflow aw{"montage-" + std::to_string(width)};
  std::vector<TaskId> projects;
  projects.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    projects.push_back(aw.add_task({"mProject_" + std::to_string(i),
                                    "mProject", "-i img" + std::to_string(i),
                                    cpu_seconds, failure_probability}));
  }
  std::vector<TaskId> diffs;
  for (int i = 0; i + 1 < width; ++i) {
    const auto diff = aw.add_task({"mDiffFit_" + std::to_string(i),
                                   "mDiffFit", "", cpu_seconds * 0.5,
                                   failure_probability});
    aw.add_dependency(projects[static_cast<std::size_t>(i)], diff);
    aw.add_dependency(projects[static_cast<std::size_t>(i + 1)], diff);
    diffs.push_back(diff);
  }
  const auto concat =
      aw.add_task({"mConcatFit", "mConcatFit", "", cpu_seconds, 0.0});
  for (const auto diff : diffs) aw.add_dependency(diff, concat);
  std::vector<TaskId> backgrounds;
  for (int i = 0; i < width; ++i) {
    const auto bg = aw.add_task({"mBackground_" + std::to_string(i),
                                 "mBackground", "", cpu_seconds * 0.5,
                                 failure_probability});
    aw.add_dependency(concat, bg);
    aw.add_dependency(projects[static_cast<std::size_t>(i)], bg);
    backgrounds.push_back(bg);
  }
  const auto add = aw.add_task({"mAdd", "mAdd", "", cpu_seconds * 2.0, 0.0});
  for (const auto bg : backgrounds) aw.add_dependency(bg, add);
  return aw;
}

}  // namespace stampede::pegasus
