#include "pegasus/condor_pool.hpp"

namespace stampede::pegasus {

CondorPool::CondorPool(sim::EventLoop& loop, CondorPoolOptions options) {
  machines_.reserve(static_cast<std::size_t>(options.machines));
  for (int i = 0; i < options.machines; ++i) {
    machines_.push_back(std::make_unique<sim::PsNode>(
        loop, options.machine_prefix + std::to_string(i),
        options.slots_per_machine, options.cores_per_machine));
  }
}

void CondorPool::submit(
    double cpu_seconds,
    std::function<void(const std::string& host, double t)> on_start,
    std::function<void(double t)> on_done) {
  // Least-loaded match-making, round-robin among ties.
  std::size_t best = round_robin_ % machines_.size();
  std::size_t best_load =
      machines_[best]->running() + machines_[best]->queued();
  for (std::size_t k = 0; k < machines_.size(); ++k) {
    const std::size_t i = (round_robin_ + k) % machines_.size();
    const std::size_t load = machines_[i]->running() + machines_[i]->queued();
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  ++round_robin_;
  sim::PsNode& machine = *machines_[best];
  const std::string host = machine.name();
  machine.submit(
      cpu_seconds,
      [on_start = std::move(on_start), host](double t) {
        if (on_start) on_start(host, t);
      },
      std::move(on_done));
}

}  // namespace stampede::pegasus
