#pragma once
// Hierarchical Pegasus workflows: sub-DAX jobs that plan and execute
// child workflows (the "layered hierarchal workflows" of paper §VII-B
// that stampede_analyzer drills through).

#include <memory>
#include <optional>
#include <vector>

#include "netlogger/sink.hpp"
#include "pegasus/dagman.hpp"

namespace stampede::pegasus {

/// A root workflow plus the child workflows its sub-DAX tasks reference
/// (AbstractTask::subworkflow indexes into `children`; children may
/// themselves contain sub-DAX tasks referencing other entries).
struct HierarchicalWorkflow {
  AbstractWorkflow root;
  std::vector<AbstractWorkflow> children;

  explicit HierarchicalWorkflow(AbstractWorkflow root_wf)
      : root(std::move(root_wf)) {}
};

/// Plans and executes a workflow hierarchy on one Condor pool, giving
/// every level its own Dagman + UUID and emitting the full Stampede
/// event stream (plans, maps, lifecycles) for each.
class HierarchicalRunner {
 public:
  HierarchicalRunner(sim::EventLoop& loop, common::Rng& rng,
                     sim::PsNode& pool, nl::EventSink& sink,
                     common::UuidGenerator& uuids, PlannerOptions options)
      : loop_(&loop),
        rng_(&rng),
        pool_(&pool),
        sink_(&sink),
        uuids_(&uuids),
        options_(std::move(options)) {}

  HierarchicalRunner(const HierarchicalRunner&) = delete;
  HierarchicalRunner& operator=(const HierarchicalRunner&) = delete;

  /// Starts the root workflow; returns its UUID. `done` fires when the
  /// whole hierarchy finished. The HierarchicalWorkflow must outlive the
  /// run.
  common::Uuid run(const HierarchicalWorkflow& hierarchy,
                   std::function<void(const DagmanResult&)> done);

 private:
  common::Uuid run_level(const HierarchicalWorkflow& hierarchy,
                         const AbstractWorkflow& aw,
                         std::optional<common::Uuid> parent,
                         std::function<void(const DagmanResult&)> done);

  sim::EventLoop* loop_;
  common::Rng* rng_;
  sim::PsNode* pool_;
  nl::EventSink* sink_;
  common::UuidGenerator* uuids_;
  PlannerOptions options_;
  // Keep every level's plan + engine alive until the loop drains.
  std::vector<std::unique_ptr<ExecutableWorkflow>> plans_;
  std::vector<std::unique_ptr<Dagman>> engines_;
};

/// Rescue-DAG driver: runs a workflow, and on failure re-plans a rescue
/// run that skips every job the previous attempt completed, stamping
/// xwf.start with an increasing restart_count — DAGMan's rescue behaviour,
/// whose restart counter the Stampede schema tracks explicitly.
class RescueRunner {
 public:
  struct Result {
    DagmanResult final;  ///< Outcome of the last attempt.
    int restarts = 0;    ///< Rescue runs performed (0 = first run worked).
  };

  RescueRunner(sim::EventLoop& loop, common::Rng& rng, sim::PsNode& pool,
               nl::EventSink& sink, DagmanOptions base_options,
               int max_restarts)
      : loop_(&loop),
        rng_(&rng),
        pool_(&pool),
        sink_(&sink),
        base_options_(std::move(base_options)),
        max_restarts_(max_restarts) {}

  RescueRunner(const RescueRunner&) = delete;
  RescueRunner& operator=(const RescueRunner&) = delete;

  /// Starts the first attempt; `done` fires after the final attempt.
  /// `aw`/`ew` must outlive the run.
  void run(const AbstractWorkflow& aw, const ExecutableWorkflow& ew,
           std::function<void(const Result&)> done);

 private:
  void attempt(const AbstractWorkflow& aw, const ExecutableWorkflow& ew,
               int restart_count, std::function<void(const Result&)> done);

  sim::EventLoop* loop_;
  common::Rng* rng_;
  sim::PsNode* pool_;
  nl::EventSink* sink_;
  DagmanOptions base_options_;
  int max_restarts_;
  std::vector<std::unique_ptr<Dagman>> attempts_;
  std::vector<std::unique_ptr<std::vector<bool>>> rescues_;
};

}  // namespace stampede::pegasus
