#pragma once
// Pegasus-style abstract workflows (the DAX of paper §III-A).
//
// The AW is "the input graph of tasks and dependencies, independent of a
// given run on specific resources" (§IV-A). Unlike Triana's 1:1 mapping,
// Pegasus restructures this graph at plan time, so the AW must exist as
// its own artifact for the Stampede data model to reference.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/errors.hpp"
#include "common/rng.hpp"

namespace stampede::pegasus {

using TaskId = std::size_t;

struct AbstractTask {
  AbstractTask() = default;
  AbstractTask(std::string id_, std::string transformation_,
               std::string argv_, double cpu_seconds_,
               double failure_probability_,
               std::optional<std::size_t> subworkflow_ = std::nullopt)
      : id(std::move(id_)),
        transformation(std::move(transformation_)),
        argv(std::move(argv_)),
        cpu_seconds(cpu_seconds_),
        failure_probability(failure_probability_),
        subworkflow(subworkflow_) {}

  std::string id;              ///< e.g. "findrange_j3".
  std::string transformation;  ///< Logical executable name.
  std::string argv;
  double cpu_seconds = 1.0;    ///< Nominal work of the task.
  /// Failure probability of one attempt of this task (failure injection
  /// for analyzer / retry experiments).
  double failure_probability = 0.0;
  /// Index into the driver's list of child abstract workflows when this
  /// task is a sub-DAX job (Pegasus's hierarchical workflows: the task
  /// plans + runs a whole child workflow). nullopt for compute tasks.
  std::optional<std::size_t> subworkflow;
};

class AbstractWorkflow {
 public:
  explicit AbstractWorkflow(std::string label) : label_(std::move(label)) {}

  TaskId add_task(AbstractTask task);
  /// Declares `child` depends on `parent`. Throws common::EngineError on
  /// bad indices or self-loops.
  void add_dependency(TaskId parent, TaskId child);

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] std::size_t task_count() const noexcept {
    return tasks_.size();
  }
  [[nodiscard]] const AbstractTask& task(TaskId id) const {
    return tasks_.at(id);
  }
  [[nodiscard]] const std::vector<std::pair<TaskId, TaskId>>& edges()
      const noexcept {
    return edges_;
  }
  [[nodiscard]] std::vector<TaskId> parents_of(TaskId id) const;
  [[nodiscard]] std::vector<TaskId> children_of(TaskId id) const;

  /// Topological order; throws common::EngineError on cycles (AWs are
  /// DAGs by definition, §IV-A).
  [[nodiscard]] std::vector<TaskId> topological_order() const;

  /// Topological depth (level) of every task.
  [[nodiscard]] std::vector<int> levels() const;

 private:
  std::string label_;
  std::vector<AbstractTask> tasks_;
  std::vector<std::pair<TaskId, TaskId>> edges_;
};

/// The classic 4-task diamond (preprocess → findrange×2 → analyze).
[[nodiscard]] AbstractWorkflow make_diamond(double cpu_seconds = 5.0);

/// A Montage-like fan-out/fan-in workflow: `width` parallel mProject
/// tasks, pairwise mDiffFit, one mConcatFit, `width` mBackground, one
/// mAdd — the shape of the astronomy workflows Stampede was built for.
[[nodiscard]] AbstractWorkflow make_montage_like(int width,
                                                 double cpu_seconds = 4.0,
                                                 double failure_probability = 0.0);

}  // namespace stampede::pegasus
