#pragma once
// A multi-node Condor pool: the execution substrate DAGMan submits into
// (paper §III-A: Pegasus runs its jobs through Condor over distributed
// resources). Jobs are matched to the least-loaded slot machine, so a
// workflow's jobs spread over hosts — the per-host breakdowns of §VII
// ("a single workflow can be executed over a number of hosts") need this.

#include <memory>
#include <string>
#include <vector>

#include "sim/node.hpp"

namespace stampede::pegasus {

struct CondorPoolOptions {
  int machines = 4;
  int slots_per_machine = 2;
  double cores_per_machine = 2.0;
  std::string machine_prefix = "condor-slot-";
};

class CondorPool {
 public:
  CondorPool(sim::EventLoop& loop, CondorPoolOptions options = {});

  CondorPool(const CondorPool&) = delete;
  CondorPool& operator=(const CondorPool&) = delete;

  /// Match-makes the job to the least-loaded machine and submits it.
  /// `on_start(host, t)` fires at EXECUTE with the matched hostname.
  void submit(double cpu_seconds,
              std::function<void(const std::string& host, double t)> on_start,
              std::function<void(double t)> on_done);

  [[nodiscard]] const std::vector<std::unique_ptr<sim::PsNode>>& machines()
      const noexcept {
    return machines_;
  }

 private:
  std::vector<std::unique_ptr<sim::PsNode>> machines_;
  std::size_t round_robin_ = 0;
};

}  // namespace stampede::pegasus
