#include "pegasus/planner.hpp"

#include <algorithm>
#include <map>

namespace stampede::pegasus {

std::string_view job_type_name(JobType type) noexcept {
  switch (type) {
    case JobType::kCompute:
      return "compute";
    case JobType::kClustered:
      return "clustered";
    case JobType::kStageIn:
      return "stage-in";
    case JobType::kStageOut:
      return "stage-out";
    case JobType::kSubDag:
      return "dax";
  }
  return "?";
}

JobId ExecutableWorkflow::add_job(ExecutableJob job) {
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

void ExecutableWorkflow::add_edge(JobId parent, JobId child) {
  if (parent >= jobs_.size() || child >= jobs_.size() || parent == child) {
    throw common::EngineError("EW " + label_ + ": bad edge");
  }
  edges_.emplace_back(parent, child);
}

std::vector<JobId> ExecutableWorkflow::parents_of(JobId id) const {
  std::vector<JobId> out;
  for (const auto& [p, c] : edges_) {
    if (c == id) out.push_back(p);
  }
  return out;
}

std::vector<JobId> ExecutableWorkflow::children_of(JobId id) const {
  std::vector<JobId> out;
  for (const auto& [p, c] : edges_) {
    if (p == id) out.push_back(c);
  }
  return out;
}

ExecutableWorkflow plan(const AbstractWorkflow& aw,
                        const PlannerOptions& options) {
  ExecutableWorkflow ew{aw.label()};
  const auto levels = aw.levels();

  // 1. Horizontal clustering: group tasks by (level, transformation) and
  //    cut each group into chunks of cluster_factor.
  std::map<std::pair<int, std::string>, std::vector<TaskId>> groups;
  std::vector<JobId> job_of_task(aw.task_count());
  std::vector<TaskId> subdax_tasks;
  for (TaskId t = 0; t < aw.task_count(); ++t) {
    if (aw.task(t).subworkflow) {
      subdax_tasks.push_back(t);  // Sub-DAX jobs never cluster.
      continue;
    }
    groups[{levels[t], aw.task(t).transformation}].push_back(t);
  }
  for (const TaskId t : subdax_tasks) {
    ExecutableJob job;
    job.id = aw.task(t).id;
    job.type = JobType::kSubDag;
    job.transformation = aw.task(t).transformation;
    job.tasks.push_back(t);
    job.cpu_seconds = aw.task(t).cpu_seconds;
    job.max_retries = options.max_retries;
    job.subworkflow = aw.task(t).subworkflow;
    job_of_task[t] = ew.add_job(std::move(job));
  }
  int cluster_seq = 0;
  for (const auto& [key, members] : groups) {
    const int factor = std::max(1, options.cluster_factor);
    for (std::size_t i = 0; i < members.size();
         i += static_cast<std::size_t>(factor)) {
      const std::size_t end =
          std::min(members.size(), i + static_cast<std::size_t>(factor));
      ExecutableJob job;
      job.max_retries = options.max_retries;
      double cpu = 0.0;
      for (std::size_t k = i; k < end; ++k) {
        job.tasks.push_back(members[k]);
        cpu += aw.task(members[k]).cpu_seconds;
      }
      job.cpu_seconds = cpu;
      job.transformation = key.second;
      if (job.tasks.size() > 1) {
        job.type = JobType::kClustered;
        job.id = "merge_" + key.second + "_" + std::to_string(cluster_seq++);
      } else {
        job.type = JobType::kCompute;
        job.id = aw.task(job.tasks.front()).id;
      }
      const JobId id = ew.add_job(std::move(job));
      for (std::size_t k = i; k < end; ++k) job_of_task[members[k]] = id;
    }
  }

  // 2. Job edges induced by task edges (deduplicated; intra-cluster
  //    dependencies vanish — that is the point of clustering).
  std::vector<std::pair<JobId, JobId>> seen;
  for (const auto& [p, c] : aw.edges()) {
    const JobId jp = job_of_task[p];
    const JobId jc = job_of_task[c];
    if (jp == jc) continue;
    if (std::find(seen.begin(), seen.end(), std::make_pair(jp, jc)) ==
        seen.end()) {
      seen.emplace_back(jp, jc);
      ew.add_edge(jp, jc);
    }
  }

  // 3. Auxiliary data-staging jobs around the compute jobs.
  if (options.add_stage_jobs) {
    ExecutableJob stage_in;
    stage_in.id = "stage_in_j0";
    stage_in.type = JobType::kStageIn;
    stage_in.transformation = "pegasus::transfer";
    stage_in.cpu_seconds = options.stage_cpu_seconds;
    stage_in.max_retries = options.max_retries;
    const JobId in_id = ew.add_job(std::move(stage_in));

    ExecutableJob stage_out;
    stage_out.id = "stage_out_j0";
    stage_out.type = JobType::kStageOut;
    stage_out.transformation = "pegasus::transfer";
    stage_out.cpu_seconds = options.stage_cpu_seconds;
    stage_out.max_retries = options.max_retries;
    const JobId out_id = ew.add_job(std::move(stage_out));

    for (JobId j = 0; j < ew.job_count(); ++j) {
      if (j == in_id || j == out_id) continue;
      if (ew.parents_of(j).empty()) ew.add_edge(in_id, j);
    }
    for (JobId j = 0; j < ew.job_count(); ++j) {
      if (j == in_id || j == out_id) continue;
      const auto children = ew.children_of(j);
      if (children.empty() ||
          (children.size() == 1 && children.front() == out_id)) {
        if (std::find(ew.children_of(j).begin(), ew.children_of(j).end(),
                      out_id) == ew.children_of(j).end()) {
          ew.add_edge(j, out_id);
        }
      }
    }
  }
  return ew;
}

}  // namespace stampede::pegasus
