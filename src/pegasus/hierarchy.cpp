#include "pegasus/hierarchy.hpp"

namespace stampede::pegasus {

common::Uuid HierarchicalRunner::run(
    const HierarchicalWorkflow& hierarchy,
    std::function<void(const DagmanResult&)> done) {
  return run_level(hierarchy, hierarchy.root, std::nullopt, std::move(done));
}

common::Uuid HierarchicalRunner::run_level(
    const HierarchicalWorkflow& hierarchy, const AbstractWorkflow& aw,
    std::optional<common::Uuid> parent,
    std::function<void(const DagmanResult&)> done) {
  const common::Uuid uuid = uuids_->next();
  plans_.push_back(std::make_unique<ExecutableWorkflow>(plan(aw, options_)));
  ExecutableWorkflow* ew = plans_.back().get();

  DagmanOptions doptions;
  doptions.xwf_id = uuid;
  doptions.parent_xwf_id = parent;
  auto engine =
      std::make_unique<Dagman>(*loop_, *rng_, *pool_, *sink_, doptions);
  Dagman* raw = engine.get();
  engines_.push_back(std::move(engine));

  raw->set_subworkflow_handler(
      [this, &hierarchy, uuid](const ExecutableJob& job, int /*attempt*/,
                               std::function<void(double, int)> child_done) {
        const AbstractWorkflow& child =
            hierarchy.children.at(*job.subworkflow);
        return run_level(hierarchy, child, uuid,
                         [child_done = std::move(child_done)](
                             const DagmanResult& r) {
                           child_done(r.finished_at, r.status);
                         });
      });

  // Start from a fresh event so nested levels do not recurse through the
  // parent's completion callbacks. `aw` is owned by the caller's
  // HierarchicalWorkflow and `ew` by plans_, both outliving the run.
  loop_->schedule_in(0, [raw, &aw, ew, done = std::move(done)]() mutable {
    raw->run(aw, *ew, std::move(done));
  });
  return uuid;
}

// ---------------------------------------------------------------------------
// RescueRunner

void RescueRunner::run(const AbstractWorkflow& aw,
                       const ExecutableWorkflow& ew,
                       std::function<void(const Result&)> done) {
  attempt(aw, ew, /*restart_count=*/0, std::move(done));
}

void RescueRunner::attempt(const AbstractWorkflow& aw,
                           const ExecutableWorkflow& ew, int restart_count,
                           std::function<void(const Result&)> done) {
  DagmanOptions options = base_options_;
  options.restart_count = restart_count;
  if (!rescues_.empty()) {
    options.rescue = rescues_.back().get();
  }
  // Distinct job_inst.id ranges per restart so every instance of a job
  // stays addressable in the archive (a generous stride: DAGMan retries
  // within one run stay below it).
  options.first_submit_seq = restart_count * 100 + 1;

  auto engine =
      std::make_unique<Dagman>(*loop_, *rng_, *pool_, *sink_, options);
  Dagman* raw = engine.get();
  attempts_.push_back(std::move(engine));

  raw->run(aw, ew,
           [this, raw, &aw, &ew, restart_count,
            done = std::move(done)](const DagmanResult& r) mutable {
             if (r.status == 0 || restart_count >= max_restarts_) {
               Result result;
               result.final = r;
               result.restarts = restart_count;
               if (done) done(result);
               return;
             }
             rescues_.push_back(std::make_unique<std::vector<bool>>(
                 raw->completed_jobs()));
             // Start the rescue run from a fresh event so the failing
             // engine fully unwinds first.
             loop_->schedule_in(0, [this, &aw, &ew, restart_count,
                                    done = std::move(done)]() mutable {
               attempt(aw, ew, restart_count + 1, std::move(done));
             });
           });
}

}  // namespace stampede::pegasus
