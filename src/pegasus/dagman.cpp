#include "pegasus/dagman.hpp"

#include <algorithm>

#include "netlogger/events.hpp"

namespace stampede::pegasus {

namespace ev = nl::events;
namespace attr = nl::events::attr;

Dagman::Dagman(sim::EventLoop& loop, common::Rng& rng, sim::PsNode& pool,
               nl::EventSink& sink, DagmanOptions options)
    : loop_(&loop),
      rng_(&rng),
      submit_([&pool](double cpu,
                      std::function<void(const std::string&, double)> start,
                      std::function<void(double)> done) {
        const std::string host = pool.name();
        pool.submit(
            cpu,
            [start = std::move(start), host](double t) {
              if (start) start(host, t);
            },
            std::move(done));
      }),
      sink_(&sink),
      options_(std::move(options)) {}

Dagman::Dagman(sim::EventLoop& loop, common::Rng& rng, CondorPool& pool,
               nl::EventSink& sink, DagmanOptions options)
    : loop_(&loop),
      rng_(&rng),
      submit_([&pool](double cpu,
                      std::function<void(const std::string&, double)> start,
                      std::function<void(double)> done) {
        pool.submit(cpu, std::move(start), std::move(done));
      }),
      sink_(&sink),
      options_(std::move(options)) {}

nl::LogRecord Dagman::base(double ts, std::string_view event) const {
  nl::LogRecord r{ts, std::string{event}};
  r.set(attr::kXwfId, options_.xwf_id);
  return r;
}

nl::LogRecord Dagman::job_event(double ts, std::string_view event, JobId job,
                                int attempt) const {
  nl::LogRecord r = base(ts, event);
  r.set(attr::kJobInstId, static_cast<std::int64_t>(
                              attempt + options_.first_submit_seq - 1));
  r.set(attr::kJobId, ew_->job(job).id);
  return r;
}

std::vector<bool> Dagman::completed_jobs() const {
  std::vector<bool> done(state_.size(), false);
  for (std::size_t j = 0; j < state_.size(); ++j) {
    done[j] = state_[j] == JobState::kDone;
  }
  return done;
}

void Dagman::emit_static_events() {
  const double t = loop_->now();
  nl::LogRecord plan = base(t, ev::kWfPlan);
  plan.set(attr::kSubmitDir, options_.submit_dir);
  plan.set(attr::kPlanner, options_.planner_version);
  plan.set(attr::kUser, options_.user);
  plan.set(attr::kDaxLabel, aw_->label());
  if (options_.parent_xwf_id) {
    plan.set(attr::kParentXwfId, *options_.parent_xwf_id);
  }
  sink_->emit(plan);

  // Abstract workflow.
  for (TaskId i = 0; i < aw_->task_count(); ++i) {
    const AbstractTask& task = aw_->task(i);
    nl::LogRecord ti = base(t, ev::kTaskInfo);
    ti.set(attr::kTaskId, task.id);
    ti.set(attr::kTransformation, task.transformation);
    ti.set(attr::kType, std::string{"compute"});
    if (!task.argv.empty()) ti.set(attr::kArgv, task.argv);
    sink_->emit(ti);
  }
  for (const auto& [p, c] : aw_->edges()) {
    nl::LogRecord te = base(t, ev::kTaskEdge);
    te.set(attr::kParentTaskId, aw_->task(p).id);
    te.set(attr::kChildTaskId, aw_->task(c).id);
    sink_->emit(te);
  }

  // Executable workflow + many-to-many mapping.
  for (JobId j = 0; j < ew_->job_count(); ++j) {
    const ExecutableJob& job = ew_->job(j);
    nl::LogRecord ji = base(t, ev::kJobInfo);
    ji.set(attr::kJobId, job.id);
    ji.set(attr::kType, std::string{job_type_name(job.type)});
    ji.set(attr::kTransformation, job.transformation);
    ji.set("task_count", static_cast<std::int64_t>(job.tasks.size()));
    sink_->emit(ji);
    for (const TaskId task : job.tasks) {
      nl::LogRecord map = base(t, ev::kMapTaskJob);
      map.set(attr::kTaskId, aw_->task(task).id);
      map.set(attr::kJobId, job.id);
      sink_->emit(map);
    }
  }
  for (const auto& [p, c] : ew_->edges()) {
    nl::LogRecord je = base(t, ev::kJobEdge);
    je.set(attr::kParentJobId, ew_->job(p).id);
    je.set(attr::kChildJobId, ew_->job(c).id);
    sink_->emit(je);
  }
}

void Dagman::run(const AbstractWorkflow& aw, const ExecutableWorkflow& ew,
                 std::function<void(const DagmanResult&)> done) {
  aw_ = &aw;
  ew_ = &ew;
  done_ = std::move(done);
  state_.assign(ew.job_count(), JobState::kWaiting);
  attempts_.assign(ew.job_count(), 0);

  // Rescue runs resume from a prior run's completion state.
  if (options_.rescue != nullptr) {
    for (JobId j = 0; j < state_.size() && j < options_.rescue->size(); ++j) {
      if ((*options_.rescue)[j]) state_[j] = JobState::kDone;
    }
  }

  emit_static_events();
  nl::LogRecord start = base(loop_->now(), ev::kXwfStart);
  start.set(attr::kRestartCount,
            static_cast<std::int64_t>(options_.restart_count));
  sink_->emit(start);

  submit_ready_jobs();
  check_done();
}

void Dagman::submit_ready_jobs() {
  for (JobId j = 0; j < ew_->job_count(); ++j) {
    if (state_[j] != JobState::kWaiting) continue;
    const auto parents = ew_->parents_of(j);
    const bool ready =
        std::all_of(parents.begin(), parents.end(), [this](JobId p) {
          return state_[p] == JobState::kDone;
        });
    if (ready) {
      state_[j] = JobState::kRunning;
      submit_job(j, /*attempt=*/1);
    }
  }
}

void Dagman::submit_job(JobId job, int attempt) {
  ++in_flight_;
  attempts_[job] = attempt;
  const double now = loop_->now();

  if (options_.emit_pre_script) {
    sink_->emit(job_event(now, ev::kJobInstPreStart, job, attempt));
    nl::LogRecord pre = job_event(now + 0.2, ev::kJobInstPreEnd, job,
                                  attempt);
    pre.set(attr::kExitcode, std::int64_t{0});
    sink_->emit(pre);
  }

  nl::LogRecord submit = job_event(now, ev::kJobInstSubmitStart, job, attempt);
  submit.set(attr::kSchedId, std::to_string(sched_id_seq_++) + ".0");
  sink_->emit(submit);
  nl::LogRecord submitted =
      job_event(now, ev::kJobInstSubmitEnd, job, attempt);
  submitted.set(attr::kStatus, std::int64_t{0});
  sink_->emit(submitted);

  const double delay =
      rng_->uniform(options_.submit_delay_lo, options_.submit_delay_hi);
  loop_->schedule_in(delay, [this, job, attempt] {
    submit_(
        ew_->job(job).cpu_seconds,
        /*on_start=*/
        [this, job, attempt](const std::string& hostname, double t) {
          nl::LogRecord running =
              job_event(t, ev::kJobInstMainStart, job, attempt);
          running.set(attr::kSite, options_.site);
          sink_->emit(running);
          nl::LogRecord host =
              job_event(t, ev::kJobInstHostInfo, job, attempt);
          host.set(attr::kHostname, hostname);
          host.set(attr::kSite, options_.site);
          sink_->emit(host);
          exec_start_[job] = t;
        },
        /*on_done=*/
        [this, job, attempt](double t) {
          const double start = exec_start_[job];
          const ExecutableJob& ej = ew_->job(job);

          // Hierarchical workflows: the sub-DAX job's node work models
          // the pegasus-plan wrapper; the child workflow then runs via
          // the handler and determines the job's exit code.
          if (ej.type == JobType::kSubDag && subworkflow_handler_) {
            const common::Uuid child = subworkflow_handler_(
                ej, attempt, [this, job, attempt, start](double end,
                                                         int status) {
                  job_finished(job, attempt, start, end,
                               status == 0 ? 0 : 1);
                });
            nl::LogRecord map = base(t, ev::kMapSubwfJob);
            map.set(attr::kSubwfId, child);
            map.set(attr::kJobId, ej.id);
            map.set(attr::kJobInstId,
                    static_cast<std::int64_t>(attempt +
                                              options_.first_submit_seq - 1));
            sink_->emit(map);
            return;
          }

          // Kickstart invocation records: one per fused AW task, the job
          // duration apportioned by each task's share of the work. A
          // task attempt fails with its declared probability.
          int exitcode = 0;
          const double duration = t - start;
          if (ej.tasks.empty()) {
            nl::LogRecord inv = base(t, ev::kInvEnd);
            inv.set(attr::kJobInstId,
                    static_cast<std::int64_t>(attempt +
                                              options_.first_submit_seq - 1));
            inv.set(attr::kJobId, ej.id);
            inv.set(attr::kInvId, std::int64_t{1});
            inv.set(attr::kDur, duration);
            inv.set(attr::kRemoteCpuTime, ej.cpu_seconds);
            inv.set(attr::kExitcode, std::int64_t{0});
            inv.set(attr::kTransformation, ej.transformation);
            inv.set(attr::kSite, options_.site);
            sink_->emit(inv);
          } else {
            double offset = 0.0;
            int inv_seq = 1;
            for (const TaskId task : ej.tasks) {
              const AbstractTask& at = aw_->task(task);
              const double share =
                  ej.cpu_seconds > 0 ? at.cpu_seconds / ej.cpu_seconds : 1.0;
              const double dur = duration * share;
              const bool failed = rng_->chance(at.failure_probability);
              nl::LogRecord inv_start = base(start + offset, ev::kInvStart);
              inv_start.set(attr::kJobInstId,
                            static_cast<std::int64_t>(
                                attempt + options_.first_submit_seq - 1));
              inv_start.set(attr::kJobId, ej.id);
              inv_start.set(attr::kInvId, static_cast<std::int64_t>(inv_seq));
              sink_->emit(inv_start);

              nl::LogRecord inv = base(start + offset + dur, ev::kInvEnd);
              inv.set(attr::kJobInstId,
                      static_cast<std::int64_t>(
                          attempt + options_.first_submit_seq - 1));
              inv.set(attr::kJobId, ej.id);
              inv.set(attr::kInvId, static_cast<std::int64_t>(inv_seq));
              inv.set(attr::kTaskId, at.id);
              inv.set("start_time", start + offset);
              inv.set(attr::kDur, dur);
              inv.set(attr::kRemoteCpuTime, at.cpu_seconds);
              inv.set(attr::kExitcode, std::int64_t{failed ? 1 : 0});
              inv.set(attr::kTransformation, at.transformation);
              inv.set(attr::kSite, options_.site);
              sink_->emit(inv);
              if (failed) exitcode = 1;
              offset += dur;
              ++inv_seq;
            }
          }
          job_finished(job, attempt, start, t, exitcode);
        });
  });
}

void Dagman::job_finished(JobId job, int attempt, double /*start*/,
                          double end, int exitcode) {
  nl::LogRecord term = job_event(end, ev::kJobInstMainTerm, job, attempt);
  term.set(attr::kStatus, std::int64_t{exitcode == 0 ? 0 : -1});
  sink_->emit(term);
  nl::LogRecord main_end = job_event(end, ev::kJobInstMainEnd, job, attempt);
  main_end.set(attr::kExitcode, static_cast<std::int64_t>(exitcode));
  main_end.set(attr::kSite, options_.site);
  if (exitcode != 0) main_end.set_level(nl::Level::kError);
  if (exitcode != 0) {
    main_end.set(attr::kStdErr,
                 std::string{"task exited with status "} +
                     std::to_string(exitcode));
  }
  sink_->emit(main_end);

  if (options_.emit_post_script) {
    sink_->emit(job_event(end, ev::kJobInstPostStart, job, attempt));
    nl::LogRecord post = job_event(end + 0.5, ev::kJobInstPostEnd, job,
                                   attempt);
    post.set(attr::kExitcode, static_cast<std::int64_t>(exitcode));
    sink_->emit(post);
  }

  --in_flight_;
  if (exitcode == 0) {
    state_[job] = JobState::kDone;
    submit_ready_jobs();
  } else if (attempt <= ew_->job(job).max_retries) {
    ++result_.total_retries;
    submit_job(job, attempt + 1);
  } else {
    state_[job] = JobState::kFailed;
    ++result_.jobs_failed;
  }
  check_done();
}

void Dagman::check_done() {
  if (finished_ || in_flight_ > 0) return;
  // Anything still waiting with satisfiable parents would have been
  // submitted; remaining waiters are descendants of failures.
  const bool all_done =
      std::all_of(state_.begin(), state_.end(),
                  [](JobState s) { return s == JobState::kDone; });
  finished_ = true;
  result_.status = all_done ? 0 : -1;
  result_.finished_at = loop_->now();
  nl::LogRecord end = base(loop_->now(), ev::kXwfEnd);
  end.set(attr::kRestartCount,
          static_cast<std::int64_t>(options_.restart_count));
  end.set(attr::kStatus, static_cast<std::int64_t>(result_.status));
  sink_->emit(end);
  if (done_) done_(result_);
}

}  // namespace stampede::pegasus
