#pragma once
// DAGMan/Condor-style execution of an executable workflow with native
// Stampede event emission — the Pegasus-side integration (paper §III-A).
//
// Differences from the Triana integration that this engine exercises:
//   * AW→EW is many-to-many: a clustered job instance emits one
//     invocation per fused task (kickstart records), and auxiliary
//     stage-in/out jobs emit invocations with no AW task reference;
//   * retries: a failed job is resubmitted as a new job instance
//     (job_submit_seq 2, 3, ...) up to max_retries — populating the
//     Retries column of Table I;
//   * pre/post scripts: DAGMan's postscript validates the exit code,
//     emitting job_inst.post.* events.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/uuid.hpp"
#include "netlogger/sink.hpp"
#include "pegasus/condor_pool.hpp"
#include "pegasus/planner.hpp"
#include "sim/node.hpp"

namespace stampede::pegasus {

struct DagmanOptions {
  common::Uuid xwf_id;
  std::optional<common::Uuid> parent_xwf_id;
  std::string site = "condor_pool";
  std::string user = "pegasus";
  std::string planner_version = "stampede-cpp/pegasus-1.0";
  std::string submit_dir = "/scratch/pegasus/run0001";
  /// Condor match-making delay per submission, uniform draw — the remote
  /// "queue time" jobs experience before EXECUTE.
  double submit_delay_lo = 0.5;
  double submit_delay_hi = 5.0;
  bool emit_post_script = true;
  /// DAGMan pre-scripts (e.g. submit-file generation checks) emit
  /// job_inst.pre.start/.end before submission.
  bool emit_pre_script = false;
  /// Rescue-DAG support: how many times this workflow was restarted
  /// (stamped on xwf.start/end — the `restart_count` leaf the paper's
  /// schema snippet shows), and which jobs a prior run already finished
  /// (skipped entirely on this run). `first_submit_seq` offsets
  /// job_inst.id numbering so instances from different restarts stay
  /// distinct in the archive.
  int restart_count = 0;
  const std::vector<bool>* rescue = nullptr;  ///< Indexed by EW JobId.
  int first_submit_seq = 1;
};

struct DagmanResult {
  int status = 0;
  double finished_at = 0.0;
  int total_retries = 0;
  int jobs_failed = 0;
};

class Dagman {
 public:
  /// Invoked when a sub-DAX job (hierarchical workflow) reaches its main
  /// phase: the handler must arrange execution of the child workflow and
  /// call `done(end, status)`; it returns the child run's UUID, which is
  /// logged through stampede.xwf.map.subwf_job.
  using SubworkflowHandler = std::function<common::Uuid(
      const ExecutableJob& job, int attempt,
      std::function<void(double, int)> done)>;

  /// Single-machine pool (one PsNode acts as the whole Condor pool).
  Dagman(sim::EventLoop& loop, common::Rng& rng, sim::PsNode& pool,
         nl::EventSink& sink, DagmanOptions options);

  /// Multi-machine pool: jobs are match-made across the pool's machines
  /// and host.info reports where each instance landed.
  Dagman(sim::EventLoop& loop, common::Rng& rng, CondorPool& pool,
         nl::EventSink& sink, DagmanOptions options);

  Dagman(const Dagman&) = delete;
  Dagman& operator=(const Dagman&) = delete;

  void set_subworkflow_handler(SubworkflowHandler handler) {
    subworkflow_handler_ = std::move(handler);
  }

  /// Runs the workflow; `done` fires once at workflow end. The AW and EW
  /// must outlive the run.
  void run(const AbstractWorkflow& aw, const ExecutableWorkflow& ew,
           std::function<void(const DagmanResult&)> done);

  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// Per-EW-job completion flags after the run — the rescue state the
  /// next restart passes via DagmanOptions::rescue.
  [[nodiscard]] std::vector<bool> completed_jobs() const;

 private:
  enum class JobState { kWaiting, kRunning, kDone, kFailed };

  void emit_static_events();
  void submit_ready_jobs();
  void submit_job(JobId job, int attempt);
  void job_finished(JobId job, int attempt, double start, double end,
                    int exitcode);
  void check_done();

  nl::LogRecord base(double ts, std::string_view event) const;
  nl::LogRecord job_event(double ts, std::string_view event, JobId job,
                          int attempt) const;

  using SubmitFn = std::function<void(
      double cpu, std::function<void(const std::string&, double)> on_start,
      std::function<void(double)> on_done)>;

  sim::EventLoop* loop_;
  common::Rng* rng_;
  SubmitFn submit_;
  nl::EventSink* sink_;
  DagmanOptions options_;
  const AbstractWorkflow* aw_ = nullptr;
  const ExecutableWorkflow* ew_ = nullptr;
  std::function<void(const DagmanResult&)> done_;
  SubworkflowHandler subworkflow_handler_;

  std::vector<JobState> state_;
  std::vector<int> attempts_;
  std::map<JobId, double> exec_start_;  ///< EXECUTE timestamp per job.
  std::size_t in_flight_ = 0;
  int sched_id_seq_ = 100;
  DagmanResult result_;
  bool finished_ = false;
};

}  // namespace stampede::pegasus
