#pragma once
// The dispatcher-facing loading surface (DESIGN.md §2/§14).
//
// A file replayer or QueuePump drives "something that loads BP events
// and acks after commit" — historically a ShardedLoader, now also the
// cluster query router (which forwards the same calls to remote
// shard-host lanes). This interface is that contract, so the pumps are
// written once.

#include <cstdint>
#include <functional>

#include "netlogger/record.hpp"
#include "telemetry/trace.hpp"

namespace stampede::loader {

class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Routes one event (blocking on backpressure). Returns false once
  /// the sink is finished. Call from ONE dispatcher thread only.
  virtual bool process(const nl::LogRecord& record,
                       const telemetry::TraceStamps* trace = nullptr,
                       bool redelivered = false, std::uint64_t ack_tag = 0) = 0;

  /// Receives each event's ack_tag once its rows are durably committed
  /// (or it produced none). May fire on internal worker threads.
  virtual void set_ack_callback(std::function<void(std::uint64_t)> cb) = 0;

  /// Idle-stream nudge: commit pending batches and release held acks.
  virtual void flush_hint() = 0;

  /// Terminal: flush everything and reject further events.
  virtual void finish() = 0;
};

}  // namespace stampede::loader
