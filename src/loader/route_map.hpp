#pragma once
// Sticky tree-co-locating workflow routing (DESIGN.md §2, §14).
//
// Decides which shard/lane owns each BP event and remembers the
// decision, keeping a workflow's whole sub-workflow tree on one shard:
//   * every event of a seen workflow follows its pinned route;
//   * a first-seen workflow prefers its root's route, then its
//     parent's, then a stable hash of its own UUID;
//   * a stampede.xwf.map.subwf_job event pins the child to the tree's
//     route before any of the child's own events arrive.
//
// Extracted from ShardedLoader so the in-process lanes and the cluster
// query router share ONE implementation — routing divergence between
// the two would silently strand a workflow's rows on the wrong shard.

#include <cstddef>
#include <functional>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "common/uuid.hpp"
#include "netlogger/record.hpp"

namespace stampede::loader {

class WorkflowRouteMap {
 public:
  /// Stable shard index for a partition key (a workflow UUID string);
  /// ShardedLoader passes ShardedDatabase::shard_index_for_key, the
  /// router passes fnv1a64 % total. Must be pure and reproducible.
  using HashRoute = std::function<std::size_t(std::string_view key)>;

  /// Route for `record`, updating the map (first sightings are pinned;
  /// map.subwf_job pins the named child too). Unattributed records
  /// return route 0 without pinning anything. NOT thread-safe — call
  /// from the one dispatcher thread.
  std::size_t route(const nl::LogRecord& record, const HashRoute& hash_route);

  /// Pins `uuid` explicitly (archive recovery seeding). First pin wins,
  /// matching route()'s stickiness.
  void pin(const common::Uuid& uuid, std::size_t index) {
    map_.emplace(uuid, index);
  }

  [[nodiscard]] std::optional<std::size_t> route_of(
      const common::Uuid& uuid) const {
    const auto it = map_.find(uuid);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

 private:
  std::unordered_map<common::Uuid, std::size_t> map_;
};

}  // namespace stampede::loader
