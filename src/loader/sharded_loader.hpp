#pragma once
// Parallel loader lanes over a sharded archive (DESIGN.md §2, "Sharded
// archive").
//
// One dispatcher (the caller of process(), e.g. a QueuePump or file
// reader) routes events to N worker lanes; lane i owns shard i, its own
// orm::Session and identity caches, so lanes never contend on anything
// but the bounded hand-off queues. Ordering guarantees:
//
//   * Per workflow: sticky routing sends every event of a workflow to
//     one lane, and lanes are FIFO, so a workflow's events apply in
//     exactly the arrival order — same as the single loader.
//   * Per workflow *tree*: a sub-workflow is registered on its parent's
//     lane (via stampede.xwf.map.subwf_job, or its parent.xwf.id /
//     root.xwf.id attributes), so hierarchies stay co-located and
//     hierarchy queries (parent_wf_id / root_wf_id joins) resolve on a
//     single shard. Unattributed workflows route by hash of their own
//     UUID.

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/concurrent_queue.hpp"
#include "common/uuid.hpp"
#include "db/sharded_database.hpp"
#include "loader/event_sink.hpp"
#include "loader/route_map.hpp"
#include "loader/stampede_loader.hpp"
#include "netlogger/record.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace stampede::loader {

class ShardedLoader : public EventSink {
 public:
  /// The sharded database must already contain the Stampede schema
  /// (orm::create_stampede_schema). One lane is spawned per shard.
  explicit ShardedLoader(db::ShardedDatabase& database,
                         LoaderOptions options = {});

  ~ShardedLoader() override;

  ShardedLoader(const ShardedLoader&) = delete;
  ShardedLoader& operator=(const ShardedLoader&) = delete;

  /// Routes one event to its lane (blocking when the lane queue is
  /// full). Returns false after finish(). Call from ONE dispatcher
  /// thread only — routing state is not synchronized. `redelivered` and
  /// `ack_tag` forward to the lane's StampedeLoader::process (replay
  /// dedup + ack-after-commit).
  bool process(const nl::LogRecord& record,
               const telemetry::TraceStamps* trace = nullptr,
               bool redelivered = false, std::uint64_t ack_tag = 0) override;

  /// Forwarded to every lane loader. The callback runs on lane worker
  /// threads, so it must be thread-safe (Broker::ack is).
  void set_ack_callback(std::function<void(std::uint64_t)> callback) override;

  /// Asks every lane to commit pending rows and release acks once it
  /// drains its queue; the dispatcher calls this when the input stream
  /// goes idle (cheap: one marker item per lane).
  void flush_hint() override;

  /// Terminal: closes the lane queues, joins the workers and flushes
  /// every lane's session. Events offered afterwards are rejected.
  void finish() override;

  [[nodiscard]] std::size_t lane_count() const noexcept {
    return lanes_.size();
  }

  /// Aggregate stats across lanes. Only exact after finish() (lanes
  /// still draining keep mutating their own counters).
  [[nodiscard]] LoaderStats stats() const;

  /// Per-lane stats; call after finish().
  [[nodiscard]] const LoaderStats& lane_stats(std::size_t lane) const;

  /// Lane (== shard) an already-routed workflow is pinned to.
  [[nodiscard]] std::optional<std::size_t> route_of(
      const common::Uuid& uuid) const;

  /// Resolved wf_id of a workflow UUID; call after finish().
  [[nodiscard]] std::optional<std::int64_t> wf_id(
      const common::Uuid& uuid) const;

 private:
  struct Item {
    nl::LogRecord record;
    telemetry::TraceStamps trace;
    bool traced = false;
    bool redelivered = false;
    std::uint64_t ack_tag = 0;
    bool flush_marker = false;  ///< idle_flush the lane; record is empty.
  };

  struct Lane {
    Lane(db::StorageShard& shard, const LoaderOptions& options,
         std::size_t index);
    StampedeLoader loader;
    common::ConcurrentQueue<Item> queue;
    telemetry::Gauge& depth;        ///< stampede_loader_lane_depth{lane=i}
    telemetry::Counter& dispatched; ///< stampede_loader_lane_events_total
    std::jthread worker;            ///< Started by ShardedLoader's ctor.
  };

  void run_lane(Lane& lane);
  void update_skew();

  db::ShardedDatabase* db_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  /// Sticky tree-co-locating routes (shared logic with the cluster
  /// router — see route_map.hpp).
  WorkflowRouteMap route_map_;
  std::vector<std::uint64_t> lane_events_;  ///< Dispatcher-side, for skew.
  std::uint64_t dispatched_ = 0;
  telemetry::Gauge& skew_;  ///< stampede_loader_shard_skew_permille
  /// Lane pop timeout: how often an idle (or trickling) lane checks its
  /// flush deadline. Half the deadline, clamped to [1, 100] ms.
  std::chrono::milliseconds lane_poll_{100};
  bool finished_ = false;
};

}  // namespace stampede::loader
