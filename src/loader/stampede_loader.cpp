#include "loader/stampede_loader.hpp"

#include <cstdio>

#include "common/string_utils.hpp"
#include "common/time_utils.hpp"
#include "netlogger/events.hpp"
#include "telemetry/tracer.hpp"

namespace stampede::loader {

namespace ev = nl::events;
namespace attr = nl::events::attr;
using db::Value;

void LoaderStats::merge(const LoaderStats& other) {
  events_seen += other.events_seen;
  events_loaded += other.events_loaded;
  events_invalid += other.events_invalid;
  events_unknown += other.events_unknown;
  events_dropped += other.events_dropped;
  events_deferred += other.events_deferred;
  deferred_evicted += other.deferred_evicted;
  replay_deduped += other.replay_deduped;
  for (const auto& [event, count] : other.by_event) by_event[event] += count;
}

StampedeLoader::Instruments StampedeLoader::make_instruments() {
  auto& r = telemetry::registry();
  return {
      r.counter("stampede_loader_events_seen_total"),
      r.counter("stampede_loader_events_loaded_total"),
      r.counter("stampede_loader_events_invalid_total"),
      r.counter("stampede_loader_events_unknown_total"),
      r.counter("stampede_loader_events_dropped_total"),
      r.counter("stampede_loader_events_deferred_total"),
      r.counter("stampede_loader_deferred_dropped_total"),
      r.counter("stampede_loader_defer_warnings_total"),
      r.counter("stampede_loader_replay_deduped_total"),
      r.gauge("stampede_loader_deferred_depth"),
      r.histogram("stampede_e2e_publish_to_enqueue_seconds", {1e-7, 2.0, 32}),
      r.histogram("stampede_e2e_enqueue_to_dequeue_seconds"),
      r.histogram("stampede_e2e_publish_to_commit_seconds"),
  };
}

StampedeLoader::StampedeLoader(db::Database& database, LoaderOptions options)
    : session_(database, options.batch_size),
      options_(options),
      tele_(make_instruments()) {
  session_.set_commit_hook([this](std::size_t) { on_batch_commit(); });
}

StampedeLoader::~StampedeLoader() {
  // Flush while the commit hook (and the members it touches) are still
  // alive, then detach it so the Session's own destructor-flush cannot
  // call back into a partially destroyed loader.
  try {
    session_.flush();
  } catch (...) {
    // Mirrors Session::~Session: destructors must not throw.
  }
  session_.set_commit_hook({});
}

std::optional<std::int64_t> StampedeLoader::wf_id(
    const common::Uuid& uuid) const {
  const auto it = wf_ids_.find(uuid);
  if (it == wf_ids_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// Identity resolution

std::optional<std::int64_t> StampedeLoader::resolve_wf(
    const nl::LogRecord& r) {
  const auto uuid = r.get_uuid(attr::kXwfId);
  if (!uuid) return std::nullopt;
  const auto it = wf_ids_.find(*uuid);
  if (it != wf_ids_.end()) return it->second;
  // Cache miss: the workflow may already exist in a recovered archive
  // (the loader is resumable over WAL-backed databases).
  const auto existing = session_.database().scalar(
      db::Select{"workflow"}
          .where(db::eq("wf_uuid", Value{uuid->to_string()}))
          .columns({"wf_id"}));
  if (existing && existing->is_int()) {
    wf_ids_.emplace(*uuid, existing->as_int());
    recovered_wfs_.insert(existing->as_int());
    return existing->as_int();
  }
  // First reference anywhere: create a stub row that wf.plan will fill
  // in. This makes the loader robust to a sub-workflow's events arriving
  // before the parent's plan event names it.
  const std::int64_t id = session_.insert_now(
      "workflow", {{"wf_uuid", Value{uuid->to_string()}}});
  wf_ids_.emplace(*uuid, id);
  return id;
}

std::optional<std::int64_t> StampedeLoader::resolve_job(
    std::int64_t wf, std::string_view exec_job_id) {
  const std::pair<std::int64_t, std::string> key{wf,
                                                 std::string{exec_job_id}};
  const auto it = job_ids_.find(key);
  if (it != job_ids_.end()) return it->second;
  // exec_job_id leads the conjunction: the executor probes the first
  // indexed equality, and exec_job_id is far more selective than wf_id.
  const auto existing = session_.database().scalar(
      db::Select{"job"}
          .where(db::and_(
              db::eq("exec_job_id", Value{std::string{exec_job_id}}),
              db::eq("wf_id", Value{wf})))
          .columns({"job_id"}));
  if (existing && existing->is_int()) {
    job_ids_.emplace(key, existing->as_int());
    return existing->as_int();
  }
  return std::nullopt;
}

std::optional<std::int64_t> StampedeLoader::resolve_job_instance(
    std::int64_t wf, std::string_view exec_job_id, std::int64_t submit_seq,
    bool create) {
  const std::tuple<std::int64_t, std::string, std::int64_t> key{
      wf, std::string{exec_job_id}, submit_seq};
  const auto it = job_instance_ids_.find(key);
  if (it != job_instance_ids_.end()) return it->second;
  const auto job = resolve_job(wf, exec_job_id);
  if (!job) return std::nullopt;
  const auto existing = session_.database().scalar(
      db::Select{"job_instance"}
          .where(db::and_(db::eq("job_id", Value{*job}),
                          db::eq("job_submit_seq", Value{submit_seq})))
          .columns({"job_instance_id"}));
  if (existing && existing->is_int()) {
    job_instance_ids_.emplace(key, existing->as_int());
    if (recovered_jis_.insert(existing->as_int()).second) {
      seed_job_instance_state(existing->as_int());
    }
    return existing->as_int();
  }
  if (!create) return std::nullopt;
  const std::int64_t id = session_.insert_now(
      "job_instance",
      {{"job_id", Value{*job}}, {"job_submit_seq", Value{submit_seq}}});
  job_instance_ids_.emplace(key, id);
  return id;
}

void StampedeLoader::seed_job_instance_state(std::int64_t job_instance_id) {
  // A recovered job instance must resume jobstate numbering after its
  // archived rows — restarting at 1 would collide the UNIQUE-like
  // (instance, seq) pairing downstream queries order by — and main.end
  // needs the EXECUTE timestamp back to compute local_duration.
  const auto max_seq = session_.database().scalar(
      db::Select{"jobstate"}
          .where(db::eq("job_instance_id", Value{job_instance_id}))
          .agg(db::AggFn::kMax, "jobstate_submit_seq", "max_seq"));
  if (max_seq && max_seq->is_int()) {
    jobstate_seq_[job_instance_id] = max_seq->as_int();
  }
  const auto exec_ts = session_.database().scalar(
      db::Select{"jobstate"}
          .where(db::and_(
              db::eq("job_instance_id", Value{job_instance_id}),
              db::eq("state", Value{std::string{jobstate::kExecute}})))
          .columns({"timestamp"}));
  if (exec_ts && exec_ts->is_real()) {
    execute_ts_[job_instance_id] = exec_ts->as_real();
  }
}

void StampedeLoader::add_jobstate(std::int64_t job_instance_id,
                                  std::string_view state, double ts) {
  if (redelivered_ &&
      replay_duplicate(
          db::Select{"jobstate"}
              .where(db::and_(
                  db::and_(db::eq("job_instance_id", Value{job_instance_id}),
                           db::eq("state", Value{std::string{state}})),
                  db::eq("timestamp", Value{ts})))
              .columns({"job_instance_id"}))) {
    return;  // Already archived before the crash/redelivery.
  }
  const std::int64_t seq = ++jobstate_seq_[job_instance_id];
  session_.add("jobstate", {{"job_instance_id", Value{job_instance_id}},
                            {"state", Value{std::string{state}}},
                            {"timestamp", Value{ts}},
                            {"jobstate_submit_seq", Value{seq}}});
}

bool StampedeLoader::replay_duplicate(const db::Select& probe) {
  session_.flush();
  const auto existing = session_.database().scalar(probe);
  if (!existing || existing->is_null()) return false;
  ++stats_.replay_deduped;
  tele_.replay_deduped.inc();
  return true;
}

void StampedeLoader::ack_now(std::uint64_t ack_tag) {
  if (ack_tag != 0 && ack_cb_) ack_cb_(ack_tag);
}

// ---------------------------------------------------------------------------
// Event handlers

StampedeLoader::Outcome StampedeLoader::on_wf_plan(const nl::LogRecord& r) {
  const auto wf = resolve_wf(r);
  if (!wf) return Outcome::kError;
  db::NamedValues sets;
  sets.emplace_back("timestamp", Value{r.ts()});
  if (const auto v = r.get(attr::kSubmitDir)) {
    sets.emplace_back("submit_dir", Value{std::string{*v}});
  }
  if (const auto v = r.get(attr::kPlanner)) {
    sets.emplace_back("planner_version", Value{std::string{*v}});
  }
  if (const auto v = r.get(attr::kUser)) {
    sets.emplace_back("user", Value{std::string{*v}});
  }
  if (const auto v = r.get(attr::kDaxLabel)) {
    sets.emplace_back("dax_label", Value{std::string{*v}});
  }
  if (const auto parent = r.get_uuid(attr::kParentXwfId)) {
    // Resolve (stub-creating) the parent so hierarchy queries work even
    // if the parent's own plan event is still in flight.
    nl::LogRecord fake{r.ts(), std::string{ev::kWfPlan}};
    fake.set(attr::kXwfId, *parent);
    const auto parent_id = resolve_wf(fake);
    if (parent_id) sets.emplace_back("parent_wf_id", Value{*parent_id});
  }
  if (const auto root = r.get_uuid(attr::kRootXwfId)) {
    nl::LogRecord fake{r.ts(), std::string{ev::kWfPlan}};
    fake.set(attr::kXwfId, *root);
    const auto root_id = resolve_wf(fake);
    if (root_id) sets.emplace_back("root_wf_id", Value{*root_id});
  } else {
    sets.emplace_back("root_wf_id", Value{*wf});
  }
  session_.add_update_pk("workflow", *wf, std::move(sets));
  return Outcome::kApplied;
}

StampedeLoader::Outcome StampedeLoader::on_xwf_state(const nl::LogRecord& r,
                                                     bool start) {
  const auto wf = resolve_wf(r);
  if (!wf) return Outcome::kError;
  const std::string_view state =
      start ? wfstate::kStarted : wfstate::kTerminated;
  if (redelivered_ &&
      replay_duplicate(
          db::Select{"workflowstate"}
              .where(db::and_(
                  db::and_(db::eq("wf_id", Value{*wf}),
                           db::eq("state", Value{std::string{state}})),
                  db::eq("timestamp", Value{r.ts()})))
              .columns({"wf_id"}))) {
    return Outcome::kApplied;
  }
  db::NamedValues row{
      {"wf_id", Value{*wf}},
      {"state", Value{std::string{state}}},
      {"timestamp", Value{r.ts()}},
  };
  if (const auto v = r.get_int(attr::kRestartCount)) {
    row.emplace_back("restart_count", Value{*v});
  }
  if (const auto v = r.get_int(attr::kStatus)) {
    row.emplace_back("status", Value{*v});
  }
  session_.add("workflowstate", std::move(row));
  return Outcome::kApplied;
}

StampedeLoader::Outcome StampedeLoader::on_task_info(const nl::LogRecord& r) {
  const auto wf = resolve_wf(r);
  const auto task = r.get(attr::kTaskId);
  const auto xform = r.get(attr::kTransformation);
  if (!wf || !task || !xform) return Outcome::kError;
  db::NamedValues row{
      {"wf_id", Value{*wf}},
      {"abs_task_id", Value{std::string{*task}}},
      {"transformation", Value{std::string{*xform}}},
  };
  if (const auto v = r.get(attr::kType)) {
    row.emplace_back("type", Value{std::string{*v}});
  }
  if (const auto v = r.get(attr::kTypeDesc)) {
    row.emplace_back("type_desc", Value{std::string{*v}});
  }
  if (const auto v = r.get(attr::kArgv)) {
    row.emplace_back("argv", Value{std::string{*v}});
  }
  // Idempotence lookups only for workflows recovered from an existing
  // archive or for redelivered events; fresh first-delivery workflows
  // take the fast batched path.
  if (recovered_wfs_.count(*wf) != 0 || redelivered_) {
    session_.flush();
    const auto existing = session_.database().scalar(
        db::Select{"task"}
            .where(db::and_(db::eq("wf_id", Value{*wf}),
                            db::eq("abs_task_id",
                                   Value{std::string{*task}})))
            .columns({"task_id"}));
    if (existing && existing->is_int()) {
      if (redelivered_) {
        ++stats_.replay_deduped;
        tele_.replay_deduped.inc();
      }
      row.erase(row.begin(), row.begin() + 2);  // Drop the key columns.
      session_.add_update_pk("task", existing->as_int(), std::move(row));
      return Outcome::kApplied;
    }
  }
  session_.add("task", std::move(row));
  return Outcome::kApplied;
}

StampedeLoader::Outcome StampedeLoader::on_task_edge(const nl::LogRecord& r) {
  const auto wf = resolve_wf(r);
  const auto parent = r.get(attr::kParentTaskId);
  const auto child = r.get(attr::kChildTaskId);
  if (!wf || !parent || !child) return Outcome::kError;
  if (redelivered_ &&
      replay_duplicate(
          db::Select{"task_edge"}
              .where(db::and_(
                  db::and_(db::eq("wf_id", Value{*wf}),
                           db::eq("parent_abs_task_id",
                                  Value{std::string{*parent}})),
                  db::eq("child_abs_task_id", Value{std::string{*child}})))
              .columns({"wf_id"}))) {
    return Outcome::kApplied;
  }
  session_.add("task_edge",
               {{"wf_id", Value{*wf}},
                {"parent_abs_task_id", Value{std::string{*parent}}},
                {"child_abs_task_id", Value{std::string{*child}}}});
  return Outcome::kApplied;
}

StampedeLoader::Outcome StampedeLoader::on_job_info(const nl::LogRecord& r) {
  const auto wf = resolve_wf(r);
  const auto job = r.get(attr::kJobId);
  if (!wf || !job) return Outcome::kError;
  db::NamedValues row{
      {"wf_id", Value{*wf}},
      {"exec_job_id", Value{std::string{*job}}},
  };
  if (const auto v = r.get(attr::kType)) {
    row.emplace_back("type", Value{std::string{*v}});
  }
  if (const auto v = r.get(attr::kTypeDesc)) {
    row.emplace_back("type_desc", Value{std::string{*v}});
  }
  if (const auto v = r.get(attr::kTransformation)) {
    row.emplace_back("transformation", Value{std::string{*v}});
  }
  if (const auto v = r.get(attr::kExecutable)) {
    row.emplace_back("executable", Value{std::string{*v}});
  }
  if (const auto v = r.get(attr::kArgv)) {
    row.emplace_back("argv", Value{std::string{*v}});
  }
  if (const auto v = r.get_int("task_count")) {
    row.emplace_back("task_count", Value{*v});
  }
  // Idempotent over replayed logs.
  if (const auto existing = resolve_job(*wf, *job)) {
    row.erase(row.begin(), row.begin() + 2);  // Drop the key columns.
    session_.add_update_pk("job", *existing, std::move(row));
    return Outcome::kApplied;
  }
  const std::int64_t id = session_.insert_now("job", row);
  job_ids_.emplace(std::make_pair(*wf, std::string{*job}), id);
  return Outcome::kApplied;
}

StampedeLoader::Outcome StampedeLoader::on_job_edge(const nl::LogRecord& r) {
  const auto wf = resolve_wf(r);
  const auto parent = r.get(attr::kParentJobId);
  const auto child = r.get(attr::kChildJobId);
  if (!wf || !parent || !child) return Outcome::kError;
  if (redelivered_ &&
      replay_duplicate(
          db::Select{"job_edge"}
              .where(db::and_(
                  db::and_(db::eq("wf_id", Value{*wf}),
                           db::eq("parent_exec_job_id",
                                  Value{std::string{*parent}})),
                  db::eq("child_exec_job_id", Value{std::string{*child}})))
              .columns({"wf_id"}))) {
    return Outcome::kApplied;
  }
  session_.add("job_edge",
               {{"wf_id", Value{*wf}},
                {"parent_exec_job_id", Value{std::string{*parent}}},
                {"child_exec_job_id", Value{std::string{*child}}}});
  return Outcome::kApplied;
}

StampedeLoader::Outcome StampedeLoader::on_map_task_job(
    const nl::LogRecord& r) {
  const auto wf = resolve_wf(r);
  const auto task = r.get(attr::kTaskId);
  const auto job = r.get(attr::kJobId);
  if (!wf || !task || !job) return Outcome::kError;
  const auto job_pk = resolve_job(*wf, *job);
  if (!job_pk) return Outcome::kDefer;
  // Indexed probe (abs_task_id) + PK update: the loader's hottest
  // structural event in clustered Pegasus workflows must not scan.
  session_.flush();
  const auto rs = session_.database().execute(
      db::Select{"task"}
          .where(db::and_(db::eq("abs_task_id", Value{std::string{*task}}),
                          db::eq("wf_id", Value{*wf})))
          .columns({"task_id"}));
  if (rs.empty()) return Outcome::kDefer;
  session_.add_update_pk("task", rs.at(0, "task_id").as_int(),
                         {{"job_id", Value{*job_pk}}});
  return Outcome::kApplied;
}

StampedeLoader::Outcome StampedeLoader::on_map_subwf_job(
    const nl::LogRecord& r) {
  const auto wf = resolve_wf(r);
  const auto subwf = r.get_uuid(attr::kSubwfId);
  const auto job = r.get(attr::kJobId);
  if (!wf || !subwf || !job) return Outcome::kError;
  // Stub-resolve the sub-workflow so the association can be recorded
  // before the child's own events arrive.
  nl::LogRecord fake{r.ts(), std::string{ev::kWfPlan}};
  fake.set(attr::kXwfId, *subwf);
  const auto subwf_id = resolve_wf(fake);
  if (!subwf_id) return Outcome::kError;
  const std::int64_t seq = r.get_int(attr::kJobInstId).value_or(1);
  const auto ji = resolve_job_instance(*wf, *job, seq, /*create=*/true);
  if (!ji) return Outcome::kDefer;
  session_.add_update_pk("job_instance", *ji,
                         {{"subwf_id", Value{*subwf_id}}});
  return Outcome::kApplied;
}

StampedeLoader::Outcome StampedeLoader::on_job_inst_event(
    const nl::LogRecord& r, std::string_view suffix) {
  const auto wf = resolve_wf(r);
  const auto job = r.get(attr::kJobId);
  const auto seq = r.get_int(attr::kJobInstId);
  if (!wf || !job || !seq) return Outcome::kError;

  const bool creates = suffix == "submit.start";
  const auto ji = resolve_job_instance(*wf, *job, *seq, creates);
  if (!ji) return Outcome::kDefer;

  if (suffix == "pre.start") {
    add_jobstate(*ji, jobstate::kPreScriptStarted, r.ts());
  } else if (suffix == "pre.term") {
    // Termination signal of the prescript; no state table entry.
  } else if (suffix == "pre.end") {
    const auto exit = r.get_int(attr::kExitcode).value_or(0);
    add_jobstate(*ji,
                 exit == 0 ? jobstate::kPreScriptSuccess
                           : jobstate::kPreScriptFailure,
                 r.ts());
  } else if (suffix == "submit.start") {
    add_jobstate(*ji, jobstate::kSubmit, r.ts());
    if (const auto v = r.get(attr::kSchedId)) {
      session_.add_update_pk("job_instance", *ji,
                             {{"sched_id", Value{std::string{*v}}}});
    }
  } else if (suffix == "submit.end") {
    // Submission acknowledged; nothing beyond the SUBMIT state already
    // recorded, unless it failed.
    if (r.get_int(attr::kStatus).value_or(0) != 0) {
      add_jobstate(*ji, jobstate::kFailure, r.ts());
    }
  } else if (suffix == "held.start") {
    add_jobstate(*ji, jobstate::kHeld, r.ts());
  } else if (suffix == "held.end") {
    add_jobstate(*ji, jobstate::kReleased, r.ts());
  } else if (suffix == "main.start") {
    add_jobstate(*ji, jobstate::kExecute, r.ts());
    execute_ts_[*ji] = r.ts();
    if (const auto v = r.get(attr::kSite)) {
      session_.add_update_pk("job_instance", *ji,
                             {{"site", Value{std::string{*v}}}});
    }
  } else if (suffix == "main.term") {
    add_jobstate(*ji, jobstate::kTerminated, r.ts());
  } else if (suffix == "main.end") {
    const auto exit = r.get_int(attr::kExitcode).value_or(0);
    add_jobstate(*ji, exit == 0 ? jobstate::kSuccess : jobstate::kFailure,
                 r.ts());
    db::NamedValues sets{{"exitcode", Value{exit}}};
    const auto started = execute_ts_.find(*ji);
    if (started != execute_ts_.end()) {
      sets.emplace_back("local_duration", Value{r.ts() - started->second});
    }
    if (const auto v = r.get(attr::kStdOut)) {
      sets.emplace_back("stdout_text", Value{std::string{*v}});
    }
    if (const auto v = r.get(attr::kStdErr)) {
      sets.emplace_back("stderr_text", Value{std::string{*v}});
    }
    if (const auto v = r.get(attr::kSite)) {
      sets.emplace_back("site", Value{std::string{*v}});
    }
    if (const auto v = r.get_double("multiplier_factor")) {
      sets.emplace_back("multiplier_factor", Value{*v});
    }
    session_.add_update_pk("job_instance", *ji, std::move(sets));
  } else if (suffix == "post.start") {
    add_jobstate(*ji, jobstate::kPostScriptStarted, r.ts());
  } else if (suffix == "post.term") {
    // As with pre.term, only the end event carries the exit code.
  } else if (suffix == "post.end") {
    const auto exit = r.get_int(attr::kExitcode).value_or(0);
    add_jobstate(*ji,
                 exit == 0 ? jobstate::kPostScriptSuccess
                           : jobstate::kPostScriptFailure,
                 r.ts());
  } else if (suffix == "image.info") {
    // Image size snapshots are accepted but not archived in this schema.
  } else {
    return Outcome::kError;
  }
  return Outcome::kApplied;
}

StampedeLoader::Outcome StampedeLoader::on_host_info(const nl::LogRecord& r) {
  const auto wf = resolve_wf(r);
  const auto job = r.get(attr::kJobId);
  const auto seq = r.get_int(attr::kJobInstId);
  const auto hostname = r.get(attr::kHostname);
  if (!wf || !job || !seq || !hostname) return Outcome::kError;
  const auto ji = resolve_job_instance(*wf, *job, *seq, /*create=*/false);
  if (!ji) return Outcome::kDefer;

  const std::pair<std::int64_t, std::string> key{*wf, std::string{*hostname}};
  auto it = host_ids_.find(key);
  if (it == host_ids_.end() &&
      (recovered_wfs_.count(*wf) != 0 || redelivered_)) {
    // Cache miss over a recovered archive: the host row may already
    // exist from the pre-crash run; inserting blindly would fork a
    // duplicate host_id and skew host-usage statistics.
    const auto existing = session_.database().scalar(
        db::Select{"host"}
            .where(db::and_(db::eq("wf_id", Value{*wf}),
                            db::eq("hostname",
                                   Value{std::string{*hostname}})))
            .columns({"host_id"}));
    if (existing && existing->is_int()) {
      it = host_ids_.emplace(key, existing->as_int()).first;
    }
  }
  if (it == host_ids_.end()) {
    db::NamedValues row{{"wf_id", Value{*wf}},
                        {"hostname", Value{std::string{*hostname}}}};
    if (const auto v = r.get(attr::kSite)) {
      row.emplace_back("site", Value{std::string{*v}});
    }
    if (const auto v = r.get(attr::kIp)) {
      row.emplace_back("ip", Value{std::string{*v}});
    }
    if (const auto v = r.get(attr::kUname)) {
      row.emplace_back("uname", Value{std::string{*v}});
    }
    if (const auto v = r.get_int(attr::kTotalMemory)) {
      row.emplace_back("total_memory", Value{*v});
    }
    const std::int64_t id = session_.insert_now("host", row);
    it = host_ids_.emplace(key, id).first;
  }
  db::NamedValues sets{{"host_id", Value{it->second}}};
  if (const auto v = r.get(attr::kSite)) {
    sets.emplace_back("site", Value{std::string{*v}});
  }
  session_.add_update_pk("job_instance", *ji, std::move(sets));
  return Outcome::kApplied;
}

StampedeLoader::Outcome StampedeLoader::on_inv_end(const nl::LogRecord& r) {
  const auto wf = resolve_wf(r);
  const auto job = r.get(attr::kJobId);
  const auto seq = r.get_int(attr::kJobInstId);
  const auto inv = r.get_int(attr::kInvId);
  if (!wf || !job || !seq || !inv) return Outcome::kError;
  const auto ji = resolve_job_instance(*wf, *job, *seq, /*create=*/false);
  if (!ji) return Outcome::kDefer;

  db::NamedValues row{
      {"job_instance_id", Value{*ji}},
      {"wf_id", Value{*wf}},
      {"task_submit_seq", Value{*inv}},
      {"exitcode", Value{r.get_int(attr::kExitcode).value_or(0)}},
  };
  if (const auto v = r.get(attr::kTaskId)) {
    row.emplace_back("abs_task_id", Value{std::string{*v}});
  }
  if (const auto v = r.get_double(attr::kDur)) {
    row.emplace_back("remote_duration", Value{*v});
  }
  if (const auto v = r.get_double(attr::kRemoteCpuTime)) {
    row.emplace_back("remote_cpu_time", Value{*v});
  }
  if (const auto v = r.get("start_time")) {
    if (const auto ts = common::parse_timestamp(*v)) {
      row.emplace_back("start_time", Value{*ts});
    }
  }
  if (const auto v = r.get(attr::kTransformation)) {
    row.emplace_back("transformation", Value{std::string{*v}});
  }
  if (const auto v = r.get(attr::kExecutable)) {
    row.emplace_back("executable", Value{std::string{*v}});
  }
  if (const auto v = r.get(attr::kArgv)) {
    row.emplace_back("argv", Value{std::string{*v}});
  }
  // Idempotence lookup only for job instances recovered from an
  // existing archive or for redelivered events.
  if (recovered_jis_.count(*ji) != 0 || redelivered_) {
    session_.flush();
    const auto existing = session_.database().scalar(
        db::Select{"invocation"}
            .where(db::and_(db::eq("job_instance_id", Value{*ji}),
                            db::eq("task_submit_seq", Value{*inv})))
            .columns({"invocation_id"}));
    if (existing && existing->is_int()) {
      if (redelivered_) {
        ++stats_.replay_deduped;
        tele_.replay_deduped.inc();
      }
      row.erase(row.begin(), row.begin() + 3);  // Drop the key columns.
      session_.add_update_pk("invocation", existing->as_int(),
                             std::move(row));
      return Outcome::kApplied;
    }
  }
  session_.add("invocation", std::move(row));
  return Outcome::kApplied;
}

// ---------------------------------------------------------------------------
// Dispatch

StampedeLoader::Outcome StampedeLoader::dispatch(const nl::LogRecord& r) {
  const std::string& e = r.event();
  if (e == ev::kWfPlan) return on_wf_plan(r);
  if (e == ev::kXwfStart) return on_xwf_state(r, true);
  if (e == ev::kXwfEnd) return on_xwf_state(r, false);
  if (e == ev::kTaskInfo) return on_task_info(r);
  if (e == ev::kTaskEdge) return on_task_edge(r);
  if (e == ev::kJobInfo) return on_job_info(r);
  if (e == ev::kJobEdge) return on_job_edge(r);
  if (e == ev::kMapTaskJob) return on_map_task_job(r);
  if (e == ev::kMapSubwfJob) return on_map_subwf_job(r);
  if (e == ev::kJobInstHostInfo) return on_host_info(r);
  if (e == ev::kInvStart) return Outcome::kApplied;  // Informational only.
  if (e == ev::kInvEnd) return on_inv_end(r);
  constexpr std::string_view kJobInstPrefix = "stampede.job_inst.";
  if (common::starts_with(e, kJobInstPrefix)) {
    return on_job_inst_event(r, std::string_view{e}.substr(
                                    kJobInstPrefix.size()));
  }
  return Outcome::kError;
}

void StampedeLoader::note_applied(const telemetry::TraceStamps& trace) {
  // Cross-process events have no steady publish stamp (it does not
  // travel), but a sampled TraceContext still awaits the commit so the
  // waterfall spans can be reconstructed.
  const bool wants_spans = trace.context.valid() && trace.context.sampled();
  if (!trace.traced() && !wants_spans) return;
  if (trace.traced() && trace.enqueued > 0.0) {
    tele_.publish_to_enqueue.observe(trace.enqueued - trace.published);
    if (trace.dequeued > 0.0) {
      tele_.enqueue_to_dequeue.observe(trace.dequeued - trace.enqueued);
    }
  }
  awaiting_commit_.push_back(trace);
}

void StampedeLoader::note_deferred_depth() {
  const std::size_t depth = deferred_.size();
  tele_.deferred_depth.set(static_cast<std::int64_t>(depth));
  if (options_.defer_warn_threshold == 0) return;
  if (depth > options_.defer_warn_threshold) {
    if (!defer_warned_) {
      defer_warned_ = true;
      tele_.defer_warnings.inc();
      std::fprintf(stderr,
                   "stampede_loader: warning: deferred-replay queue depth "
                   "%zu exceeds threshold %zu (event stream badly "
                   "reordered or referents missing)\n",
                   depth, options_.defer_warn_threshold);
    }
  } else if (depth <= options_.defer_warn_threshold / 2) {
    defer_warned_ = false;  // Re-arm once the backlog drains.
  }
}

void StampedeLoader::on_batch_commit() {
  if (!awaiting_commit_.empty()) {
    const double now = telemetry::now();
    for (const auto& trace : awaiting_commit_) {
      if (trace.traced()) {
        tele_.publish_to_commit.observe(now - trace.published);
      }
    }
    record_waterfall_spans(now);
    awaiting_commit_.clear();
  }
  // Rows are durable exactly when this hook fires, so these events'
  // acknowledgments are now safe: a crash after this point replays
  // nothing the archive does not already hold.
  if (!awaiting_ack_.empty()) {
    if (ack_cb_) {
      for (const std::uint64_t tag : awaiting_ack_) ack_cb_(tag);
    }
    awaiting_ack_.clear();
  }
  note_pending();
}

bool StampedeLoader::has_unflushed() const noexcept {
  return session_.pending() > 0 || !awaiting_commit_.empty() ||
         !awaiting_ack_.empty();
}

void StampedeLoader::note_pending() {
  if (!has_unflushed()) {
    has_pending_ = false;
  } else if (!has_pending_) {
    has_pending_ = true;
    pending_since_ = std::chrono::steady_clock::now();
  }
  // Already pending: keep the original (oldest) timestamp — the
  // deadline bounds the *oldest* event's wait, or a steady trickle
  // could push the flush out forever.
}

bool StampedeLoader::flush_deadline_due() const {
  if (options_.flush_deadline_ms == 0 || !has_pending_) return false;
  return std::chrono::steady_clock::now() - pending_since_ >=
         std::chrono::milliseconds(options_.flush_deadline_ms);
}

void StampedeLoader::maybe_deadline_flush() {
  if (flush_deadline_due()) idle_flush();
}

void StampedeLoader::record_waterfall_spans(double commit_steady) {
  if (!telemetry::enabled()) return;
  auto& tracer = telemetry::Tracer::instance();
  const double commit_wall = tracer.wall_at(commit_steady);
  for (const auto& trace : awaiting_commit_) {
    const auto& ctx = trace.context;
    if (!ctx.valid() || !ctx.sampled()) continue;
    // One child span per pipeline stage whose bounding stamps exist.
    // Wall stamps are anchored epoch seconds from whichever process
    // observed the stage, so the stages line up across hosts.
    const auto stage = [&](const char* name, double begin, double end) {
      if (begin <= 0.0 || end <= 0.0 || end < begin) return;
      telemetry::Span span;
      span.name = name;
      span.context = ctx;
      span.context.span_id = tracer.next_id();
      span.parent_span_id = ctx.span_id;
      span.start_wall = begin;
      span.duration = end - begin;
      tracer.record(std::move(span));
    };
    stage("publish", trace.published_wall, trace.enqueued_wall);
    if (trace.spooled_wall > 0.0) {
      stage("spool", trace.enqueued_wall, trace.spooled_wall);
      stage("queue", trace.spooled_wall, trace.dequeued_wall);
    } else {
      stage("queue", trace.enqueued_wall, trace.dequeued_wall);
    }
    stage("commit", trace.dequeued_wall, commit_wall);
    // The root pipeline span (the publisher's span id) closes here, at
    // the commit that made the event durable.
    double start = trace.published_wall;
    if (start <= 0.0) start = trace.enqueued_wall;
    if (start <= 0.0) start = trace.dequeued_wall;
    if (start <= 0.0 || commit_wall < start) continue;
    telemetry::Span root;
    root.name = "pipeline";
    root.context = ctx;
    root.start_wall = start;
    root.duration = commit_wall - start;
    tracer.record(std::move(root));
  }
}

void StampedeLoader::idle_flush() {
  if (!deferred_.empty()) replay_deferred();
  session_.flush();
  // Session::flush is a no-op (no hook) on an empty batch, but events
  // whose rows all went through insert_now may still await their acks.
  on_batch_commit();
}

bool StampedeLoader::process(const nl::LogRecord& record,
                             const telemetry::TraceStamps* trace,
                             bool redelivered, std::uint64_t ack_tag) {
  ++stats_.events_seen;
  ++stats_.by_event[record.event()];
  tele_.seen.inc();
  if (options_.validate) {
    const auto report = yang::stampede_schema().validate(record);
    if (!report.ok()) {
      ++stats_.events_invalid;
      tele_.invalid.inc();
      ack_now(ack_tag);  // Will never produce rows; redelivery is useless.
      return false;
    }
  }
  redelivered_ = redelivered;
  const Outcome outcome = dispatch(record);
  redelivered_ = false;
  switch (outcome) {
    case Outcome::kApplied:
      ++stats_.events_loaded;
      tele_.loaded.inc();
      if (trace != nullptr) note_applied(*trace);
      if (ack_tag != 0) awaiting_ack_.push_back(ack_tag);
      if (!deferred_.empty()) replay_deferred();
      note_pending();
      return true;
    case Outcome::kDefer:
      ++stats_.events_deferred;
      tele_.deferred.inc();
      deferred_.push_back(
          {record, 0, trace != nullptr ? *trace : telemetry::TraceStamps{},
           redelivered, ack_tag});
      if (options_.defer_max != 0 && deferred_.size() > options_.defer_max) {
        // Hard cap: evict the oldest deferred event rather than letting
        // orphans grow the queue without bound.
        ack_now(deferred_.front().ack_tag);
        deferred_.pop_front();
        ++stats_.events_dropped;
        ++stats_.deferred_evicted;
        tele_.dropped.inc();
        tele_.deferred_dropped.inc();
      }
      note_deferred_depth();
      note_pending();  // A deferral can batch rows via replayed events.
      return false;
    case Outcome::kError:
      ++stats_.events_unknown;
      tele_.unknown.inc();
      ack_now(ack_tag);
      note_pending();
      return false;
  }
  return false;
}

void StampedeLoader::replay_deferred() {
  if (replaying_) return;
  replaying_ = true;
  bool progress = true;
  while (progress && !deferred_.empty()) {
    progress = false;
    const std::size_t n = deferred_.size();
    for (std::size_t i = 0; i < n; ++i) {
      Deferred item = std::move(deferred_.front());
      deferred_.pop_front();
      redelivered_ = item.redelivered;
      const Outcome outcome = dispatch(item.record);
      redelivered_ = false;
      if (outcome == Outcome::kApplied) {
        ++stats_.events_loaded;
        tele_.loaded.inc();
        note_applied(item.trace);
        if (item.ack_tag != 0) awaiting_ack_.push_back(item.ack_tag);
        progress = true;
      } else if (outcome == Outcome::kDefer) {
        if (++item.rounds >= options_.max_defer_rounds) {
          ++stats_.events_dropped;
          tele_.dropped.inc();
          ack_now(item.ack_tag);
        } else {
          deferred_.push_back(std::move(item));
        }
      } else {
        ++stats_.events_unknown;
        tele_.unknown.inc();
        ack_now(item.ack_tag);
      }
    }
  }
  replaying_ = false;
  note_deferred_depth();
}

void StampedeLoader::finish() {
  replay_deferred();
  stats_.events_dropped += deferred_.size();
  tele_.dropped.inc(deferred_.size());
  for (const Deferred& item : deferred_) ack_now(item.ack_tag);
  deferred_.clear();
  note_deferred_depth();
  session_.flush();
  on_batch_commit();  // Release acks even when the final batch was empty.
}

}  // namespace stampede::loader
