#pragma once
// The stampede_loader module (paper §IV-D/E): consumes normalized BP
// events and populates the relational archive.
//
// Responsibilities:
//   * validate each event against the YANG schema (drop + count on error)
//   * resolve entity identities (wf_uuid → wf_id, exec_job_id → job_id,
//     (job, submit_seq) → job_instance_id) through write-through caches
//   * translate lifecycle events into workflowstate/jobstate rows and
//     job_instance/invocation updates
//   * batch inserts through the ORM session (the optimization §V-D
//     mentions: similar inserts are batched together)
//   * tolerate modest event reordering by deferring records whose
//     referents have not arrived yet and replaying them when they do

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/uuid.hpp"
#include "netlogger/record.hpp"
#include "orm/session.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "yang/validator.hpp"

namespace stampede::loader {

/// Canonical jobstate names written to the jobstate table (the SUBMIT,
/// EXECUTE, JOB_SUCCESS... vocabulary from paper §IV-D).
namespace jobstate {
inline constexpr std::string_view kPreScriptStarted = "PRE_SCRIPT_STARTED";
inline constexpr std::string_view kPreScriptSuccess = "PRE_SCRIPT_SUCCESS";
inline constexpr std::string_view kPreScriptFailure = "PRE_SCRIPT_FAILURE";
inline constexpr std::string_view kSubmit = "SUBMIT";
inline constexpr std::string_view kExecute = "EXECUTE";
inline constexpr std::string_view kHeld = "JOB_HELD";
inline constexpr std::string_view kReleased = "JOB_RELEASED";
inline constexpr std::string_view kTerminated = "JOB_TERMINATED";
inline constexpr std::string_view kSuccess = "JOB_SUCCESS";
inline constexpr std::string_view kFailure = "JOB_FAILURE";
inline constexpr std::string_view kPostScriptStarted = "POST_SCRIPT_STARTED";
inline constexpr std::string_view kPostScriptSuccess = "POST_SCRIPT_SUCCESS";
inline constexpr std::string_view kPostScriptFailure = "POST_SCRIPT_FAILURE";
}  // namespace jobstate

/// Workflow-level states written to the workflowstate table.
namespace wfstate {
inline constexpr std::string_view kStarted = "WORKFLOW_STARTED";
inline constexpr std::string_view kTerminated = "WORKFLOW_TERMINATED";
}  // namespace wfstate

struct LoaderOptions {
  bool validate = true;        ///< Run YANG validation on every event.
  std::size_t batch_size = 256;
  std::size_t max_defer_rounds = 64;  ///< Give up on a deferred event after
                                      ///< this many replay attempts.
  /// Log a warning (and count it) when the deferred-replay queue grows
  /// past this depth — sustained growth means the event stream is badly
  /// reordered or referents are missing. 0 disables the warning.
  std::size_t defer_warn_threshold = 1024;
  /// Hard cap on the deferred-replay queue. A deferral past this depth
  /// evicts the oldest deferred event (counted as dropped, plus the
  /// stampede_loader_deferred_dropped_total metric), so a stream of
  /// orphaned events can never grow memory without bound. 0 disables
  /// the cap.
  std::size_t defer_max = 65536;
  /// Depth of each lane's hand-off queue when the loader runs as
  /// parallel lanes (ShardedLoader); the dispatcher blocks when a lane
  /// falls this far behind (backpressure).
  std::size_t lane_queue_capacity = 4096;
  /// Age-based flush deadline: applied-but-uncommitted work (batched
  /// rows, unreleased acks) is force-flushed once the oldest piece has
  /// waited this long — so a trickling event stream that never fills a
  /// batch still sees bounded commit/ack latency. Enforced by whoever
  /// drives the loader (ShardedLoader lanes poll it; single-loader
  /// callers may call maybe_deadline_flush()). 0 disables.
  std::size_t flush_deadline_ms = 250;
};

struct LoaderStats {
  std::uint64_t events_seen = 0;
  std::uint64_t events_loaded = 0;
  std::uint64_t events_invalid = 0;    ///< Failed YANG validation.
  std::uint64_t events_unknown = 0;    ///< Event name not handled.
  std::uint64_t events_dropped = 0;    ///< Deferred past max rounds.
  std::uint64_t events_deferred = 0;   ///< Total deferral episodes.
  std::uint64_t deferred_evicted = 0;  ///< Evicted by the defer_max cap.
  std::uint64_t replay_deduped = 0;    ///< Redelivered rows already archived.
  std::map<std::string, std::uint64_t> by_event;

  /// Accumulates `other` into this (used to aggregate per-lane stats).
  void merge(const LoaderStats& other);
};

class StampedeLoader {
 public:
  /// The database must already contain the Stampede schema
  /// (orm::create_stampede_schema).
  explicit StampedeLoader(db::Database& database, LoaderOptions options = {});

  ~StampedeLoader();

  /// Feeds one event. Returns true when the event was applied (possibly
  /// after deferred replay of earlier events), false when it was
  /// rejected or deferred. `trace` carries the bus-side trace stamps for
  /// events arriving through a QueuePump; the loader completes them into
  /// end-to-end publish→commit latency when the ORM transaction holding
  /// the event's rows commits. nullptr (file replays) skips tracing.
  ///
  /// `redelivered` marks an event the bus may already have delivered
  /// (crash replay or nack-requeue): the loader takes the idempotent
  /// slow path, checking the archive before inserting append-only rows,
  /// so at-least-once delivery converges to the same archive.
  ///
  /// `ack_tag` (0 = none) is handed to the ack callback once the
  /// event's rows are durably committed — or immediately when the event
  /// produces no rows (invalid, unknown, deduped, dropped) — giving the
  /// bus ack-after-commit semantics.
  bool process(const nl::LogRecord& record,
               const telemetry::TraceStamps* trace = nullptr,
               bool redelivered = false, std::uint64_t ack_tag = 0);

  /// Receives each processed event's `ack_tag` once it is safe to
  /// acknowledge on the bus (rows committed, or no rows to commit).
  void set_ack_callback(std::function<void(std::uint64_t)> callback) {
    ack_cb_ = std::move(callback);
  }

  /// Commits pending batched rows and releases their acks; call when
  /// the input stream goes idle so acknowledgments (and therefore
  /// QueuePump::wait_until_drained) do not wait for a full batch.
  void idle_flush();

  /// True when applied-but-uncommitted work has been waiting longer
  /// than LoaderOptions::flush_deadline_ms.
  [[nodiscard]] bool flush_deadline_due() const;

  /// idle_flush() iff flush_deadline_due() — the bounded-ack-latency
  /// guarantee for trickle input that never fills a batch.
  void maybe_deadline_flush();

  /// Flushes batched inserts and replays deferred events one last time.
  /// Call when the input stream ends (or periodically for real-time
  /// readers).
  void finish();

  [[nodiscard]] const LoaderStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t deferred_count() const noexcept {
    return deferred_.size();
  }
  [[nodiscard]] orm::Session& session() noexcept { return session_; }

  /// Resolved wf_id for a workflow UUID, if this loader has seen it.
  [[nodiscard]] std::optional<std::int64_t> wf_id(
      const common::Uuid& uuid) const;

 private:
  enum class Outcome { kApplied, kDefer, kError };

  Outcome dispatch(const nl::LogRecord& record);
  void replay_deferred();

  /// Bookkeeping shared by process() and replay_deferred() when an event
  /// lands: stage latencies now, publish→commit when the batch commits.
  void note_applied(const telemetry::TraceStamps& trace);
  /// Anything applied but not yet committed (batched rows, held acks)?
  [[nodiscard]] bool has_unflushed() const noexcept;
  /// Starts/stops the flush-deadline clock to match has_unflushed().
  void note_pending();
  void note_deferred_depth();
  void on_batch_commit();

  // Handlers, one per event family.
  Outcome on_wf_plan(const nl::LogRecord& r);
  Outcome on_xwf_state(const nl::LogRecord& r, bool start);
  Outcome on_task_info(const nl::LogRecord& r);
  Outcome on_task_edge(const nl::LogRecord& r);
  Outcome on_job_info(const nl::LogRecord& r);
  Outcome on_job_edge(const nl::LogRecord& r);
  Outcome on_map_task_job(const nl::LogRecord& r);
  Outcome on_map_subwf_job(const nl::LogRecord& r);
  Outcome on_job_inst_event(const nl::LogRecord& r, std::string_view suffix);
  Outcome on_host_info(const nl::LogRecord& r);
  Outcome on_inv_end(const nl::LogRecord& r);

  // Identity resolution.
  std::optional<std::int64_t> resolve_wf(const nl::LogRecord& r);
  std::optional<std::int64_t> resolve_job(std::int64_t wf,
                                          std::string_view exec_job_id);
  /// Resolves — creating on demand for submit.start — the job instance.
  std::optional<std::int64_t> resolve_job_instance(std::int64_t wf,
                                                   std::string_view exec_job_id,
                                                   std::int64_t submit_seq,
                                                   bool create);
  /// Rebuilds the in-memory per-instance state (jobstate numbering, the
  /// EXECUTE timestamp) for a job instance found in a recovered archive.
  void seed_job_instance_state(std::int64_t job_instance_id);

  void add_jobstate(std::int64_t job_instance_id, std::string_view state,
                    double ts);

  /// True when `probe` finds a row — the redelivered event's work is
  /// already archived. Flushes first so batched rows are visible.
  bool replay_duplicate(const db::Select& probe);
  /// Fires the ack callback right away (events that never produce rows).
  void ack_now(std::uint64_t ack_tag);

  orm::Session session_;
  LoaderOptions options_;
  LoaderStats stats_;

  // Caches. Keys use owned strings; lookups are per-event so the extra
  // allocation is irrelevant next to the insert cost.
  std::unordered_map<common::Uuid, std::int64_t> wf_ids_;
  std::map<std::pair<std::int64_t, std::string>, std::int64_t> job_ids_;
  std::map<std::tuple<std::int64_t, std::string, std::int64_t>, std::int64_t>
      job_instance_ids_;
  std::map<std::pair<std::int64_t, std::string>, std::int64_t> host_ids_;
  std::unordered_map<std::int64_t, std::int64_t> jobstate_seq_;
  std::unordered_map<std::int64_t, double> execute_ts_;
  /// Identities resolved from a pre-existing (recovered) archive rather
  /// than created by this loader — only these need the slow idempotence
  /// lookups; fresh identities take the fast batched path.
  std::set<std::int64_t> recovered_wfs_;
  std::set<std::int64_t> recovered_jis_;

  struct Deferred {
    nl::LogRecord record;
    std::size_t rounds = 0;
    telemetry::TraceStamps trace;  ///< Deferral counts toward e2e latency.
    bool redelivered = false;      ///< Keep the dedup path across replays.
    std::uint64_t ack_tag = 0;     ///< Acked when applied+committed/dropped.
  };
  std::deque<Deferred> deferred_;
  bool replaying_ = false;
  /// True while dispatching an event the bus flagged as redelivered;
  /// handlers use it to take the archive-checking idempotent path.
  bool redelivered_ = false;

  // Self-telemetry. Instruments are resolved once at construction; the
  // per-event path touches only relaxed atomics.
  struct Instruments {
    telemetry::Counter& seen;
    telemetry::Counter& loaded;
    telemetry::Counter& invalid;
    telemetry::Counter& unknown;
    telemetry::Counter& dropped;
    telemetry::Counter& deferred;
    telemetry::Counter& deferred_dropped;
    telemetry::Counter& defer_warnings;
    telemetry::Counter& replay_deduped;
    telemetry::Gauge& deferred_depth;
    telemetry::Histogram& publish_to_enqueue;
    telemetry::Histogram& enqueue_to_dequeue;
    telemetry::Histogram& publish_to_commit;
  };
  static Instruments make_instruments();
  Instruments tele_;
  /// Reconstructs the publish→enqueue→spool→dequeue→commit waterfall
  /// spans for every sampled event in the closing batch (DESIGN.md §11).
  void record_waterfall_spans(double commit_steady);
  /// Trace stamps of applied-but-not-yet-committed events; drained into
  /// the publish→commit histogram (and, for sampled traces, waterfall
  /// spans) by the session's commit hook.
  std::vector<telemetry::TraceStamps> awaiting_commit_;
  /// Ack tags of applied-but-not-yet-committed events; released to
  /// ack_cb_ by the same commit hook (acked ⊆ committed).
  std::vector<std::uint64_t> awaiting_ack_;
  std::function<void(std::uint64_t)> ack_cb_;
  bool defer_warned_ = false;
  /// Flush-deadline clock: set when uncommitted work first appears,
  /// cleared when a commit drains it (see flush_deadline_due()).
  bool has_pending_ = false;
  std::chrono::steady_clock::time_point pending_since_{};
};

}  // namespace stampede::loader
