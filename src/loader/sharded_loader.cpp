#include "loader/sharded_loader.hpp"

#include <algorithm>
#include <cmath>

namespace stampede::loader {

ShardedLoader::Lane::Lane(db::StorageShard& shard,
                          const LoaderOptions& options, std::size_t index)
    : loader(shard, options),
      queue(options.lane_queue_capacity),
      depth(telemetry::registry().gauge(telemetry::labeled(
          "stampede_loader_lane_depth", "lane", std::to_string(index)))),
      dispatched(telemetry::registry().counter(telemetry::labeled(
          "stampede_loader_lane_events_total", "lane",
          std::to_string(index)))) {}

ShardedLoader::ShardedLoader(db::ShardedDatabase& database,
                             LoaderOptions options)
    : db_(&database),
      lane_events_(database.shard_count(), 0),
      skew_(telemetry::registry().gauge("stampede_loader_shard_skew_permille")) {
  if (options.flush_deadline_ms != 0) {
    lane_poll_ = std::chrono::milliseconds(std::clamp<std::size_t>(
        options.flush_deadline_ms / 2, 1, 100));
  }
  lanes_.reserve(database.shard_count());
  for (std::size_t i = 0; i < database.shard_count(); ++i) {
    lanes_.push_back(
        std::make_unique<Lane>(database.shard(i), options, i));
  }
  // Routing must survive a crash/restart: a workflow's rows live on
  // exactly one shard, so every workflow already in the (recovered)
  // archive is pinned back to that shard's lane. Without this, a
  // sub-workflow pinned to its parent's lane by an already-committed
  // map event would re-route by hash after a restart and its replayed
  // events would land on the wrong shard.
  for (std::size_t i = 0; i < database.shard_count(); ++i) {
    if (!database.shard(i).has_table("workflow")) continue;
    const auto rs = database.shard(i).execute(
        db::Select{"workflow"}.columns({"wf_uuid"}));
    for (std::size_t r = 0; r < rs.size(); ++r) {
      if (const auto uuid =
              common::Uuid::parse(rs.at(r, "wf_uuid").as_text())) {
        route_map_.pin(*uuid, i);
      }
    }
  }
  // Workers start only after every lane exists.
  for (auto& lane : lanes_) {
    Lane* l = lane.get();
    l->worker = std::jthread([this, l] { run_lane(*l); });
  }
}

ShardedLoader::~ShardedLoader() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; a failing flush is already counted in
    // the lane loaders' own error paths.
  }
}

void ShardedLoader::run_lane(Lane& lane) {
  for (;;) {
    auto item = lane.queue.pop_for(lane_poll_);
    if (!item) {
      // This thread is the queue's only consumer, so closed+empty seen
      // here is final. A plain timeout is the trickle-input escape
      // hatch: batched-but-uncommitted rows past their age deadline
      // flush now instead of waiting for a marker on an empty queue.
      if (lane.queue.closed() && lane.queue.size() == 0) break;
      lane.loader.maybe_deadline_flush();
      continue;
    }
    lane.depth.set(static_cast<std::int64_t>(lane.queue.size()));
    if (item->flush_marker) {
      // Flush eagerly when genuinely idle; behind queued events the
      // age deadline below bounds the wait instead.
      if (lane.queue.size() == 0) lane.loader.idle_flush();
      continue;
    }
    lane.loader.process(item->record, item->traced ? &item->trace : nullptr,
                        item->redelivered, item->ack_tag);
    // A trickle that never fills a batch (and a backlog of markers
    // never reaching an empty queue) must still ack within the
    // deadline.
    lane.loader.maybe_deadline_flush();
  }
  // Queue closed and drained: final flush + deferred replay.
  lane.loader.finish();
}

void ShardedLoader::set_ack_callback(
    std::function<void(std::uint64_t)> callback) {
  for (auto& lane : lanes_) lane->loader.set_ack_callback(callback);
}

void ShardedLoader::flush_hint() {
  if (finished_) return;
  for (auto& lane : lanes_) {
    // try_push: a backlogged lane doesn't need the hint, and the
    // dispatcher must never block on it.
    Item marker;
    marker.flush_marker = true;
    lane->queue.try_push(std::move(marker));
  }
}

void ShardedLoader::update_skew() {
  // Max relative deviation from a perfectly even spread, in permille:
  // 0 = balanced, 1000 = one lane holds double its fair share (or
  // worse). Cheap enough to refresh on every dispatch.
  if (dispatched_ == 0 || lanes_.size() < 2) {
    skew_.set(0);
    return;
  }
  const double fair =
      static_cast<double>(dispatched_) / static_cast<double>(lanes_.size());
  double worst = 0.0;
  for (const std::uint64_t count : lane_events_) {
    worst = std::max(worst,
                     std::abs(static_cast<double>(count) - fair) / fair);
  }
  skew_.set(static_cast<std::int64_t>(worst * 1000.0));
}

bool ShardedLoader::process(const nl::LogRecord& record,
                            const telemetry::TraceStamps* trace,
                            bool redelivered, std::uint64_t ack_tag) {
  if (finished_) return false;
  const std::size_t lane_index = route_map_.route(
      record, [this](std::string_view key) {
        return db_->shard_index_for_key(key);
      });

  Item item;
  item.record = record;
  if (trace != nullptr) {
    item.trace = *trace;
    item.traced = true;
  }
  item.redelivered = redelivered;
  item.ack_tag = ack_tag;
  Lane& lane = *lanes_[lane_index];
  if (!lane.queue.push(std::move(item))) return false;
  lane.depth.set(static_cast<std::int64_t>(lane.queue.size()));
  lane.dispatched.inc();
  ++lane_events_[lane_index];
  ++dispatched_;
  update_skew();
  return true;
}

void ShardedLoader::finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& lane : lanes_) lane->queue.close();
  for (auto& lane : lanes_) {
    if (lane->worker.joinable()) lane->worker.join();
    lane->depth.set(0);
  }
}

LoaderStats ShardedLoader::stats() const {
  LoaderStats total;
  for (const auto& lane : lanes_) total.merge(lane->loader.stats());
  return total;
}

const LoaderStats& ShardedLoader::lane_stats(std::size_t lane) const {
  return lanes_[lane]->loader.stats();
}

std::optional<std::size_t> ShardedLoader::route_of(
    const common::Uuid& uuid) const {
  return route_map_.route_of(uuid);
}

std::optional<std::int64_t> ShardedLoader::wf_id(
    const common::Uuid& uuid) const {
  const auto route = route_map_.route_of(uuid);
  if (!route) return std::nullopt;
  return lanes_[*route]->loader.wf_id(uuid);
}

}  // namespace stampede::loader
